//! # stale-tls
//!
//! A full reproduction of *"Stale TLS Certificates: Investigating
//! Precarious Third-Party Access to Valid TLS Keys"* (IMC 2023) as a Rust
//! workspace: the paper's detection pipeline and analyses (`stale_core`),
//! the web-PKI substrates they run on (X.509/DER, Certificate
//! Transparency, ACME CAs, CRLs, DNS, domain registries, managed-TLS
//! CDNs), and a calibrated world simulator that stands in for the paper's
//! proprietary datasets.
//!
//! ## Quickstart
//!
//! ```
//! use stale_tls::prelude::*;
//!
//! // Simulate a small world (2021–2023) and run all three detectors.
//! let data = World::run(ScenarioConfig::tiny());
//! let psl = SuffixList::default_list();
//! let suite = DetectionSuite::run(&data, &psl);
//! println!(
//!     "key compromise: {}, registrant change: {}, managed TLS: {}",
//!     suite.key_compromise.len(),
//!     suite.registrant_change.len(),
//!     suite.managed_tls.len(),
//! );
//! assert!(!suite.registrant_change.is_empty());
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure. The `repro` binary
//! (`cargo run --release -p stale-bench --bin repro`) regenerates all of
//! them.

pub use ca;
pub use cdn;
pub use crypto;
pub use ct;
pub use dns;
pub use engine;
pub use handshake;
pub use psl;
pub use registry;
pub use stale_core;
pub use stale_types;
pub use worldsim;
pub use x509;

/// The most common imports in one place.
pub mod prelude {
    pub use ca::authority::{CertificateAuthority, IssuanceRequest};
    pub use ca::policy::CaPolicy;
    pub use engine::{Engine, EngineConfig, EngineReport};
    pub use psl::SuffixList;
    pub use stale_core::detector::DetectionSuite;
    pub use stale_core::lifetime_sim::LifetimeSimulation;
    pub use stale_core::staleness::{StaleCertRecord, StalenessClass};
    pub use stale_core::survival::SurvivalCurve;
    pub use stale_types::{Date, DateInterval, DomainName, Duration};
    pub use worldsim::{ScenarioConfig, World, WorldDatasets};
    pub use x509::{Certificate, CertificateBuilder};
}
