//! Why revocation fails against the stale-certificate adversary (§2.4),
//! and what actually works — the full client-policy matrix:
//!
//! An attacker holds the private key of a revoked (key-compromised)
//! certificate and sits on-path, so it can also drop the victim's OCSP
//! traffic. We run the TLS revocation-checking step under every browser
//! policy, with and without the attacker interfering, then show the two
//! deployable fixes: OCSP Must-Staple and a CRLite-style pushed filter.
//!
//! ```sh
//! cargo run --example interception
//! ```

use stale_tls::prelude::*;

use ca::authority::IssuanceRequest;
use ca::ocsp::respond;
use ct::log::LogPool;
use stale_core::mitigation::{
    connection_outcome, ConnectionOutcome, CrliteFilter, NetworkCondition, RevocationPolicy,
};
use x509::revocation::RevocationReason;

fn dn(s: &str) -> DomainName {
    DomainName::parse(s).expect("valid literal")
}

fn d(s: &str) -> Date {
    Date::parse(s).expect("valid literal")
}

fn main() {
    let mut ct = LogPool::with_yearly_shards("icept", 15, 2021, 2025);
    let mut ca = CertificateAuthority::new(
        stale_types::CaId(60),
        "Interception CA",
        crypto::KeyPair::from_seed([60; 32]),
        CaPolicy::commercial(),
    );
    let victim_key = crypto::KeyPair::from_seed([61; 32]);
    let cert = ca
        .issue(
            &IssuanceRequest {
                domains: vec![dn("bank.com")],
                public_key: victim_key.public(),
                requested_lifetime: None,
            },
            d("2022-01-01"),
            &mut ct,
        )
        .expect("issuance");

    // The key leaks; the CA revokes with keyCompromise. The certificate
    // remains cryptographically valid for another ~10 months.
    ca.revoke(
        cert.tbs.serial,
        d("2022-02-15"),
        RevocationReason::KeyCompromise,
    )
    .expect("revocation");
    let today = d("2022-03-01");
    println!(
        "bank.com cert revoked (keyCompromise) on 2022-02-15; expires {}\n",
        cert.tbs.not_after()
    );

    println!("client policy matrix (attacker on-path with the stolen key):");
    println!("{:<34} {:<14} outcome", "policy", "network");
    let fetch = || respond(&ca, cert.tbs.serial, today);
    for (policy, name) in [
        (RevocationPolicy::NoCheck, "NoCheck (Chrome/Edge)"),
        (RevocationPolicy::SoftFail, "SoftFail (Firefox/Safari)"),
        (RevocationPolicy::HardFail, "HardFail"),
    ] {
        for (network, net_name) in [
            (NetworkCondition::Normal, "normal"),
            (NetworkCondition::OcspBlocked, "OCSP blocked"),
        ] {
            let outcome =
                connection_outcome(&cert, policy, network, None, &ca.public_key(), today, fetch);
            let marker = if outcome == ConnectionOutcome::Accepted {
                "⚠"
            } else {
                " "
            };
            println!("{marker}{name:<33} {net_name:<14} {outcome:?}");
        }
    }

    // Fix 1: Must-Staple — the attacker cannot forge a fresh Good staple.
    let stapled = ca.sign_certificate(
        x509::CertificateBuilder::tls_leaf(victim_key.public())
            .subject_cn("bank.com")
            .san(dn("bank.com"))
            .validity_days(d("2022-01-01"), Duration::days(398))
            .must_staple(),
    );
    let outcome = connection_outcome(
        &stapled,
        RevocationPolicy::NoCheck,
        NetworkCondition::OcspBlocked,
        None, // attacker withholds the staple
        &ca.public_key(),
        today,
        || respond(&ca, stapled.tbs.serial, today),
    );
    println!("\nMust-Staple cert, staple withheld by attacker: {outcome:?}");
    assert_eq!(outcome, ConnectionOutcome::RejectedNoStatus);

    // Fix 2: CRLite — revocations are pushed; no fetch to block.
    let population = vec![cert.cert_id(), stapled.cert_id()];
    let revoked = vec![cert.cert_id()];
    let filter = CrliteFilter::build(&population, &revoked);
    println!(
        "CRLite filter ({} bytes, {} levels): is_revoked(bank.com cert) = {}",
        filter.byte_size(),
        filter.level_count(),
        filter.is_revoked(&cert.cert_id()),
    );
    assert!(filter.is_revoked(&cert.cert_id()));
    assert!(!filter.is_revoked(&stapled.cert_id()));
}
