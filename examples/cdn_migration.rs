//! Managed TLS departure scenario (§3.1, Figure 3 / §5.3), end to end:
//!
//! 1. Customers enroll with a Cloudflare-like CDN (NS delegation); the CDN
//!    issues cruise-liner certificates covering dozens of customers and
//!    keeps every private key.
//! 2. One customer migrates to new infrastructure. The daily DNS scan sees
//!    the Cloudflare nameservers vanish between neighbouring days.
//! 3. The departure detector flags every unexpired managed certificate
//!    still naming the domain — keys the former provider retains.
//!
//! ```sh
//! cargo run --example cdn_migration
//! ```

use stale_tls::prelude::*;

use ca::authority::CertificateAuthority;
use cdn::provider::{ManagedTlsProvider, ProviderConfig};
use ct::log::LogPool;
use ct::monitor::CtMonitor;
use dns::scan::{DnsHistory, DnsView};
use stale_core::detector::managed_tls::ManagedTlsDetector;

fn dn(s: &str) -> DomainName {
    DomainName::parse(s).expect("valid literal")
}

fn d(s: &str) -> Date {
    Date::parse(s).expect("valid literal")
}

fn main() {
    let comodo = CertificateAuthority::new(
        stale_types::CaId(10),
        "COMODO ECC DV Secure Server CA 2",
        crypto::KeyPair::from_seed([10; 32]),
        CaPolicy {
            default_lifetime: Duration::days(365),
            ..CaPolicy::commercial()
        },
    );
    let mut provider =
        ManagedTlsProvider::new(ProviderConfig::cloudflare_cruise_liner(), comodo, 7);
    let mut ct = LogPool::with_yearly_shards("nimbus", 11, 2022, 2024);
    let mut adns = DnsHistory::new();

    // 1. Ten customers enroll over the spring of 2022.
    for (i, day) in (0..10).zip(d("2022-03-01").iter_until(d("2022-03-11"))) {
        let cert = provider.enroll(dn(&format!("customer{i}.com")), day, &mut ct, &mut adns);
        if i == 0 || i == 9 {
            println!(
                "{day}  customer{i}.com enrolls — bus cert covers {} SANs",
                cert.tbs.san().len()
            );
        }
    }

    // 2. customer3.com migrates away on 2022-09-15.
    let victim = dn("customer3.com");
    let departure_day = d("2022-09-15");
    let retained = provider.depart(
        &victim,
        departure_day,
        DnsView::with_ns([dn("ns1.newhost.net"), dn("ns2.newhost.net")]),
        &mut ct,
        &mut adns,
    );
    println!(
        "\n{departure_day}  {victim} migrates off the CDN; provider retains {} valid certificates naming it",
        retained.len()
    );

    // 3. The measurement pipeline: CT corpus + daily DNS diff.
    let mut monitor = CtMonitor::new();
    for cert in provider.all_issued() {
        monitor.ingest(cert.clone(), cert.tbs.not_before());
    }
    let suffix_list = SuffixList::default_list();
    let detector = ManagedTlsDetector::new(&provider.config, &suffix_list);
    let window = DateInterval::new(d("2022-08-01"), d("2022-10-31")).expect("window");
    let records = detector.detect(&adns, &monitor, window);

    println!("\ndetector findings in the {window} scan window:");
    for record in &records {
        println!(
            "  stale cert {} for {} — issuer {}, stale {} days ({} → {})",
            &record.cert_id.to_string()[..12],
            record.domain,
            record.issuer,
            record.staleness_days().num_days(),
            record.invalidation,
            record.validity.end,
        );
    }
    assert!(!records.is_empty());
    assert!(records.iter().all(|r| r.domain == victim));
    assert_eq!(
        records.len(),
        retained.len(),
        "detector recovers exactly the provider-retained certificates"
    );

    // The cruise-liner effect: the victim rode many overlapping certs.
    println!(
        "\ncruise-liner effect: one departure ⇒ {} stale certificates (per-domain issuance would have produced 1)",
        records.len()
    );
}
