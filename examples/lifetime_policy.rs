//! Certificate-lifetime policy what-if (§6, Figures 8–9): simulate a
//! world, detect third-party stale certificates, then sweep hypothetical
//! maximum lifetimes from 30 to 398 days and print the staleness-days
//! reduction and survival-based elimination estimates per class.
//!
//! ```sh
//! cargo run --release --example lifetime_policy [small|tiny]
//! ```

use stale_tls::prelude::*;

fn main() {
    let preset = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "tiny".to_string());
    let cfg = match preset.as_str() {
        "small" => ScenarioConfig::small(),
        "paper" => ScenarioConfig::paper2023(),
        _ => ScenarioConfig::tiny(),
    };
    eprintln!("simulating ({preset} preset)…");
    let data = World::run(cfg);
    let psl = SuffixList::default_list();
    let suite = DetectionSuite::run(&data, &psl);

    let classes = [
        StalenessClass::KeyCompromise,
        StalenessClass::RegistrantChange,
        StalenessClass::ManagedTlsDeparture,
    ];

    println!("max-lifetime sweep: staleness-days reduction (%)");
    println!(
        "{:>8} {:>16} {:>18} {:>20}",
        "cap", "key compromise", "registrant change", "managed TLS dept."
    );
    for cap in [30, 45, 60, 90, 120, 180, 215, 300, 398] {
        print!("{cap:>7}d");
        for class in classes {
            let sim = LifetimeSimulation::new(suite.records(class).iter());
            let result = sim.apply_cap(cap);
            print!("{:>16.1}", result.staleness_reduction() * 100.0);
        }
        println!();
    }

    println!("\nsurvival view: share of stale certs eliminated outright (invalidation after capped expiry)");
    for class in classes {
        let curve = SurvivalCurve::from_records(suite.records(class).iter());
        println!(
            "  {:<28} S(45)={:>5.1}%  S(90)={:>5.1}%  S(215)={:>5.1}%",
            class.label(),
            curve.survival_at(45) * 100.0,
            curve.survival_at(90) * 100.0,
            curve.survival_at(215) * 100.0,
        );
    }

    // The paper's headline: 90-day lifetimes cut overall staleness ~75%.
    let mut before = 0i64;
    let mut after = 0i64;
    for class in classes {
        let sim = LifetimeSimulation::new(suite.records(class).iter());
        let result = sim.apply_cap(90);
        before += result.staleness_days_before;
        after += result.staleness_days_after;
    }
    println!(
        "\nheadline: a 90-day maximum removes {:.0}% of all third-party staleness-days (paper: ~75%)",
        (1.0 - after as f64 / before.max(1) as f64) * 100.0
    );
}
