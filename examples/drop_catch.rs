//! Domain drop-catch scenario (§3.1, Figure 2), end to end on the
//! substrates:
//!
//! 1. Alice registers `shop.com`, passes an ACME dns-01 challenge and
//!    obtains a 398-day certificate.
//! 2. Alice stops renewing; the domain passes through grace → redemption →
//!    pending delete and is released.
//! 3. Bob drop-catches the re-registration (new registry creation date).
//! 4. Alice's certificate is *still valid* — a TLS client accepts it for
//!    Bob's domain — and the registrant-change detector flags exactly this
//!    from WHOIS creation dates alone.
//!
//! ```sh
//! cargo run --example drop_catch
//! ```

use stale_tls::prelude::*;

use ca::acme::{AcmeServer, ChallengeType, WebServer};
use ct::log::LogPool;
use ct::monitor::CtMonitor;
use dns::record::RData;
use dns::resolver::Resolver;
use dns::zone::Zone;
use registry::registry::Registry;
use registry::whois::WhoisDataset;
use stale_core::detector::registrant_change::RegistrantChangeDetector;
use stale_types::AccountId;
use x509::validate::validate_chain;

fn dn(s: &str) -> DomainName {
    DomainName::parse(s).expect("valid literal")
}

fn d(s: &str) -> Date {
    Date::parse(s).expect("valid literal")
}

fn main() {
    let mut registry = Registry::new(dn("com"), d("2020-01-01"));
    let mut ct = LogPool::with_yearly_shards("argon", 9, 2020, 2024);
    let ca_key = crypto::KeyPair::from_seed([1; 32]);
    let mut ca = CertificateAuthority::new(
        stale_types::CaId(1),
        "Example Commercial CA",
        ca_key.clone(),
        CaPolicy::commercial(),
    );
    let mut acme = AcmeServer::new();
    let mut resolver = Resolver::new();
    let web = WebServer::new();

    // 1. Alice registers shop.com and sets up DNS.
    let alice = AccountId(1);
    registry
        .register(dn("shop.com"), alice, 0, Duration::days(365))
        .expect("fresh name");
    resolver.add_zone(Zone::new(dn("shop.com")));
    println!("2020-01-01  alice registers shop.com");

    // Alice orders a certificate; dns-01 validation against her zone.
    let alice_acct_key = crypto::KeyPair::from_seed([2; 32]);
    let alice_tls_key = crypto::KeyPair::from_seed([3; 32]);
    let order = acme.new_order(&ca, alice, vec![dn("shop.com")], d("2020-06-01"));
    let challenge = acme
        .challenge(order, &dn("shop.com"), ChallengeType::Dns01)
        .expect("order");
    let key_auth = challenge.key_authorization(&alice_acct_key.public());
    resolver
        .zone_mut(&dn("shop.com"))
        .expect("zone exists")
        .add_data(challenge.dns_name(), RData::Txt(key_auth));
    acme.validate(
        order,
        &challenge,
        &alice_acct_key.public(),
        &resolver,
        &web,
        d("2020-06-01"),
    )
    .expect("dns-01 passes");
    let cert = acme
        .finalize(
            order,
            alice_tls_key.public(),
            Some(Duration::days(398)),
            &mut ca,
            &mut ct,
            d("2020-06-01"),
        )
        .expect("issuance");
    println!(
        "2020-06-01  alice obtains a {}-day certificate (serial {})",
        cert.tbs.lifetime().num_days(),
        cert.tbs.serial
    );

    // 2. Alice walks away. Grace (45d) + redemption (30d) + pending
    // delete (5d) after expiration, the registry releases the name.
    registry.advance_to(d("2021-03-25"));
    assert!(registry.available(&dn("shop.com")));
    println!("2021-03-22  shop.com released by the registry");

    // 3. Bob drop-catches it.
    let bob = AccountId(2);
    registry
        .register(dn("shop.com"), bob, 1, Duration::days(365))
        .expect("drop-catch");
    let new_creation = registry
        .registration(&dn("shop.com"))
        .expect("live")
        .creation_date;
    println!("2021-03-25  bob re-registers shop.com (creation date {new_creation})");

    // 4. Alice's certificate still validates for Bob's domain.
    let today = d("2021-05-01");
    let verdict = validate_chain(
        std::slice::from_ref(&cert),
        &[ca_key.public()],
        &dn("shop.com"),
        today,
    );
    println!(
        "{today}  TLS client validates alice's old certificate for shop.com: {}",
        match &verdict {
            Ok(()) => "ACCEPTED — alice can impersonate bob's shop.com".to_string(),
            Err(e) => format!("rejected ({e})"),
        }
    );
    assert!(
        verdict.is_ok(),
        "the stale certificate is precisely the threat"
    );

    // The detector sees it from WHOIS + CT alone.
    let mut whois = WhoisDataset::new();
    whois.ingest_registry(&registry);
    let mut monitor = CtMonitor::new();
    monitor.ingest(cert.clone(), cert.tbs.not_before());
    let suffix_list = SuffixList::default_list();
    let records = RegistrantChangeDetector::new(&suffix_list).detect(&whois, &monitor);
    assert_eq!(records.len(), 1);
    let record = &records[0];
    println!(
        "\ndetector: {} stale cert for {} — invalidated {}, stale for {} more days",
        records.len(),
        record.domain,
        record.invalidation,
        record.staleness_days().num_days()
    );
}
