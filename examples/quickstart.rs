//! Quickstart: simulate a small web-PKI world, run the three third-party
//! stale certificate detectors, and print a staleness summary.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use stale_tls::prelude::*;

fn main() {
    // A deterministic 2021–2023 world: domains are born, adopt HTTPS via
    // Let's Encrypt / commercial CAs / a Cloudflare-like CDN / AutoSSL
    // hosts, lapse, get re-registered, migrate, and leak keys.
    println!("simulating world (tiny preset)…");
    let data = World::run(ScenarioConfig::tiny());
    println!(
        "  CT corpus: {} deduplicated certificates",
        data.monitor.dedup_count()
    );
    println!("  CRL feed:  {} revocations", data.crl.len());
    println!("  WHOIS:     {} domains", data.whois.domain_count());
    println!(
        "  aDNS:      {} domains scanned daily",
        data.adns.domain_count()
    );

    // Run the paper's three detectors (§4.1–§4.3).
    let psl = SuffixList::default_list();
    let suite = DetectionSuite::run(&data, &psl);
    println!("\ndetected third-party stale certificates:");
    for class in [
        StalenessClass::KeyCompromise,
        StalenessClass::RegistrantChange,
        StalenessClass::ManagedTlsDeparture,
    ] {
        let records = suite.records(class);
        let median = {
            let mut days: Vec<i64> = records
                .iter()
                .map(|r| r.staleness_days().num_days())
                .collect();
            days.sort_unstable();
            days.get(days.len() / 2).copied().unwrap_or(0)
        };
        println!(
            "  {:<28} {:>5} certs, median staleness {} days",
            class.label(),
            records.len(),
            median
        );
    }

    // What would a 90-day maximum lifetime have prevented? (§6)
    println!("\n90-day maximum lifetime simulation:");
    for class in [
        StalenessClass::KeyCompromise,
        StalenessClass::RegistrantChange,
        StalenessClass::ManagedTlsDeparture,
    ] {
        let sim = LifetimeSimulation::new(suite.records(class).iter());
        let result = sim.apply_cap(90);
        println!(
            "  {:<28} {:>5.1}% staleness-days eliminated",
            class.label(),
            result.staleness_reduction() * 100.0
        );
    }
}
