//! The metrics registry: named counters and fixed-bucket histograms.
//!
//! Counters are monotonic `u64` accumulators. Histograms use a fixed
//! bound ladder chosen at construction ([`Histogram::latency_us`] for
//! wall times, [`Histogram::depth`] for queue/ledger depths), so their
//! memory is bounded no matter how many observations a run makes — this
//! is what replaced the engine's unbounded `queue_depths: Vec<usize>`
//! and per-batch ingest vectors. Exact `min`/`max`/`sum` are tracked
//! alongside the buckets, so `max_queue_depth()`-style semantics are
//! preserved exactly; p50/p90/p99 are bucket-upper-bound estimates
//! clamped to `[min, max]`.
//!
//! Exports:
//! * [`Registry::export_json`] — a [`MetricsSnapshot`] rendered as
//!   pretty JSON, schema-tagged ([`METRICS_SCHEMA`], [`METRICS_VERSION`])
//!   and stable: object keys are sorted (BTreeMap), histograms always
//!   carry `bounds`/`counts`/`count`/`sum`/`min`/`max`/`p50`/`p90`/`p99`.
//!   `stale-lint preflight` validates these files via
//!   [`MetricsSnapshot::validate`].
//! * [`Registry::export_prom`] — Prometheus text exposition (counters
//!   and cumulative `_bucket{le=...}` histogram series), for scraping.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Schema tag in the metrics-JSON export.
pub const METRICS_SCHEMA: &str = "stale-obs-metrics";
/// Current metrics schema version.
pub const METRICS_VERSION: u32 = 1;

/// Bucket upper bounds for wall-time histograms, microseconds
/// (10 µs … 60 s, roughly 1-2-5 per decade; one overflow bucket above).
pub const LATENCY_BOUNDS_US: &[u64] = &[
    10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000,
    500_000, 1_000_000, 2_000_000, 5_000_000, 10_000_000, 30_000_000, 60_000_000,
];

/// Bucket upper bounds for depth/size histograms (queue depths, batch
/// item counts, ledger footprints).
pub const DEPTH_BOUNDS: &[u64] = &[
    0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576,
];

/// A fixed-bucket histogram with exact min/max/sum.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` buckets; the last is the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// A histogram over explicit bucket upper bounds (must be strictly
    /// increasing; an overflow bucket is added automatically).
    pub fn with_bounds(bounds: &[u64]) -> Histogram {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }

    /// Wall-time histogram ([`LATENCY_BOUNDS_US`]).
    pub fn latency_us() -> Histogram {
        Histogram::with_bounds(LATENCY_BOUNDS_US)
    }

    /// Depth/size histogram ([`DEPTH_BOUNDS`]).
    pub fn depth() -> Histogram {
        Histogram::with_bounds(DEPTH_BOUNDS)
    }

    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        let bucket = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        if let Some(slot) = self.counts.get_mut(bucket) {
            *slot += 1;
        }
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Fold another histogram in (same bound ladder only; a mismatched
    /// ladder is ignored rather than mis-binned).
    pub fn merge_from(&mut self, other: &Histogram) {
        if other.count == 0 || other.bounds != self.bounds {
            return;
        }
        for (slot, c) in self.counts.iter_mut().zip(&other.counts) {
            *slot += c;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Exact largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Bucket-estimated quantile (`0.0 < q <= 1.0`): the upper bound of
    /// the bucket where the cumulative count crosses `q`, clamped to the
    /// exact `[min, max]`. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                let upper = self.bounds.get(i).copied().unwrap_or(self.max);
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Freeze into the serializable export form.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.counts.clone(),
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// The serialized form of a [`Histogram`] — what lands in metrics-JSON
/// exports and in `EngineMetrics`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds, strictly increasing.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; `bounds.len() + 1` entries (overflow last).
    pub counts: Vec<u64>,
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Exact smallest observation (0 when empty).
    pub min: u64,
    /// Exact largest observation (0 when empty).
    pub max: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Schema violations in this snapshot (empty = clean).
    pub fn validate(&self, name: &str) -> Vec<String> {
        let mut out = Vec::new();
        if self.counts.len() != self.bounds.len() + 1 {
            out.push(format!(
                "histogram {name}: {} counts for {} bounds (expected bounds + 1)",
                self.counts.len(),
                self.bounds.len()
            ));
        }
        if !self.bounds.windows(2).all(|w| w[0] < w[1]) {
            out.push(format!(
                "histogram {name}: bounds are not strictly increasing"
            ));
        }
        if self.counts.iter().sum::<u64>() != self.count {
            out.push(format!(
                "histogram {name}: bucket counts sum to {} but count is {}",
                self.counts.iter().sum::<u64>(),
                self.count
            ));
        }
        if self.count > 0 {
            if self.min > self.max {
                out.push(format!(
                    "histogram {name}: min {} > max {}",
                    self.min, self.max
                ));
            }
            for (q, v) in [("p50", self.p50), ("p90", self.p90), ("p99", self.p99)] {
                if v < self.min || v > self.max {
                    out.push(format!(
                        "histogram {name}: {q} {v} outside [min {}, max {}]",
                        self.min, self.max
                    ));
                }
            }
            if !(self.p50 <= self.p90 && self.p90 <= self.p99) {
                out.push(format!(
                    "histogram {name}: quantiles not monotone (p50 {} p90 {} p99 {})",
                    self.p50, self.p90, self.p99
                ));
            }
        }
        out
    }
}

/// The whole registry, frozen for export. This is the stable
/// metrics-JSON schema: `stale-bench compare` diffs two of these.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Always [`METRICS_SCHEMA`].
    pub schema: String,
    /// Always [`METRICS_VERSION`].
    pub version: u32,
    /// Monotonic counters, name-sorted.
    pub counters: BTreeMap<String, u64>,
    /// Histograms, name-sorted.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Schema violations in this snapshot (empty = clean). `stale-lint
    /// preflight` wraps each message as a diagnostic.
    pub fn validate(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.schema != METRICS_SCHEMA {
            out.push(format!(
                "schema {:?} (expected {METRICS_SCHEMA:?})",
                self.schema
            ));
        }
        if self.version != METRICS_VERSION {
            out.push(format!(
                "version {} (expected {METRICS_VERSION})",
                self.version
            ));
        }
        for (name, hist) in &self.histograms {
            out.extend(hist.validate(name));
        }
        out
    }
}

struct RegistryInner {
    counters: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// Thread-safe counter/histogram registry. Cloning shares the store.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry {
            inner: Arc::new(RegistryInner {
                counters: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Add `value` to counter `name`.
    pub fn add(&self, name: &str, value: u64) {
        let mut counters = self
            .inner
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let slot = counters.entry(name.to_string()).or_insert(0);
        *slot = slot.saturating_add(value);
    }

    /// Record a wall-time observation (latency bound ladder).
    pub fn observe_latency_us(&self, name: &str, us: u64) {
        self.observe_with(name, us, Histogram::latency_us);
    }

    /// Record a depth/size observation (depth bound ladder).
    pub fn observe_depth(&self, name: &str, depth: u64) {
        self.observe_with(name, depth, Histogram::depth);
    }

    fn observe_with(&self, name: &str, value: u64, make: fn() -> Histogram) {
        let mut hists = self
            .inner
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        hists
            .entry(name.to_string())
            .or_insert_with(make)
            .observe(value);
    }

    /// Fold a pre-built histogram into `name` (same bound ladder).
    pub fn record_histogram(&self, name: &str, hist: &Histogram) {
        let mut hists = self
            .inner
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        match hists.get_mut(name) {
            Some(existing) => existing.merge_from(hist),
            None => {
                hists.insert(name.to_string(), hist.clone());
            }
        }
    }

    /// Freeze the registry into its stable export form.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        let histograms = self
            .inner
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, hist)| (name.clone(), hist.snapshot()))
            .collect();
        MetricsSnapshot {
            schema: METRICS_SCHEMA.to_string(),
            version: METRICS_VERSION,
            counters,
            histograms,
        }
    }

    /// Stable-schema JSON export (see [`MetricsSnapshot`]).
    pub fn export_json(&self) -> String {
        serde_json::to_string_pretty(&self.snapshot()).unwrap_or_default()
    }

    /// Prometheus text exposition: counters as `counter`, histograms as
    /// cumulative `_bucket{le=...}` series with `_sum`/`_count`. The
    /// per-reason audit counters (`audit.<det>.dropped.<reason>`) export
    /// as one labelled family per detector
    /// (`stale_audit_<det>_dropped{reason="..."}`); label values are
    /// escaped per the exposition format ([`prom_label_escape`]).
    pub fn export_prom(&self) -> String {
        let snapshot = self.snapshot();
        let mut out = String::new();
        let mut last_family: Option<String> = None;
        for (name, value) in &snapshot.counters {
            match split_reason_counter(name) {
                Some((family, reason)) => {
                    let prom = prom_name(&family);
                    // Counters are name-sorted, so one family's reasons
                    // are adjacent: emit its TYPE line once.
                    if last_family.as_deref() != Some(prom.as_str()) {
                        out.push_str(&format!("# TYPE {prom} counter\n"));
                        last_family = Some(prom.clone());
                    }
                    out.push_str(&format!(
                        "{prom}{{reason=\"{}\"}} {value}\n",
                        prom_label_escape(&reason)
                    ));
                }
                None => {
                    last_family = None;
                    let prom = prom_name(name);
                    out.push_str(&format!("# TYPE {prom} counter\n{prom} {value}\n"));
                }
            }
        }
        for (name, hist) in &snapshot.histograms {
            let prom = prom_name(name);
            out.push_str(&format!("# TYPE {prom} histogram\n"));
            let mut cum = 0u64;
            for (bound, count) in hist.bounds.iter().zip(&hist.counts) {
                cum += count;
                out.push_str(&format!(
                    "{prom}_bucket{{le=\"{}\"}} {cum}\n",
                    prom_label_escape(&bound.to_string())
                ));
            }
            out.push_str(&format!(
                "{prom}_bucket{{le=\"+Inf\"}} {}\n{prom}_sum {}\n{prom}_count {}\n",
                hist.count, hist.sum, hist.count
            ));
        }
        out
    }
}

/// Split an `audit.<det>.dropped.<reason>` counter into its labelled
/// family (`audit.<det>.dropped`) and the `reason` label value.
fn split_reason_counter(name: &str) -> Option<(String, String)> {
    let rest = name.strip_prefix("audit.")?;
    let (det, reason) = rest.split_once(".dropped.")?;
    if det.is_empty() || reason.is_empty() {
        return None;
    }
    Some((format!("audit.{det}.dropped"), reason.to_string()))
}

/// Escape a Prometheus label value per the text exposition format:
/// backslash, double quote and newline must be escaped inside the
/// `label="value"` quotes.
pub fn prom_label_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Prometheus-safe metric name: `stale_` prefix, non-alphanumerics
/// folded to `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("stale_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_tracks_exact_min_max_and_buckets() {
        let mut h = Histogram::depth();
        for d in [3u64, 17, 2, 0, 9] {
            h.observe(d);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 17);
        assert_eq!(h.sum(), 31);
        let snap = h.snapshot();
        assert_eq!(snap.counts.iter().sum::<u64>(), 5);
        assert!(snap.validate("q").is_empty(), "{:?}", snap.validate("q"));
    }

    #[test]
    fn quantiles_are_ordered_and_clamped() {
        let mut h = Histogram::latency_us();
        for us in [100u64, 150, 200, 5_000, 100_000] {
            h.observe(us);
        }
        let snap = h.snapshot();
        assert!(snap.p50 <= snap.p90 && snap.p90 <= snap.p99);
        assert!(snap.p50 >= snap.min && snap.p99 <= snap.max);
        // Overflow values land in the overflow bucket and clamp to max.
        let mut h = Histogram::with_bounds(&[10]);
        h.observe(1_000_000);
        assert_eq!(h.quantile(0.99), 1_000_000);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = Histogram::latency_us();
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        let snap = h.snapshot();
        assert_eq!(snap.mean(), 0);
        assert!(snap.validate("empty").is_empty());
    }

    #[test]
    fn registry_snapshot_roundtrips_and_validates() {
        let reg = Registry::new();
        reg.add("engine.stage.partition.wall_us", 1234);
        reg.add("engine.stage.partition.wall_us", 1);
        reg.observe_latency_us("engine.shard.wall_us", 900);
        reg.observe_depth("engine.queue.depth", 3);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["engine.stage.partition.wall_us"], 1235);
        assert!(snap.validate().is_empty(), "{:?}", snap.validate());
        let json = reg.export_json();
        let parsed: MetricsSnapshot = serde_json::from_str(&json).expect("export parses");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn merge_preserves_exact_max() {
        let mut a = Histogram::depth();
        a.observe(4);
        let mut b = Histogram::depth();
        b.observe(99);
        a.merge_from(&b);
        assert_eq!(a.max(), 99);
        assert_eq!(a.count(), 2);
        // Mismatched ladders are ignored, not mis-binned.
        let mut c = Histogram::with_bounds(&[1, 2]);
        c.observe(1);
        a.merge_from(&c);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn prom_exposition_shape() {
        let reg = Registry::new();
        reg.add("supervisor.retries", 2);
        reg.observe_latency_us("engine.shard.wall_us", 42);
        let prom = reg.export_prom();
        assert!(prom.contains("# TYPE stale_supervisor_retries counter"));
        assert!(prom.contains("stale_supervisor_retries 2"));
        assert!(prom.contains("# TYPE stale_engine_shard_wall_us histogram"));
        assert!(prom.contains("stale_engine_shard_wall_us_bucket{le=\"+Inf\"} 1"));
        assert!(prom.contains("stale_engine_shard_wall_us_count 1"));
    }

    #[test]
    fn prom_label_values_escape_hostile_strings() {
        // Per the exposition format, `\`, `"` and newline must be
        // escaped inside label quotes.
        assert_eq!(prom_label_escape("plain-reason"), "plain-reason");
        assert_eq!(prom_label_escape(r#"a\b"#), r#"a\\b"#);
        assert_eq!(prom_label_escape(r#"say "hi""#), r#"say \"hi\""#);
        assert_eq!(prom_label_escape("two\nlines"), "two\\nlines");
        assert_eq!(
            prom_label_escape("\\\"\n"),
            "\\\\\\\"\\n",
            "all three escapes compose"
        );

        // A hostile reason tag cannot break out of the quoted label.
        let reg = Registry::new();
        reg.add("audit.kc.dropped.evil\"} 9\nbroken 1", 4);
        let prom = reg.export_prom();
        assert!(
            prom.contains("stale_audit_kc_dropped{reason=\"evil\\\"} 9\\nbroken 1\"} 4"),
            "{prom}"
        );
        assert!(!prom.contains("\nbroken 1\n"), "{prom}");
    }

    #[test]
    fn prom_exports_reason_counters_as_one_labelled_family() {
        let reg = Registry::new();
        reg.add("audit.kc.dropped.crl-outlier", 3);
        reg.add("audit.kc.dropped.crl-unmatched", 11);
        reg.add("audit.kc.kept", 5);
        reg.add("audit.mtd.dropped.outside-validity-window", 2);
        let prom = reg.export_prom();
        assert!(prom.contains("# TYPE stale_audit_kc_dropped counter"));
        assert!(prom.contains("stale_audit_kc_dropped{reason=\"crl-outlier\"} 3"));
        assert!(prom.contains("stale_audit_kc_dropped{reason=\"crl-unmatched\"} 11"));
        assert!(prom.contains("stale_audit_mtd_dropped{reason=\"outside-validity-window\"} 2"));
        // One TYPE line per family, not per reason.
        assert_eq!(
            prom.matches("# TYPE stale_audit_kc_dropped counter")
                .count(),
            1
        );
        // Unlabelled counters keep their plain form.
        assert!(prom.contains("# TYPE stale_audit_kc_kept counter\nstale_audit_kc_kept 5"));
    }

    #[test]
    fn snapshot_validation_flags_corruption() {
        let reg = Registry::new();
        reg.observe_depth("q", 5);
        let mut snap = reg.snapshot();
        snap.version = 99;
        assert!(!snap.validate().is_empty());
        let mut snap = reg.snapshot();
        if let Some(h) = snap.histograms.get_mut("q") {
            h.counts.pop();
        }
        assert!(!snap.validate().is_empty());
        let mut snap = reg.snapshot();
        if let Some(h) = snap.histograms.get_mut("q") {
            h.p50 = h.max + 10;
        }
        assert!(!snap.validate().is_empty());
    }
}
