//! The slow-query log: bounded capture of queries that blew a wall-time
//! threshold, span tree included.
//!
//! The daemon's latency histograms say *that* queries were slow; the
//! slowlog says *why*, by keeping the completed span tree of each
//! offender. Capture is bounded two ways — a fixed entry capacity
//! (oldest evicted first) and a fixed command-tag vocabulary (the
//! caller passes `Request::tag`-style tags, never client input) — so
//! a hostile client can neither grow the log without bound nor mint
//! entry labels. Like everything in this crate the log is write-only
//! from the query path's point of view: recording never changes an
//! answer.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Default entry capacity.
pub const SLOWLOG_CAP: usize = 64;

/// One captured slow query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlowQueryRecord {
    /// Monotonic capture sequence number (survives eviction, so gaps
    /// reveal how many entries rolled off).
    pub seq: u64,
    /// Fixed-vocabulary command tag (e.g. `table4`).
    pub tag: String,
    /// Total wall time, microseconds.
    pub wall_us: u64,
    /// Rendered span tree of the query (empty when tracing was off).
    pub tree: String,
}

/// The bounded log. `disabled()` records nothing.
pub struct SlowLog {
    threshold_us: Option<u64>,
    cap: usize,
    next_seq: u64,
    entries: VecDeque<SlowQueryRecord>,
}

impl SlowLog {
    /// A log capturing queries at or above `threshold_us`, keeping the
    /// newest `cap` entries.
    pub fn new(threshold_us: u64, cap: usize) -> SlowLog {
        SlowLog {
            threshold_us: Some(threshold_us),
            cap: cap.max(1),
            next_seq: 0,
            entries: VecDeque::new(),
        }
    }

    /// A log that never records (no `--slow-query-us` configured).
    pub fn disabled() -> SlowLog {
        SlowLog {
            threshold_us: None,
            cap: 1,
            next_seq: 0,
            entries: VecDeque::new(),
        }
    }

    /// Whether capture is configured.
    pub fn enabled(&self) -> bool {
        self.threshold_us.is_some()
    }

    /// The capture threshold, if configured.
    pub fn threshold_us(&self) -> Option<u64> {
        self.threshold_us
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Record `tag` if `wall_us` meets the threshold; evicts the oldest
    /// entry past capacity. Returns whether an entry was captured.
    pub fn record(&mut self, tag: &str, wall_us: u64, tree: &str) -> bool {
        let Some(threshold) = self.threshold_us else {
            return false;
        };
        if wall_us < threshold {
            return false;
        }
        if self.entries.len() == self.cap {
            self.entries.pop_front();
        }
        self.entries.push_back(SlowQueryRecord {
            seq: self.next_seq,
            tag: tag.to_string(),
            wall_us,
            tree: tree.to_string(),
        });
        self.next_seq = self.next_seq.saturating_add(1);
        true
    }

    /// Captured entries, oldest first.
    pub fn records(&self) -> Vec<SlowQueryRecord> {
        self.entries.iter().cloned().collect()
    }

    /// Human-readable rendering: a header line, then each entry with its
    /// indented span tree.
    pub fn render(&self) -> String {
        let Some(threshold) = self.threshold_us else {
            return "slow-query log disabled (boot with --slow-query-us)\n".to_string();
        };
        let mut out = format!(
            "slow-query log: {} of {} entr{} held, {} captured since boot, threshold {} µs\n",
            self.entries.len(),
            self.cap,
            if self.entries.len() == 1 { "y" } else { "ies" },
            self.next_seq,
            threshold
        );
        for rec in &self.entries {
            out.push_str(&format!(
                "#{} {} {}\n",
                rec.seq,
                rec.tag,
                crate::trace::human_us(rec.wall_us)
            ));
            if rec.tree.is_empty() {
                continue;
            }
            for line in rec.tree.lines() {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = SlowLog::disabled();
        assert!(!log.enabled());
        assert!(!log.record("table4", 1_000_000, "trace\n"));
        assert!(log.is_empty());
        assert!(log.render().contains("disabled"));
    }

    #[test]
    fn threshold_gates_capture() {
        let mut log = SlowLog::new(500, 8);
        assert!(!log.record("ping", 499, ""));
        assert!(log.record("table4", 500, "trace\n  query.table4  1 ms\n"));
        assert!(log.record("report", 9_000, ""));
        assert_eq!(log.len(), 2);
        let recs = log.records();
        assert_eq!(recs[0].tag, "table4");
        assert_eq!(recs[0].seq, 0);
        assert_eq!(recs[1].seq, 1);
    }

    #[test]
    fn capacity_evicts_oldest_but_seq_keeps_counting() {
        let mut log = SlowLog::new(0, 2);
        for i in 0..5u64 {
            assert!(log.record("status", i + 1, ""));
        }
        assert_eq!(log.len(), 2);
        let recs = log.records();
        assert_eq!(recs[0].seq, 3);
        assert_eq!(recs[1].seq, 4);
        assert!(log.render().contains("5 captured since boot"));
    }

    #[test]
    fn render_indents_span_trees() {
        let mut log = SlowLog::new(0, 4);
        log.record("table4", 12_345, "trace\n  query.table4  12.35 ms\n");
        let text = log.render();
        assert!(text.contains("#0 table4 12.35 ms"), "{text}");
        assert!(text.contains("\n    query.table4"), "{text}");
        assert!(text.contains("threshold 0 µs"), "{text}");
    }
}
