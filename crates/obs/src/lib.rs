//! `stale-obs` — the workspace's observability subsystem.
//!
//! Dependency-free (std plus the workspace serde shim), and built around
//! one hard invariant: **observability never feeds back into results**.
//! Everything here is write-only from the pipeline's point of view —
//! spans and counters are recorded, rendered and exported, but no
//! detector or merge path ever reads a measurement back. The engine's
//! byte-identical-report guarantee therefore holds with tracing on or
//! off (`tests/obs_determinism.rs` enforces it), and `stale-lint`'s
//! `wallclock-in-detector` rule stays clean: this crate owns the
//! monotonic clocks, and it sits outside every detector scope.
//!
//! Three pieces:
//!
//! 1. **Tracer** ([`trace`]) — [`Trace`] records hierarchical spans with
//!    monotonic-clock timing and per-span counters into an in-memory
//!    buffer. The buffer renders as an indented span tree
//!    ([`Trace::render_tree`]) and exports as JSONL
//!    ([`Trace::to_jsonl`], schema [`trace::TRACE_SCHEMA`]) via
//!    `repro --trace-out`. A disabled trace ([`Trace::disabled`]) makes
//!    every span a no-op.
//! 2. **Metrics registry** ([`metrics`]) — [`Registry`] holds named
//!    monotonic counters and fixed-bucket histograms (with exact
//!    min/max and bucket-estimated p50/p90/p99). It exports as
//!    stable-schema JSON ([`Registry::export_json`], schema
//!    [`metrics::METRICS_SCHEMA`], via `repro --metrics-json`) and as
//!    Prometheus text exposition ([`Registry::export_prom`], via
//!    `repro --metrics-prom`).
//! 3. **Sink trait** ([`CounterSink`]) — the write-only surface
//!    detectors report item counts through. Detector code receives
//!    `&dyn CounterSink` and can only `add`; it cannot read anything
//!    back, which is what makes the determinism invariant structural
//!    rather than a convention.
//! 4. **Live-plane types** ([`window`], [`slowlog`]) — the rolling
//!    [`WindowedHistogram`] ring and the bounded [`SlowLog`] the
//!    resident daemon serves over its telemetry surface. Both are
//!    write-only from the query path's point of view.
//! 5. **Decision audit** ([`audit`]) — typed kept/dropped decisions
//!    with provenance, reported through the write-only
//!    [`audit::DecisionSink`] and merged by the engine into a
//!    canonically ordered [`audit::AuditReport`] (JSONL schema
//!    [`audit::AUDIT_SCHEMA`], via `repro --audit-out`).

pub mod audit;
pub mod metrics;
pub mod slowlog;
pub mod trace;
pub mod window;

pub use audit::{AuditLog, AuditReport, Decision, DecisionSink, ExplainIndex, NullDecisionSink};
pub use metrics::{Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use slowlog::{SlowLog, SlowQueryRecord};
pub use trace::{SpanGuard, SpanId, SpanRecord, Trace, TraceHeader};
pub use window::WindowedHistogram;

/// Write-only counter sink. Detector stages report item counts through
/// this trait; the trait has no read surface, so instrumented code
/// cannot depend on what was recorded.
pub trait CounterSink: Sync {
    /// Add `value` to the counter `name` (monotonic accumulate).
    fn add(&self, name: &str, value: u64);
}

/// A sink that drops everything — the default for uninstrumented runs.
pub struct NullSink;

impl CounterSink for NullSink {
    fn add(&self, _name: &str, _value: u64) {}
}

impl CounterSink for Registry {
    fn add(&self, name: &str, value: u64) {
        Registry::add(self, name, value);
    }
}

/// The observability bundle one run carries: a tracer and a registry.
/// Cloning is cheap (both are `Arc`-backed) and clones share the same
/// buffers, so the engine and the driver binary see one record.
#[derive(Clone)]
pub struct Obs {
    /// Hierarchical span tracer.
    pub trace: Trace,
    /// Counter/histogram registry.
    pub registry: Registry,
}

impl Obs {
    /// Tracing on: spans are recorded to the in-memory buffer.
    pub fn enabled() -> Obs {
        Obs {
            trace: Trace::enabled(),
            registry: Registry::new(),
        }
    }

    /// Tracing off: spans are no-ops. The registry still accumulates
    /// (its cost is a few atomic-free map updates per stage, and an
    /// unread registry has no output surface).
    pub fn disabled() -> Obs {
        Obs {
            trace: Trace::disabled(),
            registry: Registry::new(),
        }
    }

    /// Start a root span (shorthand for `self.trace.span`).
    pub fn span(&self, name: &str) -> SpanGuard {
        self.trace.span(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_accepts_everything() {
        NullSink.add("anything", 7);
    }

    #[test]
    fn registry_is_a_counter_sink() {
        let obs = Obs::disabled();
        let sink: &dyn CounterSink = &obs.registry;
        sink.add("detector.kc.certs", 3);
        sink.add("detector.kc.certs", 4);
        assert_eq!(obs.registry.snapshot().counters["detector.kc.certs"], 7);
    }
}
