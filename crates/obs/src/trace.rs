//! The span-based tracer.
//!
//! A [`Trace`] is an append-only, thread-safe buffer of [`SpanRecord`]s.
//! Spans are created through RAII guards ([`SpanGuard`]): creation
//! allocates the record (ids are allocation-ordered), dropping the guard
//! stamps the wall time from a monotonic clock and flushes the guard's
//! counters. Parent/child nesting is explicit — a child span is created
//! from its parent guard (or from a [`SpanId`] when the parent lives on
//! another thread, as with the supervisor's per-shard spans).
//!
//! The JSONL export ([`Trace::to_jsonl`]) is one header line
//! ([`TraceHeader`]) followed by one [`SpanRecord`] object per line.
//! [`validate_trace_jsonl`] checks the schema statically — `stale-lint
//! preflight` calls it on `--trace-out` files.

// Span timing with `Instant` is the whole point of this module; only
// the duration fields carry it, never detection results.
// stale-lint: trusted-file(wallclock-in-detector)

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Schema tag on the JSONL header line.
pub const TRACE_SCHEMA: &str = "stale-obs-trace";
/// Current trace schema version.
pub const TRACE_VERSION: u32 = 1;

/// One finished (or still-open) span, as buffered and exported.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Allocation-ordered id, dense from 0.
    pub id: usize,
    /// Parent span id; `None` for roots.
    pub parent: Option<usize>,
    /// Span name (dotted lowercase by convention, e.g. `engine.run`).
    pub name: String,
    /// Start offset from the trace epoch, microseconds.
    pub start_us: u64,
    /// Wall time, microseconds (0 while the span is still open).
    pub wall_us: u64,
    /// Per-span counters, flushed when the guard drops.
    pub counters: BTreeMap<String, u64>,
}

/// The JSONL header line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceHeader {
    /// Always [`TRACE_SCHEMA`].
    pub schema: String,
    /// Always [`TRACE_VERSION`].
    pub version: u32,
    /// Number of span lines that follow.
    pub spans: usize,
}

/// Opaque span handle, safe to pass across threads (the supervisor hands
/// worker threads the detect-stage span to parent their attempts under).
/// A disabled trace issues only the `none` id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanId(Option<usize>);

impl SpanId {
    /// The id that parents a root span (or comes from a disabled trace).
    pub fn none() -> SpanId {
        SpanId(None)
    }

    fn index(self) -> Option<usize> {
        self.0
    }
}

struct TraceInner {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
}

/// The tracer. Cloning shares the buffer; `disabled()` traces record
/// nothing and cost nothing beyond an `Option` check per call.
#[derive(Clone)]
pub struct Trace {
    inner: Option<Arc<TraceInner>>,
}

impl Trace {
    /// A recording trace.
    pub fn enabled() -> Trace {
        Trace {
            inner: Some(Arc::new(TraceInner {
                epoch: Instant::now(),
                spans: Mutex::new(Vec::new()),
            })),
        }
    }

    /// A no-op trace: spans are never recorded.
    pub fn disabled() -> Trace {
        Trace { inner: None }
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Start a root span.
    pub fn span(&self, name: &str) -> SpanGuard {
        self.child(SpanId::none(), name)
    }

    /// Start a span under `parent` (use the guard's [`SpanGuard::child`]
    /// when the parent guard is in scope; this form crosses threads).
    pub fn child(&self, parent: SpanId, name: &str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard {
                trace: self.clone(),
                id: SpanId::none(),
                started: None,
                counters: BTreeMap::new(),
            };
        };
        let started = Instant::now();
        let start_us = started.duration_since(inner.epoch).as_micros() as u64;
        let mut spans = inner.spans.lock().unwrap_or_else(|e| e.into_inner());
        let id = spans.len();
        spans.push(SpanRecord {
            id,
            parent: parent.index(),
            name: name.to_string(),
            start_us,
            wall_us: 0,
            counters: BTreeMap::new(),
        });
        SpanGuard {
            trace: self.clone(),
            id: SpanId(Some(id)),
            started: Some(started),
            counters: BTreeMap::new(),
        }
    }

    /// Snapshot of every span recorded so far, in id order.
    pub fn records(&self) -> Vec<SpanRecord> {
        match &self.inner {
            Some(inner) => inner
                .spans
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone(),
            None => Vec::new(),
        }
    }

    /// Render the span buffer as an indented tree, children under
    /// parents in start order. Empty string for a disabled trace.
    pub fn render_tree(&self) -> String {
        let records = self.records();
        if records.is_empty() {
            return String::new();
        }
        // children[i] = ids whose parent is i; roots separately.
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); records.len()];
        let mut roots: Vec<usize> = Vec::new();
        for rec in &records {
            match rec.parent {
                Some(p) if p < records.len() => children[p].push(rec.id),
                _ => roots.push(rec.id),
            }
        }
        let mut out = String::new();
        out.push_str("trace\n");
        // Iterative DFS: (id, depth), children pushed in reverse so the
        // earliest-started child renders first.
        let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&r| (r, 1)).collect();
        while let Some((id, depth)) = stack.pop() {
            let Some(rec) = records.get(id) else { continue };
            out.push_str(&"  ".repeat(depth));
            out.push_str(&rec.name);
            out.push_str(&format!("  {}", human_us(rec.wall_us)));
            if !rec.counters.is_empty() {
                let kv: Vec<String> = rec
                    .counters
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                out.push_str(&format!("  [{}]", kv.join(" ")));
            }
            out.push('\n');
            for &c in children
                .get(id)
                .map(Vec::as_slice)
                .unwrap_or(&[])
                .iter()
                .rev()
            {
                stack.push((c, depth + 1));
            }
        }
        out
    }

    /// Export as JSONL: a [`TraceHeader`] line, then one span per line.
    pub fn to_jsonl(&self) -> String {
        let records = self.records();
        let header = TraceHeader {
            schema: TRACE_SCHEMA.to_string(),
            version: TRACE_VERSION,
            spans: records.len(),
        };
        let mut out = serde_json::to_string(&header).unwrap_or_default();
        out.push('\n');
        for rec in &records {
            out.push_str(&serde_json::to_string(rec).unwrap_or_default());
            out.push('\n');
        }
        out
    }

    fn finish(&self, id: SpanId, started: Option<Instant>, counters: BTreeMap<String, u64>) {
        let (Some(inner), Some(idx), Some(started)) = (&self.inner, id.index(), started) else {
            return;
        };
        let wall_us = started.elapsed().as_micros() as u64;
        let mut spans = inner.spans.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(rec) = spans.get_mut(idx) {
            rec.wall_us = wall_us;
            rec.counters = counters;
        }
    }
}

/// RAII span handle: dropping it stamps the wall time and flushes the
/// counters into the trace buffer.
pub struct SpanGuard {
    trace: Trace,
    id: SpanId,
    started: Option<Instant>,
    counters: BTreeMap<String, u64>,
}

impl SpanGuard {
    /// This span's id (to parent spans created on other threads).
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Accumulate `value` onto this span's counter `name`.
    pub fn count(&mut self, name: &str, value: u64) {
        if self.id.index().is_none() {
            return;
        }
        *self.counters.entry(name.to_string()).or_insert(0) += value;
    }

    /// Start a child span.
    pub fn child(&self, name: &str) -> SpanGuard {
        self.trace.child(self.id, name)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let counters = std::mem::take(&mut self.counters);
        self.trace.finish(self.id, self.started.take(), counters);
    }
}

/// Validate a `--trace-out` JSONL export. Returns one message per
/// violation; empty means the file is schema-clean. Pure and panic-free
/// on any input — `stale-lint preflight` wraps it.
pub fn validate_trace_jsonl(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut lines = text.lines();
    let Some(first) = lines.next() else {
        return vec!["empty file (expected a trace header line)".to_string()];
    };
    let header: TraceHeader = match serde_json::from_str(first) {
        Ok(h) => h,
        Err(e) => return vec![format!("header line does not parse: {e}")],
    };
    if header.schema != TRACE_SCHEMA {
        out.push(format!(
            "header schema {:?} (expected {TRACE_SCHEMA:?})",
            header.schema
        ));
    }
    if header.version != TRACE_VERSION {
        out.push(format!(
            "header version {} (expected {TRACE_VERSION})",
            header.version
        ));
    }
    let mut span_lines = 0usize;
    for (lineno, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        span_lines += 1;
        let rec: SpanRecord = match serde_json::from_str(line) {
            Ok(r) => r,
            Err(e) => {
                out.push(format!(
                    "line {}: does not parse as a span: {e}",
                    lineno + 2
                ));
                continue;
            }
        };
        // Ids are dense and allocation-ordered; a parent always
        // allocates before its children.
        let expected_id = span_lines - 1;
        if rec.id != expected_id {
            out.push(format!(
                "line {}: span id {} out of order (expected {expected_id})",
                lineno + 2,
                rec.id
            ));
        }
        if let Some(p) = rec.parent {
            if p >= rec.id {
                out.push(format!(
                    "line {}: parent {p} does not precede span {}",
                    lineno + 2,
                    rec.id
                ));
            }
        }
        if rec.name.is_empty() {
            out.push(format!("line {}: empty span name", lineno + 2));
        }
    }
    if span_lines != header.spans {
        out.push(format!(
            "header declares {} span(s) but the file holds {span_lines}",
            header.spans
        ));
    }
    out
}

/// Human-readable microseconds (same scale the engine table uses).
pub fn human_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us} µs")
    } else if us < 1_000_000 {
        format!("{:.2} ms", us as f64 / 1_000.0)
    } else {
        format!("{:.3} s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record() {
        let trace = Trace::enabled();
        {
            let mut root = trace.span("engine.run");
            root.count("shards", 4);
            {
                let mut kc = root.child("kc");
                kc.count("certs", 10);
                kc.count("certs", 5);
            }
            let _merge = root.child("merge");
        }
        let records = trace.records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].name, "engine.run");
        assert_eq!(records[0].parent, None);
        assert_eq!(records[1].parent, Some(0));
        assert_eq!(records[1].counters["certs"], 15);
        assert_eq!(records[2].parent, Some(0));
        assert_eq!(records[0].counters["shards"], 4);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let trace = Trace::disabled();
        let mut span = trace.span("anything");
        span.count("x", 1);
        let child = span.child("inner");
        drop(child);
        drop(span);
        assert!(trace.records().is_empty());
        assert_eq!(trace.render_tree(), "");
        assert!(!trace.is_enabled());
    }

    #[test]
    fn cross_thread_parenting_via_span_id() {
        let trace = Trace::enabled();
        let root = trace.span("detect");
        let parent = root.id();
        std::thread::scope(|scope| {
            for shard in 0..2 {
                let trace = trace.clone();
                scope.spawn(move || {
                    let _span = trace.child(parent, &format!("shard {shard}"));
                });
            }
        });
        drop(root);
        let records = trace.records();
        assert_eq!(records.len(), 3);
        assert!(records[1..].iter().all(|r| r.parent == Some(0)));
    }

    #[test]
    fn tree_renders_nested() {
        let trace = Trace::enabled();
        {
            let root = trace.span("engine.run");
            let part = root.child("partition");
            drop(part);
            let _merge = root.child("merge");
        }
        let tree = trace.render_tree();
        assert!(tree.contains("engine.run"));
        assert!(tree.contains("\n    partition"));
        assert!(tree.contains("\n    merge"));
    }

    #[test]
    fn jsonl_roundtrips_and_validates() {
        let trace = Trace::enabled();
        {
            let root = trace.span("a");
            let _c = root.child("b");
        }
        let jsonl = trace.to_jsonl();
        assert!(validate_trace_jsonl(&jsonl).is_empty(), "{jsonl}");
        let header: TraceHeader =
            serde_json::from_str(jsonl.lines().next().unwrap_or("")).expect("header parses");
        assert_eq!(header.spans, 2);
    }

    #[test]
    fn validation_flags_corruption() {
        let trace = Trace::enabled();
        let _ = trace.span("a");
        let jsonl = trace.to_jsonl();
        // Truncated: header claims more spans than present.
        let header_only = jsonl.lines().next().map(String::from).unwrap_or_default();
        assert!(!validate_trace_jsonl(&header_only).is_empty());
        // A garbage span line.
        let garbled = format!("{header_only}\nnot json");
        assert!(!validate_trace_jsonl(&garbled).is_empty());
        // Not a trace at all.
        assert!(!validate_trace_jsonl("{\"certs\": []}").is_empty());
        assert!(!validate_trace_jsonl("").is_empty());
    }
}
