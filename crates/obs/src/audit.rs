//! The decision-audit layer: typed per-detector decisions with
//! provenance, merged into a deterministic corpus-wide audit.
//!
//! The paper's headline numbers rest on silent filters — §5.1 drops
//! outlier CRL entries before the key-compromise join, §4.2 discards
//! WHOIS records outside certificate validity windows, §6 only counts
//! customers whose delegation actually departed, and Table 7 reports CRL
//! *coverage* as a first-class result. This module makes each of those
//! decisions explicit: every candidate a detector considers yields one
//! [`Decision`] — kept, or dropped for a reason from the closed
//! [`DropReason`] enum — carrying the [`Provenance`] that justified it
//! (source CRL entry, WHOIS creation date, or DNS day pair).
//!
//! Like the rest of `stale-obs`, the surface detectors see is
//! write-only: they receive `&dyn` [`DecisionSink`] and can only emit.
//! The engine buffers per-shard streams in an [`AuditLog`], then merges
//! them into an [`AuditReport`] whose decision order is canonical
//! (independent of shard count and thread interleaving) and whose
//! per-detector [`CoverageSummary`] satisfies
//! `candidates == kept + Σ dropped` by construction. The report exports
//! as JSONL (schema [`AUDIT_SCHEMA`] v[`AUDIT_VERSION`], via
//! `repro --audit-out`) and [`validate_audit_jsonl`] checks an export
//! statically — `stale-lint preflight` wraps it.

use crate::CounterSink;
use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// Schema tag on the JSONL header line.
pub const AUDIT_SCHEMA: &str = "stale-obs-audit";
/// How many candidate fingerprints an ambiguous-prefix error lists
/// before eliding the rest.
pub const AMBIGUOUS_LIST_MAX: usize = 8;
/// Current audit schema version.
pub const AUDIT_VERSION: u32 = 1;

/// Which detector made a decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Detector {
    /// Key compromise (§5): CRL × CT join.
    Kc,
    /// Registrant change (§4): WHOIS creation × CT join.
    Rc,
    /// Managed TLS departure (§6): DNS delegation × CT join.
    Mtd,
}

impl Detector {
    /// All detectors, in canonical (report) order.
    pub const ALL: [Detector; 3] = [Detector::Kc, Detector::Rc, Detector::Mtd];

    /// The lowercase tag used in exports and counter names.
    pub fn as_str(self) -> &'static str {
        match self {
            Detector::Kc => "kc",
            Detector::Rc => "rc",
            Detector::Mtd => "mtd",
        }
    }

    /// Parse an export tag.
    pub fn parse(s: &str) -> Option<Detector> {
        Detector::ALL.iter().copied().find(|d| d.as_str() == s)
    }
}

impl Serialize for Detector {
    fn serialize(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for Detector {
    fn deserialize(v: &Value) -> Result<Self, serde::de::Error> {
        match v {
            Value::Str(s) => Detector::parse(s)
                .ok_or_else(|| serde::de::Error::msg(format!("unknown detector {s:?}"))),
            other => Err(serde::de::Error::msg(format!(
                "expected detector string, got {other:?}"
            ))),
        }
    }
}

/// Why a candidate was dropped — a closed enum mirroring the paper's
/// filters. Every variant maps to one paper section (see DESIGN.md §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DropReason {
    /// §5.1 / Table 7: a CRL entry whose (AKI, serial) matched no
    /// certificate in the CT corpus.
    CrlUnmatched,
    /// §5.1: revocation date precedes the certificate's validity.
    RevokedBeforeValid,
    /// §5.1: revocation date follows the certificate's expiry.
    RevokedAfterExpiry,
    /// §5.1: revocation more than 13 months before collection — the
    /// outlier-CRL filter.
    CrlOutlier,
    /// §5.2: several corpus certificates share the CRL entry's key;
    /// only the newest is analysed, the rest are duplicates.
    DuplicateFingerprint,
    /// §4.2 / §6: the triggering event (WHOIS creation or DNS
    /// departure) falls outside the certificate's validity window.
    OutsideValidityWindow,
    /// §6: the customer's delegation never departed in the collection
    /// window, so its certificates cannot be stale.
    DelegationStillPresent,
}

impl DropReason {
    /// All reasons, in canonical order.
    pub const ALL: [DropReason; 7] = [
        DropReason::CrlUnmatched,
        DropReason::RevokedBeforeValid,
        DropReason::RevokedAfterExpiry,
        DropReason::CrlOutlier,
        DropReason::DuplicateFingerprint,
        DropReason::OutsideValidityWindow,
        DropReason::DelegationStillPresent,
    ];

    /// The kebab-case tag used in exports and counter names.
    pub fn as_str(self) -> &'static str {
        match self {
            DropReason::CrlUnmatched => "crl-unmatched",
            DropReason::RevokedBeforeValid => "revoked-before-valid",
            DropReason::RevokedAfterExpiry => "revoked-after-expiry",
            DropReason::CrlOutlier => "crl-outlier",
            DropReason::DuplicateFingerprint => "duplicate-fingerprint",
            DropReason::OutsideValidityWindow => "outside-validity-window",
            DropReason::DelegationStillPresent => "delegation-still-present",
        }
    }

    /// Parse a kebab-case tag.
    pub fn parse(s: &str) -> Option<DropReason> {
        DropReason::ALL.iter().copied().find(|r| r.as_str() == s)
    }
}

/// Keep or drop. Serialises as `"kept"` or the drop-reason tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The candidate survived every filter.
    Kept,
    /// The candidate was dropped, and why.
    Dropped(DropReason),
}

impl Verdict {
    /// The export tag.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Kept => "kept",
            Verdict::Dropped(reason) => reason.as_str(),
        }
    }
}

impl Serialize for Verdict {
    fn serialize(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for Verdict {
    fn deserialize(v: &Value) -> Result<Self, serde::de::Error> {
        match v {
            Value::Str(s) if s == "kept" => Ok(Verdict::Kept),
            Value::Str(s) => DropReason::parse(s)
                .map(Verdict::Dropped)
                .ok_or_else(|| serde::de::Error::msg(format!("unknown drop reason {s:?}"))),
            other => Err(serde::de::Error::msg(format!(
                "expected verdict string, got {other:?}"
            ))),
        }
    }
}

/// The source record that justified a decision. Dates are `YYYY-MM-DD`
/// strings (lexicographic order is chronological order), and the enum is
/// string/integer-only so `stale-obs` stays dependency-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Provenance {
    /// A CRL entry (kc candidates).
    CrlEntry {
        /// Position of the entry in the CRL dataset.
        crl_index: u64,
        /// Issuing authority key id, hex.
        authority_key_id: String,
        /// Certificate serial, hex.
        serial: String,
        /// Revocation date.
        revoked: String,
        /// Revocation reason as recorded on the CRL.
        reason: String,
    },
    /// A WHOIS re-registration event (rc candidates).
    WhoisCreation {
        /// The re-registered e2LD.
        domain: String,
        /// The new WHOIS creation date.
        created: String,
    },
    /// A DNS delegation departure day pair (mtd candidates).
    DnsDeparture {
        /// The customer domain that left the managed platform.
        customer: String,
        /// Last day the delegation was observed.
        last_delegated: String,
        /// First day it was gone.
        departed: String,
    },
    /// A delegation that never departed (mtd drop provenance).
    DnsDelegated {
        /// The customer domain still on the platform.
        customer: String,
    },
}

impl Provenance {
    /// The `kind` tag used in exports.
    pub fn kind(&self) -> &'static str {
        match self {
            Provenance::CrlEntry { .. } => "crl-entry",
            Provenance::WhoisCreation { .. } => "whois-creation",
            Provenance::DnsDeparture { .. } => "dns-departure",
            Provenance::DnsDelegated { .. } => "dns-delegated",
        }
    }
}

impl Serialize for Provenance {
    fn serialize(&self) -> Value {
        let kind = ("kind".to_string(), Value::Str(self.kind().to_string()));
        let s = |v: &str| Value::Str(v.to_string());
        match self {
            Provenance::CrlEntry {
                crl_index,
                authority_key_id,
                serial,
                revoked,
                reason,
            } => Value::Obj(vec![
                kind,
                ("crl_index".to_string(), Value::UInt(u128::from(*crl_index))),
                ("authority_key_id".to_string(), s(authority_key_id)),
                ("serial".to_string(), s(serial)),
                ("revoked".to_string(), s(revoked)),
                ("reason".to_string(), s(reason)),
            ]),
            Provenance::WhoisCreation { domain, created } => Value::Obj(vec![
                kind,
                ("domain".to_string(), s(domain)),
                ("created".to_string(), s(created)),
            ]),
            Provenance::DnsDeparture {
                customer,
                last_delegated,
                departed,
            } => Value::Obj(vec![
                kind,
                ("customer".to_string(), s(customer)),
                ("last_delegated".to_string(), s(last_delegated)),
                ("departed".to_string(), s(departed)),
            ]),
            Provenance::DnsDelegated { customer } => {
                Value::Obj(vec![kind, ("customer".to_string(), s(customer))])
            }
        }
    }
}

impl Deserialize for Provenance {
    fn deserialize(v: &Value) -> Result<Self, serde::de::Error> {
        let kind: String = serde::de::field(v, "kind")?;
        match kind.as_str() {
            "crl-entry" => Ok(Provenance::CrlEntry {
                crl_index: serde::de::field(v, "crl_index")?,
                authority_key_id: serde::de::field(v, "authority_key_id")?,
                serial: serde::de::field(v, "serial")?,
                revoked: serde::de::field(v, "revoked")?,
                reason: serde::de::field(v, "reason")?,
            }),
            "whois-creation" => Ok(Provenance::WhoisCreation {
                domain: serde::de::field(v, "domain")?,
                created: serde::de::field(v, "created")?,
            }),
            "dns-departure" => Ok(Provenance::DnsDeparture {
                customer: serde::de::field(v, "customer")?,
                last_delegated: serde::de::field(v, "last_delegated")?,
                departed: serde::de::field(v, "departed")?,
            }),
            "dns-delegated" => Ok(Provenance::DnsDelegated {
                customer: serde::de::field(v, "customer")?,
            }),
            other => Err(serde::de::Error::msg(format!(
                "unknown provenance kind {other:?}"
            ))),
        }
    }
}

/// One detector decision about one candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// Which detector decided.
    pub detector: Detector,
    /// Certificate fingerprint (full lowercase hex). Empty only for
    /// unmatched CRL entries, which have no certificate side.
    pub cert: String,
    /// Kept or dropped (and why).
    pub verdict: Verdict,
    /// The source record that justified the decision.
    pub provenance: Provenance,
}

impl Decision {
    /// The canonical sort key: detector section (kc, rc, mtd), then the
    /// provenance's natural order, then the fingerprint. Sorting by this
    /// key makes a merged audit independent of shard count and thread
    /// interleaving.
    pub fn sort_key(&self) -> (u8, u64, &str, &str, &str) {
        let rank = match self.detector {
            Detector::Kc => 0,
            Detector::Rc => 1,
            Detector::Mtd => 2,
        };
        match &self.provenance {
            Provenance::CrlEntry { crl_index, .. } => (rank, *crl_index, "", "", &self.cert),
            Provenance::WhoisCreation { domain, created } => (rank, 0, domain, created, &self.cert),
            Provenance::DnsDeparture {
                customer, departed, ..
            } => (rank, 0, customer, departed, &self.cert),
            Provenance::DnsDelegated { customer } => (rank, 0, customer, "", &self.cert),
        }
    }
}

/// Write-only decision sink. Detector code receives `&dyn DecisionSink`
/// and can only emit; nothing recorded is readable from inside a
/// detector, so the byte-identical-results invariant stays structural.
pub trait DecisionSink: Sync {
    /// Record one decision.
    fn decision(&self, d: Decision);
}

/// A sink that drops everything — the default when auditing is off.
pub struct NullDecisionSink;

impl DecisionSink for NullDecisionSink {
    fn decision(&self, _d: Decision) {}
}

/// An in-memory decision buffer. Cloning shares the buffer; the engine
/// gives each shard attempt a fresh log so a panicked attempt's partial
/// stream is discarded with it.
#[derive(Clone, Default)]
pub struct AuditLog {
    inner: Arc<Mutex<Vec<Decision>>>,
}

impl AuditLog {
    /// An empty log.
    pub fn new() -> AuditLog {
        AuditLog::default()
    }

    /// Take every buffered decision, leaving the log empty.
    pub fn drain(&self) -> Vec<Decision> {
        let mut buf = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *buf)
    }
}

impl DecisionSink for AuditLog {
    fn decision(&self, d: Decision) {
        let mut buf = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        buf.push(d);
    }
}

/// Per-detector candidate accounting. The identity
/// `candidates == kept + Σ dropped` holds by construction when built
/// through [`AuditReport::from_decisions`], and [`validate_audit_jsonl`]
/// re-checks it on every export.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CoverageSummary {
    /// Candidates the detector considered.
    pub candidates: u64,
    /// Candidates that survived every filter.
    pub kept: u64,
    /// Dropped candidates by reason tag.
    pub dropped: BTreeMap<String, u64>,
}

impl CoverageSummary {
    /// Total dropped across all reasons.
    pub fn dropped_total(&self) -> u64 {
        self.dropped.values().sum()
    }

    /// Whether `candidates == kept + Σ dropped`.
    pub fn balanced(&self) -> bool {
        self.candidates == self.kept + self.dropped_total()
    }
}

/// The JSONL header line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditHeader {
    /// Always [`AUDIT_SCHEMA`].
    pub schema: String,
    /// Always [`AUDIT_VERSION`].
    pub version: u32,
    /// Number of decision lines that follow.
    pub decisions: usize,
    /// Per-detector coverage, keyed by detector tag.
    pub coverage: BTreeMap<String, CoverageSummary>,
}

/// The merged, canonically ordered audit of one engine run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditReport {
    /// Per-detector coverage, keyed by detector tag.
    pub coverage: BTreeMap<String, CoverageSummary>,
    /// Every decision, in canonical order.
    pub decisions: Vec<Decision>,
}

impl AuditReport {
    /// Build a report from an unordered decision stream: sort into
    /// canonical order and tally coverage.
    pub fn from_decisions(mut decisions: Vec<Decision>) -> AuditReport {
        decisions.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        let mut coverage: BTreeMap<String, CoverageSummary> = BTreeMap::new();
        for det in Detector::ALL {
            coverage.insert(det.as_str().to_string(), CoverageSummary::default());
        }
        for d in &decisions {
            let cov = coverage.entry(d.detector.as_str().to_string()).or_default();
            cov.candidates += 1;
            match d.verdict {
                Verdict::Kept => cov.kept += 1,
                Verdict::Dropped(reason) => {
                    *cov.dropped.entry(reason.as_str().to_string()).or_insert(0) += 1;
                }
            }
        }
        AuditReport {
            coverage,
            decisions,
        }
    }

    /// Decisions about one certificate, by fingerprint prefix. Returns
    /// the full fingerprint and its decision chain when the prefix is
    /// unambiguous. An ambiguous prefix errors with the matching
    /// fingerprints listed (capped at [`AMBIGUOUS_LIST_MAX`]), so the
    /// caller can extend the prefix instead of guessing.
    pub fn decisions_for(&self, prefix: &str) -> Result<(String, Vec<&Decision>), String> {
        let matching: BTreeSet<&str> = self
            .decisions
            .iter()
            .filter(|d| !d.cert.is_empty() && d.cert.starts_with(prefix))
            .map(|d| d.cert.as_str())
            .collect();
        let cert = resolve_fingerprint_prefix(prefix, &matching)?.to_string();
        let chain = self
            .decisions
            .iter()
            .filter(|d| d.cert == cert)
            .collect::<Vec<_>>();
        Ok((cert, chain))
    }

    /// Build a fingerprint → decision-index map over [`decisions`]
    /// (`AuditReport::decisions`). Resident query loops (`stale-served`)
    /// cache this so per-fingerprint lookups stop scanning every
    /// decision; invalidate whenever the report is rebuilt.
    pub fn fingerprint_index(&self) -> BTreeMap<String, Vec<usize>> {
        let mut map: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, d) in self.decisions.iter().enumerate() {
            if !d.cert.is_empty() {
                map.entry(d.cert.clone()).or_default().push(i);
            }
        }
        map
    }

    /// [`decisions_for`](AuditReport::decisions_for) served from a
    /// prebuilt [`fingerprint_index`](AuditReport::fingerprint_index):
    /// prefix resolution is a range scan over the index keys instead of
    /// a pass over every decision. Byte-identical results and errors.
    pub fn decisions_for_indexed<'a>(
        &'a self,
        index: &BTreeMap<String, Vec<usize>>,
        prefix: &str,
    ) -> Result<(String, Vec<&'a Decision>), String> {
        let matching: BTreeSet<&str> = prefix_range(index, prefix)
            .map(|(k, _)| k.as_str())
            .collect();
        let cert = resolve_fingerprint_prefix(prefix, &matching)?.to_string();
        let chain = index
            .get(&cert)
            .map(Vec::as_slice)
            .unwrap_or_default()
            .iter()
            .filter_map(|&i| self.decisions.get(i))
            .collect();
        Ok((cert, chain))
    }

    /// Render the decision chain for one certificate (the `stale-bench
    /// explain` body).
    pub fn render_explain(&self, prefix: &str) -> Result<String, String> {
        let (cert, chain) = self.decisions_for(prefix)?;
        Ok(render_explain_chain(&cert, &chain))
    }

    /// [`render_explain`](AuditReport::render_explain) through a cached
    /// [`fingerprint_index`](AuditReport::fingerprint_index).
    pub fn render_explain_indexed(
        &self,
        index: &BTreeMap<String, Vec<usize>>,
        prefix: &str,
    ) -> Result<String, String> {
        let (cert, chain) = self.decisions_for_indexed(index, prefix)?;
        Ok(render_explain_chain(&cert, &chain))
    }

    /// Render the corpus-wide data-quality summary (the `stale-bench
    /// report --audit` body): per-detector coverage plus a Table-7-style
    /// CRL-coverage readout.
    pub fn render_coverage(&self) -> String {
        let mut out = String::from("decision audit coverage\n");
        out.push_str("  detector  candidates        kept     dropped\n");
        for det in Detector::ALL {
            let cov = self.coverage.get(det.as_str()).cloned().unwrap_or_default();
            out.push_str(&format!(
                "  {:<8}  {:>10}  {:>10}  {:>10}{}\n",
                det.as_str(),
                cov.candidates,
                cov.kept,
                cov.dropped_total(),
                if cov.balanced() { "" } else { "  UNBALANCED" },
            ));
            for (reason, n) in &cov.dropped {
                out.push_str(&format!("              {reason:<28} {n:>10}\n"));
            }
        }
        // Table-7-style CRL coverage: of the CRL entries themselves (the
        // duplicate-fingerprint drops are extra certificate candidates on
        // top of the entry count), how many matched a corpus cert?
        if let Some(kc) = self.coverage.get(Detector::Kc.as_str()) {
            let dups = kc
                .dropped
                .get(DropReason::DuplicateFingerprint.as_str())
                .copied()
                .unwrap_or(0);
            let unmatched = kc
                .dropped
                .get(DropReason::CrlUnmatched.as_str())
                .copied()
                .unwrap_or(0);
            let entries = kc.candidates.saturating_sub(dups);
            let matched = entries.saturating_sub(unmatched);
            let pct = if entries == 0 {
                0.0
            } else {
                100.0 * matched as f64 / entries as f64
            };
            out.push_str(&format!(
                "  crl coverage: {matched}/{entries} entries matched a corpus cert ({pct:.1}%)\n"
            ));
        }
        out
    }

    /// Register the coverage gauges on a metrics sink:
    /// `audit.<detector>.candidates`, `.kept`, and
    /// `.dropped.<reason>`.
    pub fn register_coverage(&self, sink: &dyn CounterSink) {
        for (det, cov) in &self.coverage {
            sink.add(&format!("audit.{det}.candidates"), cov.candidates);
            sink.add(&format!("audit.{det}.kept"), cov.kept);
            for (reason, n) in &cov.dropped {
                sink.add(&format!("audit.{det}.dropped.{reason}"), *n);
            }
        }
    }

    /// Export as JSONL: an [`AuditHeader`] line, then one decision per
    /// line, in canonical order.
    // stale-lint: entry(serial)
    pub fn to_jsonl(&self) -> String {
        let header = AuditHeader {
            schema: AUDIT_SCHEMA.to_string(),
            version: AUDIT_VERSION,
            decisions: self.decisions.len(),
            coverage: self.coverage.clone(),
        };
        let mut out = serde_json::to_string(&header).unwrap_or_default();
        out.push('\n');
        for d in &self.decisions {
            out.push_str(&serde_json::to_string(d).unwrap_or_default());
            out.push('\n');
        }
        out
    }

    /// Parse a JSONL export back into a report. Coverage is re-tallied
    /// from the decision lines (use [`validate_audit_jsonl`] to check the
    /// header agrees).
    pub fn from_jsonl(text: &str) -> Result<AuditReport, String> {
        let mut lines = text.lines();
        let first = lines.next().ok_or("empty audit file")?;
        let header: AuditHeader =
            serde_json::from_str(first).map_err(|e| format!("audit header: {e}"))?;
        if header.schema != AUDIT_SCHEMA {
            return Err(format!(
                "schema {:?} is not {AUDIT_SCHEMA:?}",
                header.schema
            ));
        }
        let mut decisions = Vec::new();
        for (lineno, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let d: Decision =
                serde_json::from_str(line).map_err(|e| format!("line {}: {e}", lineno + 2))?;
            decisions.push(d);
        }
        Ok(AuditReport::from_decisions(decisions))
    }
}

/// Resolve a fingerprint prefix against the sorted set of matching
/// full fingerprints. Shared by the in-memory scan, the cached
/// in-memory index, and the on-disk [`ExplainIndex`], so all three
/// produce byte-identical errors.
fn resolve_fingerprint_prefix<'a>(
    prefix: &str,
    matching: &BTreeSet<&'a str>,
) -> Result<&'a str, String> {
    if prefix.is_empty() {
        return Err("empty fingerprint".to_string());
    }
    let mut certs = matching.iter();
    match (certs.next(), certs.next()) {
        (None, _) => Err(format!("no decision mentions fingerprint {prefix:?}")),
        (Some(cert), None) => Ok(cert),
        (Some(_), Some(_)) => {
            let mut msg = format!(
                "fingerprint prefix {prefix:?} is ambiguous ({} matches):",
                matching.len()
            );
            for cert in matching.iter().take(AMBIGUOUS_LIST_MAX) {
                msg.push_str(&format!("\n  {cert}"));
            }
            if matching.len() > AMBIGUOUS_LIST_MAX {
                msg.push_str(&format!(
                    "\n  ... and {} more",
                    matching.len() - AMBIGUOUS_LIST_MAX
                ));
            }
            Err(msg)
        }
    }
}

/// Iterate the entries of a string-keyed map whose keys start with
/// `prefix`, without scanning keys outside the prefix range.
fn prefix_range<'a, V>(
    map: &'a BTreeMap<String, V>,
    prefix: &'a str,
) -> impl Iterator<Item = (&'a String, &'a V)> {
    map.range(prefix.to_string()..)
        .take_while(move |(k, _)| k.starts_with(prefix))
}

/// Render one certificate's decision chain (the `stale-bench explain`
/// body). Shared by every explain surface so offset-backed and
/// in-memory lookups stay byte-identical.
pub fn render_explain_chain(cert: &str, chain: &[&Decision]) -> String {
    let mut out = format!("fingerprint {cert}\n");
    out.push_str(&format!("decisions   {}\n", chain.len()));
    for d in chain {
        out.push_str(&format!(
            "  [{}] {:24} {}\n",
            d.detector.as_str(),
            d.verdict.as_str(),
            render_provenance(&d.provenance)
        ));
    }
    out
}

/// Schema tag on the first line of a persisted explain index.
pub const EXPLAIN_INDEX_SCHEMA: &str = "stale-obs-audit-index";
/// Current explain-index format version.
pub const EXPLAIN_INDEX_VERSION: u32 = 1;

/// A persistent fingerprint → byte-offset index over an audit JSONL
/// export, so `explain` lookups read only the decision lines for one
/// certificate instead of parsing the whole store.
///
/// The index remembers the byte length of the JSONL it was built from;
/// [`matches`](ExplainIndex::matches) rechecks that before the index is
/// trusted, so a rewritten audit file invalidates its sidecar instead
/// of silently serving offsets into the wrong bytes. The sidecar format
/// is a plain text table (header line, then one `fingerprint off off…`
/// line per certificate) — deliberately not JSONL, so a sidecar can
/// never be mistaken for an audit store by schema sniffers.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainIndex {
    /// Byte length of the source JSONL this index was built from.
    pub source_bytes: u64,
    /// fingerprint → byte offsets of its decision lines, in canonical
    /// (file) order.
    pub entries: BTreeMap<String, Vec<u64>>,
}

impl ExplainIndex {
    /// Build an index over an audit JSONL export. The header line is
    /// checked (schema + version) but not indexed; decision lines with
    /// an empty fingerprint (unmatched CRL entries) are skipped.
    pub fn build(jsonl: &str) -> Result<ExplainIndex, String> {
        let mut entries: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        let mut offset = 0u64;
        let mut saw_header = false;
        for (lineno, line) in jsonl.split_inclusive('\n').enumerate() {
            let here = offset;
            offset += line.len() as u64;
            let body = line.trim_end_matches('\n');
            if body.trim().is_empty() {
                continue;
            }
            if !saw_header {
                let header: AuditHeader =
                    serde_json::from_str(body).map_err(|e| format!("audit header: {e}"))?;
                if header.schema != AUDIT_SCHEMA {
                    return Err(format!(
                        "schema {:?} is not {AUDIT_SCHEMA:?}",
                        header.schema
                    ));
                }
                saw_header = true;
                continue;
            }
            let d: Decision =
                serde_json::from_str(body).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            if !d.cert.is_empty() {
                entries.entry(d.cert).or_default().push(here);
            }
        }
        if !saw_header {
            return Err("empty audit file".to_string());
        }
        Ok(ExplainIndex {
            source_bytes: jsonl.len() as u64,
            entries,
        })
    }

    /// Whether this index still describes `jsonl`. Length equality is
    /// the freshness check: the audit export is append-only-in-spirit
    /// but regenerated wholesale, and any regeneration that preserves
    /// the byte length also preserves every line boundary we indexed
    /// only if content is unchanged — so we additionally spot-check
    /// that each indexed offset starts a line mentioning its
    /// fingerprint when lookups parse the line (see
    /// [`render_explain_from`](ExplainIndex::render_explain_from)).
    pub fn matches(&self, jsonl: &str) -> bool {
        self.source_bytes == jsonl.len() as u64
    }

    /// Resolve a fingerprint prefix to the full fingerprint and the
    /// byte offsets of its decision lines. Errors are byte-identical
    /// to [`AuditReport::decisions_for`].
    pub fn offsets_for(&self, prefix: &str) -> Result<(String, &[u64]), String> {
        let matching: BTreeSet<&str> = prefix_range(&self.entries, prefix)
            .map(|(k, _)| k.as_str())
            .collect();
        let cert = resolve_fingerprint_prefix(prefix, &matching)?.to_string();
        let offsets = self
            .entries
            .get(&cert)
            .map(Vec::as_slice)
            .unwrap_or_default();
        Ok((cert, offsets))
    }

    /// Render the explain body for `prefix`, reading only the indexed
    /// decision lines out of `jsonl`. Byte-identical to
    /// [`AuditReport::render_explain`] on the same store.
    pub fn render_explain_from(&self, jsonl: &str, prefix: &str) -> Result<String, String> {
        if !self.matches(jsonl) {
            return Err(format!(
                "explain index is stale: built over {} bytes, store is {}",
                self.source_bytes,
                jsonl.len()
            ));
        }
        let (cert, offsets) = self.offsets_for(prefix)?;
        let mut chain = Vec::with_capacity(offsets.len());
        for &off in offsets {
            let rest = jsonl
                .get(off as usize..)
                .ok_or_else(|| format!("explain index offset {off} is past end of store"))?;
            let line = rest.lines().next().unwrap_or_default();
            let d: Decision = serde_json::from_str(line)
                .map_err(|e| format!("explain index offset {off}: {e}"))?;
            if d.cert != cert {
                return Err(format!(
                    "explain index offset {off} holds a decision for {:?}, not {cert:?}",
                    d.cert
                ));
            }
            chain.push(d);
        }
        let refs: Vec<&Decision> = chain.iter().collect();
        Ok(render_explain_chain(&cert, &refs))
    }

    /// Serialize to the sidecar text format.
    // stale-lint: entry(serial)
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "{EXPLAIN_INDEX_SCHEMA} v{EXPLAIN_INDEX_VERSION} bytes={} certs={}\n",
            self.source_bytes,
            self.entries.len()
        );
        for (cert, offsets) in &self.entries {
            out.push_str(cert);
            for off in offsets {
                out.push_str(&format!(" {off}"));
            }
            out.push('\n');
        }
        out
    }

    /// Parse a sidecar produced by [`to_text`](ExplainIndex::to_text).
    pub fn parse(text: &str) -> Result<ExplainIndex, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty explain index")?;
        let mut fields = header.split_whitespace();
        match (fields.next(), fields.next()) {
            (Some(EXPLAIN_INDEX_SCHEMA), Some(v)) if v == format!("v{EXPLAIN_INDEX_VERSION}") => {}
            _ => {
                return Err(format!(
                    "not a {EXPLAIN_INDEX_SCHEMA} v{EXPLAIN_INDEX_VERSION} index"
                ))
            }
        }
        let mut source_bytes = None;
        let mut certs = None;
        for field in fields {
            if let Some(n) = field.strip_prefix("bytes=") {
                source_bytes = Some(n.parse::<u64>().map_err(|e| format!("bytes: {e}"))?);
            } else if let Some(n) = field.strip_prefix("certs=") {
                certs = Some(n.parse::<usize>().map_err(|e| format!("certs: {e}"))?);
            }
        }
        let source_bytes = source_bytes.ok_or("explain index header missing bytes=")?;
        let certs = certs.ok_or("explain index header missing certs=")?;
        let mut entries: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        for (lineno, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let mut fields = line.split_whitespace();
            let cert = fields.next().unwrap_or_default().to_string();
            let mut offsets = Vec::new();
            for f in fields {
                offsets.push(
                    f.parse::<u64>()
                        .map_err(|e| format!("line {}: offset {f:?}: {e}", lineno + 2))?,
                );
            }
            if cert.is_empty() || offsets.is_empty() {
                return Err(format!("line {}: malformed index entry", lineno + 2));
            }
            if entries.insert(cert.clone(), offsets).is_some() {
                return Err(format!(
                    "line {}: duplicate fingerprint {cert:?}",
                    lineno + 2
                ));
            }
        }
        if entries.len() != certs {
            return Err(format!(
                "explain index header claims {certs} certs, found {}",
                entries.len()
            ));
        }
        Ok(ExplainIndex {
            source_bytes,
            entries,
        })
    }
}

/// One-line human rendering of a provenance record.
pub fn render_provenance(p: &Provenance) -> String {
    match p {
        Provenance::CrlEntry {
            crl_index,
            authority_key_id,
            serial,
            revoked,
            reason,
        } => format!(
            "crl entry #{crl_index} aki={authority_key_id} serial={serial} revoked={revoked} reason={reason}"
        ),
        Provenance::WhoisCreation { domain, created } => {
            format!("whois creation {domain} created={created}")
        }
        Provenance::DnsDeparture {
            customer,
            last_delegated,
            departed,
        } => format!(
            "dns departure {customer} last_delegated={last_delegated} departed={departed}"
        ),
        Provenance::DnsDelegated { customer } => {
            format!("dns delegation still present for {customer}")
        }
    }
}

fn is_day(s: &str) -> bool {
    let b = s.as_bytes();
    b.len() == 10
        && b.iter().enumerate().all(|(i, c)| match i {
            4 | 7 => *c == b'-',
            _ => c.is_ascii_digit(),
        })
}

fn is_hex(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

fn check_decision(d: &Decision, lineno: usize, out: &mut Vec<String>) {
    let kind_ok = matches!(
        (d.detector, &d.provenance),
        (Detector::Kc, Provenance::CrlEntry { .. })
            | (Detector::Rc, Provenance::WhoisCreation { .. })
            | (Detector::Mtd, Provenance::DnsDeparture { .. })
            | (Detector::Mtd, Provenance::DnsDelegated { .. })
    );
    if !kind_ok {
        out.push(format!(
            "line {lineno}: detector {:?} cannot carry {:?} provenance",
            d.detector.as_str(),
            d.provenance.kind()
        ));
    }
    if d.cert.is_empty() {
        if d.verdict != Verdict::Dropped(DropReason::CrlUnmatched) {
            out.push(format!(
                "line {lineno}: empty fingerprint on a {:?} decision (only crl-unmatched entries have no certificate side)",
                d.verdict.as_str()
            ));
        }
    } else if !is_hex(&d.cert) {
        out.push(format!(
            "line {lineno}: fingerprint {:?} is not lowercase hex",
            d.cert
        ));
    }
    let days: Vec<&str> = match &d.provenance {
        Provenance::CrlEntry { revoked, .. } => vec![revoked],
        Provenance::WhoisCreation { created, .. } => vec![created],
        Provenance::DnsDeparture {
            last_delegated,
            departed,
            ..
        } => vec![last_delegated, departed],
        Provenance::DnsDelegated { .. } => Vec::new(),
    };
    for day in &days {
        if !is_day(day) {
            out.push(format!("line {lineno}: malformed day {day:?}"));
        }
    }
    if let Provenance::DnsDeparture {
        last_delegated,
        departed,
        ..
    } = &d.provenance
    {
        // Day strings order lexicographically; the delegation must have
        // been observed strictly before it departed.
        if last_delegated.as_str() >= departed.as_str() {
            out.push(format!(
                "line {lineno}: departure day pair is not monotone ({last_delegated:?} !< {departed:?})"
            ));
        }
    }
}

/// Validate a `--audit-out` JSONL export: schema tag and version, every
/// line parses with a known drop reason, provenance days are well-formed
/// and monotone, decisions are in canonical order, and the header's
/// coverage both matches the lines and balances
/// (`candidates == kept + Σ dropped`). Returns one message per
/// violation; empty means clean. Pure and panic-free on any input —
/// `stale-lint preflight` wraps it.
pub fn validate_audit_jsonl(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut lines = text.lines();
    let Some(first) = lines.next() else {
        return vec!["empty file (expected an audit header line)".to_string()];
    };
    let header: AuditHeader = match serde_json::from_str(first) {
        Ok(h) => h,
        Err(e) => return vec![format!("header line does not parse: {e}")],
    };
    if header.schema != AUDIT_SCHEMA {
        out.push(format!(
            "header schema {:?} (expected {AUDIT_SCHEMA:?})",
            header.schema
        ));
    }
    if header.version != AUDIT_VERSION {
        out.push(format!(
            "header version {} (expected {AUDIT_VERSION})",
            header.version
        ));
    }
    let mut decision_lines = 0usize;
    let mut tally: Vec<Decision> = Vec::new();
    let mut prev: Option<Decision> = None;
    for (lineno, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        decision_lines += 1;
        let d: Decision = match serde_json::from_str(line) {
            Ok(d) => d,
            Err(e) => {
                out.push(format!(
                    "line {}: does not parse as a decision: {e}",
                    lineno + 2
                ));
                continue;
            }
        };
        check_decision(&d, lineno + 2, &mut out);
        if let Some(p) = &prev {
            if p.sort_key() > d.sort_key() {
                out.push(format!(
                    "line {}: decisions out of canonical order",
                    lineno + 2
                ));
            }
        }
        prev = Some(d.clone());
        tally.push(d);
    }
    if decision_lines != header.decisions {
        out.push(format!(
            "header declares {} decision(s) but the file holds {decision_lines}",
            header.decisions
        ));
    }
    for (det, cov) in &header.coverage {
        if Detector::parse(det).is_none() {
            out.push(format!("header coverage has unknown detector {det:?}"));
        }
        if !cov.balanced() {
            out.push(format!(
                "coverage for {det:?} does not balance: {} candidates != {} kept + {} dropped",
                cov.candidates,
                cov.kept,
                cov.dropped_total()
            ));
        }
        for reason in cov.dropped.keys() {
            if DropReason::parse(reason).is_none() {
                out.push(format!(
                    "header coverage for {det:?} has unknown drop reason {reason:?}"
                ));
            }
        }
    }
    let retallied = AuditReport::from_decisions(tally);
    for det in Detector::ALL {
        let from_lines = retallied
            .coverage
            .get(det.as_str())
            .cloned()
            .unwrap_or_default();
        let from_header = header
            .coverage
            .get(det.as_str())
            .cloned()
            .unwrap_or_default();
        if from_lines != from_header {
            out.push(format!(
                "header coverage for {:?} disagrees with the decision lines",
                det.as_str()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kc(idx: u64, cert: &str, verdict: Verdict) -> Decision {
        Decision {
            detector: Detector::Kc,
            cert: cert.to_string(),
            verdict,
            provenance: Provenance::CrlEntry {
                crl_index: idx,
                authority_key_id: "aa11".to_string(),
                serial: "0f".to_string(),
                revoked: "2023-04-01".to_string(),
                reason: "keyCompromise".to_string(),
            },
        }
    }

    fn mtd(customer: &str, cert: &str, verdict: Verdict) -> Decision {
        Decision {
            detector: Detector::Mtd,
            cert: cert.to_string(),
            verdict,
            provenance: Provenance::DnsDeparture {
                customer: customer.to_string(),
                last_delegated: "2023-02-03".to_string(),
                departed: "2023-02-04".to_string(),
            },
        }
    }

    #[test]
    fn report_sorts_and_balances() {
        let report = AuditReport::from_decisions(vec![
            mtd("b.com", "ff02", Verdict::Kept),
            kc(3, "ab01", Verdict::Dropped(DropReason::CrlOutlier)),
            kc(1, "", Verdict::Dropped(DropReason::CrlUnmatched)),
            mtd(
                "a.com",
                "ff01",
                Verdict::Dropped(DropReason::OutsideValidityWindow),
            ),
        ]);
        let keys: Vec<_> = report.decisions.iter().map(Decision::sort_key).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(report.decisions[0].sort_key().1, 1);
        for cov in report.coverage.values() {
            assert!(cov.balanced());
        }
        assert_eq!(report.coverage["kc"].candidates, 2);
        assert_eq!(report.coverage["mtd"].kept, 1);
        assert_eq!(report.coverage["rc"].candidates, 0);
    }

    #[test]
    fn jsonl_roundtrips_and_validates() {
        let report = AuditReport::from_decisions(vec![
            kc(0, "ab01", Verdict::Kept),
            kc(1, "", Verdict::Dropped(DropReason::CrlUnmatched)),
            mtd(
                "c.com",
                "ff03",
                Verdict::Dropped(DropReason::OutsideValidityWindow),
            ),
        ]);
        let jsonl = report.to_jsonl();
        assert!(validate_audit_jsonl(&jsonl).is_empty(), "{jsonl}");
        let back = AuditReport::from_jsonl(&jsonl).expect("parses back");
        assert_eq!(back, report);
        // Verdicts and reasons export as kebab-case tags.
        assert!(jsonl.contains("\"crl-unmatched\""));
        assert!(jsonl.contains("\"outside-validity-window\""));
        assert!(jsonl.contains("\"kept\""));
    }

    #[test]
    fn validation_flags_corruption() {
        let report = AuditReport::from_decisions(vec![
            kc(0, "ab01", Verdict::Kept),
            kc(1, "ab02", Verdict::Dropped(DropReason::CrlOutlier)),
        ]);
        let jsonl = report.to_jsonl();
        // Truncated: header claims more decisions than present.
        let truncated: Vec<&str> = jsonl.lines().take(2).collect();
        assert!(!validate_audit_jsonl(&truncated.join("\n")).is_empty());
        // Unknown drop reason.
        let garbled = jsonl.replace("crl-outlier", "crl-banana");
        assert!(!validate_audit_jsonl(&garbled).is_empty());
        // Out-of-order decisions.
        let mut lines: Vec<&str> = jsonl.lines().collect();
        lines.swap(1, 2);
        assert!(!validate_audit_jsonl(&lines.join("\n")).is_empty());
        // Day corruption breaks the shape check.
        let bad_day = jsonl.replace("2023-04-01", "2023-0401x");
        assert!(!validate_audit_jsonl(&bad_day).is_empty());
        // Not an audit at all.
        assert!(!validate_audit_jsonl("{\"certs\": []}").is_empty());
        assert!(!validate_audit_jsonl("").is_empty());
    }

    #[test]
    fn validation_checks_monotone_day_pair_and_identity() {
        let report = AuditReport::from_decisions(vec![mtd("a.com", "ff01", Verdict::Kept)]);
        let jsonl = report.to_jsonl();
        let swapped = jsonl.replace("2023-02-04", "2023-02-02");
        assert!(validate_audit_jsonl(&swapped)
            .iter()
            .any(|m| m.contains("not monotone")));
        // A header whose coverage does not balance is flagged even when
        // the decision lines are dropped with it.
        let unbalanced = "{\"schema\":\"stale-obs-audit\",\"version\":1,\"decisions\":0,\
             \"coverage\":{\"kc\":{\"candidates\":3,\"kept\":1,\"dropped\":{}}}}";
        assert!(validate_audit_jsonl(unbalanced)
            .iter()
            .any(|m| m.contains("does not balance")));
    }

    #[test]
    fn explain_matches_unique_prefixes() {
        let report = AuditReport::from_decisions(vec![
            kc(0, "ab01", Verdict::Kept),
            mtd(
                "a.com",
                "ab01",
                Verdict::Dropped(DropReason::OutsideValidityWindow),
            ),
            kc(1, "ab9f", Verdict::Dropped(DropReason::CrlOutlier)),
        ]);
        let (cert, chain) = report.decisions_for("ab0").expect("unique prefix");
        assert_eq!(cert, "ab01");
        assert_eq!(chain.len(), 2);
        assert!(report.decisions_for("ab").is_err());
        assert!(report.decisions_for("ff").is_err());
        assert!(report.decisions_for("").is_err());
        // An ambiguous prefix lists every candidate so the caller can
        // extend it instead of guessing.
        let err = report.decisions_for("ab").unwrap_err();
        assert!(err.contains("2 matches"), "{err}");
        assert!(err.contains("ab01"), "{err}");
        assert!(err.contains("ab9f"), "{err}");
        assert!(!err.contains("more"), "{err}");
        let rendered = report.render_explain("ab01").expect("renders");
        assert!(rendered.contains("kept"), "{rendered}");
        assert!(rendered.contains("outside-validity-window"), "{rendered}");
        assert!(rendered.contains("crl entry #0"), "{rendered}");
    }

    #[test]
    fn ambiguous_prefix_elides_long_candidate_lists() {
        let decisions: Vec<Decision> = (0..12)
            .map(|i| kc(i, &format!("ab{i:02}"), Verdict::Kept))
            .collect();
        let report = AuditReport::from_decisions(decisions);
        let err = report.decisions_for("ab").unwrap_err();
        assert!(err.contains("12 matches"), "{err}");
        assert!(err.contains("... and 4 more"), "{err}");
    }

    /// A report with prefix collisions, ambiguous prefixes, and an
    /// empty-fingerprint decision — the shapes the explain surfaces
    /// must agree on.
    fn explain_fixture() -> AuditReport {
        AuditReport::from_decisions(vec![
            kc(0, "ab01", Verdict::Kept),
            mtd(
                "a.com",
                "ab01",
                Verdict::Dropped(DropReason::OutsideValidityWindow),
            ),
            kc(1, "ab9f", Verdict::Dropped(DropReason::CrlOutlier)),
            kc(2, "", Verdict::Dropped(DropReason::CrlUnmatched)),
            mtd("b.com", "ff02", Verdict::Kept),
        ])
    }

    #[test]
    fn indexed_explain_is_byte_identical_to_scan() {
        let report = explain_fixture();
        let index = report.fingerprint_index();
        for prefix in ["ab01", "ab0", "ab9", "ff", "ab", "zz", "", "ab01ff"] {
            let scan = report.decisions_for(prefix);
            let fast = report.decisions_for_indexed(&index, prefix);
            match (scan, fast) {
                (Ok((c1, d1)), Ok((c2, d2))) => {
                    assert_eq!(c1, c2, "{prefix}");
                    assert_eq!(d1, d2, "{prefix}");
                }
                (Err(e1), Err(e2)) => assert_eq!(e1, e2, "{prefix}"),
                (a, b) => panic!("{prefix}: scan {a:?} vs indexed {b:?}"),
            }
            match (
                report.render_explain(prefix),
                report.render_explain_indexed(&index, prefix),
            ) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "{prefix}"),
                (Err(a), Err(b)) => assert_eq!(a, b, "{prefix}"),
                (a, b) => panic!("{prefix}: scan {a:?} vs indexed {b:?}"),
            }
        }
        // The empty fingerprint is never indexed.
        assert!(!index.contains_key(""));
    }

    #[test]
    fn explain_index_over_jsonl_is_byte_identical_to_scan() {
        let report = explain_fixture();
        let jsonl = report.to_jsonl();
        let index = ExplainIndex::build(&jsonl).expect("builds");
        assert!(index.matches(&jsonl));
        for prefix in ["ab01", "ab0", "ab9", "ff", "ab", "zz", ""] {
            match (
                report.render_explain(prefix),
                index.render_explain_from(&jsonl, prefix),
            ) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "{prefix}"),
                (Err(a), Err(b)) => assert_eq!(a, b, "{prefix}"),
                (a, b) => panic!("{prefix}: scan {a:?} vs index {b:?}"),
            }
        }
    }

    #[test]
    fn explain_index_sidecar_roundtrips() {
        let report = explain_fixture();
        let jsonl = report.to_jsonl();
        let index = ExplainIndex::build(&jsonl).expect("builds");
        let text = index.to_text();
        let back = ExplainIndex::parse(&text).expect("parses back");
        assert_eq!(back, index);
        // Corrupted sidecars are rejected, never trusted.
        assert!(ExplainIndex::parse("").is_err());
        assert!(ExplainIndex::parse("bogus v1 bytes=3 certs=0\n").is_err());
        assert!(ExplainIndex::parse(&text.replace("certs=3", "certs=9")).is_err());
        let garbled = text.replacen(" 0", " x", 1);
        if garbled != text {
            assert!(ExplainIndex::parse(&garbled).is_err());
        }
    }

    #[test]
    fn explain_index_detects_stale_or_lying_offsets() {
        let report = explain_fixture();
        let jsonl = report.to_jsonl();
        let index = ExplainIndex::build(&jsonl).expect("builds");
        // A store of a different length invalidates the index outright.
        let longer = format!("{jsonl}\n");
        assert!(!index.matches(&longer));
        assert!(index
            .render_explain_from(&longer, "ab01")
            .unwrap_err()
            .contains("stale"));
        // Same length, shuffled lines: the offset points at a decision
        // for a different fingerprint, which is caught at read time.
        let mut lines: Vec<&str> = jsonl.lines().collect();
        lines.swap(2, 5);
        let shuffled = format!("{}\n", lines.join("\n"));
        assert_eq!(shuffled.len(), jsonl.len());
        assert!(index.render_explain_from(&shuffled, "ab9f").is_err());
        // Building over garbage fails instead of indexing nonsense.
        assert!(ExplainIndex::build("").is_err());
        assert!(ExplainIndex::build("{\"certs\": []}").is_err());
    }

    #[test]
    fn coverage_registers_and_renders() {
        let report = AuditReport::from_decisions(vec![
            kc(0, "ab01", Verdict::Kept),
            kc(1, "", Verdict::Dropped(DropReason::CrlUnmatched)),
            kc(
                1,
                "ab02",
                Verdict::Dropped(DropReason::DuplicateFingerprint),
            ),
        ]);
        let registry = crate::Registry::new();
        report.register_coverage(&registry);
        let counters = registry.snapshot().counters;
        assert_eq!(counters["audit.kc.candidates"], 3);
        assert_eq!(counters["audit.kc.kept"], 1);
        assert_eq!(counters["audit.kc.dropped.crl-unmatched"], 1);
        assert_eq!(counters["audit.kc.dropped.duplicate-fingerprint"], 1);
        let rendered = report.render_coverage();
        // Two real CRL entries (the duplicate is an extra cert candidate),
        // one matched.
        assert!(rendered.contains("1/2 entries matched"), "{rendered}");
        assert!(!rendered.contains("UNBALANCED"), "{rendered}");
    }
}
