//! Rolling time-window metrics: a fixed-size ring of labelled
//! [`Histogram`]s.
//!
//! The registry's histograms accumulate forever, which is the right
//! shape for end-of-run exports but useless for "how is ingestion doing
//! *lately*". A [`WindowedHistogram`] keeps the last `cap` windows —
//! one per ingest batch in the daemon — each a full fixed-bucket
//! histogram, so both the per-window distribution and the merged
//! recent distribution ([`WindowedHistogram::merged`]) are available
//! without unbounded memory. Rolling past the capacity evicts the
//! oldest window; nothing here is ever read back by detection code.

use crate::metrics::{Histogram, HistogramSnapshot};
use std::collections::VecDeque;

/// A ring of labelled histograms: the newest window receives
/// observations, the oldest falls off once `cap` is exceeded.
pub struct WindowedHistogram {
    cap: usize,
    make: fn() -> Histogram,
    ring: VecDeque<(String, Histogram)>,
}

impl WindowedHistogram {
    /// A ring of up to `cap` wall-time windows (latency bound ladder).
    pub fn latency_us(cap: usize) -> WindowedHistogram {
        WindowedHistogram {
            cap: cap.max(1),
            make: Histogram::latency_us,
            ring: VecDeque::new(),
        }
    }

    /// A ring of up to `cap` depth/size windows (depth bound ladder).
    pub fn depth(cap: usize) -> WindowedHistogram {
        WindowedHistogram {
            cap: cap.max(1),
            make: Histogram::depth,
            ring: VecDeque::new(),
        }
    }

    /// Start a new window labelled `label`, evicting the oldest window
    /// once the ring is full.
    pub fn roll(&mut self, label: &str) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back((label.to_string(), (self.make)()));
    }

    /// Record one observation into the newest window. Observing before
    /// any [`roll`](WindowedHistogram::roll) opens an unlabelled window
    /// rather than dropping the value.
    pub fn observe(&mut self, value: u64) {
        if self.ring.is_empty() {
            self.roll("");
        }
        if let Some((_, hist)) = self.ring.back_mut() {
            hist.observe(value);
        }
    }

    /// Windows currently held, oldest first.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no window has been opened yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Ring capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Snapshot every held window, oldest first.
    pub fn windows(&self) -> Vec<(String, HistogramSnapshot)> {
        self.ring
            .iter()
            .map(|(label, hist)| (label.clone(), hist.snapshot()))
            .collect()
    }

    /// One histogram folded over every held window (the "recent"
    /// distribution). Empty-ladder default when no window exists.
    pub fn merged(&self) -> HistogramSnapshot {
        let mut merged = (self.make)();
        for (_, hist) in &self.ring {
            merged.merge_from(hist);
        }
        merged.snapshot()
    }

    /// Human-readable rendering: one row per window plus the merged
    /// summary line.
    pub fn render(&self, name: &str) -> String {
        let mut out = format!(
            "rolling window {name}: {} of {} window(s)\n",
            self.ring.len(),
            self.cap
        );
        if self.ring.is_empty() {
            out.push_str("  (no windows yet)\n");
            return out;
        }
        out.push_str(&format!(
            "  {:<14} {:>7} {:>10} {:>10} {:>10} {:>10}\n",
            "window", "count", "p50", "p90", "p99", "max"
        ));
        for (label, snap) in self.windows() {
            let label = if label.is_empty() {
                "(unlabelled)"
            } else {
                label.as_str()
            };
            out.push_str(&format!(
                "  {:<14} {:>7} {:>10} {:>10} {:>10} {:>10}\n",
                label, snap.count, snap.p50, snap.p90, snap.p99, snap.max
            ));
        }
        let m = self.merged();
        out.push_str(&format!(
            "  merged: count {} p50 {} p90 {} p99 {} max {}\n",
            m.count, m.p50, m.p90, m.p99, m.max
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_past_capacity() {
        let mut w = WindowedHistogram::latency_us(3);
        for day in ["d1", "d2", "d3", "d4"] {
            w.roll(day);
            w.observe(100);
        }
        assert_eq!(w.len(), 3);
        let labels: Vec<String> = w.windows().into_iter().map(|(l, _)| l).collect();
        assert_eq!(labels, ["d2", "d3", "d4"]);
        assert_eq!(w.merged().count, 3, "evicted window left the merge");
    }

    #[test]
    fn observe_without_roll_opens_a_window() {
        let mut w = WindowedHistogram::depth(4);
        w.observe(7);
        assert_eq!(w.len(), 1);
        assert_eq!(w.merged().count, 1);
        assert_eq!(w.merged().max, 7);
    }

    #[test]
    fn merged_spans_all_windows() {
        let mut w = WindowedHistogram::latency_us(8);
        w.roll("a");
        w.observe(10);
        w.observe(50);
        w.roll("b");
        w.observe(900_000);
        let m = w.merged();
        assert_eq!(m.count, 3);
        assert_eq!(m.min, 10);
        assert_eq!(m.max, 900_000);
        assert!(
            m.validate("merged").is_empty(),
            "{:?}",
            m.validate("merged")
        );
    }

    #[test]
    fn render_lists_windows_and_merge() {
        let mut w = WindowedHistogram::latency_us(2);
        let text = w.render("served.ingest.batch_wall_us");
        assert!(text.contains("no windows yet"));
        w.roll("2022-01-05");
        w.observe(1_234);
        let text = w.render("served.ingest.batch_wall_us");
        assert!(text.contains("2022-01-05"));
        assert!(text.contains("merged: count 1"));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut w = WindowedHistogram::depth(0);
        assert_eq!(w.cap(), 1);
        w.roll("x");
        w.roll("y");
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
    }
}
