//! Civil calendar dates at day granularity.
//!
//! All datasets in the paper are day-resolution (daily CRL downloads, daily
//! DNS scans, WHOIS creation *dates*, certificate validity dates truncated
//! to days). [`Date`] stores days since the Unix epoch (1970-01-01) and
//! converts to/from proleptic Gregorian `(year, month, day)` using the
//! classic Howard Hinnant `days_from_civil` / `civil_from_days` algorithms,
//! which are exact over the entire `i64` range we use.

// Date arithmetic: narrowing casts here corrupt every downstream
// interval, so this module opts in to the cast rule.
// stale-lint: scope(lossy-time-cast)

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A signed span of whole days.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Duration(pub i64);

impl Duration {
    /// A span of `n` days.
    pub const fn days(n: i64) -> Self {
        Duration(n)
    }

    /// Number of days in the span (may be negative).
    pub const fn num_days(self) -> i64 {
        self.0
    }

    /// Absolute value of the span.
    pub const fn abs(self) -> Self {
        Duration(self.0.abs())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}d", self.0)
    }
}

/// A calendar month, 1-based like ISO 8601.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Month(pub u8);

impl Month {
    /// Number of days in this month of `year`.
    pub fn len(self, year: i32) -> u8 {
        match self.0 {
            1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
            4 | 6 | 9 | 11 => 30,
            2 => {
                if is_leap_year(year) {
                    29
                } else {
                    28
                }
            }
            _ => unreachable!("Month is validated on construction"),
        }
    }
}

/// Whether `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// A `(year, month)` pair used for monthly bucketing of detections
/// (Figures 4, 5a, 5b all report monthly series).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct YearMonth {
    /// Gregorian year.
    pub year: i32,
    /// 1-based month.
    pub month: u8,
}

impl YearMonth {
    /// Construct, validating the month.
    pub fn new(year: i32, month: u8) -> Result<Self> {
        if !(1..=12).contains(&month) {
            return Err(Error::InvalidDate(format!("month {month} out of range")));
        }
        Ok(YearMonth { year, month })
    }

    /// The month immediately after this one.
    pub fn next(self) -> Self {
        if self.month == 12 {
            YearMonth {
                year: self.year + 1,
                month: 1,
            }
        } else {
            YearMonth {
                year: self.year,
                month: self.month + 1,
            }
        }
    }

    /// First day of the month.
    pub fn first_day(self) -> Date {
        Date::from_ymd(self.year, self.month, 1).expect("validated month")
    }

    /// Number of months between `self` and `other` (`other - self`).
    pub fn months_until(self, other: YearMonth) -> i32 {
        (other.year - self.year) * 12 + (i32::from(other.month) - i32::from(self.month))
    }
}

impl fmt::Display for YearMonth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}", self.year, self.month)
    }
}

/// A civil calendar date stored as days since 1970-01-01.
///
/// `Ord` follows chronological order. Arithmetic with [`Duration`] is exact
/// day arithmetic; there are no time zones or leap seconds at this
/// granularity.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Date(i64);

impl Date {
    /// The Unix epoch, 1970-01-01.
    pub const EPOCH: Date = Date(0);

    /// Build from days since the Unix epoch.
    pub const fn from_days(days: i64) -> Self {
        Date(days)
    }

    /// Days since the Unix epoch.
    pub const fn days_since_epoch(self) -> i64 {
        self.0
    }

    /// Build from a Gregorian `(year, month, day)` triple.
    pub fn from_ymd(year: i32, month: u8, day: u8) -> Result<Self> {
        if !(1..=12).contains(&month) {
            return Err(Error::InvalidDate(format!(
                "{year:04}-{month:02}-{day:02}: bad month"
            )));
        }
        let max_day = Month(month).len(year);
        if day == 0 || day > max_day {
            return Err(Error::InvalidDate(format!(
                "{year:04}-{month:02}-{day:02}: bad day"
            )));
        }
        Ok(Date(days_from_civil(year, month as i64, day as i64)))
    }

    /// Decompose into `(year, month, day)`.
    pub fn ymd(self) -> (i32, u8, u8) {
        civil_from_days(self.0)
    }

    /// Gregorian year.
    pub fn year(self) -> i32 {
        self.ymd().0
    }

    /// 1-based month.
    pub fn month(self) -> u8 {
        self.ymd().1
    }

    /// 1-based day of month.
    pub fn day(self) -> u8 {
        self.ymd().2
    }

    /// The `(year, month)` bucket containing this date.
    pub fn year_month(self) -> YearMonth {
        let (y, m, _) = self.ymd();
        YearMonth { year: y, month: m }
    }

    /// Parse an ISO-8601 `YYYY-MM-DD` string.
    pub fn parse(s: &str) -> Result<Self> {
        let bad = || Error::InvalidDate(s.to_string());
        let mut parts = s.splitn(3, '-');
        let y: i32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let m: u8 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let d: u8 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        Date::from_ymd(y, m, d)
    }

    /// The day after this one.
    pub fn succ(self) -> Date {
        Date(self.0 + 1)
    }

    /// The day before this one.
    pub fn pred(self) -> Date {
        Date(self.0 - 1)
    }

    /// Chronologically smaller of two dates.
    pub fn min(self, other: Date) -> Date {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Chronologically larger of two dates.
    pub fn max(self, other: Date) -> Date {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Iterate every date in `[self, end)`.
    pub fn iter_until(self, end: Date) -> impl Iterator<Item = Date> {
        (self.0..end.0).map(Date)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

impl Add<Duration> for Date {
    type Output = Date;
    fn add(self, rhs: Duration) -> Date {
        Date(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Date {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Date {
    type Output = Date;
    fn sub(self, rhs: Duration) -> Date {
        Date(self.0 - rhs.0)
    }
}

impl SubAssign<Duration> for Date {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Sub<Date> for Date {
    type Output = Duration;
    fn sub(self, rhs: Date) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

/// Hinnant `days_from_civil`: days since 1970-01-01 for a Gregorian date.
fn days_from_civil(y: i32, m: i64, d: i64) -> i64 {
    let y = y as i64 - if m <= 2 { 1 } else { 0 };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m + 9) % 12; // March = 0
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Hinnant `civil_from_days`: Gregorian date for days since 1970-01-01.
fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    let y = if m <= 2 { y + 1 } else { y };
    let year = i32::try_from(y).unwrap_or(if y < 0 { i32::MIN } else { i32::MAX });
    // m ∈ [1, 12] and d ∈ [1, 31] by the bracketed bounds above — these
    // casts cannot truncate.
    (year, m as u8, d as u8) // stale-lint: allow(lossy-time-cast)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_roundtrip() {
        assert_eq!(Date::EPOCH.ymd(), (1970, 1, 1));
        assert_eq!(Date::from_ymd(1970, 1, 1).unwrap(), Date::EPOCH);
    }

    #[test]
    fn known_dates() {
        // Values checked against `date -d @... -u`.
        assert_eq!(
            Date::from_ymd(2020, 9, 1).unwrap().days_since_epoch(),
            18506
        );
        assert_eq!(
            Date::from_ymd(2023, 5, 12).unwrap().days_since_epoch(),
            19489
        );
        assert_eq!(
            Date::from_ymd(2000, 2, 29).unwrap().days_since_epoch(),
            11016
        );
    }

    #[test]
    fn leap_years() {
        assert!(is_leap_year(2000));
        assert!(is_leap_year(2020));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(2023));
        assert!(Date::from_ymd(2023, 2, 29).is_err());
        assert!(Date::from_ymd(2024, 2, 29).is_ok());
    }

    #[test]
    fn invalid_dates_rejected() {
        assert!(Date::from_ymd(2020, 0, 1).is_err());
        assert!(Date::from_ymd(2020, 13, 1).is_err());
        assert!(Date::from_ymd(2020, 4, 31).is_err());
        assert!(Date::from_ymd(2020, 1, 0).is_err());
    }

    #[test]
    fn parse_and_display() {
        let d = Date::parse("2021-11-17").unwrap();
        assert_eq!(d.ymd(), (2021, 11, 17));
        assert_eq!(d.to_string(), "2021-11-17");
        assert!(Date::parse("2021-11").is_err());
        assert!(Date::parse("not-a-date").is_err());
        assert!(Date::parse("2021-02-30").is_err());
    }

    #[test]
    fn arithmetic() {
        let a = Date::parse("2020-02-28").unwrap();
        assert_eq!((a + Duration::days(1)).to_string(), "2020-02-29");
        assert_eq!((a + Duration::days(2)).to_string(), "2020-03-01");
        let b = Date::parse("2021-02-28").unwrap();
        assert_eq!((b - a).num_days(), 366);
        let mut c = a;
        c += Duration::days(398);
        assert_eq!(c - a, Duration::days(398));
        c -= Duration::days(398);
        assert_eq!(c, a);
    }

    #[test]
    fn year_month_bucketing() {
        let d = Date::parse("2018-11-30").unwrap();
        assert_eq!(
            d.year_month(),
            YearMonth {
                year: 2018,
                month: 11
            }
        );
        assert_eq!(
            d.year_month().next(),
            YearMonth {
                year: 2018,
                month: 12
            }
        );
        assert_eq!(
            d.year_month().next().next(),
            YearMonth {
                year: 2019,
                month: 1
            }
        );
        assert_eq!(
            YearMonth::new(2018, 1)
                .unwrap()
                .months_until(YearMonth::new(2019, 3).unwrap()),
            14
        );
        assert!(YearMonth::new(2018, 13).is_err());
    }

    #[test]
    fn iter_until_covers_range() {
        let a = Date::parse("2022-12-30").unwrap();
        let b = Date::parse("2023-01-02").unwrap();
        let days: Vec<String> = a.iter_until(b).map(|d| d.to_string()).collect();
        assert_eq!(days, ["2022-12-30", "2022-12-31", "2023-01-01"]);
    }

    #[test]
    fn roundtrip_sweep() {
        // Every day over the paper's measurement window survives a roundtrip.
        let start = Date::parse("2013-01-01").unwrap();
        let end = Date::parse("2024-01-01").unwrap();
        for d in start.iter_until(end) {
            let (y, m, dd) = d.ymd();
            assert_eq!(Date::from_ymd(y, m, dd).unwrap(), d);
        }
    }
}
