//! Half-open day intervals.
//!
//! Certificate validity windows, CDN delegation spans and registration
//! tenures are all `[start, end)` intervals over [`Date`]. The staleness
//! computations of §5 reduce to intersections of these intervals.

// Date arithmetic: narrowing casts here corrupt every downstream
// interval, so this module opts in to the cast rule.
// stale-lint: scope(lossy-time-cast)

use crate::error::{Error, Result};
use crate::time::{Date, Duration};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open interval of days `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DateInterval {
    /// Inclusive start.
    pub start: Date,
    /// Exclusive end.
    pub end: Date,
}

impl DateInterval {
    /// Construct, rejecting `end < start`. `end == start` is the empty
    /// interval.
    pub fn new(start: Date, end: Date) -> Result<Self> {
        if end < start {
            return Err(Error::InvalidInterval {
                start: start.days_since_epoch(),
                end: end.days_since_epoch(),
            });
        }
        Ok(DateInterval { start, end })
    }

    /// Interval of `len` days starting at `start`.
    pub fn from_start(start: Date, len: Duration) -> Result<Self> {
        DateInterval::new(start, start + len)
    }

    /// Length in days.
    pub fn len(&self) -> Duration {
        self.end - self.start
    }

    /// Whether the interval contains no days.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `date` falls within `[start, end)`.
    pub fn contains(&self, date: Date) -> bool {
        self.start <= date && date < self.end
    }

    /// Intersection with another interval, `None` if disjoint or empty.
    pub fn intersect(&self, other: &DateInterval) -> Option<DateInterval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(DateInterval { start, end })
        } else {
            None
        }
    }

    /// Whether the two intervals share at least one day.
    pub fn overlaps(&self, other: &DateInterval) -> bool {
        self.intersect(other).is_some()
    }

    /// The suffix of the interval starting at `from` (clamped), i.e. the
    /// staleness window of a certificate invalidated at `from`.
    pub fn suffix_from(&self, from: Date) -> DateInterval {
        let start = from.max(self.start).min(self.end);
        DateInterval {
            start,
            end: self.end,
        }
    }

    /// Truncate the interval so its length is at most `max_len`.
    ///
    /// This is the §6 lifetime-capping operation: "take all stale
    /// certificates with lifetime greater than n and decrease their
    /// certificate expiration date to achieve a total lifetime of n".
    pub fn cap_len(&self, max_len: Duration) -> DateInterval {
        if self.len() <= max_len {
            *self
        } else {
            DateInterval {
                start: self.start,
                end: self.start + max_len,
            }
        }
    }

    /// Iterate all days in the interval.
    pub fn days(&self) -> impl Iterator<Item = Date> {
        self.start.iter_until(self.end)
    }
}

impl fmt::Display for DateInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: &str, b: &str) -> DateInterval {
        DateInterval::new(Date::parse(a).unwrap(), Date::parse(b).unwrap()).unwrap()
    }

    #[test]
    fn construction() {
        assert!(DateInterval::new(Date::from_days(5), Date::from_days(4)).is_err());
        let empty = DateInterval::new(Date::from_days(5), Date::from_days(5)).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.len(), Duration::days(0));
    }

    #[test]
    fn contains_is_half_open() {
        let v = iv("2022-01-01", "2022-04-01");
        assert!(v.contains(Date::parse("2022-01-01").unwrap()));
        assert!(v.contains(Date::parse("2022-03-31").unwrap()));
        assert!(!v.contains(Date::parse("2022-04-01").unwrap()));
        assert!(!v.contains(Date::parse("2021-12-31").unwrap()));
    }

    #[test]
    fn intersection() {
        let a = iv("2022-01-01", "2022-06-01");
        let b = iv("2022-03-01", "2022-09-01");
        let c = a.intersect(&b).unwrap();
        assert_eq!(c, iv("2022-03-01", "2022-06-01"));
        assert!(a.overlaps(&b));
        let d = iv("2023-01-01", "2023-02-01");
        assert!(a.intersect(&d).is_none());
        // Touching intervals do not overlap (half-open).
        let e = iv("2022-06-01", "2022-07-01");
        assert!(!a.overlaps(&e));
    }

    #[test]
    fn suffix_from_clamps() {
        let v = iv("2022-01-01", "2022-12-31");
        let mid = Date::parse("2022-06-15").unwrap();
        assert_eq!(v.suffix_from(mid), iv("2022-06-15", "2022-12-31"));
        // Before the interval: whole interval is stale.
        assert_eq!(v.suffix_from(Date::parse("2021-01-01").unwrap()), v);
        // After the interval: empty staleness.
        assert!(v.suffix_from(Date::parse("2023-06-01").unwrap()).is_empty());
    }

    #[test]
    fn cap_len_truncates_only_long_intervals() {
        let v = iv("2022-01-01", "2023-02-03"); // 398 days
        assert_eq!(v.len(), Duration::days(398));
        let capped = v.cap_len(Duration::days(90));
        assert_eq!(capped.len(), Duration::days(90));
        assert_eq!(capped.start, v.start);
        // Short intervals are untouched.
        let short = iv("2022-01-01", "2022-02-01");
        assert_eq!(short.cap_len(Duration::days(90)), short);
    }

    #[test]
    fn days_iterates_exactly_len() {
        let v = iv("2022-01-01", "2022-01-05");
        assert_eq!(v.days().count() as i64, v.len().num_days());
    }
}
