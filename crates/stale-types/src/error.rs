//! Workspace-wide error type.
//!
//! Substrate crates define their own error enums where the failure surface
//! is richer (DER parsing, DNS resolution); this type covers the shared
//! validation failures of the foundation types.

use std::fmt;

/// Errors produced by the foundation types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A domain name failed syntactic validation.
    InvalidDomain {
        /// The offending input.
        input: String,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// A date string or component was out of range.
    InvalidDate(String),
    /// An interval had `end < start`.
    InvalidInterval {
        /// Interval start, days since epoch.
        start: i64,
        /// Interval end, days since epoch.
        end: i64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidDomain { input, reason } => {
                write!(f, "invalid domain name {input:?}: {reason}")
            }
            Error::InvalidDate(s) => write!(f, "invalid date: {s}"),
            Error::InvalidInterval { start, end } => {
                write!(f, "invalid interval: end ({end}) precedes start ({start})")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;
