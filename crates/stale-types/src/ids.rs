//! Opaque identifiers used across the ecosystem simulation.
//!
//! Certificates are identified three ways in the paper's pipeline:
//! by CT-log dedup identity ([`CertId`], a hash over non-CT components),
//! by `(issuer key, serial)` as found in CRLs ([`KeyId`], [`SerialNumber`]),
//! and by the subscriber key they certify ([`KeyId`] again — key identity is
//! what "key compromise" and "managed TLS departure" are about).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! hex_id {
    ($(#[$doc:meta])* $name:ident, $len:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        pub struct $name(pub [u8; $len]);

        impl $name {
            /// Construct from raw bytes.
            pub const fn from_bytes(b: [u8; $len]) -> Self {
                Self(b)
            }

            /// The raw bytes.
            pub const fn as_bytes(&self) -> &[u8; $len] {
                &self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "("))?;
                for b in &self.0[..4.min($len)] {
                    write!(f, "{b:02x}")?;
                }
                write!(f, "…)")
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                for b in &self.0 {
                    write!(f, "{b:02x}")?;
                }
                Ok(())
            }
        }
    };
}

hex_id!(
    /// Identity of a cryptographic keypair (hash of the public key).
    ///
    /// Matches the X.509 Subject/Authority Key Identifier role.
    KeyId,
    20
);

hex_id!(
    /// Dedup identity of a certificate: hash over its non-CT components,
    /// so a precertificate and its final certificate collapse to one entry
    /// (§4: "deduplicate precertificates and issued certificates based on
    /// their non-CT components").
    CertId,
    32
);

/// A certificate serial number as assigned by the issuing CA.
///
/// CRLs identify revoked certificates by `(authority key id, serial)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SerialNumber(pub u128);

impl fmt::Display for SerialNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Identifier of a certificate authority (issuing entity, not a single key:
/// a CA may roll intermediates, each with its own [`KeyId`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CaId(pub u32);

/// Identifier of a registrant / subscriber account in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct AccountId(pub u64);

impl fmt::Display for CaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ca{}", self.0)
    }
}

impl fmt::Display for AccountId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "acct{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_debug() {
        let k = KeyId::from_bytes([0xab; 20]);
        assert_eq!(k.to_string(), "ab".repeat(20));
        assert!(format!("{k:?}").starts_with("KeyId(abababab"));
        let s = SerialNumber(0x1234);
        assert_eq!(s.to_string().len(), 32);
        assert!(s.to_string().ends_with("1234"));
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let mut set = BTreeSet::new();
        set.insert(CertId::from_bytes([1; 32]));
        set.insert(CertId::from_bytes([2; 32]));
        set.insert(CertId::from_bytes([1; 32]));
        assert_eq!(set.len(), 2);
    }
}
