//! Validated DNS domain names.
//!
//! Names are stored lower-cased without a trailing dot. Validation follows
//! the LDH (letters-digits-hyphen) rule plus the underscore prefix labels
//! seen in ACME (`_acme-challenge`) and a leading wildcard label, since
//! both occur throughout the certificate corpus.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A validated, normalised (lower-case, no trailing dot) DNS name.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct DomainName(String);

impl DomainName {
    /// Parse and normalise a domain name.
    pub fn parse(input: &str) -> Result<Self> {
        let trimmed = input.strip_suffix('.').unwrap_or(input);
        if trimmed.is_empty() {
            return Err(Error::InvalidDomain {
                input: input.into(),
                reason: "empty name",
            });
        }
        if trimmed.len() > 253 {
            return Err(Error::InvalidDomain {
                input: input.into(),
                reason: "name too long",
            });
        }
        let lower = trimmed.to_ascii_lowercase();
        for (i, label) in lower.split('.').enumerate() {
            validate_label(label, i == 0).map_err(|reason| Error::InvalidDomain {
                input: input.into(),
                reason,
            })?;
        }
        Ok(DomainName(lower))
    }

    /// The normalised name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Labels from leftmost to rightmost.
    pub fn labels(&self) -> impl DoubleEndedIterator<Item = &str> {
        self.0.split('.')
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.0.split('.').count()
    }

    /// Whether the leftmost label is `*`.
    pub fn is_wildcard(&self) -> bool {
        self.0.starts_with("*.")
    }

    /// The name with the leftmost label removed, if more than one remains.
    pub fn parent(&self) -> Option<DomainName> {
        self.0
            .split_once('.')
            .map(|(_, rest)| DomainName(rest.to_string()))
    }

    /// Whether `self` equals `ancestor` or is a subdomain of it.
    pub fn is_subdomain_of(&self, ancestor: &DomainName) -> bool {
        self == ancestor
            || (self.0.len() > ancestor.0.len()
                && self.0.ends_with(&ancestor.0)
                && self.0.as_bytes()[self.0.len() - ancestor.0.len() - 1] == b'.')
    }

    /// Whether a concrete name matches this (possibly wildcard) pattern,
    /// using TLS wildcard semantics: `*` matches exactly one leftmost label.
    pub fn matches(&self, name: &DomainName) -> bool {
        if !self.is_wildcard() {
            return self == name;
        }
        let suffix = &self.0[2..];
        match name.0.split_once('.') {
            Some((first, rest)) => rest == suffix && first != "*",
            None => false,
        }
    }

    /// Prefix the name with a new leftmost label.
    pub fn prepend(&self, label: &str) -> Result<DomainName> {
        DomainName::parse(&format!("{label}.{}", self.0))
    }
}

fn validate_label(label: &str, leftmost: bool) -> std::result::Result<(), &'static str> {
    if label.is_empty() {
        return Err("empty label");
    }
    if label.len() > 63 {
        return Err("label longer than 63 octets");
    }
    if leftmost && label == "*" {
        return Ok(()); // wildcard label
    }
    let bytes = label.as_bytes();
    // Underscore-prefixed service labels (e.g. _acme-challenge) are accepted.
    let body = if bytes[0] == b'_' { &bytes[1..] } else { bytes };
    if body.is_empty() {
        return Err("label is a bare underscore");
    }
    if body[0] == b'-' || body[body.len() - 1] == b'-' {
        return Err("label starts or ends with hyphen");
    }
    if !body.iter().all(|b| b.is_ascii_alphanumeric() || *b == b'-') {
        return Err("label contains non-LDH character");
    }
    Ok(())
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::str::FromStr for DomainName {
    type Err = Error;
    fn from_str(s: &str) -> Result<Self> {
        DomainName::parse(s)
    }
}

impl AsRef<str> for DomainName {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// Parse a domain name, panicking on invalid input.
///
/// Intended for literals in tests and simulator presets.
pub fn dn(s: &str) -> DomainName {
    DomainName::parse(s).expect("valid domain literal")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation() {
        assert_eq!(DomainName::parse("FOO.Com.").unwrap().as_str(), "foo.com");
        assert_eq!(
            DomainName::parse("foo.com").unwrap(),
            DomainName::parse("FOO.COM").unwrap()
        );
    }

    #[test]
    fn rejects_bad_names() {
        for bad in [
            "", ".", "foo..com", "-foo.com", "foo-.com", "f*o.com", "foo.c om", "a.*.com",
        ] {
            assert!(
                DomainName::parse(bad).is_err(),
                "{bad:?} should be rejected"
            );
        }
        let long_label = format!("{}.com", "a".repeat(64));
        assert!(DomainName::parse(&long_label).is_err());
        let long_name = format!("{}.com", vec!["abcdefgh"; 40].join("."));
        assert!(DomainName::parse(&long_name).is_err());
    }

    #[test]
    fn accepts_service_and_wildcard_labels() {
        assert!(DomainName::parse("_acme-challenge.foo.com").is_ok());
        let w = DomainName::parse("*.foo.com").unwrap();
        assert!(w.is_wildcard());
        assert!(!dn("foo.com").is_wildcard());
    }

    #[test]
    fn hierarchy() {
        let name = dn("a.b.foo.com");
        assert_eq!(name.label_count(), 4);
        assert_eq!(name.parent().unwrap(), dn("b.foo.com"));
        assert!(name.is_subdomain_of(&dn("foo.com")));
        assert!(name.is_subdomain_of(&dn("a.b.foo.com")));
        assert!(!name.is_subdomain_of(&dn("b.com")));
        // "oo.com" is a string suffix of "foo.com" but not a parent domain.
        assert!(!dn("foo.com").is_subdomain_of(&dn("oo.com")));
        assert!(dn("com").parent().is_none());
    }

    #[test]
    fn wildcard_matching() {
        let w = dn("*.foo.com");
        assert!(w.matches(&dn("bar.foo.com")));
        assert!(
            !w.matches(&dn("foo.com")),
            "wildcard does not match the bare parent"
        );
        assert!(
            !w.matches(&dn("a.b.foo.com")),
            "wildcard matches exactly one label"
        );
        assert!(dn("foo.com").matches(&dn("foo.com")));
        assert!(!dn("foo.com").matches(&dn("bar.com")));
    }

    #[test]
    fn prepend_builds_child() {
        assert_eq!(dn("foo.com").prepend("www").unwrap(), dn("www.foo.com"));
        assert!(dn("foo.com").prepend("bad label").is_err());
    }
}
