//! Foundation types shared by every crate in the `stale-tls` workspace.
//!
//! The paper operates at *day* granularity over a 2013–2023 window: WHOIS
//! creation dates, certificate `notBefore`/`notAfter` dates, daily DNS scans
//! and daily CRL downloads. [`Date`] is therefore a civil calendar date
//! (days since the Unix epoch) with exact Gregorian conversion, and
//! [`DateInterval`] is the half-open day interval used for certificate
//! validity windows and DNS delegation spans.
//!
//! [`DomainName`] is a validated, lower-cased DNS name; effective-TLD logic
//! lives in the `psl` crate which builds on it.

pub mod domain;
pub mod error;
pub mod ids;
pub mod interval;
pub mod time;

pub use domain::DomainName;
pub use error::{Error, Result};
pub use ids::{AccountId, CaId, CertId, KeyId, SerialNumber};
pub use interval::DateInterval;
pub use time::{Date, Duration, Month, YearMonth};
