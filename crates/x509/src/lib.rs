//! Minimal X.509-shaped certificate library.
//!
//! Implements the certificate machinery the measurement pipeline needs:
//!
//! * [`der`] — a from-scratch DER-style TLV encoder/decoder (definite
//!   lengths, nested constructed values) used for certificates and CRLs;
//! * [`cert`] — `TBSCertificate`/`Certificate` with the extensions the
//!   paper's taxonomy covers (Table 1): SAN, BasicConstraints, KeyUsage,
//!   EKU, SKI/AKI, CRL distribution points, certificate policies, SCT list
//!   and the precertificate poison;
//! * [`builder`] — ergonomic construction + signing;
//! * [`validate`] — hostname matching (TLS wildcard rules), validity-window
//!   and signature/chain checks;
//! * [`revocation`] — RFC 5280 CRLs: reason codes, entries, signed lists.
//!
//! Certificates carry real (simulated-PKI) signatures from the `crypto`
//! crate and hash to stable [`stale_types::CertId`]s over their *non-CT
//! components*, which is exactly the dedup key the paper uses to collapse
//! precertificates with their final certificates.

pub mod builder;
pub mod cert;
pub mod der;
pub mod pem;
pub mod revocation;
pub mod validate;

pub use builder::CertificateBuilder;
pub use cert::{
    Certificate, EkuPurpose, Extension, KeyUsage, Name, SignedCertificateTimestamp, TbsCertificate,
    Version,
};
pub use revocation::{Crl, CrlEntry, RevocationReason};
pub use validate::{validate_chain, ValidationError};
