//! Fluent certificate construction and signing.

use crate::cert::{
    Certificate, EkuPurpose, Extension, KeyUsage, Name, SignedCertificateTimestamp, TbsCertificate,
    Version,
};
use crypto::{KeyPair, PublicKey, SimSig};
use stale_types::{Date, DateInterval, DomainName, Duration, KeyId, SerialNumber};

/// Builder for leaf and CA certificates.
///
/// ```
/// use stale_x509::CertificateBuilder;
/// use stale_types::{Date, Duration, domain::dn};
/// use crypto::KeyPair;
///
/// let ca_key = KeyPair::from_seed([1; 32]);
/// let leaf_key = KeyPair::from_seed([2; 32]);
/// let cert = CertificateBuilder::tls_leaf(leaf_key.public())
///     .serial(7)
///     .issuer_cn("Example CA")
///     .subject_cn("foo.com")
///     .san(dn("foo.com"))
///     .validity_days(Date::parse("2022-01-01").unwrap(), Duration::days(90))
///     .sign(&ca_key);
/// assert_eq!(cert.tbs.lifetime(), Duration::days(90));
/// ```
#[derive(Debug, Clone)]
pub struct CertificateBuilder {
    serial: SerialNumber,
    issuer: Name,
    subject: Name,
    validity: Option<DateInterval>,
    public_key: PublicKey,
    sans: Vec<DomainName>,
    is_ca: bool,
    path_len: Option<u8>,
    key_usage: KeyUsage,
    eku: Vec<EkuPurpose>,
    crl_url: Option<String>,
    ocsp_url: Option<String>,
    policies: Vec<String>,
    precert: bool,
    must_staple: bool,
    scts: Vec<SignedCertificateTimestamp>,
}

impl CertificateBuilder {
    /// Start a TLS server leaf profile for `public_key`.
    pub fn tls_leaf(public_key: PublicKey) -> Self {
        CertificateBuilder {
            serial: SerialNumber(0),
            issuer: Name::cn("unset issuer"),
            subject: Name::cn("unset subject"),
            validity: None,
            public_key,
            sans: Vec::new(),
            is_ca: false,
            path_len: None,
            key_usage: KeyUsage::tls_leaf(),
            eku: vec![EkuPurpose::ServerAuth],
            crl_url: None,
            ocsp_url: None,
            policies: vec!["2.23.140.1.2.1".into()], // CA/B DV policy
            precert: false,
            must_staple: false,
            scts: Vec::new(),
        }
    }

    /// Start a CA certificate profile for `public_key`.
    pub fn ca(public_key: PublicKey) -> Self {
        CertificateBuilder {
            serial: SerialNumber(0),
            issuer: Name::cn("unset issuer"),
            subject: Name::cn("unset subject"),
            validity: None,
            public_key,
            sans: Vec::new(),
            is_ca: true,
            path_len: Some(0),
            key_usage: KeyUsage::ca(),
            eku: Vec::new(),
            crl_url: None,
            ocsp_url: None,
            policies: Vec::new(),
            precert: false,
            must_staple: false,
            scts: Vec::new(),
        }
    }

    /// Set the serial number.
    pub fn serial(mut self, serial: u128) -> Self {
        self.serial = SerialNumber(serial);
        self
    }

    /// Set the issuer name by common name.
    pub fn issuer_cn(mut self, cn: impl Into<String>) -> Self {
        self.issuer = Name::cn(cn);
        self
    }

    /// Set the full issuer name.
    pub fn issuer(mut self, name: Name) -> Self {
        self.issuer = name;
        self
    }

    /// Set the subject name by common name.
    pub fn subject_cn(mut self, cn: impl Into<String>) -> Self {
        self.subject = Name::cn(cn);
        self
    }

    /// Set the full subject name.
    pub fn subject(mut self, name: Name) -> Self {
        self.subject = name;
        self
    }

    /// Add one SAN.
    pub fn san(mut self, name: DomainName) -> Self {
        self.sans.push(name);
        self
    }

    /// Add many SANs.
    pub fn sans(mut self, names: impl IntoIterator<Item = DomainName>) -> Self {
        self.sans.extend(names);
        self
    }

    /// Set validity from a start date and a lifetime.
    pub fn validity_days(mut self, not_before: Date, lifetime: Duration) -> Self {
        self.validity =
            Some(DateInterval::from_start(not_before, lifetime).expect("non-negative lifetime"));
        self
    }

    /// Set validity from an interval.
    pub fn validity(mut self, interval: DateInterval) -> Self {
        self.validity = Some(interval);
        self
    }

    /// Set a path length constraint (CA profiles).
    pub fn path_len(mut self, n: u8) -> Self {
        self.path_len = Some(n);
        self
    }

    /// Override key usage.
    pub fn key_usage(mut self, ku: KeyUsage) -> Self {
        self.key_usage = ku;
        self
    }

    /// Override extended key usage.
    pub fn eku(mut self, purposes: Vec<EkuPurpose>) -> Self {
        self.eku = purposes;
        self
    }

    /// Set the CRL distribution point URL.
    pub fn crl_url(mut self, url: impl Into<String>) -> Self {
        self.crl_url = Some(url.into());
        self
    }

    /// Set the OCSP responder URL.
    pub fn ocsp_url(mut self, url: impl Into<String>) -> Self {
        self.ocsp_url = Some(url.into());
        self
    }

    /// Mark as a precertificate (adds the poison extension).
    pub fn precert(mut self) -> Self {
        self.precert = true;
        self
    }

    /// Require OCSP stapling (RFC 7633 TLS Feature extension).
    pub fn must_staple(mut self) -> Self {
        self.must_staple = true;
        self
    }

    /// Embed SCTs (final certificates).
    pub fn scts(mut self, scts: Vec<SignedCertificateTimestamp>) -> Self {
        self.scts = scts;
        self
    }

    /// Assemble the TBS.
    pub fn build_tbs(&self) -> TbsCertificate {
        let mut extensions = Vec::new();
        if !self.sans.is_empty() {
            extensions.push(Extension::SubjectAltName(self.sans.clone()));
        }
        extensions.push(Extension::BasicConstraints {
            ca: self.is_ca,
            path_len: self.path_len,
        });
        extensions.push(Extension::KeyUsage(self.key_usage));
        if !self.eku.is_empty() {
            extensions.push(Extension::ExtendedKeyUsage(self.eku.clone()));
        }
        extensions.push(Extension::SubjectKeyId(KeyId::from_bytes(
            self.public_key.key_id(),
        )));
        if let Some(url) = &self.crl_url {
            extensions.push(Extension::CrlDistributionPoint(url.clone()));
        }
        if let Some(url) = &self.ocsp_url {
            extensions.push(Extension::AuthorityInfoAccess(url.clone()));
        }
        if !self.policies.is_empty() {
            extensions.push(Extension::CertificatePolicies(self.policies.clone()));
        }
        if self.must_staple {
            extensions.push(Extension::MustStaple);
        }
        if self.precert {
            extensions.push(Extension::PrecertPoison);
        }
        if !self.scts.is_empty() {
            extensions.push(Extension::SctList(self.scts.clone()));
        }
        TbsCertificate {
            version: Version::V3,
            serial: self.serial,
            issuer: self.issuer.clone(),
            validity: self.validity.expect("validity must be set before build"),
            subject: self.subject.clone(),
            public_key: self.public_key,
            extensions,
        }
    }

    /// Build and sign with the issuer's keypair, stamping the AKI.
    pub fn sign(mut self, issuer_key: &KeyPair) -> Certificate {
        let aki = KeyId::from_bytes(issuer_key.public().key_id());
        let mut tbs = {
            // AKI must be part of the TBS; splice it in after SKI.
            self.policies = std::mem::take(&mut self.policies);
            self.build_tbs()
        };
        let ski_pos = tbs
            .extensions
            .iter()
            .position(|e| matches!(e, Extension::SubjectKeyId(_)))
            .map(|i| i + 1)
            .unwrap_or(tbs.extensions.len());
        tbs.extensions
            .insert(ski_pos, Extension::AuthorityKeyId(aki));
        let signature = SimSig::sign(issuer_key.private(), &tbs.encode(false));
        Certificate { tbs, signature }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stale_types::domain::dn;

    #[test]
    fn leaf_profile() {
        let ca = KeyPair::from_seed([1; 32]);
        let leaf = KeyPair::from_seed([2; 32]);
        let cert = CertificateBuilder::tls_leaf(leaf.public())
            .serial(42)
            .issuer_cn("Test CA")
            .subject_cn("foo.com")
            .san(dn("foo.com"))
            .san(dn("www.foo.com"))
            .validity_days(Date::parse("2022-06-01").unwrap(), Duration::days(398))
            .crl_url("http://crl.test/ca.crl")
            .sign(&ca);
        assert_eq!(cert.tbs.serial, SerialNumber(42));
        assert_eq!(cert.tbs.san().len(), 2);
        assert!(!cert.tbs.is_ca());
        assert_eq!(cert.tbs.lifetime(), Duration::days(398));
        assert_eq!(
            cert.tbs.authority_key_id(),
            Some(KeyId::from_bytes(ca.public().key_id()))
        );
        // Signature verifies under the CA key.
        assert!(SimSig::verify(
            &ca.public(),
            &cert.tbs.encode(false),
            &cert.signature
        ));
    }

    #[test]
    fn ca_profile() {
        let root = KeyPair::from_seed([3; 32]);
        let inter = KeyPair::from_seed([4; 32]);
        let cert = CertificateBuilder::ca(inter.public())
            .serial(1)
            .issuer_cn("Root CA")
            .subject_cn("Intermediate CA R1")
            .path_len(0)
            .validity_days(Date::parse("2020-01-01").unwrap(), Duration::days(1825))
            .sign(&root);
        assert!(cert.tbs.is_ca());
        assert!(cert.tbs.san().is_empty());
    }

    #[test]
    fn precert_builder_matches_final() {
        let ca = KeyPair::from_seed([5; 32]);
        let leaf = KeyPair::from_seed([6; 32]);
        let base = || {
            CertificateBuilder::tls_leaf(leaf.public())
                .serial(9)
                .issuer_cn("Test CA")
                .subject_cn("bar.com")
                .san(dn("bar.com"))
                .validity_days(Date::parse("2023-01-01").unwrap(), Duration::days(90))
        };
        let precert = base().precert().sign(&ca);
        let final_cert = base()
            .scts(vec![SignedCertificateTimestamp {
                log_id: [1; 32],
                timestamp: Date::parse("2023-01-01").unwrap(),
            }])
            .sign(&ca);
        assert_eq!(precert.cert_id(), final_cert.cert_id());
    }

    #[test]
    #[should_panic(expected = "validity must be set")]
    fn missing_validity_panics() {
        let k = KeyPair::from_seed([7; 32]);
        let _ = CertificateBuilder::tls_leaf(k.public()).build_tbs();
    }
}
