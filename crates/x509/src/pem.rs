//! PEM encoding (RFC 7468) with a from-scratch base64 codec.
//!
//! Certificates and CRLs travel as PEM in operational pipelines (CCADB
//! CRL disclosures, CT tooling, `certbot` output); the examples persist
//! artifacts in this format.

use crate::cert::Certificate;
use crate::der::DerError;
use crate::revocation::Crl;
use std::fmt;

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Base64-encode without line breaks.
pub fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let n = u32::from_be_bytes([0, b[0], b[1], b[2]]);
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Base64 decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PemError {
    /// A character outside the alphabet (whitespace is tolerated).
    BadBase64Char(char),
    /// Input length (after stripping whitespace/padding) is invalid.
    BadLength,
    /// Missing BEGIN/END armor or label mismatch.
    BadArmor,
    /// The decoded DER failed to parse.
    Der(DerError),
}

impl fmt::Display for PemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PemError::BadBase64Char(c) => write!(f, "invalid base64 character {c:?}"),
            PemError::BadLength => write!(f, "invalid base64 length"),
            PemError::BadArmor => write!(f, "missing or mismatched PEM armor"),
            PemError::Der(e) => write!(f, "DER error inside PEM: {e}"),
        }
    }
}

impl std::error::Error for PemError {}

fn decode_char(c: u8) -> Result<u8, PemError> {
    match c {
        b'A'..=b'Z' => Ok(c - b'A'),
        b'a'..=b'z' => Ok(c - b'a' + 26),
        b'0'..=b'9' => Ok(c - b'0' + 52),
        b'+' => Ok(62),
        b'/' => Ok(63),
        _ => Err(PemError::BadBase64Char(c as char)),
    }
}

/// Base64-decode, ignoring ASCII whitespace and trailing padding.
pub fn base64_decode(text: &str) -> Result<Vec<u8>, PemError> {
    let filtered: Vec<u8> = text
        .bytes()
        .filter(|b| !b.is_ascii_whitespace())
        .take_while(|&b| b != b'=')
        .collect();
    let mut out = Vec::with_capacity(filtered.len() * 3 / 4);
    for chunk in filtered.chunks(4) {
        match chunk.len() {
            1 => return Err(PemError::BadLength),
            len => {
                let mut n: u32 = 0;
                for &c in chunk {
                    n = (n << 6) | decode_char(c)? as u32;
                }
                n <<= 6 * (4 - len);
                let bytes = n.to_be_bytes();
                out.extend_from_slice(&bytes[1..len]);
            }
        }
    }
    Ok(out)
}

/// Wrap DER bytes in PEM armor with the given label.
pub fn pem_encode(label: &str, der: &[u8]) -> String {
    let b64 = base64_encode(der);
    let mut out = format!("-----BEGIN {label}-----\n");
    for line in b64.as_bytes().chunks(64) {
        out.push_str(std::str::from_utf8(line).expect("base64 is ascii"));
        out.push('\n');
    }
    out.push_str(&format!("-----END {label}-----\n"));
    out
}

/// Extract the DER bytes from a PEM block with the given label.
pub fn pem_decode(label: &str, pem: &str) -> Result<Vec<u8>, PemError> {
    let begin = format!("-----BEGIN {label}-----");
    let end = format!("-----END {label}-----");
    let start = pem.find(&begin).ok_or(PemError::BadArmor)? + begin.len();
    let stop = pem.find(&end).ok_or(PemError::BadArmor)?;
    if stop < start {
        return Err(PemError::BadArmor);
    }
    base64_decode(&pem[start..stop])
}

/// Encode a certificate as `CERTIFICATE` PEM.
pub fn certificate_to_pem(cert: &Certificate) -> String {
    pem_encode("CERTIFICATE", &cert.encode())
}

/// Decode a certificate from `CERTIFICATE` PEM.
pub fn certificate_from_pem(pem: &str) -> Result<Certificate, PemError> {
    let der = pem_decode("CERTIFICATE", pem)?;
    Certificate::decode(&der).map_err(PemError::Der)
}

/// Encode a CRL as `X509 CRL` PEM.
pub fn crl_to_pem(crl: &Crl) -> String {
    pem_encode("X509 CRL", &crl.encode())
}

/// Decode a CRL from `X509 CRL` PEM.
pub fn crl_from_pem(pem: &str) -> Result<Crl, PemError> {
    let der = pem_decode("X509 CRL", pem)?;
    Crl::decode(&der).map_err(PemError::Der)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CertificateBuilder;
    use crate::revocation::{CrlEntry, RevocationReason};
    use crypto::KeyPair;
    use stale_types::{domain::dn, Date, Duration, SerialNumber};

    #[test]
    fn base64_known_vectors() {
        // RFC 4648 test vectors.
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_encode(b"f"), "Zg==");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_encode(b"foob"), "Zm9vYg==");
        assert_eq!(base64_encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
        for v in [
            "", "Zg==", "Zm8=", "Zm9v", "Zm9vYg==", "Zm9vYmE=", "Zm9vYmFy",
        ] {
            let decoded = base64_decode(v).unwrap();
            assert_eq!(base64_encode(&decoded), v, "vector {v}");
        }
        assert_eq!(base64_decode("Zm9vYmFy").unwrap(), b"foobar");
    }

    #[test]
    fn base64_roundtrip_all_lengths() {
        for len in 0..100 {
            let data: Vec<u8> = (0..len as u8).collect();
            assert_eq!(
                base64_decode(&base64_encode(&data)).unwrap(),
                data,
                "len {len}"
            );
        }
    }

    #[test]
    fn base64_rejects_garbage() {
        assert!(matches!(
            base64_decode("Zm9*"),
            Err(PemError::BadBase64Char('*'))
        ));
        assert!(matches!(base64_decode("Z"), Err(PemError::BadLength)));
        // Whitespace tolerated.
        assert_eq!(base64_decode("Zm9v\nYmFy").unwrap(), b"foobar");
    }

    fn sample_cert() -> Certificate {
        CertificateBuilder::tls_leaf(KeyPair::from_seed([70; 32]).public())
            .serial(123)
            .issuer_cn("PEM CA")
            .subject_cn("pem.com")
            .san(dn("pem.com"))
            .validity_days(Date::parse("2022-01-01").unwrap(), Duration::days(90))
            .sign(&KeyPair::from_seed([71; 32]))
    }

    #[test]
    fn certificate_pem_roundtrip() {
        let cert = sample_cert();
        let pem = certificate_to_pem(&cert);
        assert!(pem.starts_with("-----BEGIN CERTIFICATE-----\n"));
        assert!(pem.ends_with("-----END CERTIFICATE-----\n"));
        assert!(pem.lines().all(|l| l.len() <= 64 || l.starts_with("-----")));
        let back = certificate_from_pem(&pem).unwrap();
        assert_eq!(back, cert);
    }

    #[test]
    fn crl_pem_roundtrip() {
        let key = KeyPair::from_seed([72; 32]);
        let crl = Crl::build(
            &key,
            Date::parse("2022-11-01").unwrap(),
            Date::parse("2022-11-08").unwrap(),
            vec![CrlEntry {
                serial: SerialNumber(5),
                revocation_date: Date::parse("2022-10-01").unwrap(),
                reason: RevocationReason::KeyCompromise,
            }],
        );
        let pem = crl_to_pem(&crl);
        let back = crl_from_pem(&pem).unwrap();
        assert_eq!(back, crl);
        assert!(back.verify(&key.public()));
    }

    #[test]
    fn wrong_label_rejected() {
        let cert = sample_cert();
        let pem = certificate_to_pem(&cert);
        assert!(matches!(
            pem_decode("X509 CRL", &pem),
            Err(PemError::BadArmor)
        ));
        assert!(matches!(
            certificate_from_pem("no armor here"),
            Err(PemError::BadArmor)
        ));
    }

    #[test]
    fn corrupted_pem_body_fails_der() {
        let cert = sample_cert();
        let pem = certificate_to_pem(&cert);
        // Replace one base64 char in the body.
        let mut lines: Vec<String> = pem.lines().map(String::from).collect();
        let body = 1;
        lines[body] = lines[body].replacen('A', "B", 1);
        if lines[body] == pem.lines().nth(body).unwrap() {
            lines[body] = lines[body].replacen('Q', "R", 1);
        }
        let corrupted = lines.join("\n");
        assert!(certificate_from_pem(&corrupted).is_err());
    }
}
