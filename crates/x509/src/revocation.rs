//! Certificate revocation lists (RFC 5280 §5).
//!
//! A CRL identifies revoked certificates by `(authority key id, serial)` —
//! it does **not** carry the certificates themselves, which is why the
//! paper has to cross-reference CRL entries against CT (§4.1). Reason
//! codes are the full RFC 5280 set; the paper's key-compromise detector
//! keys on [`RevocationReason::KeyCompromise`].

use crate::der::{Decoder, DerError, Encoder, Tag};
use crypto::{KeyPair, PublicKey, Signature, SimSig};
use serde::{Deserialize, Serialize};
use stale_types::{Date, KeyId, SerialNumber};

/// RFC 5280 CRL reason codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RevocationReason {
    /// unspecified (0).
    Unspecified,
    /// keyCompromise (1) — the reason the paper's §5.1 detector targets.
    KeyCompromise,
    /// cACompromise (2).
    CaCompromise,
    /// affiliationChanged (3).
    AffiliationChanged,
    /// superseded (4).
    Superseded,
    /// cessationOfOperation (5).
    CessationOfOperation,
    /// certificateHold (6).
    CertificateHold,
    /// removeFromCRL (8).
    RemoveFromCrl,
    /// privilegeWithdrawn (9).
    PrivilegeWithdrawn,
    /// aACompromise (10).
    AaCompromise,
}

impl RevocationReason {
    /// The numeric RFC 5280 code.
    pub fn code(self) -> u8 {
        match self {
            RevocationReason::Unspecified => 0,
            RevocationReason::KeyCompromise => 1,
            RevocationReason::CaCompromise => 2,
            RevocationReason::AffiliationChanged => 3,
            RevocationReason::Superseded => 4,
            RevocationReason::CessationOfOperation => 5,
            RevocationReason::CertificateHold => 6,
            RevocationReason::RemoveFromCrl => 8,
            RevocationReason::PrivilegeWithdrawn => 9,
            RevocationReason::AaCompromise => 10,
        }
    }

    /// Parse a numeric code.
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => RevocationReason::Unspecified,
            1 => RevocationReason::KeyCompromise,
            2 => RevocationReason::CaCompromise,
            3 => RevocationReason::AffiliationChanged,
            4 => RevocationReason::Superseded,
            5 => RevocationReason::CessationOfOperation,
            6 => RevocationReason::CertificateHold,
            8 => RevocationReason::RemoveFromCrl,
            9 => RevocationReason::PrivilegeWithdrawn,
            10 => RevocationReason::AaCompromise,
            _ => return None,
        })
    }

    /// The six reasons Mozilla permits for subscriber certificates (§3:
    /// "Mozilla only permits the usage of six out of the ten original
    /// reasons").
    pub fn mozilla_permitted(self) -> bool {
        matches!(
            self,
            RevocationReason::Unspecified
                | RevocationReason::KeyCompromise
                | RevocationReason::AffiliationChanged
                | RevocationReason::Superseded
                | RevocationReason::CessationOfOperation
                | RevocationReason::PrivilegeWithdrawn
        )
    }
}

/// One revoked certificate on a CRL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrlEntry {
    /// Serial of the revoked certificate (scoped to the issuer key).
    pub serial: SerialNumber,
    /// Day the revocation took effect.
    pub revocation_date: Date,
    /// Declared reason.
    pub reason: RevocationReason,
}

/// A signed certificate revocation list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Crl {
    /// Key identifier of the issuing CA key — the join key against
    /// certificate AKIs.
    pub authority_key_id: KeyId,
    /// Publication day.
    pub this_update: Date,
    /// Day by which the next CRL is due.
    pub next_update: Date,
    /// Revoked certificates.
    pub entries: Vec<CrlEntry>,
    /// Signature over the encoded list.
    pub signature: Signature,
}

impl Crl {
    /// Build and sign a CRL.
    pub fn build(
        issuer_key: &KeyPair,
        this_update: Date,
        next_update: Date,
        entries: Vec<CrlEntry>,
    ) -> Crl {
        let aki = KeyId::from_bytes(issuer_key.public().key_id());
        let tbs = Self::encode_tbs(&aki, this_update, next_update, &entries);
        let signature = SimSig::sign(issuer_key.private(), &tbs);
        Crl {
            authority_key_id: aki,
            this_update,
            next_update,
            entries,
            signature,
        }
    }

    fn encode_tbs(
        aki: &KeyId,
        this_update: Date,
        next_update: Date,
        entries: &[CrlEntry],
    ) -> Vec<u8> {
        let mut e = Encoder::new();
        e.octets(aki.as_bytes());
        e.int(this_update.days_since_epoch());
        e.int(next_update.days_since_epoch());
        e.constructed(Tag::Sequence, |list| {
            for entry in entries {
                list.constructed(Tag::Sequence, |item| {
                    item.uint(entry.serial.0);
                    item.int(entry.revocation_date.days_since_epoch());
                    item.uint(entry.reason.code() as u128);
                });
            }
        });
        e.finish(Tag::Sequence)
    }

    /// Full DER encoding `SEQUENCE { tbs, signature }`.
    pub fn encode(&self) -> Vec<u8> {
        let tbs = Self::encode_tbs(
            &self.authority_key_id,
            self.this_update,
            self.next_update,
            &self.entries,
        );
        let mut e = Encoder::new();
        e.raw(&tbs);
        e.octets(self.signature.as_bytes());
        e.finish(Tag::Sequence)
    }

    /// Decode a CRL.
    pub fn decode(der: &[u8]) -> Result<Crl, DerError> {
        let mut top = Decoder::new(der);
        let mut outer = top.nested(Tag::Sequence)?;
        let mut tbs = outer.nested(Tag::Sequence)?;
        let aki_bytes = tbs.octets()?;
        let authority_key_id = KeyId::from_bytes(
            aki_bytes
                .try_into()
                .map_err(|_| DerError::BadContent("aki length"))?,
        );
        let this_update = Date::from_days(tbs.int()?);
        let next_update = Date::from_days(tbs.int()?);
        let mut list = tbs.nested(Tag::Sequence)?;
        let mut entries = Vec::new();
        while !list.is_empty() {
            let mut item = list.nested(Tag::Sequence)?;
            let serial = SerialNumber(item.uint()?);
            let revocation_date = Date::from_days(item.int()?);
            let code = u8::try_from(item.uint()?).map_err(|_| DerError::BadContent("reason"))?;
            let reason =
                RevocationReason::from_code(code).ok_or(DerError::BadContent("reason code"))?;
            item.finish()?;
            entries.push(CrlEntry {
                serial,
                revocation_date,
                reason,
            });
        }
        tbs.finish()?;
        let sig_bytes = outer.octets()?;
        let signature = Signature(
            sig_bytes
                .try_into()
                .map_err(|_| DerError::BadContent("signature length"))?,
        );
        outer.finish()?;
        top.finish()?;
        Ok(Crl {
            authority_key_id,
            this_update,
            next_update,
            entries,
            signature,
        })
    }

    /// Verify the CRL signature under the issuer's public key.
    pub fn verify(&self, issuer: &PublicKey) -> bool {
        let tbs = Self::encode_tbs(
            &self.authority_key_id,
            self.this_update,
            self.next_update,
            &self.entries,
        );
        SimSig::verify(issuer, &tbs, &self.signature)
    }

    /// Look up a serial on this CRL.
    pub fn find(&self, serial: SerialNumber) -> Option<&CrlEntry> {
        self.entries.iter().find(|e| e.serial == serial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_crl(key: &KeyPair) -> Crl {
        Crl::build(
            key,
            Date::parse("2022-11-01").unwrap(),
            Date::parse("2022-11-08").unwrap(),
            vec![
                CrlEntry {
                    serial: SerialNumber(100),
                    revocation_date: Date::parse("2022-10-15").unwrap(),
                    reason: RevocationReason::KeyCompromise,
                },
                CrlEntry {
                    serial: SerialNumber(200),
                    revocation_date: Date::parse("2022-10-20").unwrap(),
                    reason: RevocationReason::Superseded,
                },
            ],
        )
    }

    #[test]
    fn build_verify_roundtrip() {
        let key = KeyPair::from_seed([10; 32]);
        let crl = sample_crl(&key);
        assert!(crl.verify(&key.public()));
        let der = crl.encode();
        let back = Crl::decode(&der).unwrap();
        assert_eq!(back, crl);
        assert!(back.verify(&key.public()));
    }

    #[test]
    fn wrong_key_fails_verification() {
        let key = KeyPair::from_seed([10; 32]);
        let other = KeyPair::from_seed([11; 32]);
        let crl = sample_crl(&key);
        assert!(!crl.verify(&other.public()));
    }

    #[test]
    fn tampered_entries_fail_verification() {
        let key = KeyPair::from_seed([10; 32]);
        let mut crl = sample_crl(&key);
        crl.entries[0].reason = RevocationReason::CessationOfOperation;
        assert!(!crl.verify(&key.public()));
    }

    #[test]
    fn find_by_serial() {
        let key = KeyPair::from_seed([10; 32]);
        let crl = sample_crl(&key);
        assert_eq!(
            crl.find(SerialNumber(100)).unwrap().reason,
            RevocationReason::KeyCompromise
        );
        assert!(crl.find(SerialNumber(999)).is_none());
    }

    #[test]
    fn reason_codes_roundtrip() {
        for code in 0..=10u8 {
            match RevocationReason::from_code(code) {
                Some(r) => assert_eq!(r.code(), code),
                None => assert_eq!(code, 7), // 7 is unassigned in RFC 5280
            }
        }
        assert!(RevocationReason::from_code(11).is_none());
    }

    #[test]
    fn mozilla_permitted_subset() {
        let permitted: Vec<_> = (0..=10)
            .filter_map(RevocationReason::from_code)
            .filter(|r| r.mozilla_permitted())
            .collect();
        assert_eq!(permitted.len(), 6);
        assert!(RevocationReason::KeyCompromise.mozilla_permitted());
        assert!(!RevocationReason::CertificateHold.mozilla_permitted());
    }

    #[test]
    fn empty_crl_roundtrips() {
        let key = KeyPair::from_seed([12; 32]);
        let crl = Crl::build(
            &key,
            Date::parse("2023-01-01").unwrap(),
            Date::parse("2023-01-08").unwrap(),
            vec![],
        );
        let back = Crl::decode(&crl.encode()).unwrap();
        assert!(back.entries.is_empty());
        assert!(back.verify(&key.public()));
    }
}
