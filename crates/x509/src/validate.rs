//! Certificate validation: hostname matching, validity windows and chains.
//!
//! This is the TLS-client view of a certificate. The stale-certificate
//! threat model is precisely that these checks *pass* — the certificate is
//! valid, unexpired and chains to a trusted root — while the real-world
//! facts behind it have changed.

use crate::cert::Certificate;
use crypto::{PublicKey, SimSig};
use stale_types::{Date, DomainName};
use std::fmt;

/// Why validation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The chain was empty.
    EmptyChain,
    /// `date` is outside a certificate's validity window.
    Expired {
        /// Index in the chain (0 = leaf).
        index: usize,
    },
    /// A signature did not verify under the issuer key.
    BadSignature {
        /// Index in the chain (0 = leaf).
        index: usize,
    },
    /// An intermediate lacked `BasicConstraints CA:TRUE`.
    NotACa {
        /// Index in the chain.
        index: usize,
    },
    /// The chain root is not in the trust store.
    UntrustedRoot,
    /// No SAN matched the requested hostname.
    HostnameMismatch {
        /// What the client asked for.
        requested: String,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::EmptyChain => write!(f, "empty certificate chain"),
            ValidationError::Expired { index } => write!(f, "certificate {index} expired"),
            ValidationError::BadSignature { index } => {
                write!(f, "certificate {index} signature invalid")
            }
            ValidationError::NotACa { index } => {
                write!(f, "certificate {index} used as issuer but is not a CA")
            }
            ValidationError::UntrustedRoot => write!(f, "chain does not end at a trusted root"),
            ValidationError::HostnameMismatch { requested } => {
                write!(f, "no SAN matches {requested}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Whether any SAN on `cert` matches `hostname` under TLS wildcard rules.
pub fn matches_hostname(cert: &Certificate, hostname: &DomainName) -> bool {
    cert.tbs.san().iter().any(|san| san.matches(hostname))
}

/// Validate a chain `[leaf, intermediate…, (root optional)]` at `date`
/// against `trusted_roots` (public keys of trust anchors) for `hostname`.
///
/// Checks, in order: hostname match on the leaf, per-certificate validity
/// windows, CA bit on every issuer, signature of each certificate under the
/// next one's key, and finally that the last certificate was signed by (or
/// is) a trusted root key.
pub fn validate_chain(
    chain: &[Certificate],
    trusted_roots: &[PublicKey],
    hostname: &DomainName,
    date: Date,
) -> Result<(), ValidationError> {
    let leaf = chain.first().ok_or(ValidationError::EmptyChain)?;
    if !matches_hostname(leaf, hostname) {
        return Err(ValidationError::HostnameMismatch {
            requested: hostname.to_string(),
        });
    }
    for (i, cert) in chain.iter().enumerate() {
        if !cert.tbs.validity.contains(date) {
            return Err(ValidationError::Expired { index: i });
        }
    }
    // Each certificate must be signed by the next one in the chain.
    for (i, pair) in chain.windows(2).enumerate() {
        let (child, issuer) = (&pair[0], &pair[1]);
        if !issuer.tbs.is_ca() {
            return Err(ValidationError::NotACa { index: i + 1 });
        }
        if !SimSig::verify(
            &issuer.tbs.public_key,
            &child.tbs.encode(false),
            &child.signature,
        ) {
            return Err(ValidationError::BadSignature { index: i });
        }
    }
    // Anchor: the last certificate must verify under some trusted root key
    // (covering both "chain includes root" and "chain up to intermediate").
    let last = chain.last().expect("non-empty");
    let anchored = trusted_roots.iter().any(|root| {
        SimSig::verify(root, &last.tbs.encode(false), &last.signature)
            || (*root == last.tbs.public_key
                && SimSig::verify(root, &last.tbs.encode(false), &last.signature))
    });
    if !anchored {
        // Self-signed trusted root included directly?
        let self_trusted = trusted_roots.contains(&last.tbs.public_key)
            && SimSig::verify(
                &last.tbs.public_key,
                &last.tbs.encode(false),
                &last.signature,
            );
        if !self_trusted {
            return Err(ValidationError::UntrustedRoot);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CertificateBuilder;
    use crypto::KeyPair;
    use stale_types::{domain::dn, Duration};

    struct Pki {
        root: KeyPair,
        inter: KeyPair,
        chain: Vec<Certificate>,
    }

    fn build_pki(leaf_sans: &[&str]) -> Pki {
        let root = KeyPair::from_seed([1; 32]);
        let inter = KeyPair::from_seed([2; 32]);
        let leaf_key = KeyPair::from_seed([3; 32]);
        let start = Date::parse("2022-01-01").unwrap();
        let inter_cert = CertificateBuilder::ca(inter.public())
            .serial(1)
            .issuer_cn("Root")
            .subject_cn("Intermediate")
            .validity_days(start, Duration::days(1825))
            .sign(&root);
        let leaf = CertificateBuilder::tls_leaf(leaf_key.public())
            .serial(2)
            .issuer_cn("Intermediate")
            .subject_cn(leaf_sans[0])
            .sans(leaf_sans.iter().map(|s| dn(s)))
            .validity_days(start, Duration::days(90))
            .sign(&inter);
        Pki {
            root,
            inter,
            chain: vec![leaf, inter_cert],
        }
    }

    #[test]
    fn valid_chain_passes() {
        let pki = build_pki(&["foo.com", "*.foo.com"]);
        let roots = [pki.root.public()];
        let date = Date::parse("2022-02-01").unwrap();
        assert_eq!(
            validate_chain(&pki.chain, &roots, &dn("foo.com"), date),
            Ok(())
        );
        assert_eq!(
            validate_chain(&pki.chain, &roots, &dn("api.foo.com"), date),
            Ok(())
        );
    }

    #[test]
    fn hostname_mismatch() {
        let pki = build_pki(&["foo.com"]);
        let roots = [pki.root.public()];
        let date = Date::parse("2022-02-01").unwrap();
        assert!(matches!(
            validate_chain(&pki.chain, &roots, &dn("bar.com"), date),
            Err(ValidationError::HostnameMismatch { .. })
        ));
    }

    #[test]
    fn expiry_checked_per_certificate() {
        let pki = build_pki(&["foo.com"]);
        let roots = [pki.root.public()];
        let too_late = Date::parse("2022-05-01").unwrap(); // leaf is 90 days
        assert_eq!(
            validate_chain(&pki.chain, &roots, &dn("foo.com"), too_late),
            Err(ValidationError::Expired { index: 0 })
        );
        let too_early = Date::parse("2021-12-31").unwrap();
        assert_eq!(
            validate_chain(&pki.chain, &roots, &dn("foo.com"), too_early),
            Err(ValidationError::Expired { index: 0 })
        );
    }

    #[test]
    fn untrusted_root_rejected() {
        let pki = build_pki(&["foo.com"]);
        let other_root = KeyPair::from_seed([99; 32]);
        let date = Date::parse("2022-02-01").unwrap();
        assert_eq!(
            validate_chain(&pki.chain, &[other_root.public()], &dn("foo.com"), date),
            Err(ValidationError::UntrustedRoot)
        );
    }

    #[test]
    fn tampered_leaf_fails_signature() {
        let mut pki = build_pki(&["foo.com"]);
        // Re-sign the leaf with a key other than the intermediate.
        let mallory = KeyPair::from_seed([66; 32]);
        pki.chain[0].signature = SimSig::sign(mallory.private(), &pki.chain[0].tbs.encode(false));
        let roots = [pki.root.public()];
        let date = Date::parse("2022-02-01").unwrap();
        assert_eq!(
            validate_chain(&pki.chain, &roots, &dn("foo.com"), date),
            Err(ValidationError::BadSignature { index: 0 })
        );
    }

    #[test]
    fn non_ca_issuer_rejected() {
        let pki = build_pki(&["foo.com"]);
        // Use the leaf as an "issuer" of itself: [leaf, leaf].
        let bogus = vec![pki.chain[0].clone(), pki.chain[0].clone()];
        let roots = [pki.root.public()];
        let date = Date::parse("2022-02-01").unwrap();
        assert_eq!(
            validate_chain(&bogus, &roots, &dn("foo.com"), date),
            Err(ValidationError::NotACa { index: 1 })
        );
    }

    #[test]
    fn empty_chain() {
        assert_eq!(
            validate_chain(&[], &[], &dn("foo.com"), Date::EPOCH),
            Err(ValidationError::EmptyChain)
        );
    }

    #[test]
    fn stale_cert_still_validates() {
        // The core threat: a certificate whose real-world facts changed
        // still passes every TLS-client check until it expires.
        let pki = build_pki(&["transferred-domain.com"]);
        let roots = [pki.root.public()];
        let date = Date::parse("2022-03-01").unwrap();
        assert_eq!(
            validate_chain(&pki.chain, &roots, &dn("transferred-domain.com"), date),
            Ok(())
        );
        let _ = pki.inter; // silence unused in this scenario
    }
}
