//! DER-style TLV encoding.
//!
//! A compact subset of BER/DER: every value is `tag || length || content`
//! with definite lengths (short form < 128, long form otherwise), and
//! constructed values nest encoded children in their content octets. Tags
//! match the universal ASN.1 numbers for the types we use so encodings look
//! like real DER on the wire, without implementing the full ASN.1 zoo.

use std::fmt;

/// Universal tags used by the certificate encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Tag {
    /// BOOLEAN (0x01).
    Boolean = 0x01,
    /// INTEGER (0x02).
    Integer = 0x02,
    /// OCTET STRING (0x04).
    OctetString = 0x04,
    /// NULL (0x05).
    Null = 0x05,
    /// UTF8String (0x0C).
    Utf8String = 0x0C,
    /// SEQUENCE (constructed, 0x30).
    Sequence = 0x30,
    /// SET (constructed, 0x31).
    Set = 0x31,
    /// Context-specific `[0]`, constructed (0xA0) — used for explicit tags.
    Context0 = 0xA0,
    /// Context-specific `[1]`, constructed (0xA1).
    Context1 = 0xA1,
    /// Context-specific `[2]`, constructed (0xA2).
    Context2 = 0xA2,
}

impl Tag {
    fn from_byte(b: u8) -> Result<Tag, DerError> {
        Ok(match b {
            0x01 => Tag::Boolean,
            0x02 => Tag::Integer,
            0x04 => Tag::OctetString,
            0x05 => Tag::Null,
            0x0C => Tag::Utf8String,
            0x30 => Tag::Sequence,
            0x31 => Tag::Set,
            0xA0 => Tag::Context0,
            0xA1 => Tag::Context1,
            0xA2 => Tag::Context2,
            _ => return Err(DerError::UnknownTag(b)),
        })
    }
}

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DerError {
    /// Input ended before a complete TLV.
    Truncated,
    /// Tag byte not in our subset.
    UnknownTag(u8),
    /// Length octets malformed (e.g. >8-byte length).
    BadLength,
    /// Expected one tag, found another.
    UnexpectedTag {
        /// What the caller wanted.
        expected: Tag,
        /// What was present.
        found: Tag,
    },
    /// Content bytes invalid for the tag (e.g. bad UTF-8, empty INTEGER).
    BadContent(&'static str),
    /// Trailing bytes after a complete decode.
    TrailingBytes(usize),
}

impl fmt::Display for DerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DerError::Truncated => write!(f, "truncated DER input"),
            DerError::UnknownTag(b) => write!(f, "unknown DER tag 0x{b:02x}"),
            DerError::BadLength => write!(f, "malformed DER length"),
            DerError::UnexpectedTag { expected, found } => {
                write!(f, "expected {expected:?}, found {found:?}")
            }
            DerError::BadContent(what) => write!(f, "bad DER content: {what}"),
            DerError::TrailingBytes(n) => write!(f, "{n} trailing bytes after DER value"),
        }
    }
}

impl std::error::Error for DerError {}

/// Append a TLV with `tag` and raw `content` to `out`.
pub fn write_tlv(out: &mut Vec<u8>, tag: Tag, content: &[u8]) {
    out.push(tag as u8);
    write_length(out, content.len());
    out.extend_from_slice(content);
}

fn write_length(out: &mut Vec<u8>, len: usize) {
    if len < 0x80 {
        out.push(len as u8);
    } else {
        let bytes = (len as u64).to_be_bytes();
        let skip = bytes.iter().take_while(|&&b| b == 0).count();
        let sig = &bytes[skip..];
        out.push(0x80 | sig.len() as u8);
        out.extend_from_slice(sig);
    }
}

/// An encoder for one constructed value; children append to the buffer and
/// the whole value is wrapped on [`Encoder::finish`].
pub struct Encoder {
    buf: Vec<u8>,
}

impl Default for Encoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Encoder {
    /// Fresh encoder.
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// Append an unsigned integer (minimal big-endian, leading 0x00 when
    /// the high bit is set, as DER requires).
    pub fn uint(&mut self, value: u128) -> &mut Self {
        let bytes = value.to_be_bytes();
        let skip = bytes.iter().take_while(|&&b| b == 0).count().min(15);
        let mut content = Vec::with_capacity(17);
        if bytes[skip] & 0x80 != 0 {
            content.push(0);
        }
        content.extend_from_slice(&bytes[skip..]);
        write_tlv(&mut self.buf, Tag::Integer, &content);
        self
    }

    /// Append a signed 64-bit integer.
    pub fn int(&mut self, value: i64) -> &mut Self {
        let bytes = value.to_be_bytes();
        // Trim redundant leading sign bytes.
        let mut start = 0;
        while start < 7 {
            let cur = bytes[start];
            let next = bytes[start + 1];
            let redundant = (cur == 0x00 && next & 0x80 == 0) || (cur == 0xFF && next & 0x80 != 0);
            if redundant {
                start += 1;
            } else {
                break;
            }
        }
        write_tlv(&mut self.buf, Tag::Integer, &bytes[start..]);
        self
    }

    /// Append a boolean.
    pub fn boolean(&mut self, value: bool) -> &mut Self {
        write_tlv(
            &mut self.buf,
            Tag::Boolean,
            &[if value { 0xFF } else { 0x00 }],
        );
        self
    }

    /// Append an octet string.
    pub fn octets(&mut self, value: &[u8]) -> &mut Self {
        write_tlv(&mut self.buf, Tag::OctetString, value);
        self
    }

    /// Append a UTF-8 string.
    pub fn utf8(&mut self, value: &str) -> &mut Self {
        write_tlv(&mut self.buf, Tag::Utf8String, value.as_bytes());
        self
    }

    /// Append NULL.
    pub fn null(&mut self) -> &mut Self {
        write_tlv(&mut self.buf, Tag::Null, &[]);
        self
    }

    /// Append a nested constructed value built by `f`.
    pub fn constructed(&mut self, tag: Tag, f: impl FnOnce(&mut Encoder)) -> &mut Self {
        let mut inner = Encoder::new();
        f(&mut inner);
        write_tlv(&mut self.buf, tag, &inner.buf);
        self
    }

    /// Append a pre-encoded value verbatim.
    pub fn raw(&mut self, der: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(der);
        self
    }

    /// Wrap everything encoded so far in `tag` and return the bytes.
    pub fn finish(self, tag: Tag) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.buf.len() + 4);
        write_tlv(&mut out, tag, &self.buf);
        out
    }

    /// Return the raw concatenated children without an outer wrapper.
    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }
}

/// A borrowing decoder over DER bytes.
pub struct Decoder<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Decode from `input`.
    pub fn new(input: &'a [u8]) -> Self {
        Decoder { input, pos: 0 }
    }

    /// Whether all input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.input.len()
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    /// Peek at the next tag without consuming.
    pub fn peek_tag(&self) -> Result<Tag, DerError> {
        let b = *self.input.get(self.pos).ok_or(DerError::Truncated)?;
        Tag::from_byte(b)
    }

    fn read_header(&mut self) -> Result<(Tag, usize), DerError> {
        let tag = self.peek_tag()?;
        self.pos += 1;
        let first = *self.input.get(self.pos).ok_or(DerError::Truncated)?;
        self.pos += 1;
        let len = if first < 0x80 {
            first as usize
        } else {
            let n = (first & 0x7F) as usize;
            if n == 0 || n > 8 {
                return Err(DerError::BadLength);
            }
            let bytes = self
                .input
                .get(self.pos..self.pos + n)
                .ok_or(DerError::Truncated)?;
            self.pos += n;
            let mut v: u64 = 0;
            for &b in bytes {
                v = (v << 8) | b as u64;
            }
            usize::try_from(v).map_err(|_| DerError::BadLength)?
        };
        Ok((tag, len))
    }

    /// Consume the next TLV, returning `(tag, content)`.
    pub fn any(&mut self) -> Result<(Tag, &'a [u8]), DerError> {
        let (tag, len) = self.read_header()?;
        let content = self
            .input
            .get(self.pos..self.pos + len)
            .ok_or(DerError::Truncated)?;
        self.pos += len;
        Ok((tag, content))
    }

    /// Consume a TLV, requiring `tag`.
    pub fn expect(&mut self, tag: Tag) -> Result<&'a [u8], DerError> {
        let found = self.peek_tag()?;
        if found != tag {
            return Err(DerError::UnexpectedTag {
                expected: tag,
                found,
            });
        }
        Ok(self.any()?.1)
    }

    /// Consume a constructed value and return a decoder over its content.
    pub fn nested(&mut self, tag: Tag) -> Result<Decoder<'a>, DerError> {
        Ok(Decoder::new(self.expect(tag)?))
    }

    /// Consume an INTEGER as u128.
    pub fn uint(&mut self) -> Result<u128, DerError> {
        let content = self.expect(Tag::Integer)?;
        if content.is_empty() || content.len() > 17 {
            return Err(DerError::BadContent("integer size"));
        }
        let mut v: u128 = 0;
        for (i, &b) in content.iter().enumerate() {
            if i == 0 && b == 0 {
                continue; // sign pad
            }
            if v >> 120 != 0 {
                return Err(DerError::BadContent("integer overflow"));
            }
            v = (v << 8) | b as u128;
        }
        Ok(v)
    }

    /// Consume an INTEGER as i64.
    pub fn int(&mut self) -> Result<i64, DerError> {
        let content = self.expect(Tag::Integer)?;
        if content.is_empty() || content.len() > 8 {
            return Err(DerError::BadContent("integer size"));
        }
        let negative = content[0] & 0x80 != 0;
        let mut v: i64 = if negative { -1 } else { 0 };
        for &b in content {
            v = (v << 8) | b as i64;
        }
        Ok(v)
    }

    /// Consume a BOOLEAN.
    pub fn boolean(&mut self) -> Result<bool, DerError> {
        let content = self.expect(Tag::Boolean)?;
        match content {
            [0x00] => Ok(false),
            [_] => Ok(true),
            _ => Err(DerError::BadContent("boolean length")),
        }
    }

    /// Consume an OCTET STRING.
    pub fn octets(&mut self) -> Result<&'a [u8], DerError> {
        self.expect(Tag::OctetString)
    }

    /// Consume a UTF8String.
    pub fn utf8(&mut self) -> Result<&'a str, DerError> {
        let content = self.expect(Tag::Utf8String)?;
        std::str::from_utf8(content).map_err(|_| DerError::BadContent("invalid utf-8"))
    }

    /// Consume NULL.
    pub fn null(&mut self) -> Result<(), DerError> {
        let content = self.expect(Tag::Null)?;
        if content.is_empty() {
            Ok(())
        } else {
            Err(DerError::BadContent("non-empty NULL"))
        }
    }

    /// Fail if any bytes remain.
    pub fn finish(&self) -> Result<(), DerError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(DerError::TrailingBytes(self.remaining()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_uint(v: u128) {
        let mut e = Encoder::new();
        e.uint(v);
        let bytes = e.into_inner();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.uint().unwrap(), v);
        d.finish().unwrap();
    }

    #[test]
    fn uint_roundtrips() {
        for v in [
            0u128,
            1,
            127,
            128,
            255,
            256,
            0xDEADBEEF,
            u64::MAX as u128,
            u128::MAX >> 8,
        ] {
            roundtrip_uint(v);
        }
    }

    #[test]
    fn uint_minimal_encoding() {
        let mut e = Encoder::new();
        e.uint(127);
        assert_eq!(e.into_inner(), vec![0x02, 0x01, 0x7F]);
        // 128 needs a sign pad.
        let mut e = Encoder::new();
        e.uint(128);
        assert_eq!(e.into_inner(), vec![0x02, 0x02, 0x00, 0x80]);
    }

    #[test]
    fn int_roundtrips() {
        for v in [0i64, 1, -1, 127, 128, -128, -129, i64::MAX, i64::MIN, 19489] {
            let mut e = Encoder::new();
            e.int(v);
            let bytes = e.into_inner();
            let mut d = Decoder::new(&bytes);
            assert_eq!(d.int().unwrap(), v, "value {v}");
            d.finish().unwrap();
        }
    }

    #[test]
    fn long_form_length() {
        let payload = vec![0xAB; 300];
        let mut e = Encoder::new();
        e.octets(&payload);
        let bytes = e.into_inner();
        // 0x04, 0x82, 0x01, 0x2C then content.
        assert_eq!(&bytes[..4], &[0x04, 0x82, 0x01, 0x2C]);
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.octets().unwrap(), &payload[..]);
    }

    #[test]
    fn nested_sequences() {
        let mut e = Encoder::new();
        e.constructed(Tag::Sequence, |s| {
            s.uint(7);
            s.utf8("foo.com");
            s.constructed(Tag::Context0, |c| {
                c.boolean(true);
            });
        });
        let bytes = e.into_inner();
        let mut d = Decoder::new(&bytes);
        let mut seq = d.nested(Tag::Sequence).unwrap();
        assert_eq!(seq.uint().unwrap(), 7);
        assert_eq!(seq.utf8().unwrap(), "foo.com");
        let mut ctx = seq.nested(Tag::Context0).unwrap();
        assert!(ctx.boolean().unwrap());
        ctx.finish().unwrap();
        seq.finish().unwrap();
        d.finish().unwrap();
    }

    #[test]
    fn decode_errors() {
        assert_eq!(Decoder::new(&[]).peek_tag(), Err(DerError::Truncated));
        assert_eq!(
            Decoder::new(&[0x7E, 0x00]).peek_tag(),
            Err(DerError::UnknownTag(0x7E))
        );
        // Declared length exceeds input.
        let mut d = Decoder::new(&[0x04, 0x05, 0x01]);
        assert_eq!(d.octets(), Err(DerError::Truncated));
        // Wrong tag.
        let mut e = Encoder::new();
        e.uint(1);
        let bytes = e.into_inner();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(d.octets(), Err(DerError::UnexpectedTag { .. })));
        // Trailing bytes.
        let mut two = bytes.clone();
        two.extend_from_slice(&bytes);
        let mut d = Decoder::new(&two);
        d.uint().unwrap();
        assert_eq!(d.finish(), Err(DerError::TrailingBytes(3)));
    }

    #[test]
    fn boolean_content_validation() {
        let mut d = Decoder::new(&[0x01, 0x02, 0x00, 0x00]);
        assert!(matches!(d.boolean(), Err(DerError::BadContent(_))));
        let mut d = Decoder::new(&[0x01, 0x01, 0xFF]);
        assert!(d.boolean().unwrap());
    }

    #[test]
    fn null_roundtrip() {
        let mut e = Encoder::new();
        e.null();
        let bytes = e.into_inner();
        let mut d = Decoder::new(&bytes);
        d.null().unwrap();
        d.finish().unwrap();
    }
}
