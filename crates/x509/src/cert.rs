//! Certificate structures.
//!
//! [`TbsCertificate`] carries the fields of the paper's certificate
//! information taxonomy (Table 1): subscriber authentication (subject,
//! SANs, subject public key, SKI), key authorization (basic constraints,
//! key usage, EKU), issuer information (issuer name, AKI, CRL distribution
//! points, policies) and certificate metadata (serial, precert poison,
//! SCTs). [`Certificate`] adds the issuer's signature over the encoded TBS.
//!
//! The dedup identity [`Certificate::cert_id`] hashes the TBS with CT
//! components (poison, SCT list) stripped, so a precertificate and the
//! final certificate it became collapse to the same [`CertId`] — the §4
//! deduplication rule.

use crate::der::{Decoder, DerError, Encoder, Tag};
use crypto::sha256::sha256;
use crypto::{PublicKey, Signature};
use serde::{Deserialize, Serialize};
use stale_types::{CertId, Date, DateInterval, DomainName, Duration, KeyId, SerialNumber};

/// Certificate format version. Only v3 exists in the modern web PKI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Version {
    /// X.509 v3.
    V3,
}

/// A distinguished name, reduced to the fields the study uses.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Name {
    /// Common name (a DNS name for subscribers, a display name for CAs).
    pub common_name: String,
    /// Organization, if present.
    pub organization: Option<String>,
}

impl Name {
    /// A bare common name.
    pub fn cn(common_name: impl Into<String>) -> Self {
        Name {
            common_name: common_name.into(),
            organization: None,
        }
    }

    /// Common name plus organization.
    pub fn cn_org(common_name: impl Into<String>, org: impl Into<String>) -> Self {
        Name {
            common_name: common_name.into(),
            organization: Some(org.into()),
        }
    }
}

/// Key-usage bits (RFC 5280 §4.2.1.3), reduced to the ones that appear on
/// web PKI leaves and CA certificates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct KeyUsage {
    /// digitalSignature.
    pub digital_signature: bool,
    /// keyEncipherment.
    pub key_encipherment: bool,
    /// keyCertSign — CA certificates only.
    pub key_cert_sign: bool,
    /// cRLSign — CA certificates only.
    pub crl_sign: bool,
}

impl KeyUsage {
    /// The usual TLS server leaf profile.
    pub fn tls_leaf() -> Self {
        KeyUsage {
            digital_signature: true,
            key_encipherment: true,
            ..Default::default()
        }
    }

    /// The usual CA profile.
    pub fn ca() -> Self {
        KeyUsage {
            key_cert_sign: true,
            crl_sign: true,
            digital_signature: true,
            ..Default::default()
        }
    }

    fn to_bits(self) -> u8 {
        (self.digital_signature as u8)
            | (self.key_encipherment as u8) << 1
            | (self.key_cert_sign as u8) << 2
            | (self.crl_sign as u8) << 3
    }

    fn from_bits(bits: u8) -> Self {
        KeyUsage {
            digital_signature: bits & 1 != 0,
            key_encipherment: bits & 2 != 0,
            key_cert_sign: bits & 4 != 0,
            crl_sign: bits & 8 != 0,
        }
    }
}

/// Extended key usage purposes (RFC 5280 §4.2.1.12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EkuPurpose {
    /// id-kp-serverAuth.
    ServerAuth,
    /// id-kp-clientAuth.
    ClientAuth,
    /// id-kp-codeSigning.
    CodeSigning,
    /// id-kp-emailProtection.
    EmailProtection,
    /// id-kp-OCSPSigning.
    OcspSigning,
}

impl EkuPurpose {
    fn to_code(self) -> u8 {
        match self {
            EkuPurpose::ServerAuth => 1,
            EkuPurpose::ClientAuth => 2,
            EkuPurpose::CodeSigning => 3,
            EkuPurpose::EmailProtection => 4,
            EkuPurpose::OcspSigning => 9,
        }
    }

    fn from_code(code: u8) -> Result<Self, DerError> {
        Ok(match code {
            1 => EkuPurpose::ServerAuth,
            2 => EkuPurpose::ClientAuth,
            3 => EkuPurpose::CodeSigning,
            4 => EkuPurpose::EmailProtection,
            9 => EkuPurpose::OcspSigning,
            _ => return Err(DerError::BadContent("unknown EKU purpose")),
        })
    }
}

/// An embedded signed certificate timestamp from a CT log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignedCertificateTimestamp {
    /// Log identifier (hash of the log's public key).
    pub log_id: [u8; 32],
    /// Day the log issued the SCT.
    pub timestamp: Date,
}

/// Certificate extensions.
///
/// Each variant maps to a row of the paper's Table 1 field inventory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Extension {
    /// Subject Alternative Names — the authenticated DNS identities.
    SubjectAltName(Vec<DomainName>),
    /// CA flag and optional path length constraint.
    BasicConstraints {
        /// Whether the subject may issue certificates.
        ca: bool,
        /// Maximum intermediate chain depth below this certificate.
        path_len: Option<u8>,
    },
    /// Key usage bits.
    KeyUsage(KeyUsage),
    /// Extended key usage list.
    ExtendedKeyUsage(Vec<EkuPurpose>),
    /// Subject key identifier.
    SubjectKeyId(KeyId),
    /// Authority (issuer) key identifier — CRLs join on this.
    AuthorityKeyId(KeyId),
    /// URL of the issuing CA's CRL.
    CrlDistributionPoint(String),
    /// OCSP responder URL (authority information access).
    AuthorityInfoAccess(String),
    /// Certificate policy identifiers (e.g. the DV policy).
    CertificatePolicies(Vec<String>),
    /// CT precertificate poison: present only on precertificates.
    PrecertPoison,
    /// Embedded SCT list: present only on final certificates.
    SctList(Vec<SignedCertificateTimestamp>),
    /// TLS Feature / OCSP Must-Staple (RFC 7633): clients must receive a
    /// stapled OCSP response or hard-fail (§2.4's one hard-fail case).
    MustStaple,
}

impl Extension {
    /// Whether this extension is a CT artifact excluded from the dedup
    /// identity.
    pub fn is_ct_component(&self) -> bool {
        matches!(self, Extension::PrecertPoison | Extension::SctList(_))
    }

    fn type_code(&self) -> u64 {
        match self {
            Extension::SubjectAltName(_) => 1,
            Extension::BasicConstraints { .. } => 2,
            Extension::KeyUsage(_) => 3,
            Extension::ExtendedKeyUsage(_) => 4,
            Extension::SubjectKeyId(_) => 5,
            Extension::AuthorityKeyId(_) => 6,
            Extension::CrlDistributionPoint(_) => 7,
            Extension::AuthorityInfoAccess(_) => 8,
            Extension::CertificatePolicies(_) => 9,
            Extension::PrecertPoison => 10,
            Extension::SctList(_) => 11,
            Extension::MustStaple => 12,
        }
    }
}

/// The to-be-signed portion of a certificate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TbsCertificate {
    /// Format version.
    pub version: Version,
    /// Issuer-assigned serial number.
    pub serial: SerialNumber,
    /// Issuing CA's distinguished name.
    pub issuer: Name,
    /// Validity window `[notBefore, notAfter)` at day granularity.
    pub validity: DateInterval,
    /// Subject distinguished name.
    pub subject: Name,
    /// Subject public key.
    pub public_key: PublicKey,
    /// Extensions in issuance order.
    pub extensions: Vec<Extension>,
}

impl TbsCertificate {
    /// `notBefore`.
    pub fn not_before(&self) -> Date {
        self.validity.start
    }

    /// `notAfter` (exclusive — the first day the certificate is invalid).
    pub fn not_after(&self) -> Date {
        self.validity.end
    }

    /// Lifetime in days.
    pub fn lifetime(&self) -> Duration {
        self.validity.len()
    }

    /// The SAN list, empty if the extension is absent.
    pub fn san(&self) -> &[DomainName] {
        for ext in &self.extensions {
            if let Extension::SubjectAltName(names) = ext {
                return names;
            }
        }
        &[]
    }

    /// The authority key identifier, if present.
    pub fn authority_key_id(&self) -> Option<KeyId> {
        self.extensions.iter().find_map(|e| match e {
            Extension::AuthorityKeyId(id) => Some(*id),
            _ => None,
        })
    }

    /// The subject key identifier, if present.
    pub fn subject_key_id(&self) -> Option<KeyId> {
        self.extensions.iter().find_map(|e| match e {
            Extension::SubjectKeyId(id) => Some(*id),
            _ => None,
        })
    }

    /// Whether this is a CA certificate per BasicConstraints.
    pub fn is_ca(&self) -> bool {
        self.extensions
            .iter()
            .any(|e| matches!(e, Extension::BasicConstraints { ca: true, .. }))
    }

    /// Whether this is a precertificate (poison present).
    pub fn is_precert(&self) -> bool {
        self.extensions
            .iter()
            .any(|e| matches!(e, Extension::PrecertPoison))
    }

    /// DER-encode the TBS. When `for_dedup` is set, CT components are
    /// omitted so precert and final certificate encode identically.
    pub fn encode(&self, for_dedup: bool) -> Vec<u8> {
        let mut e = Encoder::new();
        e.int(3); // version marker
        e.uint(self.serial.0);
        encode_name(&mut e, &self.issuer);
        e.constructed(Tag::Sequence, |v| {
            v.int(self.validity.start.days_since_epoch());
            v.int(self.validity.end.days_since_epoch());
        });
        encode_name(&mut e, &self.subject);
        e.octets(self.public_key.as_bytes());
        e.constructed(Tag::Context0, |exts| {
            for ext in &self.extensions {
                if for_dedup && ext.is_ct_component() {
                    continue;
                }
                encode_extension(exts, ext);
            }
        });
        e.finish(Tag::Sequence)
    }

    /// Decode a TBS from DER.
    pub fn decode(der: &[u8]) -> Result<Self, DerError> {
        let mut top = Decoder::new(der);
        let mut seq = top.nested(Tag::Sequence)?;
        let version = match seq.int()? {
            3 => Version::V3,
            _ => return Err(DerError::BadContent("unsupported version")),
        };
        let serial = SerialNumber(seq.uint()?);
        let issuer = decode_name(&mut seq)?;
        let mut validity = seq.nested(Tag::Sequence)?;
        let start = Date::from_days(validity.int()?);
        let end = Date::from_days(validity.int()?);
        validity.finish()?;
        let validity = DateInterval::new(start, end)
            .map_err(|_| DerError::BadContent("notAfter precedes notBefore"))?;
        let subject = decode_name(&mut seq)?;
        let key_bytes = seq.octets()?;
        let public_key = PublicKey(
            key_bytes
                .try_into()
                .map_err(|_| DerError::BadContent("public key length"))?,
        );
        let mut exts_dec = seq.nested(Tag::Context0)?;
        let mut extensions = Vec::new();
        while !exts_dec.is_empty() {
            extensions.push(decode_extension(&mut exts_dec)?);
        }
        seq.finish()?;
        top.finish()?;
        Ok(TbsCertificate {
            version,
            serial,
            issuer,
            validity,
            subject,
            public_key,
            extensions,
        })
    }
}

fn encode_name(e: &mut Encoder, name: &Name) {
    e.constructed(Tag::Sequence, |n| {
        n.utf8(&name.common_name);
        if let Some(org) = &name.organization {
            n.constructed(Tag::Context1, |o| {
                o.utf8(org);
            });
        }
    });
}

fn decode_name(d: &mut Decoder<'_>) -> Result<Name, DerError> {
    let mut n = d.nested(Tag::Sequence)?;
    let common_name = n.utf8()?.to_string();
    let organization = if !n.is_empty() {
        let mut o = n.nested(Tag::Context1)?;
        let org = o.utf8()?.to_string();
        o.finish()?;
        Some(org)
    } else {
        None
    };
    n.finish()?;
    Ok(Name {
        common_name,
        organization,
    })
}

fn encode_extension(e: &mut Encoder, ext: &Extension) {
    e.constructed(Tag::Sequence, |x| {
        x.uint(ext.type_code() as u128);
        match ext {
            Extension::SubjectAltName(names) => {
                x.constructed(Tag::Sequence, |s| {
                    for name in names {
                        s.utf8(name.as_str());
                    }
                });
            }
            Extension::BasicConstraints { ca, path_len } => {
                x.boolean(*ca);
                match path_len {
                    Some(n) => x.uint(*n as u128),
                    None => x.null(),
                };
            }
            Extension::KeyUsage(ku) => {
                x.uint(ku.to_bits() as u128);
            }
            Extension::ExtendedKeyUsage(purposes) => {
                x.constructed(Tag::Sequence, |s| {
                    for p in purposes {
                        s.uint(p.to_code() as u128);
                    }
                });
            }
            Extension::SubjectKeyId(id) | Extension::AuthorityKeyId(id) => {
                x.octets(id.as_bytes());
            }
            Extension::CrlDistributionPoint(url) | Extension::AuthorityInfoAccess(url) => {
                x.utf8(url);
            }
            Extension::CertificatePolicies(oids) => {
                x.constructed(Tag::Sequence, |s| {
                    for oid in oids {
                        s.utf8(oid);
                    }
                });
            }
            Extension::PrecertPoison | Extension::MustStaple => {
                x.null();
            }
            Extension::SctList(scts) => {
                x.constructed(Tag::Sequence, |s| {
                    for sct in scts {
                        s.constructed(Tag::Sequence, |entry| {
                            entry.octets(&sct.log_id);
                            entry.int(sct.timestamp.days_since_epoch());
                        });
                    }
                });
            }
        }
    });
}

fn decode_extension(d: &mut Decoder<'_>) -> Result<Extension, DerError> {
    let mut x = d.nested(Tag::Sequence)?;
    let code = x.uint()?;
    let ext = match code {
        1 => {
            let mut s = x.nested(Tag::Sequence)?;
            let mut names = Vec::new();
            while !s.is_empty() {
                let raw = s.utf8()?;
                names
                    .push(DomainName::parse(raw).map_err(|_| DerError::BadContent("invalid SAN"))?);
            }
            Extension::SubjectAltName(names)
        }
        2 => {
            let ca = x.boolean()?;
            let path_len = if x.peek_tag()? == Tag::Null {
                x.null()?;
                None
            } else {
                Some(u8::try_from(x.uint()?).map_err(|_| DerError::BadContent("path len"))?)
            };
            Extension::BasicConstraints { ca, path_len }
        }
        3 => Extension::KeyUsage(KeyUsage::from_bits(
            u8::try_from(x.uint()?).map_err(|_| DerError::BadContent("key usage bits"))?,
        )),
        4 => {
            let mut s = x.nested(Tag::Sequence)?;
            let mut purposes = Vec::new();
            while !s.is_empty() {
                let code = u8::try_from(s.uint()?).map_err(|_| DerError::BadContent("eku"))?;
                purposes.push(EkuPurpose::from_code(code)?);
            }
            Extension::ExtendedKeyUsage(purposes)
        }
        5 | 6 => {
            let bytes = x.octets()?;
            let id = KeyId::from_bytes(
                bytes
                    .try_into()
                    .map_err(|_| DerError::BadContent("key id length"))?,
            );
            if code == 5 {
                Extension::SubjectKeyId(id)
            } else {
                Extension::AuthorityKeyId(id)
            }
        }
        7 => Extension::CrlDistributionPoint(x.utf8()?.to_string()),
        8 => Extension::AuthorityInfoAccess(x.utf8()?.to_string()),
        9 => {
            let mut s = x.nested(Tag::Sequence)?;
            let mut oids = Vec::new();
            while !s.is_empty() {
                oids.push(s.utf8()?.to_string());
            }
            Extension::CertificatePolicies(oids)
        }
        10 => {
            x.null()?;
            Extension::PrecertPoison
        }
        12 => {
            x.null()?;
            Extension::MustStaple
        }
        11 => {
            let mut s = x.nested(Tag::Sequence)?;
            let mut scts = Vec::new();
            while !s.is_empty() {
                let mut entry = s.nested(Tag::Sequence)?;
                let log_id: [u8; 32] = entry
                    .octets()?
                    .try_into()
                    .map_err(|_| DerError::BadContent("log id length"))?;
                let timestamp = Date::from_days(entry.int()?);
                entry.finish()?;
                scts.push(SignedCertificateTimestamp { log_id, timestamp });
            }
            Extension::SctList(scts)
        }
        _ => return Err(DerError::BadContent("unknown extension code")),
    };
    x.finish()?;
    Ok(ext)
}

/// A signed certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The signed payload.
    pub tbs: TbsCertificate,
    /// The issuer's signature over `tbs.encode(false)`.
    pub signature: Signature,
}

impl Certificate {
    /// Dedup identity: SHA-256 over the TBS with CT components stripped.
    pub fn cert_id(&self) -> CertId {
        CertId::from_bytes(sha256(&self.tbs.encode(true)))
    }

    /// Fingerprint over the full encoding including signature.
    pub fn fingerprint(&self) -> [u8; 32] {
        sha256(&self.encode())
    }

    /// DER-encode `SEQUENCE { tbs, signature }`.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.raw(&self.tbs.encode(false));
        e.octets(self.signature.as_bytes());
        e.finish(Tag::Sequence)
    }

    /// Decode a certificate.
    pub fn decode(der: &[u8]) -> Result<Self, DerError> {
        let mut top = Decoder::new(der);
        let mut seq = top.nested(Tag::Sequence)?;
        // The TBS is the first nested SEQUENCE; re-encode boundary by
        // capturing its raw bytes.
        let (tag, tbs_content) = seq.any()?;
        if tag != Tag::Sequence {
            return Err(DerError::UnexpectedTag {
                expected: Tag::Sequence,
                found: tag,
            });
        }
        // Rebuild the full TLV for TbsCertificate::decode.
        let mut tbs_der = Encoder::new();
        tbs_der.raw(&{
            let mut w = Vec::new();
            crate::der::write_tlv(&mut w, Tag::Sequence, tbs_content);
            w
        });
        let tbs = TbsCertificate::decode(&tbs_der.into_inner())?;
        let sig_bytes = seq.octets()?;
        let signature = Signature(
            sig_bytes
                .try_into()
                .map_err(|_| DerError::BadContent("signature length"))?,
        );
        seq.finish()?;
        top.finish()?;
        Ok(Certificate { tbs, signature })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crypto::KeyPair;
    use stale_types::domain::dn;

    fn sample_tbs() -> TbsCertificate {
        let key = KeyPair::from_seed([1; 32]);
        TbsCertificate {
            version: Version::V3,
            serial: SerialNumber(0xABCDEF),
            issuer: Name::cn_org("Example CA R3", "Example Trust Services"),
            validity: DateInterval::new(
                Date::parse("2022-01-01").unwrap(),
                Date::parse("2022-04-01").unwrap(),
            )
            .unwrap(),
            subject: Name::cn("foo.com"),
            public_key: key.public(),
            extensions: vec![
                Extension::SubjectAltName(vec![dn("foo.com"), dn("*.foo.com")]),
                Extension::BasicConstraints {
                    ca: false,
                    path_len: None,
                },
                Extension::KeyUsage(KeyUsage::tls_leaf()),
                Extension::ExtendedKeyUsage(vec![EkuPurpose::ServerAuth, EkuPurpose::ClientAuth]),
                Extension::SubjectKeyId(KeyId::from_bytes(key.public().key_id())),
                Extension::AuthorityKeyId(KeyId::from_bytes([9; 20])),
                Extension::CrlDistributionPoint("http://crl.example/r3.crl".into()),
                Extension::CertificatePolicies(vec!["2.23.140.1.2.1".into()]),
            ],
        }
    }

    #[test]
    fn tbs_roundtrip() {
        let tbs = sample_tbs();
        let der = tbs.encode(false);
        let back = TbsCertificate::decode(&der).unwrap();
        assert_eq!(back, tbs);
    }

    #[test]
    fn accessors() {
        let tbs = sample_tbs();
        assert_eq!(tbs.san().len(), 2);
        assert_eq!(tbs.lifetime(), Duration::days(90));
        assert_eq!(tbs.authority_key_id(), Some(KeyId::from_bytes([9; 20])));
        assert!(!tbs.is_ca());
        assert!(!tbs.is_precert());
    }

    #[test]
    fn precert_and_final_share_cert_id() {
        let key = KeyPair::from_seed([2; 32]);
        let mut precert_tbs = sample_tbs();
        precert_tbs.extensions.push(Extension::PrecertPoison);
        let mut final_tbs = sample_tbs();
        final_tbs
            .extensions
            .push(Extension::SctList(vec![SignedCertificateTimestamp {
                log_id: [7; 32],
                timestamp: Date::parse("2022-01-01").unwrap(),
            }]));
        let sig = crypto::SimSig::sign(key.private(), b"x");
        let precert = Certificate {
            tbs: precert_tbs,
            signature: sig,
        };
        let final_cert = Certificate {
            tbs: final_tbs,
            signature: sig,
        };
        assert_eq!(precert.cert_id(), final_cert.cert_id());
        // But their full fingerprints differ.
        assert_ne!(precert.fingerprint(), final_cert.fingerprint());
        assert!(precert.tbs.is_precert());
        assert!(!final_cert.tbs.is_precert());
    }

    #[test]
    fn different_san_different_cert_id() {
        let key = KeyPair::from_seed([2; 32]);
        let sig = crypto::SimSig::sign(key.private(), b"x");
        let a = Certificate {
            tbs: sample_tbs(),
            signature: sig,
        };
        let mut tbs2 = sample_tbs();
        tbs2.extensions[0] = Extension::SubjectAltName(vec![dn("bar.com")]);
        let b = Certificate {
            tbs: tbs2,
            signature: sig,
        };
        assert_ne!(a.cert_id(), b.cert_id());
    }

    #[test]
    fn certificate_roundtrip() {
        let key = KeyPair::from_seed([3; 32]);
        let tbs = sample_tbs();
        let signature = crypto::SimSig::sign(key.private(), &tbs.encode(false));
        let cert = Certificate { tbs, signature };
        let der = cert.encode();
        let back = Certificate::decode(&der).unwrap();
        assert_eq!(back, cert);
        assert_eq!(back.cert_id(), cert.cert_id());
    }

    #[test]
    fn all_extension_variants_roundtrip() {
        let mut tbs = sample_tbs();
        tbs.extensions
            .push(Extension::AuthorityInfoAccess("http://ocsp.example".into()));
        tbs.extensions.push(Extension::BasicConstraints {
            ca: true,
            path_len: Some(2),
        });
        tbs.extensions.push(Extension::PrecertPoison);
        tbs.extensions.push(Extension::SctList(vec![
            SignedCertificateTimestamp {
                log_id: [1; 32],
                timestamp: Date::from_days(19000),
            },
            SignedCertificateTimestamp {
                log_id: [2; 32],
                timestamp: Date::from_days(19001),
            },
        ]));
        let der = tbs.encode(false);
        assert_eq!(TbsCertificate::decode(&der).unwrap(), tbs);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(TbsCertificate::decode(&[0x30, 0x01, 0x02]).is_err());
        assert!(Certificate::decode(b"not der at all").is_err());
        // Validity with end < start is rejected at decode.
        let tbs = sample_tbs();
        let mut der = tbs.encode(false);
        // Corrupting bytes may produce any DerError but must not panic.
        for i in 0..der.len() {
            der[i] ^= 0xFF;
            let _ = TbsCertificate::decode(&der);
            der[i] ^= 0xFF;
        }
    }
}
