//! Certificate Transparency substrate.
//!
//! The paper's primary dataset is CT: 5B certificates collected from 117
//! Chrome/Apple-trusted logs, deduplicated on non-CT components (§4).
//! This crate implements the log side and the monitor side:
//!
//! * [`merkle`] — the RFC 6962 Merkle tree with the leaf/node domain
//!   separation prefixes, plus audit (inclusion) and consistency proofs;
//! * [`log`] — an append-only [`log::CtLog`] issuing SCTs and signed tree
//!   heads, and [`log::LogPool`] with the temporal sharding real operators
//!   use to cope with issuance volume (§7.2);
//! * [`monitor`] — the measurement pipeline's view: ingest every log,
//!   deduplicate precert/final pairs by [`x509::Certificate::cert_id`],
//!   and apply the paper's >3K-certs-per-FQDN outlier filter.

pub mod client;
pub mod log;
pub mod merkle;
pub mod monitor;

pub use client::{LogSyncer, SyncError};
pub use log::{CtLog, LogEntry, LogPool, SignedTreeHead};
pub use merkle::MerkleTree;
pub use monitor::{CtMonitor, DedupedCert};
