//! RFC 6962 Merkle hash tree.
//!
//! Leaf hash is `SHA-256(0x00 || leaf)` and node hash is
//! `SHA-256(0x01 || left || right)` — the domain separation that prevents
//! leaf/node second-preimage confusion. The tree is append-only and
//! supports audit (inclusion) proofs and consistency proofs between tree
//! sizes, both verifiable with the standard RFC 6962 §2.1 algorithms.

use crypto::sha256::Sha256;

type Hash = [u8; 32];

fn leaf_hash(data: &[u8]) -> Hash {
    let mut h = Sha256::new();
    h.update(&[0x00]).update(data);
    h.finalize()
}

fn node_hash(left: &Hash, right: &Hash) -> Hash {
    let mut h = Sha256::new();
    h.update(&[0x01]).update(left).update(right);
    h.finalize()
}

/// An append-only Merkle tree storing leaf hashes.
#[derive(Debug, Clone, Default)]
pub struct MerkleTree {
    leaves: Vec<Hash>,
}

impl MerkleTree {
    /// Empty tree.
    pub fn new() -> Self {
        MerkleTree::default()
    }

    /// Append a leaf; returns its index.
    pub fn append(&mut self, data: &[u8]) -> u64 {
        self.leaves.push(leaf_hash(data));
        (self.leaves.len() - 1) as u64
    }

    /// Number of leaves.
    pub fn size(&self) -> u64 {
        self.leaves.len() as u64
    }

    /// Root hash of the whole tree. The empty tree hashes to
    /// `SHA-256("")` per RFC 6962.
    pub fn root(&self) -> Hash {
        self.subtree_root(0, self.leaves.len())
    }

    /// Root of the first `n` leaves (a historical tree head).
    pub fn root_at(&self, n: u64) -> Option<Hash> {
        let n = n as usize;
        if n > self.leaves.len() {
            return None;
        }
        Some(self.subtree_root(0, n))
    }

    /// MTH over `leaves[lo..hi)` (RFC 6962 §2.1).
    fn subtree_root(&self, lo: usize, hi: usize) -> Hash {
        let n = hi - lo;
        match n {
            0 => Sha256::new().finalize(),
            1 => self.leaves[lo],
            _ => {
                let k = largest_power_of_two_lt(n);
                let left = self.subtree_root(lo, lo + k);
                let right = self.subtree_root(lo + k, hi);
                node_hash(&left, &right)
            }
        }
    }

    /// Audit path for `leaf_index` in the tree of the first `tree_size`
    /// leaves (RFC 6962 §2.1.1).
    pub fn inclusion_proof(&self, leaf_index: u64, tree_size: u64) -> Option<Vec<Hash>> {
        if leaf_index >= tree_size || tree_size > self.size() {
            return None;
        }
        Some(self.path(leaf_index as usize, 0, tree_size as usize))
    }

    /// `m` is the leaf index relative to `lo`.
    fn path(&self, m: usize, lo: usize, hi: usize) -> Vec<Hash> {
        let n = hi - lo;
        if n <= 1 {
            return Vec::new();
        }
        let k = largest_power_of_two_lt(n);
        let mut proof;
        if m < k {
            proof = self.path(m, lo, lo + k);
            proof.push(self.subtree_root(lo + k, hi));
        } else {
            proof = self.path(m - k, lo + k, hi);
            proof.push(self.subtree_root(lo, lo + k));
        }
        proof
    }

    /// Consistency proof between tree sizes `m <= n` (RFC 6962 §2.1.2).
    pub fn consistency_proof(&self, m: u64, n: u64) -> Option<Vec<Hash>> {
        if m > n || n > self.size() || m == 0 {
            return None;
        }
        Some(self.subproof(m as usize, 0, n as usize, true))
    }

    fn subproof(&self, m: usize, lo: usize, hi: usize, whole: bool) -> Vec<Hash> {
        let n = hi - lo;
        if m == n {
            return if whole {
                Vec::new()
            } else {
                vec![self.subtree_root(lo, hi)]
            };
        }
        let k = largest_power_of_two_lt(n);
        if m <= k {
            let mut proof = self.subproof(m, lo, lo + k, whole);
            proof.push(self.subtree_root(lo + k, hi));
            proof
        } else {
            let mut proof = self.subproof(m - k, lo + k, hi, false);
            proof.push(self.subtree_root(lo, lo + k));
            proof
        }
    }
}

fn largest_power_of_two_lt(n: usize) -> usize {
    debug_assert!(n >= 2);
    let mut k = 1;
    while k * 2 < n {
        k *= 2;
    }
    k
}

/// Verify an RFC 6962 inclusion proof.
pub fn verify_inclusion(
    leaf_data: &[u8],
    leaf_index: u64,
    tree_size: u64,
    proof: &[Hash],
    root: &Hash,
) -> bool {
    if leaf_index >= tree_size {
        return false;
    }
    let mut hash = leaf_hash(leaf_data);
    let mut fn_ = leaf_index;
    let mut sn = tree_size - 1;
    for sibling in proof {
        if sn == 0 {
            return false;
        }
        if fn_ & 1 == 1 || fn_ == sn {
            hash = node_hash(sibling, &hash);
            while fn_ & 1 == 0 && fn_ != 0 {
                fn_ >>= 1;
                sn >>= 1;
            }
        } else {
            hash = node_hash(&hash, sibling);
        }
        fn_ >>= 1;
        sn >>= 1;
    }
    sn == 0 && hash == *root
}

/// Verify an RFC 6962 consistency proof between `root_m` (size `m`) and
/// `root_n` (size `n`).
pub fn verify_consistency(m: u64, n: u64, proof: &[Hash], root_m: &Hash, root_n: &Hash) -> bool {
    if m == n {
        return proof.is_empty() && root_m == root_n;
    }
    if m == 0 || m > n {
        return false;
    }
    // RFC 6962 §2.1.4.2 verification algorithm.
    let mut fn_ = m - 1;
    let mut sn = n - 1;
    while fn_ & 1 == 1 {
        fn_ >>= 1;
        sn >>= 1;
    }
    let mut proof_iter = proof.iter();
    let (mut fr, mut sr) = if fn_ == 0 {
        (*root_m, *root_m)
    } else {
        match proof_iter.next() {
            Some(first) => (*first, *first),
            None => return false,
        }
    };
    for c in proof_iter {
        if sn == 0 {
            return false;
        }
        if fn_ & 1 == 1 || fn_ == sn {
            fr = node_hash(c, &fr);
            sr = node_hash(c, &sr);
            while fn_ & 1 == 0 && fn_ != 0 {
                fn_ >>= 1;
                sn >>= 1;
            }
        } else {
            sr = node_hash(&sr, c);
        }
        fn_ >>= 1;
        sn >>= 1;
    }
    fr == *root_m && sr == *root_n && sn == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize) -> MerkleTree {
        let mut t = MerkleTree::new();
        for i in 0..n {
            t.append(format!("leaf-{i}").as_bytes());
        }
        t
    }

    #[test]
    fn empty_tree_root_is_sha256_empty() {
        let t = MerkleTree::new();
        let expected = crypto::sha256(b"");
        assert_eq!(t.root(), expected);
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let mut t = MerkleTree::new();
        t.append(b"hello");
        assert_eq!(t.root(), leaf_hash(b"hello"));
    }

    #[test]
    fn root_changes_with_appends() {
        let mut t = MerkleTree::new();
        let mut roots = Vec::new();
        for i in 0..20 {
            t.append(format!("leaf-{i}").as_bytes());
            roots.push(t.root());
        }
        for w in roots.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn inclusion_proofs_verify_all_sizes() {
        for size in 1..=33u64 {
            let t = build(size as usize);
            let root = t.root();
            for idx in 0..size {
                let proof = t.inclusion_proof(idx, size).unwrap();
                let data = format!("leaf-{idx}");
                assert!(
                    verify_inclusion(data.as_bytes(), idx, size, &proof, &root),
                    "size {size} idx {idx}"
                );
                // Wrong leaf fails.
                assert!(!verify_inclusion(b"other", idx, size, &proof, &root));
            }
        }
    }

    #[test]
    fn inclusion_proof_for_historical_size() {
        let t = build(20);
        let old_root = t.root_at(13).unwrap();
        let proof = t.inclusion_proof(5, 13).unwrap();
        assert!(verify_inclusion(b"leaf-5", 5, 13, &proof, &old_root));
        // Against the wrong (current) root it fails.
        assert!(!verify_inclusion(b"leaf-5", 5, 13, &proof, &t.root()));
    }

    #[test]
    fn consistency_proofs_verify_all_pairs() {
        let t = build(17);
        for m in 1..=17u64 {
            for n in m..=17u64 {
                let proof = t.consistency_proof(m, n).unwrap();
                let root_m = t.root_at(m).unwrap();
                let root_n = t.root_at(n).unwrap();
                assert!(
                    verify_consistency(m, n, &proof, &root_m, &root_n),
                    "consistency {m}->{n}"
                );
            }
        }
    }

    #[test]
    fn consistency_detects_mutation() {
        let t = build(10);
        let mut t2 = build(7);
        // Divergent history: different 8th leaf.
        t2.append(b"evil-leaf");
        t2.append(b"leaf-8");
        t2.append(b"leaf-9");
        let proof = t2.consistency_proof(7, 10).unwrap();
        let root_7 = t.root_at(7).unwrap(); // honest old root
        let root_10_evil = t2.root();
        // Honest old root vs evil new root: proof from the evil tree must
        // not link them both... (it does link root_7 since first 7 leaves
        // agree, but the evil root differs from the honest root)
        assert!(verify_consistency(7, 10, &proof, &root_7, &root_10_evil));
        assert_ne!(t.root(), root_10_evil, "trees diverge");
        // A proof against a fully tampered prefix fails.
        let bad_root = [0u8; 32];
        assert!(!verify_consistency(7, 10, &proof, &bad_root, &root_10_evil));
    }

    #[test]
    fn out_of_range_proofs_rejected() {
        let t = build(5);
        assert!(t.inclusion_proof(5, 5).is_none());
        assert!(t.inclusion_proof(0, 6).is_none());
        assert!(t.consistency_proof(0, 3).is_none());
        assert!(t.consistency_proof(4, 3).is_none());
        assert!(t.consistency_proof(3, 6).is_none());
        assert!(t.root_at(6).is_none());
    }

    #[test]
    fn rfc6962_shape_proof_lengths() {
        // For a 7-leaf tree, inclusion proof of leaf 0 has 3 siblings.
        let t = build(7);
        assert_eq!(t.inclusion_proof(0, 7).unwrap().len(), 3);
        // Consistency 3->7 per the RFC example is [c, d, g, l]: 4 nodes.
        assert_eq!(t.consistency_proof(3, 7).unwrap().len(), 4);
        // Consistency 4->7 has 1 node (4 is a complete subtree).
        assert_eq!(t.consistency_proof(4, 7).unwrap().len(), 1);
    }
}
