//! CT logs: append-only certificate logs with SCTs, signed tree heads and
//! temporal sharding.
//!
//! Real logs accept a certificate (or precertificate), return a *signed
//! certificate timestamp* as a promise of inclusion within the maximum
//! merge delay, and periodically publish a *signed tree head*. Operators
//! shard logs by certificate expiry year to bound tree growth (§7.2:
//! "Certificate Transparency logs ... have introduced temporal log
//! sharding").

use crate::merkle::MerkleTree;
use crypto::sha256::sha256;
use crypto::{KeyPair, Signature, SimSig};
use stale_types::Date;
use x509::cert::SignedCertificateTimestamp;
use x509::Certificate;

/// One accepted log entry.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// Position in the log.
    pub index: u64,
    /// Day the entry was accepted.
    pub timestamp: Date,
    /// The logged certificate (precert or final).
    pub certificate: Certificate,
}

/// A signed tree head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedTreeHead {
    /// Tree size at signing.
    pub tree_size: u64,
    /// Day of signing.
    pub timestamp: Date,
    /// Merkle root at `tree_size`.
    pub root: [u8; 32],
    /// Log signature over (size, timestamp, root).
    pub signature: Signature,
}

/// Why a log rejected a submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogError {
    /// The certificate expires outside this shard's window.
    OutsideShardWindow {
        /// Shard expiry-year start.
        start: Date,
        /// Shard expiry-year end.
        end: Date,
    },
    /// The log stopped accepting entries (retired/read-only).
    Retired,
}

/// An append-only CT log (possibly one temporal shard of an operator's
/// log family).
pub struct CtLog {
    /// Human-readable log name, e.g. `argon2023`.
    pub name: String,
    key: KeyPair,
    tree: MerkleTree,
    entries: Vec<LogEntry>,
    /// Accept only certificates whose `notAfter` falls in `[start, end)`,
    /// when set (temporal shard).
    expiry_window: Option<(Date, Date)>,
    retired: bool,
}

impl CtLog {
    /// A log with no shard window.
    pub fn new(name: impl Into<String>, key: KeyPair) -> Self {
        CtLog {
            name: name.into(),
            key,
            tree: MerkleTree::new(),
            entries: Vec::new(),
            expiry_window: None,
            retired: false,
        }
    }

    /// A temporal shard accepting expiries in `[start, end)`.
    pub fn sharded(name: impl Into<String>, key: KeyPair, start: Date, end: Date) -> Self {
        let mut log = CtLog::new(name, key);
        log.expiry_window = Some((start, end));
        log
    }

    /// The log id: SHA-256 of the log public key.
    pub fn log_id(&self) -> [u8; 32] {
        sha256(self.key.public().as_bytes())
    }

    /// Stop accepting submissions.
    pub fn retire(&mut self) {
        self.retired = true;
    }

    /// Submit a certificate; returns the SCT on acceptance.
    pub fn submit(
        &mut self,
        cert: Certificate,
        today: Date,
    ) -> Result<SignedCertificateTimestamp, LogError> {
        if self.retired {
            return Err(LogError::Retired);
        }
        if let Some((start, end)) = self.expiry_window {
            let not_after = cert.tbs.not_after();
            if not_after < start || not_after >= end {
                return Err(LogError::OutsideShardWindow { start, end });
            }
        }
        let index = self.tree.append(&cert.encode());
        self.entries.push(LogEntry {
            index,
            timestamp: today,
            certificate: cert,
        });
        Ok(SignedCertificateTimestamp {
            log_id: self.log_id(),
            timestamp: today,
        })
    }

    /// Number of entries.
    pub fn size(&self) -> u64 {
        self.tree.size()
    }

    /// Sign the current tree head.
    pub fn tree_head(&self, today: Date) -> SignedTreeHead {
        let root = self.tree.root();
        let mut msg = Vec::with_capacity(48);
        msg.extend_from_slice(&self.tree.size().to_be_bytes());
        msg.extend_from_slice(&today.days_since_epoch().to_be_bytes());
        msg.extend_from_slice(&root);
        SignedTreeHead {
            tree_size: self.tree.size(),
            timestamp: today,
            root,
            signature: SimSig::sign(self.key.private(), &msg),
        }
    }

    /// Verify a tree head against this log's public key.
    pub fn verify_tree_head(&self, sth: &SignedTreeHead) -> bool {
        let mut msg = Vec::with_capacity(48);
        msg.extend_from_slice(&sth.tree_size.to_be_bytes());
        msg.extend_from_slice(&sth.timestamp.days_since_epoch().to_be_bytes());
        msg.extend_from_slice(&sth.root);
        SimSig::verify(&self.key.public(), &msg, &sth.signature)
    }

    /// Inclusion proof for entry `index` at tree size `size`.
    pub fn inclusion_proof(&self, index: u64, size: u64) -> Option<Vec<[u8; 32]>> {
        self.tree.inclusion_proof(index, size)
    }

    /// All entries (monitor download).
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// The underlying tree (for proof verification in tests).
    pub fn tree(&self) -> &MerkleTree {
        &self.tree
    }
}

/// A pool of logs as a monitor sees them: multiple operators, sharded by
/// expiry year.
#[derive(Default)]
pub struct LogPool {
    logs: Vec<CtLog>,
}

impl LogPool {
    /// Empty pool.
    pub fn new() -> Self {
        LogPool::default()
    }

    /// Create yearly shards named `{operator}{year}` covering
    /// `[first_year, last_year]`.
    pub fn with_yearly_shards(
        operator: &str,
        key_seed: u8,
        first_year: i32,
        last_year: i32,
    ) -> Self {
        let mut pool = LogPool::new();
        for year in first_year..=last_year {
            let mut seed = [key_seed; 32];
            seed[0] = (year % 256) as u8;
            seed[1] = (year / 256) as u8;
            let key = KeyPair::from_seed(seed);
            let start = Date::from_ymd(year, 1, 1).expect("jan 1");
            let end = Date::from_ymd(year + 1, 1, 1).expect("jan 1");
            pool.logs
                .push(CtLog::sharded(format!("{operator}{year}"), key, start, end));
        }
        pool
    }

    /// Add a log.
    pub fn add(&mut self, log: CtLog) {
        self.logs.push(log);
    }

    /// Submit to the first accepting log; returns `(log name, SCT)`.
    pub fn submit(
        &mut self,
        cert: Certificate,
        today: Date,
    ) -> Option<(String, SignedCertificateTimestamp)> {
        for log in &mut self.logs {
            if let Ok(sct) = log.submit(cert.clone(), today) {
                return Some((log.name.clone(), sct));
            }
        }
        None
    }

    /// Iterate logs.
    pub fn logs(&self) -> &[CtLog] {
        &self.logs
    }

    /// Total entries across logs.
    pub fn total_entries(&self) -> u64 {
        self.logs.iter().map(CtLog::size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merkle::verify_inclusion;
    use crypto::KeyPair;
    use stale_types::{domain::dn, Duration};
    use x509::CertificateBuilder;

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    fn cert(name: &str, not_before: &str, days: i64) -> Certificate {
        let ca = KeyPair::from_seed([50; 32]);
        let leaf = KeyPair::from_seed([51; 32]);
        CertificateBuilder::tls_leaf(leaf.public())
            .serial(7)
            .issuer_cn("Test CA")
            .subject_cn(name)
            .san(dn(name))
            .validity_days(d(not_before), Duration::days(days))
            .sign(&ca)
    }

    #[test]
    fn submit_and_prove_inclusion() {
        let mut log = CtLog::new("test-log", KeyPair::from_seed([1; 32]));
        let mut certs = Vec::new();
        for i in 0..10 {
            let c = cert(&format!("site{i}.com"), "2022-01-01", 90);
            log.submit(c.clone(), d("2022-01-01")).unwrap();
            certs.push(c);
        }
        let sth = log.tree_head(d("2022-01-02"));
        assert!(log.verify_tree_head(&sth));
        for (i, c) in certs.iter().enumerate() {
            let proof = log.inclusion_proof(i as u64, sth.tree_size).unwrap();
            assert!(verify_inclusion(
                &c.encode(),
                i as u64,
                sth.tree_size,
                &proof,
                &sth.root
            ));
        }
    }

    #[test]
    fn tampered_sth_rejected() {
        let mut log = CtLog::new("test-log", KeyPair::from_seed([1; 32]));
        log.submit(cert("a.com", "2022-01-01", 90), d("2022-01-01"))
            .unwrap();
        let mut sth = log.tree_head(d("2022-01-02"));
        sth.tree_size += 1;
        assert!(!log.verify_tree_head(&sth));
    }

    #[test]
    fn shard_window_enforced() {
        let key = KeyPair::from_seed([2; 32]);
        let mut shard = CtLog::sharded("argon2023", key, d("2023-01-01"), d("2024-01-01"));
        // Expires 2023-04-01: accepted.
        assert!(shard
            .submit(cert("a.com", "2023-01-01", 90), d("2023-01-01"))
            .is_ok());
        // Expires 2022: rejected.
        assert!(matches!(
            shard.submit(cert("b.com", "2022-01-01", 90), d("2022-01-01")),
            Err(LogError::OutsideShardWindow { .. })
        ));
    }

    #[test]
    fn retired_log_rejects() {
        let mut log = CtLog::new("old-log", KeyPair::from_seed([3; 32]));
        log.retire();
        assert_eq!(
            log.submit(cert("a.com", "2022-01-01", 90), d("2022-01-01")),
            Err(LogError::Retired)
        );
    }

    #[test]
    fn pool_routes_to_matching_shard() {
        let mut pool = LogPool::with_yearly_shards("argon", 9, 2022, 2024);
        let (name, _sct) = pool
            .submit(cert("a.com", "2023-06-01", 90), d("2023-06-01"))
            .unwrap();
        assert_eq!(name, "argon2023");
        let (name2, _) = pool
            .submit(cert("b.com", "2022-01-01", 90), d("2022-01-01"))
            .unwrap();
        assert_eq!(name2, "argon2022");
        // A certificate expiring in 2026 finds no shard.
        assert!(pool
            .submit(cert("c.com", "2025-06-01", 398), d("2025-06-01"))
            .is_none());
        assert_eq!(pool.total_entries(), 2);
    }

    #[test]
    fn log_ids_are_distinct_per_key() {
        let a = CtLog::new("a", KeyPair::from_seed([1; 32]));
        let b = CtLog::new("b", KeyPair::from_seed([2; 32]));
        assert_ne!(a.log_id(), b.log_id());
    }
}
