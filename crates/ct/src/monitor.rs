//! The monitor-side CT pipeline: ingest, dedup, filter.
//!
//! §4 of the paper: download all entries from every trusted log,
//! "deduplicate precertificates and issued certificates based on their
//! non-CT components", and "ignore fully qualified domain names that have
//! more than 3K certificates ... since they are either test domains or
//! represent an anomalous case of certificate issuance".

use crate::log::LogPool;
use stale_types::{CertId, Date, DomainName};
use std::collections::{BTreeMap, HashMap, HashSet};
use x509::Certificate;

/// The paper's per-FQDN outlier threshold.
pub const FQDN_CERT_CAP: usize = 3000;

/// A deduplicated certificate as the measurement pipeline sees it.
#[derive(Debug, Clone)]
pub struct DedupedCert {
    /// Dedup identity.
    pub cert_id: CertId,
    /// The certificate (final version preferred over precert).
    pub certificate: Certificate,
    /// Earliest log timestamp across the entries that collapsed here.
    pub first_seen: Date,
    /// How many raw log entries collapsed into this record.
    pub entry_count: usize,
}

/// Monitor that aggregates log entries into a deduplicated corpus.
#[derive(Default)]
pub struct CtMonitor {
    certs: BTreeMap<CertId, DedupedCert>,
    /// FQDN → number of deduped certificates naming it.
    fqdn_counts: HashMap<DomainName, usize>,
}

impl CtMonitor {
    /// Empty monitor.
    pub fn new() -> Self {
        CtMonitor::default()
    }

    /// Ingest one certificate observed in a log at `timestamp`.
    pub fn ingest(&mut self, cert: Certificate, timestamp: Date) {
        let id = cert.cert_id();
        match self.certs.get_mut(&id) {
            Some(existing) => {
                existing.entry_count += 1;
                existing.first_seen = existing.first_seen.min(timestamp);
                // Prefer keeping the final certificate over the precert.
                if existing.certificate.tbs.is_precert() && !cert.tbs.is_precert() {
                    existing.certificate = cert;
                }
            }
            None => {
                for san in cert.tbs.san() {
                    *self.fqdn_counts.entry(san.clone()).or_insert(0) += 1;
                }
                self.certs.insert(
                    id,
                    DedupedCert {
                        cert_id: id,
                        certificate: cert,
                        first_seen: timestamp,
                        entry_count: 1,
                    },
                );
            }
        }
    }

    /// Ingest every entry of every log in a pool.
    pub fn ingest_pool(&mut self, pool: &LogPool) {
        for log in pool.logs() {
            for entry in log.entries() {
                self.ingest(entry.certificate.clone(), entry.timestamp);
            }
        }
    }

    /// FQDNs exceeding the outlier cap.
    pub fn anomalous_fqdns(&self) -> HashSet<DomainName> {
        self.fqdn_counts
            .iter()
            .filter(|(_, &count)| count > FQDN_CERT_CAP)
            .map(|(name, _)| name.clone())
            .collect()
    }

    /// The deduplicated corpus with the per-FQDN outlier filter applied:
    /// certificates naming an anomalous FQDN are dropped.
    pub fn corpus(&self) -> Vec<&DedupedCert> {
        let anomalous = self.anomalous_fqdns();
        self.certs
            .values()
            .filter(|c| {
                anomalous.is_empty()
                    || !c
                        .certificate
                        .tbs
                        .san()
                        .iter()
                        .any(|san| anomalous.contains(san))
            })
            .collect()
    }

    /// The corpus without the outlier filter.
    pub fn corpus_unfiltered(&self) -> impl Iterator<Item = &DedupedCert> {
        self.certs.values()
    }

    /// Look up by dedup id.
    pub fn get(&self, id: &CertId) -> Option<&DedupedCert> {
        self.certs.get(id)
    }

    /// Deduplicated certificate count (before outlier filtering).
    pub fn dedup_count(&self) -> usize {
        self.certs.len()
    }

    /// Raw entries ingested.
    pub fn raw_count(&self) -> usize {
        self.certs.values().map(|c| c.entry_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crypto::KeyPair;
    use stale_types::{domain::dn, Duration};
    use x509::cert::SignedCertificateTimestamp;
    use x509::CertificateBuilder;

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    fn builder(name: &str, serial: u128) -> CertificateBuilder {
        let leaf = KeyPair::from_seed([60; 32]);
        CertificateBuilder::tls_leaf(leaf.public())
            .serial(serial)
            .issuer_cn("Test CA")
            .subject_cn(name)
            .san(dn(name))
            .validity_days(d("2022-01-01"), Duration::days(90))
    }

    fn ca() -> KeyPair {
        KeyPair::from_seed([61; 32])
    }

    #[test]
    fn precert_and_final_collapse() {
        let mut monitor = CtMonitor::new();
        let precert = builder("foo.com", 1).precert().sign(&ca());
        let final_cert = builder("foo.com", 1)
            .scts(vec![SignedCertificateTimestamp {
                log_id: [1; 32],
                timestamp: d("2022-01-01"),
            }])
            .sign(&ca());
        monitor.ingest(precert, d("2022-01-01"));
        monitor.ingest(final_cert.clone(), d("2022-01-02"));
        assert_eq!(monitor.dedup_count(), 1);
        assert_eq!(monitor.raw_count(), 2);
        let rec = monitor.corpus()[0];
        assert_eq!(rec.first_seen, d("2022-01-01"));
        assert!(!rec.certificate.tbs.is_precert(), "final version preferred");
        assert_eq!(rec.entry_count, 2);
    }

    #[test]
    fn final_then_precert_keeps_final() {
        let mut monitor = CtMonitor::new();
        let final_cert = builder("foo.com", 1)
            .scts(vec![SignedCertificateTimestamp {
                log_id: [1; 32],
                timestamp: d("2022-01-01"),
            }])
            .sign(&ca());
        let precert = builder("foo.com", 1).precert().sign(&ca());
        monitor.ingest(final_cert, d("2022-01-02"));
        monitor.ingest(precert, d("2022-01-01"));
        let rec = monitor.corpus()[0];
        assert!(!rec.certificate.tbs.is_precert());
        assert_eq!(
            rec.first_seen,
            d("2022-01-01"),
            "first_seen takes the earlier timestamp"
        );
    }

    #[test]
    fn distinct_serials_do_not_collapse() {
        let mut monitor = CtMonitor::new();
        monitor.ingest(builder("foo.com", 1).sign(&ca()), d("2022-01-01"));
        monitor.ingest(builder("foo.com", 2).sign(&ca()), d("2022-01-01"));
        assert_eq!(monitor.dedup_count(), 2);
    }

    #[test]
    fn fqdn_cap_filters_anomalous_domains() {
        let mut monitor = CtMonitor::new();
        // A "flowers-to-the-world.com" style test domain with >3K certs.
        for i in 0..(FQDN_CERT_CAP + 10) as u128 {
            monitor.ingest(builder("flowers.test.com", i).sign(&ca()), d("2022-01-01"));
        }
        monitor.ingest(builder("normal.com", 999_999).sign(&ca()), d("2022-01-01"));
        assert_eq!(monitor.anomalous_fqdns().len(), 1);
        let corpus = monitor.corpus();
        assert_eq!(corpus.len(), 1);
        assert_eq!(corpus[0].certificate.tbs.san()[0], dn("normal.com"));
        // Unfiltered retains everything.
        assert_eq!(monitor.corpus_unfiltered().count(), FQDN_CERT_CAP + 11);
    }

    #[test]
    fn get_by_id() {
        let mut monitor = CtMonitor::new();
        let cert = builder("foo.com", 5).sign(&ca());
        let id = cert.cert_id();
        monitor.ingest(cert, d("2022-01-01"));
        assert!(monitor.get(&id).is_some());
        assert!(monitor.get(&CertId::from_bytes([0; 32])).is_none());
    }
}
