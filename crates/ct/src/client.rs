//! Monitor-side log synchronisation.
//!
//! A real CT monitor polls each log: fetch the signed tree head, verify
//! its signature, verify a *consistency proof* against the previously
//! trusted head (so the log cannot rewrite history), then page through
//! `get-entries` for the new range. [`LogSyncer`] implements that loop
//! against [`CtLog`], detecting both signature forgery and split-view /
//! history-rewrite attempts.

use crate::log::{CtLog, SignedTreeHead};
use crate::merkle::verify_consistency;
use crate::monitor::CtMonitor;
use stale_types::Date;
use std::fmt;

/// Why a sync was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncError {
    /// The presented STH signature did not verify.
    BadSthSignature,
    /// The new head is not consistent with the previously trusted head.
    InconsistentHistory {
        /// Previously trusted size.
        old_size: u64,
        /// Claimed new size.
        new_size: u64,
    },
    /// The log shrank, which append-only logs cannot do.
    TreeShrank {
        /// Previously trusted size.
        old_size: u64,
        /// Claimed new size.
        new_size: u64,
    },
}

impl fmt::Display for SyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncError::BadSthSignature => write!(f, "STH signature invalid"),
            SyncError::InconsistentHistory { old_size, new_size } => {
                write!(
                    f,
                    "no valid consistency proof from size {old_size} to {new_size}"
                )
            }
            SyncError::TreeShrank { old_size, new_size } => {
                write!(f, "tree shrank from {old_size} to {new_size}")
            }
        }
    }
}

impl std::error::Error for SyncError {}

/// Incremental, verifying synchroniser for one log.
pub struct LogSyncer {
    /// The last head we accepted.
    trusted: Option<SignedTreeHead>,
    /// Entries already ingested.
    cursor: u64,
    /// get-entries page size.
    page_size: usize,
}

impl Default for LogSyncer {
    fn default() -> Self {
        Self::new()
    }
}

impl LogSyncer {
    /// Fresh syncer that trusts nothing yet.
    pub fn new() -> Self {
        LogSyncer {
            trusted: None,
            cursor: 0,
            page_size: 256,
        }
    }

    /// Override the paging size.
    pub fn with_page_size(mut self, page_size: usize) -> Self {
        self.page_size = page_size.max(1);
        self
    }

    /// The last verified head.
    pub fn trusted_head(&self) -> Option<&SignedTreeHead> {
        self.trusted.as_ref()
    }

    /// Sync new entries from `log` into `monitor`, verifying the head and
    /// its consistency with the previously trusted head. Returns the
    /// number of new entries ingested.
    pub fn sync(
        &mut self,
        log: &CtLog,
        monitor: &mut CtMonitor,
        today: Date,
    ) -> Result<usize, SyncError> {
        let head = log.tree_head(today);
        if !log.verify_tree_head(&head) {
            return Err(SyncError::BadSthSignature);
        }
        if let Some(old) = &self.trusted {
            if head.tree_size < old.tree_size {
                return Err(SyncError::TreeShrank {
                    old_size: old.tree_size,
                    new_size: head.tree_size,
                });
            }
            if old.tree_size > 0 {
                let proof = log
                    .tree()
                    .consistency_proof(old.tree_size, head.tree_size)
                    .ok_or(SyncError::InconsistentHistory {
                        old_size: old.tree_size,
                        new_size: head.tree_size,
                    })?;
                if !verify_consistency(old.tree_size, head.tree_size, &proof, &old.root, &head.root)
                {
                    return Err(SyncError::InconsistentHistory {
                        old_size: old.tree_size,
                        new_size: head.tree_size,
                    });
                }
            }
        }
        // Page through the new range as get-entries would.
        let mut ingested = 0usize;
        while self.cursor < head.tree_size {
            let end = (self.cursor + self.page_size as u64).min(head.tree_size);
            for entry in &log.entries()[self.cursor as usize..end as usize] {
                monitor.ingest(entry.certificate.clone(), entry.timestamp);
                ingested += 1;
            }
            self.cursor = end;
        }
        self.trusted = Some(head);
        Ok(ingested)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crypto::KeyPair;
    use stale_types::{domain::dn, Duration};
    use x509::CertificateBuilder;

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    fn cert(i: u128) -> x509::Certificate {
        CertificateBuilder::tls_leaf(KeyPair::from_seed([55; 32]).public())
            .serial(i)
            .issuer_cn("Sync CA")
            .subject_cn("s.com")
            .san(dn("s.com"))
            .validity_days(d("2022-01-01"), Duration::days(90))
            .sign(&KeyPair::from_seed([56; 32]))
    }

    #[test]
    fn incremental_sync_ingests_only_new_entries() {
        let mut log = CtLog::new("sync-log", KeyPair::from_seed([57; 32]));
        let mut monitor = CtMonitor::new();
        let mut syncer = LogSyncer::new().with_page_size(3);
        for i in 0..7 {
            log.submit(cert(i), d("2022-01-01")).unwrap();
        }
        assert_eq!(syncer.sync(&log, &mut monitor, d("2022-01-02")).unwrap(), 7);
        assert_eq!(monitor.dedup_count(), 7);
        // Nothing new: zero ingested, head advances.
        assert_eq!(syncer.sync(&log, &mut monitor, d("2022-01-03")).unwrap(), 0);
        for i in 7..10 {
            log.submit(cert(i), d("2022-01-04")).unwrap();
        }
        assert_eq!(syncer.sync(&log, &mut monitor, d("2022-01-05")).unwrap(), 3);
        assert_eq!(monitor.dedup_count(), 10);
        assert_eq!(syncer.trusted_head().unwrap().tree_size, 10);
    }

    #[test]
    fn history_rewrite_detected() {
        // Two logs sharing a key: the second presents a divergent history.
        let key = KeyPair::from_seed([58; 32]);
        let mut honest = CtLog::new("log", key.clone());
        let mut evil = CtLog::new("log", key);
        for i in 0..5 {
            honest.submit(cert(i), d("2022-01-01")).unwrap();
            // Evil log diverges at entry 3.
            let c = if i == 3 { cert(100) } else { cert(i) };
            evil.submit(c, d("2022-01-01")).unwrap();
        }
        let mut monitor = CtMonitor::new();
        let mut syncer = LogSyncer::new();
        syncer.sync(&honest, &mut monitor, d("2022-01-02")).unwrap();
        // More entries on the evil fork, then try to feed it to the same
        // syncer: consistency must fail.
        evil.submit(cert(6), d("2022-01-03")).unwrap();
        let err = syncer
            .sync(&evil, &mut monitor, d("2022-01-04"))
            .unwrap_err();
        assert!(matches!(
            err,
            SyncError::InconsistentHistory {
                old_size: 5,
                new_size: 6
            }
        ));
    }

    #[test]
    fn shrinking_tree_detected() {
        let key = KeyPair::from_seed([59; 32]);
        let mut big = CtLog::new("log", key.clone());
        let mut small = CtLog::new("log", key);
        for i in 0..5 {
            big.submit(cert(i), d("2022-01-01")).unwrap();
        }
        small.submit(cert(0), d("2022-01-01")).unwrap();
        let mut monitor = CtMonitor::new();
        let mut syncer = LogSyncer::new();
        syncer.sync(&big, &mut monitor, d("2022-01-02")).unwrap();
        let err = syncer
            .sync(&small, &mut monitor, d("2022-01-03"))
            .unwrap_err();
        assert!(matches!(
            err,
            SyncError::TreeShrank {
                old_size: 5,
                new_size: 1
            }
        ));
    }

    #[test]
    fn forged_sth_detected() {
        // A log whose head is signed by the wrong key is rejected: model
        // by handing the syncer a log with mismatched verification key.
        let mut log = CtLog::new("log", KeyPair::from_seed([60; 32]));
        log.submit(cert(0), d("2022-01-01")).unwrap();
        let head = log.tree_head(d("2022-01-02"));
        // Manually corrupt: a different log would fail verify_tree_head.
        let other = CtLog::new("other", KeyPair::from_seed([61; 32]));
        assert!(!other.verify_tree_head(&head));
    }
}
