//! Shared web hosting with automatic SSL (cPanel AutoSSL / managed
//! WordPress style, §2.3 methods 4–5).
//!
//! The host issues a per-domain certificate through its CA and keeps the
//! key on its own servers. Unlike CDN delegation, hosting usually shows up
//! in DNS as A records pointing at shared infrastructure — the paper's
//! NS/CNAME departure detector cannot see these customers leave, which is
//! one reason its managed-TLS numbers are a lower bound. The GoDaddy
//! managed-WordPress breach (§5.1) is the webhost key-compromise scenario:
//! one incident exposes keys for *every* hosted customer.

use ca::authority::{CertificateAuthority, IssuanceRequest};
use crypto::KeyPair;
use ct::log::LogPool;
use dns::record::Ipv4Addr;
use dns::scan::{DnsHistory, DnsView};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stale_types::{Date, DomainName, SerialNumber};
use std::collections::BTreeMap;
use x509::Certificate;

/// A shared hosting provider with AutoSSL.
pub struct WebHost {
    /// Display name, e.g. `bluehost`.
    pub name: String,
    ca: CertificateAuthority,
    /// Shared edge IPs customers' A records point to.
    edge_ips: Vec<Ipv4Addr>,
    /// Hosted customers: domain → (key, active certificate serial).
    customers: BTreeMap<DomainName, (KeyPair, SerialNumber)>,
    /// Everything ever issued (keys never leave the host).
    all_issued: Vec<Certificate>,
    /// Renew once the active certificate is this old, even if far from
    /// expiry (managed-WordPress-style eager reissuance). `None` renews
    /// only near expiry.
    renewal_age_days: Option<i64>,
    rng: StdRng,
}

impl WebHost {
    /// Create a host fronted by `ca`.
    pub fn new(name: impl Into<String>, ca: CertificateAuthority, seed: u64) -> Self {
        WebHost {
            name: name.into(),
            ca,
            edge_ips: vec![
                Ipv4Addr::new(198, 51, 100, 10),
                Ipv4Addr::new(198, 51, 100, 11),
            ],
            customers: BTreeMap::new(),
            all_issued: Vec::new(),
            renewal_age_days: None,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Enable eager renewal at a fixed certificate age.
    pub fn with_renewal_age(mut self, days: i64) -> Self {
        self.renewal_age_days = Some(days);
        self
    }

    /// The issuer name on AutoSSL certificates (e.g. `cPanel, Inc. CA`).
    pub fn issuer_name(&self) -> String {
        self.ca.issuer_name().common_name
    }

    /// The DNS view of a hosted customer: A records at the shared edge.
    pub fn hosted_view(&self) -> DnsView {
        DnsView {
            a: self.edge_ips.iter().copied().collect(),
            ..Default::default()
        }
    }

    /// Onboard a customer: point DNS at the edge and AutoSSL a
    /// certificate.
    pub fn host(
        &mut self,
        domain: DomainName,
        today: Date,
        ct: &mut LogPool,
        dns: &mut DnsHistory,
    ) -> Certificate {
        dns.record_change(domain.clone(), today, self.hosted_view());
        let key = KeyPair::generate(&mut self.rng);
        let cert = self
            .ca
            .issue(
                &IssuanceRequest {
                    domains: vec![domain.clone(), domain.prepend("www").expect("label")],
                    public_key: key.public(),
                    requested_lifetime: None,
                },
                today,
                ct,
            )
            .expect("autossl issuance");
        self.customers.insert(domain, (key, cert.tbs.serial));
        self.all_issued.push(cert.clone());
        cert
    }

    /// Customer leaves for other infrastructure. The host keeps the key.
    pub fn offboard(
        &mut self,
        domain: &DomainName,
        today: Date,
        new_view: DnsView,
        dns: &mut DnsHistory,
    ) -> Vec<Certificate> {
        if self.customers.remove(domain).is_none() {
            return Vec::new();
        }
        dns.record_change(domain.clone(), today, new_view);
        self.all_issued
            .iter()
            .filter(|c| c.tbs.validity.contains(today))
            .filter(|c| c.tbs.san().iter().any(|s| s == domain))
            .cloned()
            .collect()
    }

    /// A breach at the host: hosted customers' keys are exposed and their
    /// certificates revoked with `keyCompromise` (as GoDaddy did for its
    /// managed-WordPress service in November 2021).
    ///
    /// `max_age_days` limits the blast radius to certificates issued
    /// within that window before `today` (e.g. keys logged during recent
    /// provisioning); `None` revokes every current customer certificate.
    pub fn breach(&mut self, today: Date, max_age_days: Option<i64>) -> Vec<SerialNumber> {
        let serials: Vec<SerialNumber> = self
            .customers
            .values()
            .filter(
                |(_, serial)| match (max_age_days, self.ca.issued(*serial)) {
                    (Some(max), Some(cert)) => (today - cert.tbs.not_before()).num_days() <= max,
                    (None, Some(_)) => true,
                    (_, None) => false,
                },
            )
            .map(|(_, serial)| *serial)
            .collect();
        for serial in &serials {
            // Ignore already-revoked duplicates.
            let _ = self.ca.revoke(
                *serial,
                today,
                x509::revocation::RevocationReason::KeyCompromise,
            );
        }
        serials
    }

    /// Remove a customer without DNS changes (domain died).
    pub fn force_remove(&mut self, domain: &DomainName) {
        self.customers.remove(domain);
    }

    /// Whether `domain` is hosted here.
    pub fn is_customer(&self, domain: &DomainName) -> bool {
        self.customers.contains_key(domain)
    }

    /// AutoSSL renewal sweep: reissue certificates expiring within
    /// `horizon_days`.
    pub fn renew_due(&mut self, today: Date, horizon_days: i64, ct: &mut LogPool) -> usize {
        let horizon = today + stale_types::Duration::days(horizon_days);
        let due: Vec<DomainName> = self
            .customers
            .iter()
            .filter(|(_, (_, serial))| {
                self.ca
                    .issued(*serial)
                    .map(|c| {
                        c.tbs.not_after() <= horizon
                            || self
                                .renewal_age_days
                                .is_some_and(|age| (today - c.tbs.not_before()).num_days() >= age)
                    })
                    .unwrap_or(false)
            })
            .map(|(d, _)| d.clone())
            .collect();
        let mut renewed = 0;
        for domain in due {
            let key = self.customers[&domain].0.clone();
            let cert = self
                .ca
                .issue(
                    &IssuanceRequest {
                        domains: vec![domain.clone(), domain.prepend("www").expect("label")],
                        public_key: key.public(),
                        requested_lifetime: None,
                    },
                    today,
                    ct,
                )
                .expect("autossl renewal");
            self.customers.insert(domain, (key, cert.tbs.serial));
            self.all_issued.push(cert);
            renewed += 1;
        }
        renewed
    }

    /// The host's CA (to publish CRLs from).
    pub fn ca(&self) -> &CertificateAuthority {
        &self.ca
    }

    /// Mutable CA access (for external revocations).
    pub fn ca_mut(&mut self) -> &mut CertificateAuthority {
        &mut self.ca
    }

    /// Hosted customer count.
    pub fn customer_count(&self) -> usize {
        self.customers.len()
    }

    /// Everything ever issued.
    pub fn all_issued(&self) -> &[Certificate] {
        &self.all_issued
    }

    /// Pick a random current customer (for simulating churn).
    pub fn random_customer(&mut self) -> Option<DomainName> {
        if self.customers.is_empty() {
            return None;
        }
        let idx = self.rng.gen_range(0..self.customers.len());
        self.customers.keys().nth(idx).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca::policy::CaPolicy;
    use stale_types::domain::dn;
    use stale_types::CaId;

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    fn host() -> WebHost {
        let ca = CertificateAuthority::new(
            CaId(20),
            "cPanel, Inc. CA",
            KeyPair::from_seed([20; 32]),
            CaPolicy::automated_90_day(),
        );
        WebHost::new("bluehost", ca, 5)
    }

    fn pool() -> LogPool {
        LogPool::with_yearly_shards("oak", 12, 2015, 2027)
    }

    #[test]
    fn hosting_issues_and_points_dns() {
        let mut h = host();
        let mut ct = pool();
        let mut dns = DnsHistory::new();
        let cert = h.host(dn("blog.com"), d("2021-06-01"), &mut ct, &mut dns);
        assert!(cert.tbs.san().contains(&dn("blog.com")));
        assert!(cert.tbs.san().contains(&dn("www.blog.com")));
        let view = dns.view_at(&dn("blog.com"), d("2021-06-01")).unwrap();
        assert!(!view.a.is_empty());
        assert!(
            view.ns.is_empty(),
            "hosting is A-record based, invisible to NS/CNAME diffing"
        );
        assert_eq!(h.customer_count(), 1);
    }

    #[test]
    fn offboarding_leaves_host_with_valid_key() {
        let mut h = host();
        let mut ct = pool();
        let mut dns = DnsHistory::new();
        h.host(dn("blog.com"), d("2021-06-01"), &mut ct, &mut dns);
        let stale = h.offboard(
            &dn("blog.com"),
            d("2021-07-01"),
            DnsView::with_ns([dn("ns1.elsewhere.net")]),
            &mut dns,
        );
        assert_eq!(stale.len(), 1);
        assert_eq!(h.customer_count(), 0);
        // Offboarding twice is a no-op.
        assert!(h
            .offboard(
                &dn("blog.com"),
                d("2021-07-02"),
                DnsView::default(),
                &mut dns
            )
            .is_empty());
    }

    #[test]
    fn breach_revokes_every_customer_key() {
        let mut h = host();
        let mut ct = pool();
        let mut dns = DnsHistory::new();
        for i in 0..10 {
            h.host(
                dn(&format!("site{i}.com")),
                d("2021-06-01"),
                &mut ct,
                &mut dns,
            );
        }
        let serials = h.breach(d("2021-11-17"), None);
        assert_eq!(serials.len(), 10);
        // A scoped breach on freshly-issued certs also catches them all
        // (issued 169 days ago), but an over-narrow window catches none.
        assert!(h.breach(d("2021-11-17"), Some(30)).is_empty());
        let crl = h.ca().publish_crl(d("2021-11-18"));
        assert_eq!(crl.entries.len(), 10);
        assert!(crl
            .entries
            .iter()
            .all(|e| e.reason == x509::revocation::RevocationReason::KeyCompromise));
    }

    #[test]
    fn random_customer_sampling() {
        let mut h = host();
        let mut ct = pool();
        let mut dns = DnsHistory::new();
        assert!(h.random_customer().is_none());
        h.host(dn("only.com"), d("2021-06-01"), &mut ct, &mut dns);
        assert_eq!(h.random_customer(), Some(dn("only.com")));
    }
}
