//! A managed-TLS CDN provider.
//!
//! The provider terminates TLS for its customers: it requests (or issues
//! through its own CA) certificates covering customer domains and fully
//! controls the private keys. Enrollment points the customer's DNS at the
//! provider (NS or CNAME delegation, Figure 3); departure points it away —
//! but nothing revokes the certificate, so the provider retains a valid
//! key for a domain it no longer serves.

use ca::authority::{CertificateAuthority, IssuanceRequest};
use crypto::KeyPair;
use ct::log::LogPool;
use dns::scan::{DnsHistory, DnsView};
use rand::rngs::StdRng;
use rand::SeedableRng;
use stale_types::{Date, DomainName};
use std::collections::BTreeMap;
use x509::Certificate;

/// How customers delegate traffic to the provider (§2.3 method 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelegationKind {
    /// The provider becomes the authoritative nameserver (full-setup
    /// Cloudflare).
    Ns,
    /// A CNAME points at the provider's edge (partial setup).
    Cname,
}

/// Static configuration of a provider.
#[derive(Debug, Clone)]
pub struct ProviderConfig {
    /// Display name, e.g. `Cloudflare`.
    pub name: String,
    /// Nameservers assigned to NS-delegated customers.
    pub nameservers: Vec<DomainName>,
    /// Suffix for CNAME-delegated customers (`<domain>.{cname_base}`).
    pub cname_base: DomainName,
    /// Base for the marker SAN that identifies managed certificates in CT
    /// (e.g. `cloudflaressl.com` → `sni12345.cloudflaressl.com`).
    /// `None` means the provider's managed certs are indistinguishable
    /// from self-managed ones (every CDN except Cloudflare, §4.3).
    pub marker_base: Option<String>,
    /// Maximum customer domains per certificate. >1 enables cruise-liner
    /// packing; 1 issues per-domain certificates.
    pub sans_per_cert: usize,
    /// Default delegation kind for new customers.
    pub delegation: DelegationKind,
}

impl ProviderConfig {
    /// A Cloudflare-like configuration in its cruise-liner era.
    pub fn cloudflare_cruise_liner() -> Self {
        ProviderConfig {
            name: "Cloudflare".into(),
            nameservers: vec![
                DomainName::parse("anna.ns.cloudflare.com").expect("literal"),
                DomainName::parse("bob.ns.cloudflare.com").expect("literal"),
            ],
            cname_base: DomainName::parse("cdn.cloudflare.com").expect("literal"),
            marker_base: Some("cloudflaressl.com".into()),
            sans_per_cert: 32,
            delegation: DelegationKind::Ns,
        }
    }

    /// Cloudflare after its own-CA transition: per-domain certificates.
    pub fn cloudflare_per_domain() -> Self {
        ProviderConfig {
            sans_per_cert: 1,
            ..Self::cloudflare_cruise_liner()
        }
    }

    /// Whether `name` is one of this provider's delegation targets —
    /// the §4.3 departure test (`*.<ns,cdn>.cloudflare.com`).
    pub fn is_delegation_target(&self, name: &DomainName) -> bool {
        self.nameservers
            .iter()
            .any(|ns| name == ns || name.is_subdomain_of(ns))
            || name.is_subdomain_of(&self.cname_base)
    }
}

/// A cruise-liner grouping: one certificate (and key) shared by many
/// customers.
#[derive(Debug)]
struct Bus {
    id: u64,
    key: KeyPair,
    members: Vec<DomainName>,
    /// Serial of the currently active certificate for this bus.
    current: Option<Certificate>,
}

/// A live customer's state.
#[derive(Debug, Clone)]
pub struct Customer {
    /// Enrollment day.
    pub enrolled: Date,
    /// Which bus the domain rides (index), or per-domain.
    bus: Option<usize>,
    /// Delegation kind in DNS.
    pub delegation: DelegationKind,
}

/// The managed-TLS provider.
pub struct ManagedTlsProvider {
    /// Configuration.
    pub config: ProviderConfig,
    ca: CertificateAuthority,
    buses: Vec<Bus>,
    customers: BTreeMap<DomainName, Customer>,
    /// Certificates issued for per-domain customers (domain → cert+key).
    per_domain: BTreeMap<DomainName, (KeyPair, Certificate)>,
    /// Every certificate this provider ever controlled (it never loses
    /// the keys — the crux of §5.3).
    all_issued: Vec<Certificate>,
    next_bus: u64,
    rng: StdRng,
}

impl ManagedTlsProvider {
    /// Create a provider fronted by `ca`.
    pub fn new(config: ProviderConfig, ca: CertificateAuthority, seed: u64) -> Self {
        ManagedTlsProvider {
            config,
            ca,
            buses: Vec::new(),
            customers: BTreeMap::new(),
            per_domain: BTreeMap::new(),
            all_issued: Vec::new(),
            next_bus: 1,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Switch configuration (e.g. the 2019 cruise-liner → per-domain
    /// transition). Existing buses continue to exist; new enrollments use
    /// the new packing.
    pub fn reconfigure(&mut self, config: ProviderConfig) {
        self.config = config;
    }

    /// Replace the fronting CA (e.g. COMODO → Cloudflare's own CA),
    /// returning the retired one so its revocation state lives on.
    pub fn switch_ca(&mut self, ca: CertificateAuthority) -> CertificateAuthority {
        std::mem::replace(&mut self.ca, ca)
    }

    /// The fronting CA's issuer name (for Figure 5b's by-issuer series).
    pub fn issuer_name(&self) -> String {
        self.ca.issuer_name().common_name
    }

    /// Current customer count.
    pub fn customer_count(&self) -> usize {
        self.customers.len()
    }

    /// Every certificate the provider has ever held keys for.
    pub fn all_issued(&self) -> &[Certificate] {
        &self.all_issued
    }

    /// The DNS view a customer's domain shows while enrolled.
    pub fn enrolled_view(&self, domain: &DomainName, delegation: DelegationKind) -> DnsView {
        match delegation {
            DelegationKind::Ns => DnsView::with_ns(self.config.nameservers.iter().cloned()),
            DelegationKind::Cname => {
                let target = DomainName::parse(&format!("{domain}.{}", self.config.cname_base))
                    .expect("valid target");
                DnsView::with_cname([target])
            }
        }
    }

    /// Enroll `domain`: delegate DNS to the provider and issue (or join)
    /// a managed certificate. Returns the active certificate covering the
    /// domain.
    pub fn enroll(
        &mut self,
        domain: DomainName,
        today: Date,
        ct: &mut LogPool,
        dns: &mut DnsHistory,
    ) -> Certificate {
        let delegation = self.config.delegation;
        dns.record_change(
            domain.clone(),
            today,
            self.enrolled_view(&domain, delegation),
        );
        if self.config.sans_per_cert > 1 {
            let bus_idx = self.find_or_create_bus();
            self.buses[bus_idx].members.push(domain.clone());
            self.customers.insert(
                domain,
                Customer {
                    enrolled: today,
                    bus: Some(bus_idx),
                    delegation,
                },
            );
            self.reissue_bus(bus_idx, today, ct)
        } else {
            let key = KeyPair::generate(&mut self.rng);
            let cert = self.issue_for(std::slice::from_ref(&domain), &key, today, ct);
            self.per_domain.insert(domain.clone(), (key, cert.clone()));
            self.customers.insert(
                domain,
                Customer {
                    enrolled: today,
                    bus: None,
                    delegation,
                },
            );
            cert
        }
    }

    /// Depart: the customer points DNS at `new_view` (their new
    /// infrastructure). The provider updates its packing, but **retains
    /// every key and certificate** covering the domain.
    ///
    /// Returns the certificates that remain valid for the departed domain
    /// under provider control as of `today` — the §5.3 stale set.
    pub fn depart(
        &mut self,
        domain: &DomainName,
        today: Date,
        new_view: DnsView,
        ct: &mut LogPool,
        dns: &mut DnsHistory,
    ) -> Vec<Certificate> {
        let Some(customer) = self.customers.remove(domain) else {
            return Vec::new();
        };
        dns.record_change(domain.clone(), today, new_view);
        if let Some(bus_idx) = customer.bus {
            self.buses[bus_idx].members.retain(|m| m != domain);
            // Cloudflare repacks the bus without the departed domain —
            // generating yet another overlapping certificate.
            if !self.buses[bus_idx].members.is_empty() {
                self.reissue_bus(bus_idx, today, ct);
            }
        } else {
            self.per_domain.remove(domain);
        }
        self.stale_certs_for(domain, today)
    }

    /// Remove a customer without issuing anything or touching DNS — used
    /// when the domain itself dies (released by the registry), which is
    /// not a "departure" in the §5.3 sense.
    pub fn force_remove(&mut self, domain: &DomainName) {
        if let Some(customer) = self.customers.remove(domain) {
            if let Some(bus_idx) = customer.bus {
                self.buses[bus_idx].members.retain(|m| m != domain);
            } else {
                self.per_domain.remove(domain);
            }
        }
    }

    /// Whether `domain` is currently enrolled.
    pub fn is_customer(&self, domain: &DomainName) -> bool {
        self.customers.contains_key(domain)
    }

    /// Automated renewal sweep: reissue any bus or per-domain certificate
    /// expiring within `horizon_days` of `today`. This is the §7.1
    /// *automatic issuance* behaviour — it keeps running regardless of
    /// what the customer intends to do next.
    pub fn renew_due(&mut self, today: Date, horizon_days: i64, ct: &mut LogPool) -> usize {
        let horizon = today + stale_types::Duration::days(horizon_days);
        let mut renewed = 0;
        let due_buses: Vec<usize> = self
            .buses
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.members.is_empty())
            .filter(|(_, b)| match &b.current {
                Some(cert) => cert.tbs.not_after() <= horizon,
                None => false,
            })
            .map(|(i, _)| i)
            .collect();
        for idx in due_buses {
            self.reissue_bus(idx, today, ct);
            renewed += 1;
        }
        let due_domains: Vec<DomainName> = self
            .per_domain
            .iter()
            .filter(|(_, (_, cert))| cert.tbs.not_after() <= horizon)
            .map(|(d, _)| d.clone())
            .collect();
        for domain in due_domains {
            let key = self.per_domain[&domain].0.clone();
            let cert = self.issue_for(std::slice::from_ref(&domain), &key, today, ct);
            self.per_domain.insert(domain, (key, cert));
            renewed += 1;
        }
        renewed
    }

    /// The fronting CA (for CRL scraping).
    pub fn ca(&self) -> &CertificateAuthority {
        &self.ca
    }

    /// Mutable CA access (for revoking provider-issued certificates).
    pub fn ca_mut(&mut self) -> &mut CertificateAuthority {
        &mut self.ca
    }

    /// Certificates naming `domain` that are unexpired at `date` and whose
    /// keys the provider holds.
    pub fn stale_certs_for(&self, domain: &DomainName, date: Date) -> Vec<Certificate> {
        self.all_issued
            .iter()
            .filter(|c| c.tbs.validity.contains(date))
            .filter(|c| c.tbs.san().iter().any(|san| san == domain))
            .cloned()
            .collect()
    }

    fn find_or_create_bus(&mut self) -> usize {
        let capacity = self.config.sans_per_cert;
        if let Some(idx) = self
            .buses
            .iter()
            .position(|b| b.members.len() < capacity - 1)
        {
            return idx;
        }
        let id = self.next_bus;
        self.next_bus += 1;
        self.buses.push(Bus {
            id,
            key: KeyPair::generate(&mut self.rng),
            members: Vec::new(),
            current: None,
        });
        self.buses.len() - 1
    }

    fn reissue_bus(&mut self, bus_idx: usize, today: Date, ct: &mut LogPool) -> Certificate {
        let (bus_id, key, members) = {
            let bus = &self.buses[bus_idx];
            (bus.id, bus.key.clone(), bus.members.clone())
        };
        let mut sans = Vec::with_capacity(members.len() + 1);
        if let Some(base) = &self.config.marker_base {
            sans.push(DomainName::parse(&format!("sni{bus_id}.{base}")).expect("valid marker SAN"));
        }
        sans.extend(members);
        let cert = self.issue_for(&sans, &key, today, ct);
        self.buses[bus_idx].current = Some(cert.clone());
        cert
    }

    fn issue_for(
        &mut self,
        sans: &[DomainName],
        key: &KeyPair,
        today: Date,
        ct: &mut LogPool,
    ) -> Certificate {
        let mut domains = sans.to_vec();
        if self.config.sans_per_cert == 1 {
            // Per-domain certificates cover the apex and a wildcard, as
            // Cloudflare's own-CA certificates do.
            let apex = domains[0].clone();
            if let Ok(wildcard) = apex.prepend("*") {
                domains.push(wildcard);
            }
            if let Some(base) = &self.config.marker_base {
                // Per-domain certs still carry the marker SAN.
                let marker = DomainName::parse(&format!("sni{}.{base}", self.next_bus))
                    .expect("valid marker SAN");
                self.next_bus += 1;
                domains.insert(0, marker);
            }
        }
        let request = IssuanceRequest {
            domains,
            public_key: key.public(),
            requested_lifetime: None,
        };
        let cert = self
            .ca
            .issue(&request, today, ct)
            .expect("provider issuance");
        self.all_issued.push(cert.clone());
        cert
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca::policy::CaPolicy;
    use stale_types::domain::dn;
    use stale_types::CaId;

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    fn comodo() -> CertificateAuthority {
        CertificateAuthority::new(
            CaId(10),
            "COMODO ECC DV Secure Server CA 2",
            KeyPair::from_seed([10; 32]),
            CaPolicy::commercial(),
        )
    }

    fn pool() -> LogPool {
        LogPool::with_yearly_shards("nimbus", 11, 2015, 2027)
    }

    #[test]
    fn cruise_liner_packs_customers() {
        let mut p = ManagedTlsProvider::new(ProviderConfig::cloudflare_cruise_liner(), comodo(), 1);
        let mut ct = pool();
        let mut dns = DnsHistory::new();
        let c1 = p.enroll(dn("alpha.com"), d("2018-05-01"), &mut ct, &mut dns);
        let c2 = p.enroll(dn("beta.com"), d("2018-05-02"), &mut ct, &mut dns);
        // Second certificate covers both customers plus the marker.
        assert!(c2.tbs.san().iter().any(|s| s.as_str().starts_with("sni")));
        assert!(c2.tbs.san().contains(&dn("alpha.com")));
        assert!(c2.tbs.san().contains(&dn("beta.com")));
        assert!(c1.tbs.san().contains(&dn("alpha.com")));
        assert_eq!(p.customer_count(), 2);
        // Every enrollment reissues: 2 certs total so far.
        assert_eq!(p.all_issued().len(), 2);
    }

    #[test]
    fn departure_leaves_stale_cert_and_updates_dns() {
        let mut p = ManagedTlsProvider::new(ProviderConfig::cloudflare_cruise_liner(), comodo(), 1);
        let mut ct = pool();
        let mut dns = DnsHistory::new();
        p.enroll(dn("alpha.com"), d("2018-05-01"), &mut ct, &mut dns);
        p.enroll(dn("beta.com"), d("2018-05-02"), &mut ct, &mut dns);
        let new_view = DnsView::with_ns([dn("ns1.newhost.net")]);
        let stale = p.depart(
            &dn("alpha.com"),
            d("2018-08-01"),
            new_view,
            &mut ct,
            &mut dns,
        );
        // alpha.com appears on both earlier certs, both unexpired.
        assert_eq!(stale.len(), 2);
        assert!(stale
            .iter()
            .all(|c| c.tbs.validity.contains(d("2018-08-01"))));
        // DNS now shows the new nameserver.
        let view = dns.view_at(&dn("alpha.com"), d("2018-08-01")).unwrap();
        assert!(view.ns.contains(&dn("ns1.newhost.net")));
        assert!(!view.any_delegation(|n| p.config.is_delegation_target(n)));
        // The bus was repacked without alpha: one more cert exists, not
        // naming alpha.
        let last = p.all_issued().last().unwrap();
        assert!(!last.tbs.san().contains(&dn("alpha.com")));
        assert!(last.tbs.san().contains(&dn("beta.com")));
        assert_eq!(p.customer_count(), 1);
    }

    #[test]
    fn per_domain_mode_issues_one_cert_each() {
        let mut p = ManagedTlsProvider::new(ProviderConfig::cloudflare_per_domain(), comodo(), 1);
        let mut ct = pool();
        let mut dns = DnsHistory::new();
        let c1 = p.enroll(dn("alpha.com"), d("2020-05-01"), &mut ct, &mut dns);
        let c2 = p.enroll(dn("beta.com"), d("2020-05-02"), &mut ct, &mut dns);
        assert!(c1.tbs.san().contains(&dn("alpha.com")));
        assert!(!c1.tbs.san().contains(&dn("beta.com")));
        assert!(c2.tbs.san().contains(&dn("beta.com")));
        // Markers still present (Cloudflare's own CA also uses them).
        assert!(c1
            .tbs
            .san()
            .iter()
            .any(|s| s.as_str().ends_with("cloudflaressl.com")));
    }

    #[test]
    fn cname_delegation_view() {
        let mut config = ProviderConfig::cloudflare_cruise_liner();
        config.delegation = DelegationKind::Cname;
        let mut p = ManagedTlsProvider::new(config, comodo(), 1);
        let mut ct = pool();
        let mut dns = DnsHistory::new();
        p.enroll(dn("gamma.com"), d("2018-05-01"), &mut ct, &mut dns);
        let view = dns.view_at(&dn("gamma.com"), d("2018-05-01")).unwrap();
        assert!(view
            .cname
            .iter()
            .any(|c| c.is_subdomain_of(&dn("cdn.cloudflare.com"))));
        assert!(view.any_delegation(|n| p.config.is_delegation_target(n)));
    }

    #[test]
    fn delegation_target_matching() {
        let config = ProviderConfig::cloudflare_cruise_liner();
        assert!(config.is_delegation_target(&dn("anna.ns.cloudflare.com")));
        assert!(config.is_delegation_target(&dn("foo.com.cdn.cloudflare.com")));
        assert!(!config.is_delegation_target(&dn("ns1.selfhost.net")));
        assert!(!config.is_delegation_target(&dn("cloudflare.com")));
    }

    #[test]
    fn bus_overflow_starts_new_bus() {
        let mut config = ProviderConfig::cloudflare_cruise_liner();
        config.sans_per_cert = 3; // marker + 2 customers
        let mut p = ManagedTlsProvider::new(config, comodo(), 1);
        let mut ct = pool();
        let mut dns = DnsHistory::new();
        for i in 0..5 {
            p.enroll(
                dn(&format!("site{i}.com")),
                d("2018-05-01"),
                &mut ct,
                &mut dns,
            );
        }
        // Buses hold ≤2 customers each; the last cert covers at most 3 SANs.
        for cert in p.all_issued() {
            assert!(cert.tbs.san().len() <= 3, "{:?}", cert.tbs.san());
        }
        assert_eq!(p.customer_count(), 5);
    }

    #[test]
    fn depart_unknown_domain_is_noop() {
        let mut p = ManagedTlsProvider::new(ProviderConfig::cloudflare_cruise_liner(), comodo(), 1);
        let mut ct = pool();
        let mut dns = DnsHistory::new();
        let stale = p.depart(
            &dn("ghost.com"),
            d("2020-01-01"),
            DnsView::default(),
            &mut ct,
            &mut dns,
        );
        assert!(stale.is_empty());
    }
}
