//! Managed TLS providers: CDNs and shared web hosting that hold customers'
//! TLS keys.
//!
//! §2.3 methods 2–5 all put a third party in possession of the private key
//! for a customer domain's certificate. This crate models the two shapes
//! that matter for the paper's measurements:
//!
//! * [`provider`] — a Cloudflare-like CDN: customers delegate via NS or
//!   CNAME; the provider issues and holds certificates. A distinguishing
//!   marker SAN (`sni…cloudflaressl.com`) makes its managed certificates
//!   identifiable in CT, and pre-2019 "cruise-liner" packing puts dozens
//!   of unrelated customers on one certificate (§5.2, Figure 5b).
//!   Departure leaves the provider holding a valid key — the §5.3
//!   third-party staleness class;
//! * [`webhost`] — a cPanel-style AutoSSL host issuing per-domain
//!   certificates it also controls.

pub mod provider;
pub mod webhost;

pub use provider::{DelegationKind, ManagedTlsProvider, ProviderConfig};
pub use webhost::WebHost;
