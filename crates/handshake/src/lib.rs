//! A simulated TLS 1.3-shaped server-authentication handshake over the
//! workspace's PKI substrate.
//!
//! This is where a stale certificate actually gets *used*: the paper's
//! third-party adversary holds a valid certificate plus its private key
//! and sits on-path. The handshake here implements exactly the checks a
//! TLS client performs — SNI-based certificate selection, chain and
//! hostname validation, proof of private-key possession over the
//! transcript (CertificateVerify), transcript binding (Finished) — plus
//! the client-side revocation hooks from `stale_core::mitigation`, so
//! every claim the paper makes about impersonation ("the old registrant
//! has the technical ability to impersonate foo.com") is demonstrated by
//! an executable handshake rather than asserted.
//!
//! * [`messages`] — the handshake messages and transcript hashing;
//! * [`endpoint`] — [`endpoint::Server`] (SNI identity table, ALPN) and
//!   [`endpoint::Client`] (trust store + revocation configuration);
//! * [`handshake`] — the driver, including an on-path [`handshake::Mitm`]
//!   that splices a stolen identity into someone else's connection.

pub mod endpoint;
pub mod handshake;
pub mod messages;

pub use endpoint::{Client, Server, ServerIdentity};
pub use handshake::{connect, connect_via, HandshakeError, Mitm, Session};
pub use messages::{Alpn, ACME_TLS_ALPN};
