//! The handshake driver and the on-path attacker.

use crate::endpoint::{Client, Server, ServerIdentity};
use crate::messages::{
    Alpn, CertificateMsg, CertificateVerify, ClientHello, Finished, ServerHello, Transcript,
};
use crypto::SimSig;
use stale_core::mitigation::revocation_policy::{
    connection_outcome, ConnectionOutcome, NetworkCondition,
};
use stale_types::{Date, DomainName};
use std::fmt;
use x509::validate::{validate_chain, ValidationError};

/// Handshake failures, in the order a client detects them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeError {
    /// The server had no certificate for the requested name.
    NoIdentityForSni(String),
    /// Chain/hostname/validity failure.
    Validation(ValidationError),
    /// CertificateVerify did not verify: the server does not possess the
    /// leaf key.
    KeyPossessionFailed,
    /// Finished transcript mismatch (tampering en route).
    TranscriptMismatch,
    /// Revocation checking rejected the certificate.
    Revoked,
    /// Required revocation status was unavailable (hard-fail /
    /// Must-Staple).
    NoRevocationStatus,
    /// CRLite filter flagged the certificate.
    CrliteHit,
}

impl fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HandshakeError::NoIdentityForSni(sni) => write!(f, "no certificate for {sni}"),
            HandshakeError::Validation(e) => write!(f, "certificate validation: {e}"),
            HandshakeError::KeyPossessionFailed => write!(f, "CertificateVerify invalid"),
            HandshakeError::TranscriptMismatch => write!(f, "Finished verify_data mismatch"),
            HandshakeError::Revoked => write!(f, "certificate revoked"),
            HandshakeError::NoRevocationStatus => write!(f, "revocation status unavailable"),
            HandshakeError::CrliteHit => write!(f, "CRLite filter: revoked"),
        }
    }
}

impl std::error::Error for HandshakeError {}

/// A completed session.
#[derive(Debug, Clone)]
pub struct Session {
    /// The authenticated peer name.
    pub server_name: DomainName,
    /// Negotiated ALPN protocol.
    pub alpn: Option<Alpn>,
    /// Leaf certificate the client accepted.
    pub peer_certificate: x509::Certificate,
}

/// An on-path attacker holding a (possibly stale) identity — the paper's
/// third-party adversary. When active, it answers the victim's handshake
/// with its own identity and drops OCSP traffic.
pub struct Mitm {
    /// The identity (certificate chain + private key) the attacker holds.
    pub identity: ServerIdentity,
}

/// Connect `client` to `server` for `sni` at `date` over a clean network.
pub fn connect(
    client: &Client,
    server: &Server,
    sni: &DomainName,
    date: Date,
) -> Result<Session, HandshakeError> {
    handshake_inner(client, server, None, sni, date, NetworkCondition::Normal)
}

/// Connect while `mitm` sits on-path: the attacker substitutes its own
/// identity and blocks the client's OCSP fetches.
pub fn connect_via(
    client: &Client,
    server: &Server,
    mitm: &Mitm,
    sni: &DomainName,
    date: Date,
) -> Result<Session, HandshakeError> {
    handshake_inner(
        client,
        server,
        Some(&mitm.identity),
        sni,
        date,
        NetworkCondition::OcspBlocked,
    )
}

fn handshake_inner(
    client: &Client,
    server: &Server,
    interposed: Option<&ServerIdentity>,
    sni: &DomainName,
    date: Date,
    network: NetworkCondition,
) -> Result<Session, HandshakeError> {
    let mut transcript = Transcript::new();
    // -> ClientHello
    let hello = ClientHello {
        // Client randoms derive from the date in this deterministic
        // simulation; uniqueness across connections is not load-bearing.
        random: crypto::sha256(&date.days_since_epoch().to_be_bytes()),
        sni: sni.clone(),
        alpn: client.alpn.clone(),
    };
    transcript.client_hello(&hello);
    // <- ServerHello (the MITM answers instead when interposed).
    let identity = match interposed {
        Some(identity) => identity,
        None => server
            .select_identity(sni)
            .ok_or_else(|| HandshakeError::NoIdentityForSni(sni.to_string()))?,
    };
    let server_hello = ServerHello {
        random: crypto::sha256(b"server-random"),
        alpn: server.select_alpn(&hello.alpn),
    };
    transcript.server_hello(&server_hello);
    // <- Certificate
    let cert_msg = CertificateMsg {
        chain: identity.chain.clone(),
    };
    transcript.certificate(&cert_msg);
    // <- CertificateVerify: signature over the transcript with the leaf
    // key. This is the proof-of-possession step — a stolen certificate
    // without its key dies here.
    let verify = CertificateVerify {
        signature: SimSig::sign(identity.key.private(), &transcript.verify_bytes()),
    };
    // --- client-side checks ---
    let leaf = cert_msg
        .chain
        .first()
        .ok_or(HandshakeError::KeyPossessionFailed)?;
    validate_chain(&cert_msg.chain, &client.trusted_roots, sni, date)
        .map_err(HandshakeError::Validation)?;
    if !SimSig::verify(
        &leaf.tbs.public_key,
        &transcript.verify_bytes(),
        &verify.signature,
    ) {
        return Err(HandshakeError::KeyPossessionFailed);
    }
    // CRLite (pushed revocation): checked before any network fetch.
    if let Some(filter) = &client.crlite {
        if filter.is_revoked(&leaf.cert_id()) {
            return Err(HandshakeError::CrliteHit);
        }
    }
    // OCSP policy. The fetch callback models the responder being
    // reachable only when the network allows; the signed staple comes
    // from the presented identity.
    let issuer_key = cert_msg
        .chain
        .get(1)
        .map(|issuer| issuer.tbs.public_key)
        .or_else(|| client.trusted_roots.first().copied());
    if let Some(issuer_key) = issuer_key {
        let outcome = connection_outcome(
            leaf,
            client.revocation_policy,
            network,
            identity.staple.as_ref(),
            &issuer_key,
            date,
            || {
                // A reachable fetch returns the staple if the server has
                // one, else an (unknowable here) Good answer is modelled
                // by the staple being required for revoked certs. The
                // server-side staple is the only signed status available
                // in this model.
                identity.staple.clone().unwrap_or_else(|| {
                    // No responder state: synthesise an unverifiable
                    // response; policy treats it as no status.
                    ca::ocsp::OcspResponse {
                        authority_key_id: stale_types::KeyId::from_bytes([0; 20]),
                        serial: leaf.tbs.serial,
                        status: ca::ocsp::CertStatus::Unknown,
                        this_update: date,
                        next_update: date,
                        signature: crypto::Signature([0; 32]),
                    }
                })
            },
        );
        match outcome {
            ConnectionOutcome::Accepted => {}
            ConnectionOutcome::RejectedRevoked => return Err(HandshakeError::Revoked),
            ConnectionOutcome::RejectedNoStatus => return Err(HandshakeError::NoRevocationStatus),
        }
    }
    // Finished: both sides bind the transcript.
    let finished = Finished {
        verify_data: transcript.hash(),
    };
    if finished.verify_data != transcript.hash() {
        return Err(HandshakeError::TranscriptMismatch);
    }
    Ok(Session {
        server_name: sni.clone(),
        alpn: server_hello.alpn,
        peer_certificate: leaf.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::ServerIdentity;
    use crypto::KeyPair;
    use stale_types::{domain::dn, Duration};
    use x509::CertificateBuilder;

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    struct Pki {
        root: KeyPair,
        server: Server,
        leaf_key: KeyPair,
        leaf: x509::Certificate,
    }

    fn pki(sans: &[&str]) -> Pki {
        let root = KeyPair::from_seed([1; 32]);
        let leaf_key = KeyPair::from_seed([2; 32]);
        let leaf = CertificateBuilder::tls_leaf(leaf_key.public())
            .serial(1)
            .issuer_cn("HS Root")
            .subject_cn(sans[0])
            .sans(sans.iter().map(|s| dn(s)))
            .validity_days(d("2022-01-01"), Duration::days(398))
            .sign(&root);
        let mut server = Server::new();
        server.add_identity(ServerIdentity::new(leaf.clone(), leaf_key.clone()));
        Pki {
            root,
            server,
            leaf_key,
            leaf,
        }
    }

    #[test]
    fn honest_handshake_succeeds() {
        let pki = pki(&["foo.com", "*.foo.com"]);
        let client = Client::new(vec![pki.root.public()]);
        let session = connect(&client, &pki.server, &dn("foo.com"), d("2022-06-01")).unwrap();
        assert_eq!(session.server_name, dn("foo.com"));
        assert_eq!(session.alpn, Some(Alpn::h2()));
        assert_eq!(session.peer_certificate, pki.leaf);
        // Wildcard SNI too.
        connect(&client, &pki.server, &dn("api.foo.com"), d("2022-06-01")).unwrap();
    }

    #[test]
    fn expired_and_wrong_name_rejected() {
        let pki = pki(&["foo.com"]);
        let client = Client::new(vec![pki.root.public()]);
        assert!(matches!(
            connect(&client, &pki.server, &dn("foo.com"), d("2024-01-01")),
            Err(HandshakeError::NoIdentityForSni(_)) | Err(HandshakeError::Validation(_))
        ));
        assert!(matches!(
            connect(&client, &pki.server, &dn("bar.com"), d("2022-06-01")),
            Err(HandshakeError::NoIdentityForSni(_))
        ));
    }

    #[test]
    fn untrusted_root_rejected() {
        let pki = pki(&["foo.com"]);
        let other_root = KeyPair::from_seed([9; 32]);
        let client = Client::new(vec![other_root.public()]);
        assert!(matches!(
            connect(&client, &pki.server, &dn("foo.com"), d("2022-06-01")),
            Err(HandshakeError::Validation(ValidationError::UntrustedRoot))
        ));
    }

    #[test]
    fn certificate_without_key_fails_possession() {
        let pki = pki(&["foo.com"]);
        // An attacker with the certificate but a different key.
        let wrong_key = KeyPair::from_seed([66; 32]);
        let mitm = Mitm {
            identity: ServerIdentity::new(pki.leaf.clone(), wrong_key),
        };
        let client = Client::new(vec![pki.root.public()]);
        assert!(matches!(
            connect_via(&client, &pki.server, &mitm, &dn("foo.com"), d("2022-06-01")),
            Err(HandshakeError::KeyPossessionFailed)
        ));
    }

    #[test]
    fn stale_certificate_with_stolen_key_impersonates() {
        // The paper's core claim, executed: certificate + key ⇒ successful
        // impersonation for the full remaining lifetime.
        let pki = pki(&["transferred.com"]);
        let mitm = Mitm {
            identity: ServerIdentity::new(pki.leaf.clone(), pki.leaf_key.clone()),
        };
        // The *real* server now belongs to the new owner with a fresh cert.
        let new_root = pki.root.clone();
        let new_key = KeyPair::from_seed([7; 32]);
        let new_leaf = CertificateBuilder::tls_leaf(new_key.public())
            .serial(2)
            .issuer_cn("HS Root")
            .subject_cn("transferred.com")
            .san(dn("transferred.com"))
            .validity_days(d("2022-06-01"), Duration::days(90))
            .sign(&new_root);
        let mut real_server = Server::new();
        real_server.add_identity(ServerIdentity::new(new_leaf, new_key));
        let client = Client::new(vec![pki.root.public()]);
        // MITM splices in the old (stale) identity: accepted.
        let session = connect_via(
            &client,
            &real_server,
            &mitm,
            &dn("transferred.com"),
            d("2022-08-01"),
        )
        .unwrap();
        assert_eq!(
            session.peer_certificate, pki.leaf,
            "client sees the attacker's cert"
        );
        // After the stale certificate expires, the attack dies.
        assert!(matches!(
            connect_via(
                &client,
                &real_server,
                &mitm,
                &dn("transferred.com"),
                d("2023-03-01")
            ),
            Err(HandshakeError::Validation(ValidationError::Expired { .. }))
        ));
    }

    #[test]
    fn crlite_client_blocks_revoked_stale_cert() {
        use stale_core::mitigation::crlite::CrliteFilter;
        let pki = pki(&["victim.com"]);
        let mitm = Mitm {
            identity: ServerIdentity::new(pki.leaf.clone(), pki.leaf_key.clone()),
        };
        let filter = CrliteFilter::build(&[pki.leaf.cert_id()], &[pki.leaf.cert_id()]);
        let client = Client::new(vec![pki.root.public()]).with_crlite(filter);
        assert!(
            matches!(
                connect_via(
                    &client,
                    &pki.server,
                    &mitm,
                    &dn("victim.com"),
                    d("2022-06-01")
                ),
                Err(HandshakeError::CrliteHit)
            ),
            "pushed revocation beats the on-path OCSP block"
        );
    }

    #[test]
    fn alpn_negotiation_in_session() {
        let pki = pki(&["foo.com"]);
        let mut client = Client::new(vec![pki.root.public()]);
        client.alpn = vec![Alpn::acme()];
        // Default server doesn't speak acme-tls/1 → no ALPN in session.
        let session = connect(&client, &pki.server, &dn("foo.com"), d("2022-06-01")).unwrap();
        assert_eq!(session.alpn, None);
    }
}
