//! Handshake endpoints: the server's identity table and the client's
//! trust configuration.

use crate::messages::Alpn;
use ca::ocsp::OcspResponse;
use crypto::{KeyPair, PublicKey};
use stale_core::mitigation::crlite::CrliteFilter;
use stale_core::mitigation::revocation_policy::RevocationPolicy;
use stale_types::DomainName;
use x509::Certificate;

/// One identity a server can present: a chain plus the leaf's private
/// key (and optionally a stapled OCSP response).
#[derive(Clone)]
pub struct ServerIdentity {
    /// Chain, leaf first.
    pub chain: Vec<Certificate>,
    /// Leaf private key — possession is what CertificateVerify proves.
    pub key: KeyPair,
    /// Stapled OCSP response to present, if any.
    pub staple: Option<OcspResponse>,
}

impl ServerIdentity {
    /// Identity with a single (leaf) certificate.
    pub fn new(leaf: Certificate, key: KeyPair) -> ServerIdentity {
        ServerIdentity {
            chain: vec![leaf],
            key,
            staple: None,
        }
    }

    /// Attach an intermediate/root chain tail.
    pub fn with_chain_tail(mut self, tail: Vec<Certificate>) -> Self {
        self.chain.extend(tail);
        self
    }

    /// Attach a stapled OCSP response.
    pub fn with_staple(mut self, staple: OcspResponse) -> Self {
        self.staple = Some(staple);
        self
    }
}

/// A TLS server: identities selected by SNI, supported ALPN protocols.
#[derive(Clone, Default)]
pub struct Server {
    identities: Vec<ServerIdentity>,
    alpn: Vec<Alpn>,
}

impl Server {
    /// Empty server.
    pub fn new() -> Server {
        Server {
            identities: Vec::new(),
            alpn: vec![Alpn::h2(), Alpn::http11()],
        }
    }

    /// Add an identity.
    pub fn add_identity(&mut self, identity: ServerIdentity) -> &mut Self {
        self.identities.push(identity);
        self
    }

    /// Replace the ALPN protocol list.
    pub fn with_alpn(mut self, alpn: Vec<Alpn>) -> Self {
        self.alpn = alpn;
        self
    }

    /// Pick the identity whose leaf covers `sni` (first match wins, as
    /// real servers order their cert lists).
    pub fn select_identity(&self, sni: &DomainName) -> Option<&ServerIdentity> {
        self.identities.iter().find(|id| {
            id.chain
                .first()
                .is_some_and(|leaf| leaf.tbs.san().iter().any(|san| san.matches(sni)))
        })
    }

    /// Negotiate ALPN: first client preference the server supports.
    pub fn select_alpn(&self, offered: &[Alpn]) -> Option<Alpn> {
        offered.iter().find(|a| self.alpn.contains(a)).cloned()
    }
}

/// A TLS client: trust anchors plus revocation configuration.
pub struct Client {
    /// Trusted root public keys.
    pub trusted_roots: Vec<PublicKey>,
    /// OCSP checking policy.
    pub revocation_policy: RevocationPolicy,
    /// Pushed revocation filter (CRLite), when deployed.
    pub crlite: Option<CrliteFilter>,
    /// ALPN protocols to offer.
    pub alpn: Vec<Alpn>,
}

impl Client {
    /// A browser-default-ish client: trusts `roots`, no revocation
    /// checking.
    pub fn new(roots: Vec<PublicKey>) -> Client {
        Client {
            trusted_roots: roots,
            revocation_policy: RevocationPolicy::NoCheck,
            crlite: None,
            alpn: vec![Alpn::h2(), Alpn::http11()],
        }
    }

    /// Set the revocation policy.
    pub fn with_policy(mut self, policy: RevocationPolicy) -> Self {
        self.revocation_policy = policy;
        self
    }

    /// Deploy a CRLite filter.
    pub fn with_crlite(mut self, filter: CrliteFilter) -> Self {
        self.crlite = Some(filter);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stale_types::{domain::dn, Date, Duration};
    use x509::CertificateBuilder;

    fn identity(sans: &[&str], seed: u8) -> ServerIdentity {
        let key = KeyPair::from_seed([seed; 32]);
        let ca = KeyPair::from_seed([seed + 1; 32]);
        let leaf = CertificateBuilder::tls_leaf(key.public())
            .serial(seed as u128)
            .issuer_cn("Endpoint CA")
            .subject_cn(sans[0])
            .sans(sans.iter().map(|s| dn(s)))
            .validity_days(Date::parse("2022-01-01").unwrap(), Duration::days(90))
            .sign(&ca);
        ServerIdentity::new(leaf, key)
    }

    #[test]
    fn sni_selection_matches_wildcards() {
        let mut server = Server::new();
        server.add_identity(identity(&["foo.com", "*.foo.com"], 1));
        server.add_identity(identity(&["bar.com"], 3));
        assert!(server.select_identity(&dn("foo.com")).is_some());
        assert!(server.select_identity(&dn("api.foo.com")).is_some());
        assert!(server.select_identity(&dn("bar.com")).is_some());
        assert!(server.select_identity(&dn("baz.com")).is_none());
    }

    #[test]
    fn alpn_prefers_client_order() {
        let server = Server::new().with_alpn(vec![Alpn::http11(), Alpn::h2()]);
        let picked = server.select_alpn(&[Alpn::h2(), Alpn::http11()]).unwrap();
        assert_eq!(picked, Alpn::h2(), "client preference wins");
        assert_eq!(server.select_alpn(&[Alpn::acme()]), None);
    }
}
