//! Handshake messages and the running transcript hash.
//!
//! Message layouts follow TLS 1.3's shape (ClientHello with SNI and ALPN,
//! ServerHello, Certificate, CertificateVerify, Finished) without the
//! full wire format: each message contributes canonical bytes to a
//! SHA-256 transcript, and the signatures/MACs bind to that transcript
//! exactly as in the real protocol — which is what makes key possession
//! and downgrade resistance testable.

use crypto::sha256::Sha256;
use stale_types::DomainName;
use x509::Certificate;

/// An ALPN protocol name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Alpn(pub String);

/// The ACME tls-alpn-01 protocol id (RFC 8737).
pub const ACME_TLS_ALPN: &str = "acme-tls/1";

impl Alpn {
    /// HTTP/1.1.
    pub fn http11() -> Alpn {
        Alpn("http/1.1".into())
    }

    /// HTTP/2.
    pub fn h2() -> Alpn {
        Alpn("h2".into())
    }

    /// The ACME validation protocol.
    pub fn acme() -> Alpn {
        Alpn(ACME_TLS_ALPN.into())
    }
}

/// ClientHello.
#[derive(Debug, Clone)]
pub struct ClientHello {
    /// Client random.
    pub random: [u8; 32],
    /// Server name indication — how the server picks an identity.
    pub sni: DomainName,
    /// Offered ALPN protocols, client preference order.
    pub alpn: Vec<Alpn>,
}

/// ServerHello.
#[derive(Debug, Clone)]
pub struct ServerHello {
    /// Server random.
    pub random: [u8; 32],
    /// Selected ALPN protocol, if any matched.
    pub alpn: Option<Alpn>,
}

/// The server's Certificate message.
#[derive(Debug, Clone)]
pub struct CertificateMsg {
    /// Presented chain, leaf first.
    pub chain: Vec<Certificate>,
}

/// CertificateVerify: a signature over the transcript so far, provable
/// only with the leaf certificate's private key.
#[derive(Debug, Clone)]
pub struct CertificateVerify {
    /// Signature over `transcript_hash` with a context label.
    pub signature: crypto::Signature,
}

/// Finished: a MAC over the final transcript (simplified to a hash
/// binding here — no key schedule).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finished {
    /// SHA-256 of the complete transcript.
    pub verify_data: [u8; 32],
}

/// Running transcript hash over canonical message encodings.
#[derive(Clone)]
pub struct Transcript {
    hasher: Sha256,
}

impl Default for Transcript {
    fn default() -> Self {
        Self::new()
    }
}

impl Transcript {
    /// Empty transcript.
    pub fn new() -> Self {
        Transcript {
            hasher: Sha256::new(),
        }
    }

    /// Absorb the ClientHello.
    pub fn client_hello(&mut self, hello: &ClientHello) {
        self.hasher.update(b"client_hello");
        self.hasher.update(&hello.random);
        self.hasher.update(hello.sni.as_str().as_bytes());
        for alpn in &hello.alpn {
            self.hasher.update(&[0x00]);
            self.hasher.update(alpn.0.as_bytes());
        }
    }

    /// Absorb the ServerHello.
    pub fn server_hello(&mut self, hello: &ServerHello) {
        self.hasher.update(b"server_hello");
        self.hasher.update(&hello.random);
        if let Some(alpn) = &hello.alpn {
            self.hasher.update(alpn.0.as_bytes());
        }
    }

    /// Absorb the Certificate message.
    pub fn certificate(&mut self, msg: &CertificateMsg) {
        self.hasher.update(b"certificate");
        for cert in &msg.chain {
            self.hasher.update(&cert.encode());
        }
    }

    /// The current transcript hash.
    pub fn hash(&self) -> [u8; 32] {
        self.hasher.clone().finalize()
    }

    /// The bytes CertificateVerify signs: a context label plus the
    /// transcript hash (TLS 1.3 §4.4.3's construction, simplified).
    pub fn verify_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(64);
        bytes.extend_from_slice(b"TLS 1.3, server CertificateVerify\x00");
        bytes.extend_from_slice(&self.hash());
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stale_types::domain::dn;

    fn hello() -> ClientHello {
        ClientHello {
            random: [1; 32],
            sni: dn("foo.com"),
            alpn: vec![Alpn::h2()],
        }
    }

    #[test]
    fn transcript_is_order_and_content_sensitive() {
        let mut a = Transcript::new();
        a.client_hello(&hello());
        let mut b = Transcript::new();
        b.client_hello(&ClientHello {
            sni: dn("bar.com"),
            ..hello()
        });
        assert_ne!(a.hash(), b.hash(), "SNI is bound into the transcript");
        let mut c = Transcript::new();
        c.client_hello(&hello());
        assert_eq!(a.hash(), c.hash(), "same messages, same hash");
        // Adding a ServerHello changes it.
        c.server_hello(&ServerHello {
            random: [2; 32],
            alpn: Some(Alpn::h2()),
        });
        assert_ne!(a.hash(), c.hash());
    }

    #[test]
    fn alpn_list_is_injectively_encoded() {
        // ["ab", "c"] must differ from ["a", "bc"].
        let mut a = Transcript::new();
        a.client_hello(&ClientHello {
            random: [0; 32],
            sni: dn("x.com"),
            alpn: vec![Alpn("ab".into()), Alpn("c".into())],
        });
        let mut b = Transcript::new();
        b.client_hello(&ClientHello {
            random: [0; 32],
            sni: dn("x.com"),
            alpn: vec![Alpn("a".into()), Alpn("bc".into())],
        });
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn verify_bytes_carry_context_label() {
        let t = Transcript::new();
        let bytes = t.verify_bytes();
        assert!(bytes.starts_with(b"TLS 1.3, server CertificateVerify\x00"));
        assert_eq!(bytes.len(), 34 + 32);
    }
}
