//! Thin WHOIS records and the longitudinal WHOIS dataset.
//!
//! The paper restricts itself to *thin* WHOIS fields — the ones controlled
//! by the registry (Verisign) rather than self-reported by registrars —
//! because they are "consistently structured and generally reliable"
//! (§4.2). The detector then reduces each record to a
//! `(domain, creation_date)` pair. [`WhoisDataset`] is the collected
//! longitudinal feed: every `(domain, creation_date)` pair ever observed.

use crate::registry::{Registry, RegistryEvent};
use serde::{Deserialize, Serialize};
use stale_types::{Date, DomainName};
use std::collections::BTreeMap;

/// A thin WHOIS record as served for one domain on one day.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WhoisRecord {
    /// The domain.
    pub domain: DomainName,
    /// Sponsoring registrar id.
    pub registrar: u32,
    /// Registry creation date.
    pub creation_date: Date,
    /// Registry expiration date.
    pub expiration_date: Date,
    /// Last updated date.
    pub updated_date: Date,
}

/// Longitudinal collection of registry creation dates.
///
/// For each domain, the ordered list of distinct creation dates observed.
/// A domain with more than one creation date was deleted and re-registered
/// between observations — the §4.2 registrant-change signal.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WhoisDataset {
    /// Domain → ordered distinct creation dates.
    creations: BTreeMap<DomainName, Vec<Date>>,
    /// Collection window.
    pub window_start: Option<Date>,
    /// Collection window end.
    pub window_end: Option<Date>,
}

impl WhoisDataset {
    /// Empty dataset.
    pub fn new() -> Self {
        WhoisDataset::default()
    }

    /// Record an observed `(domain, creation_date)` pair.
    pub fn observe(&mut self, domain: DomainName, creation_date: Date) {
        let dates = self.creations.entry(domain).or_default();
        if dates.last() != Some(&creation_date) {
            debug_assert!(
                dates.last().is_none_or(|last| *last < creation_date),
                "creation dates must be observed in order"
            );
            dates.push(creation_date);
        }
        self.window_start = Some(
            self.window_start
                .map_or(creation_date, |w| w.min(creation_date)),
        );
        self.window_end = Some(
            self.window_end
                .map_or(creation_date, |w| w.max(creation_date)),
        );
    }

    /// Ingest every registration event from a registry's event log.
    pub fn ingest_registry(&mut self, registry: &Registry) {
        for event in registry.events() {
            if let RegistryEvent::Registered {
                domain,
                creation_date,
                ..
            } = event
            {
                self.observe(domain.clone(), *creation_date);
            }
        }
    }

    /// Creation dates observed for `domain`.
    pub fn creation_dates(&self, domain: &DomainName) -> &[Date] {
        self.creations.get(domain).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Every `(domain, creation_date)` pair ever observed, in domain order
    /// and chronological within a domain. This is the raw longitudinal
    /// feed the incremental day-feed slices; [`Self::registrant_changes`]
    /// is the same stream minus each domain's first registration.
    pub fn observations(&self) -> impl Iterator<Item = (&DomainName, Date)> {
        self.creations
            .iter()
            .flat_map(|(domain, dates)| dates.iter().map(move |d| (domain, *d)))
    }

    /// Re-registration events: every creation date after a domain's first,
    /// i.e. the dates at which the registrant (presumably) changed.
    pub fn registrant_changes(&self) -> impl Iterator<Item = (&DomainName, Date)> {
        self.creations
            .iter()
            .flat_map(|(domain, dates)| dates.iter().skip(1).map(move |d| (domain, *d)))
    }

    /// Number of domains observed.
    pub fn domain_count(&self) -> usize {
        self.creations.len()
    }

    /// Total records (pairs) observed.
    pub fn record_count(&self) -> usize {
        self.creations.values().map(Vec::len).sum()
    }
}

/// Serve the current thin WHOIS record for a domain from a registry.
pub fn whois_lookup(registry: &Registry, domain: &DomainName) -> Option<WhoisRecord> {
    registry.registration(domain).map(|reg| WhoisRecord {
        domain: reg.domain.clone(),
        registrar: reg.registrar,
        creation_date: reg.creation_date,
        expiration_date: reg.expiration_date,
        updated_date: reg.updated_date,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stale_types::domain::dn;
    use stale_types::{AccountId, Duration};

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    #[test]
    fn observe_dedups_repeats() {
        let mut ds = WhoisDataset::new();
        ds.observe(dn("foo.com"), d("2020-01-01"));
        ds.observe(dn("foo.com"), d("2020-01-01"));
        ds.observe(dn("foo.com"), d("2021-06-01"));
        assert_eq!(
            ds.creation_dates(&dn("foo.com")),
            &[d("2020-01-01"), d("2021-06-01")]
        );
        assert_eq!(ds.record_count(), 2);
    }

    #[test]
    fn registrant_changes_skip_first_registration() {
        let mut ds = WhoisDataset::new();
        ds.observe(dn("foo.com"), d("2020-01-01"));
        ds.observe(dn("foo.com"), d("2021-06-01"));
        ds.observe(dn("bar.com"), d("2019-05-05"));
        let changes: Vec<_> = ds.registrant_changes().collect();
        assert_eq!(changes, vec![(&dn("foo.com"), d("2021-06-01"))]);
    }

    #[test]
    fn ingest_registry_end_to_end() {
        let mut registry = Registry::new(dn("com"), d("2019-01-01"));
        registry
            .register(dn("foo.com"), AccountId(1), 0, Duration::days(365))
            .unwrap();
        // Let it lapse and be re-registered (release = +365+80 days).
        registry.advance_to(d("2020-04-01"));
        registry
            .register(dn("foo.com"), AccountId(2), 1, Duration::days(365))
            .unwrap();
        let mut ds = WhoisDataset::new();
        ds.ingest_registry(&registry);
        assert_eq!(ds.creation_dates(&dn("foo.com")).len(), 2);
        let changes: Vec<_> = ds.registrant_changes().collect();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].1, d("2020-04-01"));
    }

    #[test]
    fn whois_lookup_reflects_registration() {
        let mut registry = Registry::new(dn("com"), d("2020-01-01"));
        registry
            .register(dn("foo.com"), AccountId(7), 3, Duration::days(730))
            .unwrap();
        let rec = whois_lookup(&registry, &dn("foo.com")).unwrap();
        assert_eq!(rec.creation_date, d("2020-01-01"));
        assert_eq!(rec.registrar, 3);
        assert!(whois_lookup(&registry, &dn("ghost.com")).is_none());
    }

    #[test]
    fn window_tracks_min_max() {
        let mut ds = WhoisDataset::new();
        ds.observe(dn("a.com"), d("2018-06-01"));
        ds.observe(dn("b.com"), d("2016-01-01"));
        ds.observe(dn("c.com"), d("2021-07-08"));
        assert_eq!(ds.window_start, Some(d("2016-01-01")));
        assert_eq!(ds.window_end, Some(d("2021-07-08")));
        assert_eq!(ds.domain_count(), 3);
    }
}
