//! The domain registration lifecycle state machine.
//!
//! Post-expiration flow (§2.1, §4.4): a domain that is not renewed passes
//! through a 45-day auto-renew **grace** period, a 30-day **redemption**
//! period, then ~5 days of **pending delete** before the registry releases
//! it. Only after release can the public (including drop-catch services)
//! re-register it — producing a *new creation date*, the signal the
//! registrant-change detector keys on.

use serde::{Deserialize, Serialize};
use stale_types::{AccountId, Date, DomainName, Duration};

/// Timing parameters of the lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LifecyclePolicy {
    /// Auto-renew grace period after expiration (ICANN default 45 days).
    pub grace: Duration,
    /// Redemption period after grace (30 days).
    pub redemption: Duration,
    /// Pending-delete before release (5 days).
    pub pending_delete: Duration,
}

impl Default for LifecyclePolicy {
    fn default() -> Self {
        LifecyclePolicy {
            grace: Duration::days(45),
            redemption: Duration::days(30),
            pending_delete: Duration::days(5),
        }
    }
}

/// Where a registration is in its life.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DomainState {
    /// Registered and paid up.
    Active,
    /// Expired, within the grace window (renewal restores at no penalty).
    ExpiredGrace,
    /// In redemption (renewal possible with penalty).
    Redemption,
    /// Queued for deletion; no recovery.
    PendingDelete,
    /// Deleted and released; open for public re-registration.
    Released,
}

/// One domain's registration at a registry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Registration {
    /// The registered name (an e2LD).
    pub domain: DomainName,
    /// Current registrant.
    pub registrant: AccountId,
    /// Sponsoring registrar (index into the simulation's registrar table).
    pub registrar: u32,
    /// Registry creation date — changes **only** on re-registration.
    pub creation_date: Date,
    /// Paid-through date.
    pub expiration_date: Date,
    /// Last update to registrant-controlled data (renewal, transfer).
    pub updated_date: Date,
}

impl Registration {
    /// The state of this registration as of `date` under `policy`.
    pub fn state_at(&self, date: Date, policy: &LifecyclePolicy) -> DomainState {
        if date < self.expiration_date {
            return DomainState::Active;
        }
        let grace_end = self.expiration_date + policy.grace;
        if date < grace_end {
            return DomainState::ExpiredGrace;
        }
        let redemption_end = grace_end + policy.redemption;
        if date < redemption_end {
            return DomainState::Redemption;
        }
        let delete_end = redemption_end + policy.pending_delete;
        if date < delete_end {
            return DomainState::PendingDelete;
        }
        DomainState::Released
    }

    /// The day the domain becomes publicly available again if never
    /// renewed.
    pub fn release_date(&self, policy: &LifecyclePolicy) -> Date {
        self.expiration_date + policy.grace + policy.redemption + policy.pending_delete
    }

    /// Whether renewal is still possible at `date` (active, grace or
    /// redemption).
    pub fn renewable_at(&self, date: Date, policy: &LifecyclePolicy) -> bool {
        matches!(
            self.state_at(date, policy),
            DomainState::Active | DomainState::ExpiredGrace | DomainState::Redemption
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stale_types::domain::dn;

    fn reg() -> Registration {
        Registration {
            domain: dn("foo.com"),
            registrant: AccountId(1),
            registrar: 0,
            creation_date: Date::parse("2020-03-01").unwrap(),
            expiration_date: Date::parse("2021-03-01").unwrap(),
            updated_date: Date::parse("2020-03-01").unwrap(),
        }
    }

    #[test]
    fn state_progression() {
        let r = reg();
        let p = LifecyclePolicy::default();
        let exp = r.expiration_date;
        assert_eq!(r.state_at(exp.pred(), &p), DomainState::Active);
        assert_eq!(r.state_at(exp, &p), DomainState::ExpiredGrace);
        assert_eq!(
            r.state_at(exp + Duration::days(44), &p),
            DomainState::ExpiredGrace
        );
        assert_eq!(
            r.state_at(exp + Duration::days(45), &p),
            DomainState::Redemption
        );
        assert_eq!(
            r.state_at(exp + Duration::days(74), &p),
            DomainState::Redemption
        );
        assert_eq!(
            r.state_at(exp + Duration::days(75), &p),
            DomainState::PendingDelete
        );
        assert_eq!(
            r.state_at(exp + Duration::days(79), &p),
            DomainState::PendingDelete
        );
        assert_eq!(
            r.state_at(exp + Duration::days(80), &p),
            DomainState::Released
        );
    }

    #[test]
    fn release_date_matches_state() {
        let r = reg();
        let p = LifecyclePolicy::default();
        let release = r.release_date(&p);
        assert_eq!(r.state_at(release.pred(), &p), DomainState::PendingDelete);
        assert_eq!(r.state_at(release, &p), DomainState::Released);
        // 80 days after expiration with default policy.
        assert_eq!(release - r.expiration_date, Duration::days(80));
    }

    #[test]
    fn renewable_until_redemption_ends() {
        let r = reg();
        let p = LifecyclePolicy::default();
        assert!(r.renewable_at(r.expiration_date + Duration::days(10), &p));
        assert!(r.renewable_at(r.expiration_date + Duration::days(60), &p));
        assert!(!r.renewable_at(r.expiration_date + Duration::days(76), &p));
    }
}
