//! Textual WHOIS responses: serving and tolerant parsing.
//!
//! §4.2 leans on a painful reality: WHOIS is "notoriously difficult to
//! rely on due to inconsistent formatting of responses across registrars"
//! and increasingly GDPR-redacted. This module reproduces that surface:
//! [`render`] emits a thin-WHOIS response in one of several real-world
//! format dialects (Verisign-style, legacy `created:` style, terse), with
//! optional GDPR redaction of registrant fields, and [`parse`] is the
//! measurement pipeline's tolerant extractor that recovers the
//! registry-controlled fields — the only ones the paper trusts — from any
//! of them.

use crate::whois::WhoisRecord;
use stale_types::{Date, DomainName};
use std::fmt;

/// Output dialects seen across registrars/registries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WhoisDialect {
    /// Verisign thin-WHOIS style: `Creation Date: 2016-01-01T00:00:00Z`.
    Verisign,
    /// Legacy style: `created: 2016-01-01`.
    Legacy,
    /// Terse key=value style some registrars emit.
    Terse,
}

/// Why a response could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WhoisParseError {
    /// No domain name field found.
    MissingDomain,
    /// No recognisable creation-date field found.
    MissingCreationDate,
    /// A field was present but malformed.
    BadField {
        /// Field label as seen.
        field: String,
        /// Raw value.
        value: String,
    },
}

impl fmt::Display for WhoisParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WhoisParseError::MissingDomain => write!(f, "no domain name in WHOIS response"),
            WhoisParseError::MissingCreationDate => {
                write!(f, "no creation date in WHOIS response")
            }
            WhoisParseError::BadField { field, value } => {
                write!(f, "malformed WHOIS field {field}: {value:?}")
            }
        }
    }
}

impl std::error::Error for WhoisParseError {}

/// Render a record as a textual response in `dialect`. When `redacted`,
/// registrant-adjacent fields are replaced the way GDPR-era responses do —
/// the registry-controlled dates stay visible, which is exactly why the
/// paper's method survives redaction.
pub fn render(record: &WhoisRecord, dialect: WhoisDialect, redacted: bool) -> String {
    let registrant = if redacted {
        "REDACTED FOR PRIVACY"
    } else {
        "Registrant Name: On File"
    };
    match dialect {
        WhoisDialect::Verisign => format!(
            "   Domain Name: {}\n   Registrar: Registrar {}\n   Creation Date: {}T00:00:00Z\n   Registry Expiry Date: {}T00:00:00Z\n   Updated Date: {}T00:00:00Z\n   Registrant: {}\n   >>> Last update of whois database <<<\n",
            record.domain.as_str().to_ascii_uppercase(),
            record.registrar,
            record.creation_date,
            record.expiration_date,
            record.updated_date,
            registrant,
        ),
        WhoisDialect::Legacy => format!(
            "domain:      {}\nregistrar:   registrar-{}\ncreated:     {}\nexpires:     {}\nchanged:     {}\nholder:      {}\n",
            record.domain,
            record.registrar,
            record.creation_date,
            record.expiration_date,
            record.updated_date,
            if redacted { "redacted" } else { "on file" },
        ),
        WhoisDialect::Terse => format!(
            "domain={}\nregistrar_id={}\ndomain_create_date={}\ndomain_expiry_date={}\nlast_modified={}\nregistrant={}\n",
            record.domain,
            record.registrar,
            record.creation_date,
            record.expiration_date,
            record.updated_date,
            if redacted { "REDACTED" } else { "on-file" },
        ),
    }
}

/// Labels that mean "registry creation date" across dialects, lowercase.
const CREATION_LABELS: &[&str] = &[
    "creation date",
    "created",
    "domain_create_date",
    "create date",
    "registered on",
];

/// Labels that mean "expiry date".
const EXPIRY_LABELS: &[&str] = &[
    "registry expiry date",
    "expires",
    "domain_expiry_date",
    "expiry date",
];

/// Labels that mean "last updated".
const UPDATED_LABELS: &[&str] = &["updated date", "changed", "last_modified", "last updated"];

/// Parsed thin fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedWhois {
    /// Domain, normalised.
    pub domain: DomainName,
    /// Registry creation date — the detector's signal.
    pub creation_date: Date,
    /// Expiry, when present.
    pub expiration_date: Option<Date>,
    /// Updated, when present.
    pub updated_date: Option<Date>,
    /// Whether registrant fields were redacted.
    pub redacted: bool,
}

fn parse_date_lenient(raw: &str) -> Option<Date> {
    // Accept `YYYY-MM-DD`, `YYYY-MM-DDTHH:MM:SSZ` and surrounding junk.
    let trimmed = raw.trim();
    let date_part = trimmed.split('T').next().unwrap_or(trimmed);
    Date::parse(date_part).ok()
}

/// Tolerantly parse a textual WHOIS response.
pub fn parse(text: &str) -> Result<ParsedWhois, WhoisParseError> {
    let mut domain: Option<DomainName> = None;
    let mut creation: Option<Date> = None;
    let mut expiry: Option<Date> = None;
    let mut updated: Option<Date> = None;
    let redacted = text.to_ascii_lowercase().contains("redacted");
    for raw_line in text.lines() {
        let line = raw_line.trim();
        let Some((label, value)) = line.split_once([':', '=']) else {
            continue;
        };
        let label = label.trim().to_ascii_lowercase();
        let value = value.trim();
        if value.is_empty() {
            continue;
        }
        if (label == "domain name" || label == "domain") && domain.is_none() {
            domain = Some(
                DomainName::parse(value).map_err(|_| WhoisParseError::BadField {
                    field: label.clone(),
                    value: value.to_string(),
                })?,
            );
        } else if CREATION_LABELS.contains(&label.as_str()) && creation.is_none() {
            creation =
                Some(
                    parse_date_lenient(value).ok_or_else(|| WhoisParseError::BadField {
                        field: label.clone(),
                        value: value.to_string(),
                    })?,
                );
        } else if EXPIRY_LABELS.contains(&label.as_str()) && expiry.is_none() {
            expiry = parse_date_lenient(value);
        } else if UPDATED_LABELS.contains(&label.as_str()) && updated.is_none() {
            updated = parse_date_lenient(value);
        }
    }
    Ok(ParsedWhois {
        domain: domain.ok_or(WhoisParseError::MissingDomain)?,
        creation_date: creation.ok_or(WhoisParseError::MissingCreationDate)?,
        expiration_date: expiry,
        updated_date: updated,
        redacted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stale_types::domain::dn;

    fn record() -> WhoisRecord {
        WhoisRecord {
            domain: dn("foo.com"),
            registrar: 7,
            creation_date: Date::parse("2016-01-01").unwrap(),
            expiration_date: Date::parse("2023-01-01").unwrap(),
            updated_date: Date::parse("2022-01-01").unwrap(),
        }
    }

    #[test]
    fn every_dialect_roundtrips_thin_fields() {
        for dialect in [
            WhoisDialect::Verisign,
            WhoisDialect::Legacy,
            WhoisDialect::Terse,
        ] {
            for redacted in [false, true] {
                let text = render(&record(), dialect, redacted);
                let parsed =
                    parse(&text).unwrap_or_else(|e| panic!("{dialect:?} redacted={redacted}: {e}"));
                assert_eq!(parsed.domain, dn("foo.com"), "{dialect:?}");
                assert_eq!(parsed.creation_date, Date::parse("2016-01-01").unwrap());
                assert_eq!(
                    parsed.expiration_date,
                    Some(Date::parse("2023-01-01").unwrap())
                );
                assert_eq!(parsed.redacted, redacted);
            }
        }
    }

    #[test]
    fn redaction_hides_registrant_but_not_dates() {
        let text = render(&record(), WhoisDialect::Verisign, true);
        assert!(text.contains("REDACTED"));
        assert!(text.contains("Creation Date: 2016-01-01"));
        let parsed = parse(&text).unwrap();
        assert!(parsed.redacted);
        assert_eq!(parsed.creation_date, Date::parse("2016-01-01").unwrap());
    }

    #[test]
    fn uppercase_domains_normalised() {
        let text = "Domain Name: EXAMPLE.COM\nCreation Date: 2020-05-05T00:00:00Z\n";
        let parsed = parse(text).unwrap();
        assert_eq!(parsed.domain, dn("example.com"));
    }

    #[test]
    fn missing_fields_detected() {
        assert_eq!(
            parse("Creation Date: 2020-01-01\n").unwrap_err(),
            WhoisParseError::MissingDomain
        );
        assert_eq!(
            parse("Domain Name: foo.com\n").unwrap_err(),
            WhoisParseError::MissingCreationDate
        );
    }

    #[test]
    fn malformed_dates_rejected_with_context() {
        let err = parse("Domain: foo.com\ncreated: not-a-date\n").unwrap_err();
        assert!(matches!(err, WhoisParseError::BadField { field, .. } if field == "created"));
    }

    #[test]
    fn first_occurrence_wins() {
        // Some registrars append their own (unreliable) dates after the
        // registry block; the parser keeps the first.
        let text = "Domain: foo.com\ncreated: 2016-01-01\ncreated: 1999-09-09\n";
        assert_eq!(
            parse(text).unwrap().creation_date,
            Date::parse("2016-01-01").unwrap()
        );
    }
}
