//! Domain registration substrate: registries, the registration lifecycle
//! and thin-WHOIS records.
//!
//! The registrant-change detector (§4.2) rests on one registry behaviour:
//! the registry-controlled **creation date** changes only when a domain is
//! deleted and later re-registered (§2.1). This crate models that exactly:
//!
//! * [`lifecycle`] — the post-expiration state machine (45-day grace,
//!   30-day redemption, pending delete, release) from §4.4, including
//!   intra-registry transfers that do *not* touch the creation date (the
//!   detector's documented blind spot) and drop-catch re-registration;
//! * [`registry`] — per-TLD registries processing day-by-day;
//! * [`whois`] — thin WHOIS records (registry-controlled fields only, as
//!   the paper restricts itself to) and the longitudinal
//!   [`whois::WhoisDataset`] the detector consumes.

pub mod lifecycle;
pub mod registry;
pub mod whois;
pub mod whois_text;

pub use lifecycle::{DomainState, LifecyclePolicy, Registration};
pub use registry::{Registry, RegistryEvent};
pub use whois::{WhoisDataset, WhoisRecord};
