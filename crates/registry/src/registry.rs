//! A TLD registry: registrations, transfers, expiration processing and
//! re-registration.

use crate::lifecycle::{DomainState, LifecyclePolicy, Registration};
use serde::{Deserialize, Serialize};
use stale_types::{AccountId, Date, DomainName, Duration};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;

/// Observable registry events, emitted in order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegistryEvent {
    /// First or repeat registration (repeat ⇒ fresh creation date).
    Registered {
        /// The domain.
        domain: DomainName,
        /// New owner.
        registrant: AccountId,
        /// The registry creation date stamped on the record.
        creation_date: Date,
        /// Whether a previous registration existed for this name.
        re_registration: bool,
    },
    /// Renewal by the current registrant.
    Renewed {
        /// The domain.
        domain: DomainName,
        /// New paid-through date.
        new_expiration: Date,
    },
    /// Transfer to another registrant without deletion — **not** visible
    /// in the creation date (the §4.4 detector blind spot).
    Transferred {
        /// The domain.
        domain: DomainName,
        /// Previous owner.
        from: AccountId,
        /// New owner.
        to: AccountId,
        /// Day of transfer.
        date: Date,
    },
    /// The registry released the name after pending delete.
    Released {
        /// The domain.
        domain: DomainName,
        /// Day of release.
        date: Date,
    },
}

/// Registry operation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The name is not available for registration.
    NotAvailable(DomainState),
    /// The name has no live registration to operate on.
    NoSuchRegistration,
    /// The operation is not permitted in the current state.
    WrongState(DomainState),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::NotAvailable(s) => write!(f, "domain not available (state {s:?})"),
            RegistryError::NoSuchRegistration => write!(f, "no such registration"),
            RegistryError::WrongState(s) => write!(f, "operation invalid in state {s:?}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// A registry for one TLD (e.g. Verisign for `.com`/`.net`).
#[derive(Debug, Clone)]
pub struct Registry {
    /// The TLD this registry operates.
    pub tld: DomainName,
    policy: LifecyclePolicy,
    /// Live registrations (anything not yet released).
    registrations: BTreeMap<DomainName, Registration>,
    /// Ordered event log.
    events: Vec<RegistryEvent>,
    /// Day the registry has processed up to.
    clock: Date,
    /// Candidate release dates, lazily validated on pop. Renewals leave
    /// stale entries behind; `advance_to` re-checks against the live
    /// registration, so `advance_to` is amortised `O(log n)` per
    /// lifecycle event instead of `O(live domains)` per day.
    release_queue: BinaryHeap<Reverse<(Date, DomainName)>>,
}

impl Registry {
    /// A registry for `tld` starting at `epoch`.
    pub fn new(tld: DomainName, epoch: Date) -> Self {
        Registry {
            tld,
            policy: LifecyclePolicy::default(),
            registrations: BTreeMap::new(),
            events: Vec::new(),
            clock: epoch,
            release_queue: BinaryHeap::new(),
        }
    }

    /// Override the lifecycle policy.
    pub fn with_policy(mut self, policy: LifecyclePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The lifecycle policy in force.
    pub fn policy(&self) -> &LifecyclePolicy {
        &self.policy
    }

    /// Current processed-up-to day.
    pub fn clock(&self) -> Date {
        self.clock
    }

    /// Advance the registry clock, releasing names whose pending-delete
    /// has elapsed.
    pub fn advance_to(&mut self, date: Date) {
        assert!(date >= self.clock, "registry clock cannot go backwards");
        while let Some(Reverse((due, _))) = self.release_queue.peek() {
            if *due > date {
                break;
            }
            let Reverse((_, domain)) = self.release_queue.pop().expect("peeked");
            let Some(reg) = self.registrations.get(&domain) else {
                continue; // already released or re-registered since queued
            };
            let actual = reg.release_date(&self.policy);
            if actual <= date {
                self.registrations.remove(&domain);
                self.events.push(RegistryEvent::Released {
                    domain,
                    date: actual,
                });
            } else {
                // Renewed since the entry was queued; requeue at the new
                // release date (strictly later, so the loop terminates).
                self.release_queue.push(Reverse((actual, domain)));
            }
        }
        self.clock = date;
    }

    /// Whether `domain` can be registered right now.
    pub fn available(&self, domain: &DomainName) -> bool {
        !self.registrations.contains_key(domain)
    }

    /// Register `domain` to `registrant` for `term` at the current clock.
    pub fn register(
        &mut self,
        domain: DomainName,
        registrant: AccountId,
        registrar: u32,
        term: Duration,
    ) -> Result<&Registration, RegistryError> {
        debug_assert!(
            domain.is_subdomain_of(&self.tld) && domain != self.tld,
            "domain must be under the registry TLD"
        );
        if let Some(existing) = self.registrations.get(&domain) {
            return Err(RegistryError::NotAvailable(
                existing.state_at(self.clock, &self.policy),
            ));
        }
        let re_registration = self
            .events
            .iter()
            .any(|e| matches!(e, RegistryEvent::Released { domain: d, .. } if *d == domain));
        let reg = Registration {
            domain: domain.clone(),
            registrant,
            registrar,
            creation_date: self.clock,
            expiration_date: self.clock + term,
            updated_date: self.clock,
        };
        self.events.push(RegistryEvent::Registered {
            domain: domain.clone(),
            registrant,
            creation_date: self.clock,
            re_registration,
        });
        self.release_queue
            .push(Reverse((reg.release_date(&self.policy), domain.clone())));
        Ok(self.registrations.entry(domain).or_insert(reg))
    }

    /// Renew `domain` by `term` (allowed through redemption).
    pub fn renew(&mut self, domain: &DomainName, term: Duration) -> Result<Date, RegistryError> {
        let clock = self.clock;
        let policy = self.policy;
        let reg = self
            .registrations
            .get_mut(domain)
            .ok_or(RegistryError::NoSuchRegistration)?;
        if !reg.renewable_at(clock, &policy) {
            return Err(RegistryError::WrongState(reg.state_at(clock, &policy)));
        }
        // Renewal extends from the old expiration (standard behaviour),
        // or from today if the domain had lapsed into grace/redemption.
        let base = reg.expiration_date.max(clock);
        reg.expiration_date = base + term;
        reg.updated_date = clock;
        let new_expiration = reg.expiration_date;
        let release = reg.release_date(&policy);
        self.events.push(RegistryEvent::Renewed {
            domain: domain.clone(),
            new_expiration,
        });
        self.release_queue.push(Reverse((release, domain.clone())));
        Ok(new_expiration)
    }

    /// Transfer `domain` to `new_registrant` without deletion. The
    /// creation date is untouched, so this ownership change is invisible
    /// to creation-date-based detection.
    pub fn transfer(
        &mut self,
        domain: &DomainName,
        new_registrant: AccountId,
    ) -> Result<(), RegistryError> {
        let clock = self.clock;
        let policy = self.policy;
        let reg = self
            .registrations
            .get_mut(domain)
            .ok_or(RegistryError::NoSuchRegistration)?;
        if reg.state_at(clock, &policy) != DomainState::Active {
            return Err(RegistryError::WrongState(reg.state_at(clock, &policy)));
        }
        let from = reg.registrant;
        reg.registrant = new_registrant;
        reg.updated_date = clock;
        self.events.push(RegistryEvent::Transferred {
            domain: domain.clone(),
            from,
            to: new_registrant,
            date: clock,
        });
        Ok(())
    }

    /// The live registration for `domain`, if any.
    pub fn registration(&self, domain: &DomainName) -> Option<&Registration> {
        self.registrations.get(domain)
    }

    /// State of `domain` at the current clock.
    pub fn state(&self, domain: &DomainName) -> DomainState {
        match self.registrations.get(domain) {
            Some(reg) => reg.state_at(self.clock, &self.policy),
            None => DomainState::Released,
        }
    }

    /// The ordered event log.
    pub fn events(&self) -> &[RegistryEvent] {
        &self.events
    }

    /// Live registration count.
    pub fn live_count(&self) -> usize {
        self.registrations.len()
    }

    /// Iterate live registrations.
    pub fn iter(&self) -> impl Iterator<Item = &Registration> {
        self.registrations.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stale_types::domain::dn;

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    fn registry() -> Registry {
        Registry::new(dn("com"), d("2020-01-01"))
    }

    #[test]
    fn register_and_lookup() {
        let mut r = registry();
        r.register(dn("foo.com"), AccountId(1), 0, Duration::days(365))
            .unwrap();
        let reg = r.registration(&dn("foo.com")).unwrap();
        assert_eq!(reg.creation_date, d("2020-01-01"));
        assert_eq!(reg.expiration_date, d("2020-12-31"));
        assert_eq!(r.state(&dn("foo.com")), DomainState::Active);
        assert!(!r.available(&dn("foo.com")));
    }

    #[test]
    fn double_registration_rejected() {
        let mut r = registry();
        r.register(dn("foo.com"), AccountId(1), 0, Duration::days(365))
            .unwrap();
        assert!(matches!(
            r.register(dn("foo.com"), AccountId(2), 0, Duration::days(365)),
            Err(RegistryError::NotAvailable(DomainState::Active))
        ));
    }

    #[test]
    fn expiration_release_and_reregistration() {
        let mut r = registry();
        r.register(dn("foo.com"), AccountId(1), 0, Duration::days(365))
            .unwrap();
        // Not renewed; advance past release (365 + 80 days).
        r.advance_to(d("2021-03-25"));
        assert_eq!(r.state(&dn("foo.com")), DomainState::Released);
        assert!(r.available(&dn("foo.com")));
        assert!(r.events().iter().any(
            |e| matches!(e, RegistryEvent::Released { domain, .. } if *domain == dn("foo.com"))
        ));
        // Drop-catch by a new registrant: fresh creation date.
        r.register(dn("foo.com"), AccountId(99), 1, Duration::days(365))
            .unwrap();
        let reg = r.registration(&dn("foo.com")).unwrap();
        assert_eq!(reg.creation_date, d("2021-03-25"));
        assert_eq!(reg.registrant, AccountId(99));
        let re_reg = r.events().iter().any(|e| {
            matches!(e, RegistryEvent::Registered { re_registration: true, registrant, .. }
                if *registrant == AccountId(99))
        });
        assert!(re_reg, "re-registration flagged");
    }

    #[test]
    fn renewal_keeps_creation_date() {
        let mut r = registry();
        r.register(dn("foo.com"), AccountId(1), 0, Duration::days(365))
            .unwrap();
        r.advance_to(d("2020-12-01"));
        let new_exp = r.renew(&dn("foo.com"), Duration::days(365)).unwrap();
        assert_eq!(new_exp, d("2021-12-31"));
        assert_eq!(
            r.registration(&dn("foo.com")).unwrap().creation_date,
            d("2020-01-01")
        );
    }

    #[test]
    fn late_renewal_in_grace() {
        let mut r = registry();
        r.register(dn("foo.com"), AccountId(1), 0, Duration::days(365))
            .unwrap();
        r.advance_to(d("2021-01-20")); // in grace
        assert_eq!(r.state(&dn("foo.com")), DomainState::ExpiredGrace);
        let new_exp = r.renew(&dn("foo.com"), Duration::days(365)).unwrap();
        assert_eq!(new_exp, d("2022-01-20"));
        assert_eq!(r.state(&dn("foo.com")), DomainState::Active);
    }

    #[test]
    fn renewal_after_pending_delete_rejected() {
        let mut r = registry();
        r.register(dn("foo.com"), AccountId(1), 0, Duration::days(365))
            .unwrap();
        r.advance_to(d("2021-03-20")); // day 444: pending delete (380..385)
                                       // foo.com expired 2020-12-31; +45+30 = 2021-03-16 redemption ends.
        assert!(matches!(
            r.renew(&dn("foo.com"), Duration::days(365)),
            Err(RegistryError::WrongState(DomainState::PendingDelete))
        ));
    }

    #[test]
    fn transfer_preserves_creation_date() {
        let mut r = registry();
        r.register(dn("foo.com"), AccountId(1), 0, Duration::days(365))
            .unwrap();
        r.advance_to(d("2020-06-01"));
        r.transfer(&dn("foo.com"), AccountId(2)).unwrap();
        let reg = r.registration(&dn("foo.com")).unwrap();
        assert_eq!(reg.registrant, AccountId(2));
        assert_eq!(
            reg.creation_date,
            d("2020-01-01"),
            "transfer leaves creation date"
        );
        assert_eq!(reg.updated_date, d("2020-06-01"));
    }

    #[test]
    fn transfer_of_missing_domain_fails() {
        let mut r = registry();
        assert_eq!(
            r.transfer(&dn("ghost.com"), AccountId(2)),
            Err(RegistryError::NoSuchRegistration)
        );
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn clock_cannot_rewind() {
        let mut r = registry();
        r.advance_to(d("2020-06-01"));
        r.advance_to(d("2020-01-01"));
    }
}
