//! Cryptographic substrate for the simulated web PKI.
//!
//! Real measurement pipelines hash certificates (fingerprints, CT Merkle
//! leaves) and verify signatures. We implement SHA-256 from scratch
//! (FIPS 180-4, validated against NIST test vectors) so every hash-shaped
//! artifact in the workspace is a real 32-byte digest, plus HMAC-SHA256 and
//! a deterministic HMAC-based signature scheme ([`sig::SimSig`]).
//!
//! `SimSig` is *not* cryptographically secure public-key signing — the
//! "private key" and "public key" are both derived from a seed and
//! verification recomputes the tag. That is the right trade-off here: the
//! study's semantics only need key *identity* (who holds which key, whether
//! a third party has obtained it), sign/verify round-trips, and stable
//! fingerprints. See DESIGN.md §2.

pub mod hmac;
pub mod keys;
pub mod sha256;
pub mod sig;

pub use hmac::hmac_sha256;
pub use keys::{KeyPair, PrivateKey, PublicKey};
pub use sha256::{sha256, Sha256};
pub use sig::{Signature, SimSig};
