//! Keypairs and key identity.
//!
//! A [`KeyPair`] models a subscriber or CA keypair. Public keys are 32
//! bytes derived from the private seed; key identity ([`PublicKey::key_id`])
//! is the truncated SHA-256 of the public key, matching how X.509 Subject
//! Key Identifiers are commonly derived.
//!
//! Key *compromise* in the simulation is literal: an attacker that obtains a
//! clone of the [`PrivateKey`] can produce valid signatures (see
//! [`crate::sig`]), exactly the capability the paper's third-party stale
//! certificate scenarios grant.

use crate::sha256::sha256;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Secret signing key material.
#[derive(Clone, PartialEq, Eq)]
pub struct PrivateKey {
    seed: [u8; 32],
}

impl std::fmt::Debug for PrivateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "PrivateKey(…)")
    }
}

/// Public verification key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PublicKey(pub [u8; 32]);

impl PublicKey {
    /// Truncated SHA-256 of the public key bytes — the key's identity.
    pub fn key_id(&self) -> [u8; 20] {
        let digest = sha256(&self.0);
        let mut id = [0u8; 20];
        id.copy_from_slice(&digest[..20]);
        id
    }

    /// Raw bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

/// A keypair: private seed plus derived public key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyPair {
    private: PrivateKey,
    public: PublicKey,
}

impl KeyPair {
    /// Derive a keypair deterministically from a 32-byte seed.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        // Public key = H("pub" || seed): one-way derivation so knowing the
        // public key does not reveal the seed.
        let mut material = Vec::with_capacity(35);
        material.extend_from_slice(b"pub");
        material.extend_from_slice(&seed);
        let public = PublicKey(sha256(&material));
        KeyPair {
            private: PrivateKey { seed },
            public,
        }
    }

    /// Generate a keypair from an RNG.
    pub fn generate(rng: &mut impl RngCore) -> Self {
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        KeyPair::from_seed(seed)
    }

    /// The public half.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// The private half. Cloning this is how key compromise is modelled.
    pub fn private(&self) -> &PrivateKey {
        &self.private
    }
}

impl PrivateKey {
    /// Key material for signing (crate-internal).
    pub(crate) fn seed(&self) -> &[u8; 32] {
        &self.seed
    }

    /// Recompute the public key for this private key.
    pub fn public(&self) -> PublicKey {
        KeyPair::from_seed(self.seed).public
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_from_seed() {
        let a = KeyPair::from_seed([7; 32]);
        let b = KeyPair::from_seed([7; 32]);
        assert_eq!(a.public(), b.public());
        let c = KeyPair::from_seed([8; 32]);
        assert_ne!(a.public(), c.public());
    }

    #[test]
    fn generate_distinct_keys() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = KeyPair::generate(&mut rng);
        let b = KeyPair::generate(&mut rng);
        assert_ne!(a.public(), b.public());
    }

    #[test]
    fn key_id_is_stable_and_short() {
        let k = KeyPair::from_seed([1; 32]);
        assert_eq!(k.public().key_id(), k.public().key_id());
        assert_eq!(k.public().key_id().len(), 20);
    }

    #[test]
    fn private_recovers_public() {
        let k = KeyPair::from_seed([9; 32]);
        assert_eq!(k.private().public(), k.public());
    }

    #[test]
    fn debug_hides_secret() {
        let k = KeyPair::from_seed([3; 32]);
        assert_eq!(format!("{:?}", k.private()), "PrivateKey(…)");
    }
}
