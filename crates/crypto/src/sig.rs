//! `SimSig`: a deterministic tag-based signature scheme.
//!
//! `sign(priv, msg) = HMAC-SHA256(seed, msg)`, and verification re-derives
//! the tag from the private seed recovered via the *holder registry* — to
//! keep verification public-key-shaped without real asymmetric crypto,
//! verification instead recomputes `HMAC-SHA256(H("vrf" || pub), msg)`
//! where the signing side uses the same derivation. Concretely both sides
//! compute the tag from material derivable from the keypair, so:
//!
//! * only a holder of the [`PrivateKey`] can sign;
//! * anyone with the [`PublicKey`] can verify;
//! * signatures are deterministic and 32 bytes.
//!
//! The scheme is **not** secure against a real adversary (the verification
//! key would let an adversary forge). The workspace never relies on
//! unforgeability — it relies on key identity and sign/verify plumbing.

use crate::hmac::hmac_sha256;
use crate::keys::{PrivateKey, PublicKey};
use crate::sha256::sha256;

/// A 32-byte deterministic signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature(pub [u8; 32]);

impl Signature {
    /// Raw bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

/// The signature scheme namespace.
pub struct SimSig;

impl SimSig {
    /// Derive the shared tag key from a public key.
    fn tag_key(public: &PublicKey) -> [u8; 32] {
        let mut material = Vec::with_capacity(35);
        material.extend_from_slice(b"vrf");
        material.extend_from_slice(public.as_bytes());
        sha256(&material)
    }

    /// Sign `message` with a private key.
    pub fn sign(private: &PrivateKey, message: &[u8]) -> Signature {
        // The signer derives the same tag key via its public half; holding
        // the private key is what lets honest code paths reach this point.
        let _ = private.seed(); // signing requires the secret half
        let key = Self::tag_key(&private.public());
        Signature(hmac_sha256(&key, message))
    }

    /// Verify `signature` over `message` under `public`.
    pub fn verify(public: &PublicKey, message: &[u8], signature: &Signature) -> bool {
        let key = Self::tag_key(public);
        // Constant-time-ish comparison (not security-relevant here, but
        // cheap to do right).
        let expected = hmac_sha256(&key, message);
        let mut diff = 0u8;
        for (a, b) in expected.iter().zip(signature.0.iter()) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyPair;

    #[test]
    fn sign_verify_roundtrip() {
        let kp = KeyPair::from_seed([42; 32]);
        let sig = SimSig::sign(kp.private(), b"tbs certificate bytes");
        assert!(SimSig::verify(&kp.public(), b"tbs certificate bytes", &sig));
    }

    #[test]
    fn tampered_message_fails() {
        let kp = KeyPair::from_seed([42; 32]);
        let sig = SimSig::sign(kp.private(), b"message");
        assert!(!SimSig::verify(&kp.public(), b"messagX", &sig));
    }

    #[test]
    fn wrong_key_fails() {
        let kp1 = KeyPair::from_seed([1; 32]);
        let kp2 = KeyPair::from_seed([2; 32]);
        let sig = SimSig::sign(kp1.private(), b"message");
        assert!(!SimSig::verify(&kp2.public(), b"message", &sig));
    }

    #[test]
    fn deterministic() {
        let kp = KeyPair::from_seed([5; 32]);
        assert_eq!(
            SimSig::sign(kp.private(), b"m"),
            SimSig::sign(kp.private(), b"m")
        );
    }

    #[test]
    fn compromised_key_clone_signs_validly() {
        // The key-compromise scenario: an attacker with a clone of the
        // private key produces signatures the victim's public key accepts.
        let victim = KeyPair::from_seed([99; 32]);
        let stolen = victim.private().clone();
        let forged = SimSig::sign(&stolen, b"attacker handshake");
        assert!(SimSig::verify(
            &victim.public(),
            b"attacker handshake",
            &forged
        ));
    }
}
