//! HMAC-SHA256 (RFC 2104), built on the local SHA-256.

use crate::sha256::{sha256, Sha256};

const BLOCK: usize = 64;

/// Compute `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    // Keys longer than the block size are hashed first (RFC 2104 §2).
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        k[..32].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad).update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad).update(&inner_digest);
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaa; 20];
        let msg = [0xdd; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        assert_eq!(
            hex(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn distinct_keys_give_distinct_tags() {
        let t1 = hmac_sha256(b"key-one", b"message");
        let t2 = hmac_sha256(b"key-two", b"message");
        assert_ne!(t1, t2);
    }
}
