//! Public Suffix List handling: effective TLDs and effective 2LDs.
//!
//! The paper aggregates stale certificates by *effective second-level
//! domain* (e2LD): the registerable unit one level below the effective TLD
//! (§2.1 — `foo.co.uk` is the e2LD under the eTLD `co.uk`). This crate
//! implements the standard PSL matching algorithm over an embedded rule
//! set:
//!
//! * **normal rules** (`com`, `co.uk`) — the rule itself is a public suffix;
//! * **wildcard rules** (`*.ck`) — every child of the base is a suffix;
//! * **exception rules** (`!www.ck`) — carve-outs from a wildcard rule.
//!
//! Matching picks the longest applicable rule; an exception rule beats any
//! other match; a default `*` rule applies when nothing matches, so bare
//! unknown TLDs are treated as public suffixes.

mod rules;

pub use rules::DEFAULT_RULES;

use stale_types::{DomainName, Error, Result};
use std::collections::HashMap;

/// Kind of a PSL rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RuleKind {
    Normal,
    Wildcard,
    Exception,
}

/// A compiled public suffix list.
#[derive(Debug, Clone)]
pub struct SuffixList {
    /// Rule base name → kind.
    rules: HashMap<String, RuleKind>,
}

impl SuffixList {
    /// Compile a rule set from PSL-format lines.
    ///
    /// Lines starting with `//` and blank lines are ignored, matching the
    /// upstream file format.
    pub fn from_rules<'a>(lines: impl IntoIterator<Item = &'a str>) -> Result<Self> {
        let mut rules = HashMap::new();
        for raw in lines {
            let line = raw.trim();
            if line.is_empty() || line.starts_with("//") {
                continue;
            }
            let (kind, name) = if let Some(rest) = line.strip_prefix('!') {
                (RuleKind::Exception, rest)
            } else if let Some(rest) = line.strip_prefix("*.") {
                (RuleKind::Wildcard, rest)
            } else {
                (RuleKind::Normal, line)
            };
            // Validate through DomainName so garbage rules are rejected.
            let parsed = DomainName::parse(name)?;
            rules.insert(parsed.as_str().to_string(), kind);
        }
        Ok(SuffixList { rules })
    }

    /// The embedded default rule set.
    pub fn default_list() -> Self {
        SuffixList::from_rules(DEFAULT_RULES.lines()).expect("embedded rules are valid")
    }

    /// Number of compiled rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Length in labels of the public suffix of `name`.
    ///
    /// Allocation-free: every candidate suffix of a dotted name is a
    /// literal substring starting at a label boundary, so rules are
    /// probed with `&name[offset..]` directly (the rule map's `String`
    /// keys borrow as `str`).
    fn suffix_label_count_str(&self, name: &str) -> usize {
        let n = name.bytes().filter(|&b| b == b'.').count() + 1;
        let mut best: usize = 1; // implicit default rule `*`
        let mut start = 0usize; // byte offset of the current label
        let mut label = 0usize; // its index; the candidate has n - label labels
        loop {
            match self.rules.get(&name[start..]) {
                Some(RuleKind::Exception) => {
                    // Exception: the public suffix is one label shorter
                    // than the exception rule, and it wins outright.
                    return n - label - 1;
                }
                Some(RuleKind::Normal) => {
                    best = best.max(n - label);
                }
                Some(RuleKind::Wildcard) => {
                    // `*.base`: any single child of base is a suffix.
                    // The wildcard match has one more label than `base`
                    // but never more labels than the name itself.
                    best = best.max((n - label + 1).min(n));
                }
                None => {}
            }
            match name[start..].find('.') {
                Some(dot) => {
                    start += dot + 1;
                    label += 1;
                }
                None => break,
            }
        }
        best
    }

    fn suffix_label_count(&self, name: &DomainName) -> usize {
        self.suffix_label_count_str(name.as_str())
    }

    /// Byte offset where the suffix of `name` that keeps its last `count`
    /// labels begins.
    fn offset_of_last_labels(name: &str, count: usize) -> usize {
        let total = name.bytes().filter(|&b| b == b'.').count() + 1;
        let skip = total.saturating_sub(count);
        let mut offset = 0usize;
        for _ in 0..skip {
            match name[offset..].find('.') {
                Some(dot) => offset += dot + 1,
                None => break,
            }
        }
        offset
    }

    /// The effective TLD (public suffix) of `name`.
    ///
    /// Returns the whole name if the name *is* a public suffix.
    pub fn etld(&self, name: &DomainName) -> DomainName {
        let s = name.as_str();
        let count = self.suffix_label_count_str(s);
        let start = Self::offset_of_last_labels(s, count);
        DomainName::parse(&s[start..]).expect("suffix of valid name is valid")
    }

    /// The effective 2LD of a bare dotted name, as a borrowed substring.
    /// Errors if the name is itself a public suffix or shorter.
    pub fn e2ld_str<'a>(&self, name: &'a str) -> Result<&'a str> {
        let count = self.suffix_label_count_str(name);
        let total = name.bytes().filter(|&b| b == b'.').count() + 1;
        if total <= count {
            return Err(Error::InvalidDomain {
                input: name.into(),
                reason: "name is a public suffix; it has no e2LD",
            });
        }
        Ok(&name[Self::offset_of_last_labels(name, count + 1)..])
    }

    /// The effective 2LD: the registerable domain (one label below the
    /// eTLD). Errors if the name is itself a public suffix or shorter.
    pub fn e2ld(&self, name: &DomainName) -> Result<DomainName> {
        self.e2ld_str(name.as_str())
            .map(|s| DomainName::parse(s).expect("suffix of valid name is valid"))
    }

    /// [`SuffixList::e2ld_of_san`] as a borrowed substring of the SAN.
    pub fn e2ld_of_san_str<'a>(&self, san: &'a DomainName) -> Result<&'a str> {
        let s = san.as_str();
        if san.is_wildcard() {
            let base = s.strip_prefix("*.").ok_or(Error::InvalidDomain {
                input: s.into(),
                reason: "bare wildcard has no base",
            })?;
            self.e2ld_str(base)
        } else {
            self.e2ld_str(s)
        }
    }

    /// e2LD for names that may carry a wildcard label: the wildcard label is
    /// stripped first, since `*.foo.com` attests to children of `foo.com`.
    pub fn e2ld_of_san(&self, san: &DomainName) -> Result<DomainName> {
        self.e2ld_of_san_str(san)
            .map(|s| DomainName::parse(s).expect("suffix of valid name is valid"))
    }

    /// Whether `name` is exactly a public suffix.
    pub fn is_public_suffix(&self, name: &DomainName) -> bool {
        self.suffix_label_count(name) == name.label_count()
    }
}

impl Default for SuffixList {
    fn default() -> Self {
        SuffixList::default_list()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stale_types::domain::dn;

    fn list() -> SuffixList {
        SuffixList::default_list()
    }

    #[test]
    fn default_list_compiles() {
        assert!(list().rule_count() > 40);
    }

    #[test]
    fn simple_tlds() {
        let l = list();
        assert_eq!(l.etld(&dn("foo.com")), dn("com"));
        assert_eq!(l.e2ld(&dn("foo.com")).unwrap(), dn("foo.com"));
        assert_eq!(l.e2ld(&dn("www.foo.com")).unwrap(), dn("foo.com"));
        assert_eq!(l.e2ld(&dn("a.b.c.foo.net")).unwrap(), dn("foo.net"));
    }

    #[test]
    fn multi_label_suffixes() {
        let l = list();
        assert_eq!(l.etld(&dn("foo.co.uk")), dn("co.uk"));
        assert_eq!(l.e2ld(&dn("www.foo.co.uk")).unwrap(), dn("foo.co.uk"));
        assert_eq!(l.e2ld(&dn("foo.com.au")).unwrap(), dn("foo.com.au"));
    }

    #[test]
    fn wildcard_rules() {
        let l = list();
        // *.ck: every child of ck is a public suffix...
        assert_eq!(l.etld(&dn("foo.wild.ck")), dn("wild.ck"));
        assert_eq!(l.e2ld(&dn("a.foo.wild.ck")).unwrap(), dn("foo.wild.ck"));
        // ...except the exception rule !www.ck.
        assert_eq!(l.e2ld(&dn("www.ck")).unwrap(), dn("www.ck"));
        assert_eq!(l.e2ld(&dn("a.www.ck")).unwrap(), dn("www.ck"));
    }

    #[test]
    fn public_suffix_has_no_e2ld() {
        let l = list();
        assert!(l.e2ld(&dn("com")).is_err());
        assert!(l.e2ld(&dn("co.uk")).is_err());
        assert!(l.is_public_suffix(&dn("com")));
        assert!(!l.is_public_suffix(&dn("foo.com")));
    }

    #[test]
    fn unknown_tld_uses_default_rule() {
        let l = list();
        assert_eq!(l.etld(&dn("foo.unknowntld")), dn("unknowntld"));
        assert_eq!(
            l.e2ld(&dn("a.foo.unknowntld")).unwrap(),
            dn("foo.unknowntld")
        );
    }

    #[test]
    fn wildcard_san_strips_star() {
        let l = list();
        assert_eq!(l.e2ld_of_san(&dn("*.foo.com")).unwrap(), dn("foo.com"));
        assert_eq!(
            l.e2ld_of_san(&dn("*.a.foo.co.uk")).unwrap(),
            dn("foo.co.uk")
        );
        assert_eq!(l.e2ld_of_san(&dn("bar.foo.com")).unwrap(), dn("foo.com"));
    }

    #[test]
    fn custom_rules() {
        let l = SuffixList::from_rules(["// comment", "", "zz", "*.zz", "!ok.zz"]).unwrap();
        assert_eq!(l.e2ld(&dn("a.b.zz")).unwrap(), dn("a.b.zz"));
        assert_eq!(l.e2ld(&dn("ok.zz")).unwrap(), dn("ok.zz"));
        assert_eq!(l.e2ld(&dn("x.ok.zz")).unwrap(), dn("ok.zz"));
        assert!(SuffixList::from_rules(["bad rule"]).is_err());
    }

    #[test]
    fn wildcard_matches_bare_child() {
        let l = list();
        assert!(l.is_public_suffix(&dn("x.ck")));
    }
}
