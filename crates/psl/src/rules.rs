//! Embedded public-suffix rule set.
//!
//! A representative subset of the Mozilla Public Suffix List covering every
//! TLD the simulator registers domains under, the multi-label suffixes the
//! paper's e2LD examples use, and one wildcard + exception pair so all three
//! rule kinds are exercised. The format is the upstream PSL line format, so
//! a full list can be dropped in via [`crate::SuffixList::from_rules`].

/// Default rules in PSL file format.
pub const DEFAULT_RULES: &str = "\
// Generic TLDs
com
net
org
info
biz
name
pro
xyz
online
site
shop
app
dev
io
co
me
tv
cc
ws
us
edu
gov
mil
int
// Country codes with flat registration
de
fr
nl
be
ch
at
it
es
se
no
dk
fi
pl
cz
ru
cn
in
ca
eu
// Multi-label public suffixes
co.uk
org.uk
me.uk
ltd.uk
plc.uk
ac.uk
gov.uk
com.au
net.au
org.au
id.au
edu.au
gov.au
co.nz
net.nz
org.nz
co.jp
ne.jp
or.jp
ac.jp
go.jp
com.br
net.br
org.br
gov.br
com.cn
net.cn
org.cn
gov.cn
co.in
net.in
org.in
com.mx
org.mx
co.za
org.za
com.tr
org.tr
com.ar
com.sg
com.hk
com.tw
// Wildcard rule with exception (as in the real PSL for .ck)
ck
*.ck
!www.ck
";
