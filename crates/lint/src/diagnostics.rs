//! Diagnostic records and their human/JSON renderings.

use std::fmt;

/// How severe a finding is. Every severity counts as a violation against
/// the baseline; the distinction is informational (a `Warning` marks a
/// rule whose heuristic can over-approximate, an `Error` a rule whose
/// hits are always real hazards).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Heuristic rule; review the site.
    Warning,
    /// Invariant violation.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding, anchored to `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier (e.g. `panic-in-shard`).
    pub rule: &'static str,
    /// Rule severity.
    pub severity: Severity,
    /// Path relative to the scanned root (or the input file for
    /// preflight findings).
    pub file: String,
    /// 1-based line (0 for whole-file findings).
    pub line: usize,
    /// What is wrong, specifically.
    pub message: String,
    /// Enclosing function key (`Owner::name` or `name`), empty for
    /// whole-file and preflight findings. Baseline v2 buckets by it.
    pub fn_key: String,
    /// Entry→function call chain proving reachability (`file:line key`
    /// hops, entry first), empty for non-graph findings.
    pub chain: Vec<String>,
}

impl Diagnostic {
    /// A finding with no call-chain evidence (preflight, file-level).
    pub fn new(
        rule: &'static str,
        severity: Severity,
        file: impl Into<String>,
        line: usize,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            rule,
            severity,
            file: file.into(),
            line,
            message: message.into(),
            fn_key: String::new(),
            chain: Vec::new(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} [{}] {}",
            self.file, self.line, self.severity, self.rule, self.message
        )?;
        if !self.fn_key.is_empty() {
            write!(f, " (in {})", self.fn_key)?;
        }
        Ok(())
    }
}

/// Render findings as the human-facing table, sorted by file then line.
pub fn render_human(diags: &[Diagnostic]) -> String {
    let mut rows: Vec<&Diagnostic> = diags.iter().collect();
    rows.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    let mut out = String::new();
    for d in rows {
        out.push_str(&format!("{d}\n"));
    }
    out
}

/// Render findings as a JSON array (machine output for `--json`).
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut rows: Vec<&Diagnostic> = diags.iter().collect();
    rows.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    let mut out = String::from("[");
    for (i, d) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"severity\":{},\"file\":{},\"line\":{},\"message\":{}",
            json_str(d.rule),
            json_str(&d.severity.to_string()),
            json_str(&d.file),
            d.line,
            json_str(&d.message),
        ));
        if !d.fn_key.is_empty() {
            out.push_str(&format!(",\"fn\":{}", json_str(&d.fn_key)));
        }
        if !d.chain.is_empty() {
            out.push_str(",\"chain\":[");
            for (k, hop) in d.chain.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str(&json_str(hop));
            }
            out.push(']');
        }
        out.push('}');
    }
    out.push(']');
    out
}

/// Minimal JSON string escaping (the fields are ASCII paths and prose).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(file: &str, line: usize) -> Diagnostic {
        Diagnostic::new(
            "panic-in-shard",
            Severity::Error,
            file,
            line,
            "`.unwrap()` in shard path",
        )
    }

    #[test]
    fn human_output_is_sorted_and_anchored() {
        let out = render_human(&[diag("b.rs", 3), diag("a.rs", 9)]);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("a.rs:9: error [panic-in-shard]"));
        assert!(lines[1].starts_with("b.rs:3:"));
    }

    #[test]
    fn json_output_escapes_and_sorts() {
        let mut d = diag("a.rs", 1);
        d.message = "say \"no\"\n".to_string();
        let out = render_json(&[d]);
        assert!(out.contains("\\\"no\\\"\\n"));
        assert!(out.starts_with('[') && out.ends_with(']'));
        assert!(!out.contains("\"chain\""), "empty chain is omitted");
    }

    #[test]
    fn graph_findings_render_fn_and_chain() {
        let mut d = diag("a.rs", 1);
        d.fn_key = "S::helper".to_string();
        d.chain = vec!["a.rs:10 entry".to_string(), "a.rs:1 S::helper".to_string()];
        assert!(d.to_string().ends_with("(in S::helper)"));
        let out = render_json(&[d]);
        assert!(out.contains("\"fn\":\"S::helper\""));
        assert!(out.contains("\"chain\":[\"a.rs:10 entry\",\"a.rs:1 S::helper\"]"));
    }
}
