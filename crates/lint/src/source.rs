//! The source pass: apply the [`crate::rules`] to scanned `.rs` files.
//!
//! Checks operate on the token stream of each *code* line produced by
//! [`crate::scan`] — comments, literal bodies and `#[cfg(test)]` items
//! never trip a rule, and a `// stale-lint: allow(<rule>)` pragma on (or
//! directly above) a line suppresses that rule there.

use crate::diagnostics::Diagnostic;
use crate::rules::{self, Rule};
use crate::scan::{scan, tokens, Line};
use std::collections::BTreeSet;
use std::path::Path;

/// Methods whose call on a `HashMap`/`HashSet` binding means iteration.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Tokens that can't be the base expression of an index operation.
const NON_INDEX_PREV: &[&str] = &[
    "in", "mut", "return", "if", "else", "match", "let", "as", "ref", "move", "impl", "dyn",
    "where", "pub", "use", "crate", "type", "break", "continue", "box",
];

/// Lint one file's content as if it lived at `rel_path` (slash-separated,
/// relative to the scanned root). Returns the surviving violations —
/// pragma-suppressed findings and test code are already excluded.
pub fn check_file(rel_path: &str, content: &str) -> Vec<Diagnostic> {
    let scanned = scan(content);
    let toks: Vec<Vec<String>> = scanned.lines.iter().map(|l| tokens(&l.code)).collect();
    let hashes = tracked_hash_names(&scanned.lines, &toks);
    let mut out = Vec::new();
    for (idx, (line, tk)) in scanned.lines.iter().zip(&toks).enumerate() {
        if line.in_test || tk.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let allowed = |rule: &Rule| line.allow.iter().any(|a| a == rule.id);

        let rule = rules::NONDETERMINISTIC_ITERATION;
        if rule.in_scope(rel_path) && !allowed(&rule) {
            check_iteration(rel_path, lineno, tk, &hashes, &rule, &mut out);
        }
        let rule = rules::PANIC_IN_SHARD;
        if rule.in_scope(rel_path) && !allowed(&rule) {
            check_panics(rel_path, lineno, tk, &rule, &mut out);
            if rules::PANIC_IN_SHARD_INDEX_SCOPES
                .iter()
                .any(|s| rel_path.starts_with(s))
            {
                check_indexing(rel_path, lineno, tk, &rule, &mut out);
            }
        }
        let rule = rules::WALLCLOCK_IN_DETECTOR;
        if rule.in_scope(rel_path) && !allowed(&rule) {
            check_wallclock(rel_path, lineno, tk, &rule, &mut out);
        }
        let rule = rules::LOSSY_TIME_CAST;
        if rule.in_scope(rel_path) && !allowed(&rule) {
            check_casts(rel_path, lineno, tk, &rule, &mut out);
        }
    }
    out
}

/// Lint every `.rs` file under `root` (skipping `target/` and dot
/// directories), in path order.
pub fn check_tree(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    collect_rs(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for rel in files {
        let content = std::fs::read_to_string(root.join(&rel))?;
        out.extend(check_file(&rel, &content));
    }
    Ok(out)
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Names bound to `HashMap`/`HashSet` anywhere in the file: struct
/// fields and `let` bindings with an explicit type, plus
/// `= HashMap::new()`-style initialisations. File-granular on purpose —
/// a shard-path file is small enough that scope collapse over-approaches
/// safely.
fn tracked_hash_names(lines: &[Line], toks: &[Vec<String>]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (line, tk) in lines.iter().zip(toks) {
        if line.in_test {
            continue;
        }
        for (i, t) in tk.iter().enumerate() {
            if t != "HashMap" && t != "HashSet" {
                continue;
            }
            // Walk left past a `path::to::` qualifier.
            let mut q = i;
            while q >= 2 && tk[q - 1] == "::" && is_ident(&tk[q - 2]) {
                q -= 2;
            }
            if q == 0 {
                continue;
            }
            match tk[q - 1].as_str() {
                ":" if q >= 2 && is_ident(&tk[q - 2]) => {
                    names.insert(tk[q - 2].clone());
                }
                "=" if q >= 2 && is_ident(&tk[q - 2]) => {
                    names.insert(tk[q - 2].clone());
                }
                _ => {}
            }
        }
    }
    names
}

fn is_ident(t: &str) -> bool {
    t.chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
}

fn check_iteration(
    file: &str,
    line: usize,
    tk: &[String],
    hashes: &BTreeSet<String>,
    rule: &Rule,
    out: &mut Vec<Diagnostic>,
) {
    for (i, t) in tk.iter().enumerate() {
        if !hashes.contains(t) {
            continue;
        }
        // `name.iter()` / `self.name.keys()` …
        if tk.get(i + 1).map(String::as_str) == Some(".")
            && tk
                .get(i + 2)
                .is_some_and(|m| ITER_METHODS.contains(&m.as_str()))
            && tk.get(i + 3).map(String::as_str) == Some("(")
        {
            out.push(diag(
                rule,
                file,
                line,
                format!(
                    "`{}.{}()` iterates a HashMap/HashSet; order is nondeterministic — use BTreeMap/BTreeSet or sort first",
                    t,
                    tk[i + 2]
                ),
            ));
            continue;
        }
        // `for x in &name {` — direct iteration without a method call.
        if tk.get(i + 1).map(String::as_str) == Some("{") && preceded_by_in(tk, i) {
            out.push(diag(
                rule,
                file,
                line,
                format!(
                    "`for … in {t}` iterates a HashMap/HashSet; order is nondeterministic — use BTreeMap/BTreeSet or sort first"
                ),
            ));
        }
    }
}

/// Whether token `i` is the iterated expression of a `for … in` on the
/// same line (only `&`, `mut`, `self` and `.` may sit between).
fn preceded_by_in(tk: &[String], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        match tk[j - 1].as_str() {
            "&" | "mut" | "self" | "." => j -= 1,
            "in" => return true,
            _ => return false,
        }
    }
    false
}

fn check_panics(file: &str, line: usize, tk: &[String], rule: &Rule, out: &mut Vec<Diagnostic>) {
    for (i, t) in tk.iter().enumerate() {
        let is_method_call = |name: &str| {
            t == name && i > 0 && tk[i - 1] == "." && tk.get(i + 1).map(String::as_str) == Some("(")
        };
        if is_method_call("unwrap") {
            out.push(diag(
                rule,
                file,
                line,
                "`.unwrap()` can panic in a shard path — handle the None/Err case".to_string(),
            ));
        } else if is_method_call("expect") {
            out.push(diag(
                rule,
                file,
                line,
                "`.expect()` can panic in a shard path — handle the None/Err case".to_string(),
            ));
        } else if t == "panic" && tk.get(i + 1).map(String::as_str) == Some("!") {
            out.push(diag(
                rule,
                file,
                line,
                "`panic!` in a shard path bypasses error handling — return an error".to_string(),
            ));
        }
    }
}

fn check_indexing(file: &str, line: usize, tk: &[String], rule: &Rule, out: &mut Vec<Diagnostic>) {
    for (i, t) in tk.iter().enumerate() {
        if t != "[" || i == 0 {
            continue;
        }
        let prev = tk[i - 1].as_str();
        let indexable =
            (is_ident(prev) && !NON_INDEX_PREV.contains(&prev)) || prev == ")" || prev == "]";
        if indexable {
            out.push(diag(
                rule,
                file,
                line,
                format!("`{prev}[…]` indexing can panic in a shard path — use `.get()`"),
            ));
        }
    }
}

fn check_wallclock(file: &str, line: usize, tk: &[String], rule: &Rule, out: &mut Vec<Diagnostic>) {
    for (i, t) in tk.iter().enumerate() {
        let calls_now = tk.get(i + 1).map(String::as_str) == Some("::")
            && tk.get(i + 2).map(String::as_str) == Some("now");
        if t == "SystemTime" && calls_now {
            out.push(diag(
                rule,
                file,
                line,
                "`SystemTime::now` makes results depend on the wall clock — thread dates through the feed".to_string(),
            ));
        } else if t == "Instant"
            && calls_now
            && rules::WALLCLOCK_INSTANT_SCOPES
                .iter()
                .any(|s| file.starts_with(s))
        {
            out.push(diag(
                rule,
                file,
                line,
                "`Instant::now` in detector/simulator code — timing belongs in the engine's metrics layer".to_string(),
            ));
        }
    }
}

fn check_casts(file: &str, line: usize, tk: &[String], rule: &Rule, out: &mut Vec<Diagnostic>) {
    for (i, t) in tk.iter().enumerate() {
        if t == "as"
            && tk
                .get(i + 1)
                .is_some_and(|n| rules::NARROWING_TARGETS.contains(&n.as_str()))
        {
            out.push(diag(
                rule,
                file,
                line,
                format!(
                    "`as {}` silently truncates — use From/TryFrom, or justify the bound with a pragma",
                    tk[i + 1]
                ),
            ));
        }
    }
}

fn diag(rule: &Rule, file: &str, line: usize, message: String) -> Diagnostic {
    Diagnostic {
        rule: rule.id,
        severity: rule.severity,
        file: file.to_string(),
        line,
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHARD_PATH: &str = "crates/stale-core/src/incremental.rs";

    #[test]
    fn unwrap_and_indexing_flagged_in_shard_scope() {
        let src = "fn f() {\n    let x = m.get(k).unwrap();\n    let y = v[i];\n}\n";
        let d = check_file(SHARD_PATH, src);
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|d| d.rule == "panic-in-shard"));
        assert_eq!(d[0].line, 2);
        assert_eq!(d[1].line, 3);
    }

    #[test]
    fn indexing_not_flagged_outside_index_scope() {
        let src = "fn f() { let y = v[i]; }\n";
        assert!(check_file("crates/engine/src/engine.rs", src).is_empty());
        let with_unwrap = "fn f() { x.unwrap(); }\n";
        assert_eq!(
            check_file("crates/engine/src/engine.rs", with_unwrap).len(),
            1
        );
    }

    #[test]
    fn hashmap_iteration_flagged_btreemap_not() {
        let src = "struct S { a: HashMap<u32, u32>, b: BTreeMap<u32, u32> }\n\
                   fn f(s: &S) {\n\
                       for x in s.a.iter() {}\n\
                       for y in &s.b {}\n\
                       let z = s.a.get(&1);\n\
                   }\n";
        let d = check_file("crates/engine/src/merge.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "nondeterministic-iteration");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn for_in_direct_iteration_flagged() {
        let src = "fn f() {\n    let mut m: HashMap<u32, u32> = HashMap::new();\n    for (k, v) in &m {\n    }\n}\n";
        let d = check_file("crates/stale-core/src/stats.rs", src);
        assert!(
            d.iter()
                .any(|d| d.rule == "nondeterministic-iteration" && d.line == 3),
            "{d:?}"
        );
    }

    #[test]
    fn pragma_and_test_code_suppress() {
        let src = "fn f() {\n\
                       x.unwrap(); // stale-lint: allow(panic-in-shard)\n\
                   }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { y.unwrap(); }\n\
                   }\n";
        assert!(check_file(SHARD_PATH, src).is_empty());
    }

    #[test]
    fn wallclock_and_cast_rules_fire_in_their_scopes() {
        let clock = "fn f() { let t = std::time::SystemTime::now(); }\n";
        assert_eq!(check_file("crates/worldsim/src/world.rs", clock).len(), 1);
        assert!(check_file("crates/ca/src/scraper.rs", clock).is_empty());

        let cast = "fn f(x: i64) -> i32 { x as i32 }\n";
        let d = check_file("crates/stale-types/src/time.rs", cast);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "lossy-time-cast");
        let widen = "fn f(x: u8) -> i64 { x as i64 }\n";
        assert!(check_file("crates/stale-types/src/time.rs", widen).is_empty());
    }
}
