//! Per-line sink detection: the precision layer the reachability pass
//! ([`crate::reach`]) composes with.
//!
//! Each `*_sinks` function inspects one code line's token stream and
//! returns the hazard messages found there; *where* these checks run —
//! which functions, which files — is decided by the call-graph scope in
//! [`crate::reach`], not here. The retired prefix-scoped pass survives
//! as [`legacy_check_file`], the oracle the superset tests compare the
//! graph pass against.

use crate::diagnostics::Diagnostic;
use crate::rules::{self, legacy};
use crate::scan::{scan, tokens, Line};
use std::collections::BTreeSet;
use std::path::Path;

/// Methods whose call on a `HashMap`/`HashSet` binding means iteration.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Tokens that can't be the base expression of an index operation.
const NON_INDEX_PREV: &[&str] = &[
    "in", "mut", "return", "if", "else", "match", "let", "as", "ref", "move", "impl", "dyn",
    "where", "pub", "use", "crate", "type", "break", "continue", "box",
];

/// Collect every `.rs` file under `root` (skipping `target/` and dot
/// directories), sorted by relative path.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    collect_rs(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::with_capacity(files.len());
    for rel in files {
        let content = std::fs::read_to_string(root.join(&rel))?;
        out.push((rel, content));
    }
    Ok(out)
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Names bound to `HashMap`/`HashSet` anywhere in the file: struct
/// fields and `let` bindings with an explicit type, plus
/// `= HashMap::new()`-style initialisations. File-granular on purpose —
/// scope collapse over-approaches safely.
pub fn tracked_hash_names(lines: &[Line], toks: &[Vec<String>]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (line, tk) in lines.iter().zip(toks) {
        if line.in_test {
            continue;
        }
        for (i, t) in tk.iter().enumerate() {
            if t != "HashMap" && t != "HashSet" {
                continue;
            }
            // Walk left past a `path::to::` qualifier.
            let mut q = i;
            while q >= 2 && tk[q - 1] == "::" && is_ident(&tk[q - 2]) {
                q -= 2;
            }
            if q == 0 {
                continue;
            }
            match tk[q - 1].as_str() {
                ":" if q >= 2 && is_ident(&tk[q - 2]) => {
                    names.insert(tk[q - 2].clone());
                }
                "=" if q >= 2 && is_ident(&tk[q - 2]) => {
                    names.insert(tk[q - 2].clone());
                }
                _ => {}
            }
        }
    }
    names
}

fn is_ident(t: &str) -> bool {
    t.chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
}

/// `HashMap`/`HashSet` iteration sinks on one line.
pub fn iteration_sinks(tk: &[String], hashes: &BTreeSet<String>) -> Vec<String> {
    let mut out = Vec::new();
    for (i, t) in tk.iter().enumerate() {
        if !hashes.contains(t) {
            continue;
        }
        // `name.iter()` / `self.name.keys()` …
        if tk.get(i + 1).map(String::as_str) == Some(".")
            && tk
                .get(i + 2)
                .is_some_and(|m| ITER_METHODS.contains(&m.as_str()))
            && tk.get(i + 3).map(String::as_str) == Some("(")
        {
            out.push(format!(
                "`{}.{}()` iterates a HashMap/HashSet; order is nondeterministic — use BTreeMap/BTreeSet or sort first",
                t,
                tk[i + 2]
            ));
            continue;
        }
        // `for x in &name {` — direct iteration without a method call.
        if tk.get(i + 1).map(String::as_str) == Some("{") && preceded_by_in(tk, i) {
            out.push(format!(
                "`for … in {t}` iterates a HashMap/HashSet; order is nondeterministic — use BTreeMap/BTreeSet or sort first"
            ));
        }
    }
    out
}

/// Whether token `i` is the iterated expression of a `for … in` on the
/// same line (only `&`, `mut`, `self` and `.` may sit between).
fn preceded_by_in(tk: &[String], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        match tk[j - 1].as_str() {
            "&" | "mut" | "self" | "." => j -= 1,
            "in" => return true,
            _ => return false,
        }
    }
    false
}

/// `unwrap`/`expect`/`panic!` sinks on one line.
pub fn panic_sinks(tk: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for (i, t) in tk.iter().enumerate() {
        let is_method_call = |name: &str| {
            t == name && i > 0 && tk[i - 1] == "." && tk.get(i + 1).map(String::as_str) == Some("(")
        };
        if is_method_call("unwrap") {
            out.push(
                "`.unwrap()` can panic in a shard path — handle the None/Err case".to_string(),
            );
        } else if is_method_call("expect") {
            out.push(
                "`.expect()` can panic in a shard path — handle the None/Err case".to_string(),
            );
        } else if t == "panic" && tk.get(i + 1).map(String::as_str) == Some("!") {
            out.push(
                "`panic!` in a shard path bypasses error handling — return an error".to_string(),
            );
        }
    }
    out
}

/// Slice-indexing sinks on one line (only run in `scope(panic-index)`
/// files).
pub fn index_sinks(tk: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for (i, t) in tk.iter().enumerate() {
        if t != "[" || i == 0 {
            continue;
        }
        let prev = tk[i - 1].as_str();
        let indexable =
            (is_ident(prev) && !NON_INDEX_PREV.contains(&prev)) || prev == ")" || prev == "]";
        if indexable {
            out.push(format!(
                "`{prev}[…]` indexing can panic in a shard path — use `.get()`"
            ));
        }
    }
    out
}

/// Wall-clock sinks on one line. `flag_instant` widens the check to
/// `Instant::now` (off in `trusted-file(wallclock-in-detector)` files,
/// the sanctioned self-timing layers).
pub fn wallclock_sinks(tk: &[String], flag_instant: bool) -> Vec<String> {
    let mut out = Vec::new();
    for (i, t) in tk.iter().enumerate() {
        let calls_now = tk.get(i + 1).map(String::as_str) == Some("::")
            && tk.get(i + 2).map(String::as_str) == Some("now");
        if t == "SystemTime" && calls_now {
            out.push(
                "`SystemTime::now` makes results depend on the wall clock — thread dates through the feed"
                    .to_string(),
            );
        } else if t == "Instant" && calls_now && flag_instant {
            out.push(
                "`Instant::now` in deterministic code — timing belongs in the sanctioned metrics layers"
                    .to_string(),
            );
        }
    }
    out
}

/// Ambient RNG / process-environment sinks on one line.
pub fn rng_env_sinks(tk: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for (i, t) in tk.iter().enumerate() {
        let called = tk.get(i + 1).map(String::as_str) == Some("(");
        if (t == "thread_rng" || t == "from_entropy" || t == "getrandom") && called {
            out.push(format!(
                "`{t}()` seeds from ambient entropy — results stop replaying; thread a seeded RNG through"
            ));
        } else if t == "env"
            && tk.get(i + 1).map(String::as_str) == Some("::")
            && tk
                .get(i + 2)
                .is_some_and(|m| matches!(m.as_str(), "var" | "vars" | "var_os" | "args"))
        {
            out.push(format!(
                "`env::{}` reads the process environment — results depend on the machine, not the feed",
                tk[i + 2]
            ));
        }
    }
    out
}

/// Blocking-I/O sinks on one line (filesystem, sockets, sleeps).
pub fn blocking_io_sinks(tk: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for (i, t) in tk.iter().enumerate() {
        let next2 = |a: &str, b: &str| {
            tk.get(i + 1).map(String::as_str) == Some(a)
                && tk.get(i + 2).map(String::as_str) == Some(b)
        };
        let path_call = |m: &str| {
            tk.get(i + 1).map(String::as_str) == Some("::") && {
                tk.get(i + 2).map(String::as_str) == Some(m)
            }
        };
        match t.as_str() {
            "File" if path_call("open") || path_call("create") => {
                out.push(format!(
                    "`File::{}` blocks the actor on the filesystem — move it behind the snapshot boundary",
                    tk[i + 2]
                ));
            }
            "fs" if tk.get(i + 1).map(String::as_str) == Some("::") => {
                out.push(format!(
                    "`fs::{}` blocks the actor on the filesystem — move it behind the snapshot boundary",
                    tk.get(i + 2).map(String::as_str).unwrap_or("…")
                ));
            }
            "TcpStream" | "TcpListener" | "UdpSocket"
                if tk.get(i + 1).map(String::as_str) == Some("::") =>
            {
                out.push(format!(
                    "`{t}::{}` blocks the actor on the network — sockets belong to connection threads",
                    tk.get(i + 2).map(String::as_str).unwrap_or("…")
                ));
            }
            "thread" if next2("::", "sleep") => {
                out.push(
                    "`thread::sleep` stalls the actor and every queued client — never sleep in the loop"
                        .to_string(),
                );
            }
            _ => {}
        }
    }
    out
}

/// Narrowing-cast sinks on one line.
pub fn cast_sinks(tk: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for (i, t) in tk.iter().enumerate() {
        if t == "as"
            && tk
                .get(i + 1)
                .is_some_and(|n| rules::NARROWING_TARGETS.contains(&n.as_str()))
        {
            out.push(format!(
                "`as {}` silently truncates — use From/TryFrom, or justify the bound with a pragma",
                tk[i + 1]
            ));
        }
    }
    out
}

/// The retired prefix-scoped pass, kept verbatim as the superset
/// oracle: lint one file as if it lived at `rel_path`, scoping each
/// rule by the legacy path prefixes. With `respect_pragmas` off,
/// `allow(...)` suppression is ignored — the raw-finding mode the
/// superset tests compare in.
pub fn legacy_check_file(rel_path: &str, content: &str, respect_pragmas: bool) -> Vec<Diagnostic> {
    let scanned = scan(content);
    let toks: Vec<Vec<String>> = scanned.lines.iter().map(|l| tokens(&l.code)).collect();
    let hashes = tracked_hash_names(&scanned.lines, &toks);
    let mut out = Vec::new();
    for (idx, (line, tk)) in scanned.lines.iter().zip(&toks).enumerate() {
        if line.in_test || tk.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let allowed = |rule: &str| respect_pragmas && line.allow.iter().any(|a| a == rule);
        let mut push = |rule: &'static str, msgs: Vec<String>| {
            let severity = rules::by_id(rule).map_or(crate::Severity::Error, |r| r.severity);
            for message in msgs {
                let mut d = Diagnostic::new(rule, severity, rel_path, lineno, message);
                d.fn_key = String::new();
                out.push(d);
            }
        };
        if legacy::in_scope("nondeterministic-iteration", rel_path)
            && !allowed("nondeterministic-iteration")
        {
            push("nondeterministic-iteration", iteration_sinks(tk, &hashes));
        }
        if legacy::in_scope("panic-in-shard", rel_path) && !allowed("panic-in-shard") {
            push("panic-in-shard", panic_sinks(tk));
            if legacy::PANIC_INDEX_SCOPES
                .iter()
                .any(|s| rel_path.starts_with(s))
            {
                push("panic-in-shard", index_sinks(tk));
            }
        }
        if legacy::in_scope("wallclock-in-detector", rel_path) && !allowed("wallclock-in-detector")
        {
            let instant = legacy::WALLCLOCK_INSTANT_SCOPES
                .iter()
                .any(|s| rel_path.starts_with(s));
            push("wallclock-in-detector", wallclock_sinks(tk, instant));
        }
        if legacy::in_scope("lossy-time-cast", rel_path) && !allowed("lossy-time-cast") {
            push("lossy-time-cast", cast_sinks(tk));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHARD_PATH: &str = "crates/stale-core/src/incremental.rs";

    #[test]
    fn legacy_unwrap_and_indexing_flagged_in_shard_scope() {
        let src = "fn f() {\n    let x = m.get(k).unwrap();\n    let y = v[i];\n}\n";
        let d = legacy_check_file(SHARD_PATH, src, true);
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|d| d.rule == "panic-in-shard"));
        assert_eq!(d[0].line, 2);
        assert_eq!(d[1].line, 3);
    }

    #[test]
    fn legacy_indexing_not_flagged_outside_index_scope() {
        let src = "fn f() { let y = v[i]; }\n";
        assert!(legacy_check_file("crates/engine/src/engine.rs", src, true).is_empty());
        let with_unwrap = "fn f() { x.unwrap(); }\n";
        assert_eq!(
            legacy_check_file("crates/engine/src/engine.rs", with_unwrap, true).len(),
            1
        );
    }

    #[test]
    fn legacy_hashmap_iteration_flagged_btreemap_not() {
        let src = "struct S { a: HashMap<u32, u32>, b: BTreeMap<u32, u32> }\n\
                   fn f(s: &S) {\n\
                       for x in s.a.iter() {}\n\
                       for y in &s.b {}\n\
                       let z = s.a.get(&1);\n\
                   }\n";
        let d = legacy_check_file("crates/engine/src/merge.rs", src, true);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "nondeterministic-iteration");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn legacy_pragma_respected_only_when_asked() {
        let src = "fn f() {\n\
                       x.unwrap(); // stale-lint: allow(panic-in-shard)\n\
                   }\n";
        assert!(legacy_check_file(SHARD_PATH, src, true).is_empty());
        assert_eq!(legacy_check_file(SHARD_PATH, src, false).len(), 1);
    }

    #[test]
    fn rng_env_and_blocking_io_sinks_match() {
        let tk = tokens("let r = thread_rng(); let v = env::var(\"X\");");
        assert_eq!(rng_env_sinks(&tk).len(), 2);
        let tk = tokens("let f = File::open(p); fs::write(p, b); thread::sleep(d);");
        assert_eq!(blocking_io_sinks(&tk).len(), 3);
        let tk = tokens("let t = Instant::now();");
        assert_eq!(wallclock_sinks(&tk, true).len(), 1);
        assert!(wallclock_sinks(&tk, false).is_empty());
    }
}
