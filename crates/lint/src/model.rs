//! The workspace item model: a lightweight Rust item parser extracting
//! `fn` items, their `impl`/`trait` owners and their outgoing calls from
//! a scanned file — the nodes and edge candidates of the
//! [`crate::graph`] call graph.
//!
//! Like the rest of the crate this is hand-rolled and dependency-free:
//! it parses exactly the subset of Rust the reachability passes need
//! (function boundaries, owners, call sites, directives), not the whole
//! grammar. Where the grammar is ambiguous the parser errs toward
//! *over-approximation* — recording a call edge that might not exist is
//! safe (a finding can be reviewed), missing one is not (a sink goes
//! unproven).

use crate::scan::{tokens, Directive, DirectiveKind, Scanned};

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// Callee name (last path segment).
    pub name: String,
    /// Path qualifier directly before `::name` (`Type`, `module`,
    /// `Self`), or `self` for `self.name(…)` method calls.
    pub qualifier: Option<String>,
    /// Whether this is a `.name(…)` method call.
    pub method: bool,
    /// 1-based source line.
    pub line: usize,
}

/// One `fn` item (free function, impl method or trait default method).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// `impl`/`trait` owner type name, `None` for free functions.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based last line of the body (== `line` for bodyless
    /// signatures).
    pub end_line: usize,
    /// Whether the item sits inside `#[cfg(test)]` code.
    pub is_test: bool,
    /// `entry(<class>)` classes declared directly above the item.
    pub entries: Vec<String>,
    /// `trusted(<rule>)` rule ids declared directly above the item.
    pub trusted: Vec<String>,
    /// Outgoing call sites in the body.
    pub calls: Vec<Call>,
}

impl FnDef {
    /// The stable key used in findings, baselines and `why` lookups:
    /// `Owner::name` for methods, bare `name` for free functions.
    pub fn key(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{owner}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One parsed file: its functions plus file-level declarations.
#[derive(Debug, Clone, Default)]
pub struct FileModel {
    /// Path relative to the scanned root, `/`-separated.
    pub file: String,
    /// Every `fn` item, in source order.
    pub fns: Vec<FnDef>,
    /// Innermost enclosing function per line (index into `fns`),
    /// index 0 = source line 1.
    pub line_fn: Vec<Option<usize>>,
    /// Rules this file declares itself in scope for (`scope(...)`).
    pub scopes: Vec<String>,
    /// Rules whose sinks are sanctioned file-wide (`trusted-file(...)`).
    pub trusted_file: Vec<String>,
    /// Malformed directives: unknown names, unknown args, or
    /// `entry`/`trusted` with no following `fn` (line, explanation).
    pub bad_directives: Vec<(usize, String)>,
}

impl FileModel {
    /// The functions named `name` (or keyed `Owner::name`).
    pub fn find(&self, name: &str) -> Vec<&FnDef> {
        self.fns
            .iter()
            .filter(|f| f.name == name || f.key() == name)
            .collect()
    }
}

/// Keywords that can never be a call-site name or an indexed base.
const KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "Self", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while", "async", "await", "box", "union",
];

fn is_keyword(t: &str) -> bool {
    KEYWORDS.contains(&t)
}

fn is_ident(t: &str) -> bool {
    t.chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
}

/// Parse one scanned file into its item model.
pub fn parse_file(rel_path: &str, scanned: &Scanned) -> FileModel {
    // Flatten to (line_idx_0based, token), skipping attribute contents
    // (`#[...]`) so `#[derive(Clone)]` never reads as a call.
    let per_line: Vec<Vec<String>> = scanned.lines.iter().map(|l| tokens(&l.code)).collect();
    let mut flat: Vec<(usize, String)> = Vec::new();
    for (idx, toks) in per_line.iter().enumerate() {
        for t in toks {
            flat.push((idx, t.clone()));
        }
    }
    let flat = skip_attributes(flat);

    let mut model = FileModel {
        file: rel_path.to_string(),
        line_fn: vec![None; scanned.lines.len()],
        ..FileModel::default()
    };

    // File-level directives.
    for d in &scanned.directives {
        match &d.kind {
            DirectiveKind::Scope => model.scopes.extend(d.args.iter().cloned()),
            DirectiveKind::TrustedFile => model.trusted_file.extend(d.args.iter().cloned()),
            DirectiveKind::Unknown(name) => model
                .bad_directives
                .push((d.line, format!("unknown directive `{name}`"))),
            _ => {}
        }
    }

    // Context stacks: impl/trait owners and open fns, each tagged with
    // the brace depth at which their block opened.
    let mut depth = 0usize;
    let mut owners: Vec<(String, usize)> = Vec::new();
    let mut open_fns: Vec<(usize, usize)> = Vec::new(); // (fn index, open depth)
    let mut pending_owner: Option<String> = None;

    let mut i = 0;
    while i < flat.len() {
        let (line_idx, tok) = (&flat[i].0, flat[i].1.as_str());
        let line_idx = *line_idx;
        // Record the innermost enclosing fn for this token's line.
        if let Some(&(fn_idx, _)) = open_fns.last() {
            model.line_fn[line_idx] = Some(fn_idx);
            model.fns[fn_idx].end_line = line_idx + 1;
        }
        match tok {
            "{" => {
                depth += 1;
                if let Some(owner) = pending_owner.take() {
                    owners.push((owner, depth));
                }
                i += 1;
            }
            "}" => {
                depth = depth.saturating_sub(1);
                while owners.last().is_some_and(|&(_, d)| d > depth) {
                    owners.pop();
                }
                while open_fns.last().is_some_and(|&(_, d)| d > depth) {
                    let (fn_idx, _) = open_fns.pop().unwrap_or_default();
                    model.fns[fn_idx].end_line = line_idx + 1;
                }
                i += 1;
            }
            "impl" | "trait" => {
                let (owner, next) = parse_owner(&flat, i);
                pending_owner = owner;
                i = next;
            }
            "fn" => {
                let Some((_, name)) = flat.get(i + 1) else {
                    i += 1;
                    continue;
                };
                if !is_ident(name) {
                    i += 1;
                    continue;
                }
                let def = FnDef {
                    name: name.clone(),
                    owner: owners.last().map(|(o, _)| o.clone()),
                    line: line_idx + 1,
                    end_line: line_idx + 1,
                    is_test: scanned.lines.get(line_idx).is_some_and(|l| l.in_test),
                    entries: Vec::new(),
                    trusted: Vec::new(),
                    calls: Vec::new(),
                };
                let fn_idx = model.fns.len();
                model.fns.push(def);
                // Walk the signature to its body `{` or terminating `;`.
                let (has_body, next) = skip_signature(&flat, i + 2);
                if has_body {
                    depth += 1;
                    open_fns.push((fn_idx, depth));
                }
                i = next;
            }
            _ => {
                if let Some(&(fn_idx, _)) = open_fns.last() {
                    if let Some(call) = call_at(&flat, i) {
                        model.fns[fn_idx].calls.push(call);
                    }
                }
                i += 1;
            }
        }
    }
    // Close any fn left open by unbalanced input.
    while let Some((fn_idx, _)) = open_fns.pop() {
        model.fns[fn_idx].end_line = scanned.lines.len();
    }

    attach_fn_directives(&mut model, &scanned.directives);
    model
}

/// Drop `#[...]` attribute token runs from the flattened stream.
fn skip_attributes(flat: Vec<(usize, String)>) -> Vec<(usize, String)> {
    let mut out = Vec::with_capacity(flat.len());
    let mut i = 0;
    while i < flat.len() {
        if flat[i].1 == "#" && flat.get(i + 1).is_some_and(|(_, t)| t == "[" || t == "!") {
            // `#[...]` or `#![...]`: skip to the matching `]`.
            let mut j = i + 1;
            if flat[j].1 == "!" {
                j += 1;
            }
            if flat.get(j).is_some_and(|(_, t)| t == "[") {
                let mut bdepth = 0usize;
                while j < flat.len() {
                    match flat[j].1.as_str() {
                        "[" => bdepth += 1,
                        "]" => {
                            bdepth -= 1;
                            if bdepth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
        }
        out.push(flat[i].clone());
        i += 1;
    }
    out
}

/// Parse the owner of an `impl`/`trait` header starting at `flat[at]`
/// (the keyword itself). Returns the owner type name (the `for` target
/// when present, else the first type path's last segment) and the index
/// of the opening `{` (or wherever parsing stopped).
fn parse_owner(flat: &[(usize, String)], at: usize) -> (Option<String>, usize) {
    let mut i = at + 1;
    let mut before_for: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    let mut angle = 0usize;
    while i < flat.len() {
        let t = flat[i].1.as_str();
        match t {
            "<" => angle += 1,
            ">" => angle = angle.saturating_sub(1),
            "{" | ";" if angle == 0 => break,
            "where" if angle == 0 => {
                // Skip the where clause to the `{`.
                while i < flat.len() && flat[i].1 != "{" {
                    i += 1;
                }
                break;
            }
            "for" if angle == 0 => saw_for = true,
            t if angle == 0 && is_ident(t) && !is_keyword(t) => {
                if saw_for {
                    after_for = Some(t.to_string());
                } else {
                    before_for = Some(t.to_string());
                }
            }
            _ => {}
        }
        i += 1;
    }
    (after_for.or(before_for), i)
}

/// Walk a `fn` signature from just past the name to its `{` body open or
/// `;` terminator. Returns (has_body, index just past the `{`/`;`).
fn skip_signature(flat: &[(usize, String)], mut i: usize) -> (bool, usize) {
    let mut angle = 0usize;
    let mut paren = 0usize;
    while i < flat.len() {
        match flat[i].1.as_str() {
            "<" => angle += 1,
            ">" => angle = angle.saturating_sub(1),
            "(" | "[" => paren += 1,
            ")" | "]" => paren = paren.saturating_sub(1),
            "{" if angle == 0 && paren == 0 => return (true, i + 1),
            ";" if angle == 0 && paren == 0 => return (false, i + 1),
            _ => {}
        }
        i += 1;
    }
    (false, i)
}

/// Recognise a call site at `flat[i]`: `name(`, `path::name(`,
/// `recv.name(`, including `name::<T>(` turbofish forms. Macro
/// invocations (`name!`) are not calls.
fn call_at(flat: &[(usize, String)], i: usize) -> Option<Call> {
    let (line_idx, tok) = flat.get(i).map(|(l, t)| (*l, t.as_str()))?;
    if !is_ident(tok) || is_keyword(tok) {
        return None;
    }
    // The token after the name: `(` directly, or a `::<…>` turbofish
    // then `(`.
    let mut j = i + 1;
    if flat.get(j).map(|(_, t)| t.as_str()) == Some("::")
        && flat.get(j + 1).map(|(_, t)| t.as_str()) == Some("<")
    {
        let mut angle = 0usize;
        j += 1;
        while j < flat.len() {
            match flat[j].1.as_str() {
                "<" => angle += 1,
                ">" => {
                    angle -= 1;
                    if angle == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        j += 1;
    }
    if flat.get(j).map(|(_, t)| t.as_str()) != Some("(") {
        return None;
    }
    // Macro? `name!(…)` never reaches here (the `!` breaks adjacency),
    // but check the *previous* token to classify the call.
    let prev = i.checked_sub(1).map(|p| flat[p].1.as_str());
    match prev {
        Some("!") => None, // `macro_rules!`-style declaration heads
        Some(".") => {
            let receiver = i.checked_sub(2).map(|p| flat[p].1.as_str());
            let qualifier = match receiver {
                Some("self") if i.checked_sub(3).map(|p| flat[p].1.as_str()) != Some(".") => {
                    Some("self".to_string())
                }
                _ => None,
            };
            Some(Call {
                name: tok.to_string(),
                qualifier,
                method: true,
                line: line_idx + 1,
            })
        }
        Some("::") => {
            // Walk back over a `::<…>` turbofish so `Vec::<U>::new()`
            // still yields the `Vec` qualifier.
            let mut p = i.checked_sub(2);
            if let Some(mut k) = p.filter(|&k| flat[k].1 == ">") {
                let mut angle = 0usize;
                loop {
                    match flat[k].1.as_str() {
                        ">" => angle += 1,
                        "<" => {
                            angle -= 1;
                            if angle == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    let Some(prev) = k.checked_sub(1) else {
                        break;
                    };
                    k = prev;
                }
                p = k
                    .checked_sub(1)
                    .filter(|&q| flat[q].1 == "::")
                    .and_then(|q| q.checked_sub(1));
            }
            let qualifier = p
                .map(|p| flat[p].1.as_str())
                .filter(|t| is_ident(t))
                .map(|t| t.to_string());
            Some(Call {
                name: tok.to_string(),
                qualifier,
                method: false,
                line: line_idx + 1,
            })
        }
        Some("fn") => None, // a definition, not a call
        _ => Some(Call {
            name: tok.to_string(),
            qualifier: None,
            method: false,
            line: line_idx + 1,
        }),
    }
}

/// Attach `entry`/`trusted` directives to the next `fn` item at or
/// below their comment line; directives with no following item are
/// recorded as bad.
fn attach_fn_directives(model: &mut FileModel, directives: &[Directive]) {
    for d in directives {
        let (kind, label) = match &d.kind {
            DirectiveKind::Entry => (DirectiveKind::Entry, "entry"),
            DirectiveKind::Trusted => (DirectiveKind::Trusted, "trusted"),
            _ => continue,
        };
        let target = model
            .fns
            .iter_mut()
            .filter(|f| f.line >= d.line)
            .min_by_key(|f| f.line);
        match target {
            Some(f) => match kind {
                DirectiveKind::Entry => f.entries.extend(d.args.iter().cloned()),
                _ => f.trusted.extend(d.args.iter().cloned()),
            },
            None => model
                .bad_directives
                .push((d.line, format!("`{label}(…)` has no following `fn` item"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn model(src: &str) -> FileModel {
        parse_file("crates/x/src/lib.rs", &scan(src))
    }

    #[test]
    fn free_fns_methods_and_trait_methods_get_owners() {
        let src = "fn free() { helper(); }\n\
                   struct S;\n\
                   impl S {\n\
                       fn method(&self) { self.other(); }\n\
                       fn other(&self) {}\n\
                   }\n\
                   trait T {\n\
                       fn provided(&self) { free(); }\n\
                   }\n\
                   impl T for S {\n\
                       fn provided(&self) {}\n\
                   }\n";
        let m = model(src);
        let keys: Vec<String> = m.fns.iter().map(|f| f.key()).collect();
        assert_eq!(
            keys,
            [
                "free",
                "S::method",
                "S::other",
                "T::provided",
                "S::provided"
            ]
        );
        assert_eq!(m.fns[0].calls[0].name, "helper");
        assert_eq!(m.fns[1].calls[0].qualifier.as_deref(), Some("self"));
        assert!(m.fns[1].calls[0].method);
    }

    #[test]
    fn nested_fns_own_their_lines_and_calls() {
        let src = "fn outer() {\n\
                       fn inner() { deep(); }\n\
                       inner();\n\
                   }\n";
        let m = model(src);
        assert_eq!(m.fns.len(), 2);
        let outer = &m.fns[0];
        let inner = &m.fns[1];
        assert_eq!(inner.calls[0].name, "deep");
        assert_eq!(outer.calls.len(), 1);
        assert_eq!(outer.calls[0].name, "inner");
        assert_eq!(m.line_fn[1], Some(1), "inner's body line belongs to inner");
        assert_eq!(m.line_fn[2], Some(0));
    }

    #[test]
    fn generics_where_clauses_and_turbofish() {
        let src = "fn gen<T: Clone, U>(x: T) -> Vec<U> where U: Default {\n\
                       let v = Vec::<U>::new();\n\
                       collect::<Vec<_>>();\n\
                       v\n\
                   }\n";
        let m = model(src);
        assert_eq!(m.fns.len(), 1);
        let names: Vec<&str> = m.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["new", "collect"]);
        assert_eq!(m.fns[0].calls[0].qualifier.as_deref(), Some("Vec"));
    }

    #[test]
    fn macro_bodies_yield_calls_but_macro_names_do_not() {
        let src = "fn f() {\n\
                       let s = format!(\"{}\", table4());\n\
                       assert_eq!(g(), 3);\n\
                   }\n";
        let m = model(src);
        let names: Vec<&str> = m.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["table4", "g"]);
    }

    #[test]
    fn attributes_are_not_calls_and_cfg_test_is_marked() {
        let src = "#[derive(Clone, Debug)]\n\
                   struct S;\n\
                   fn prod() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn helper() { prod(); }\n\
                   }\n";
        let m = model(src);
        assert_eq!(m.fns.len(), 2);
        assert!(!m.fns[0].is_test);
        assert!(m.fns[1].is_test);
    }

    #[test]
    fn directives_attach_to_next_fn_and_file() {
        let src = "// stale-lint: scope(lossy-time-cast)\n\
                   // stale-lint: trusted-file(wallclock-in-detector)\n\
                   // stale-lint: entry(shard)\n\
                   fn shard_body() {}\n\
                   // stale-lint: trusted(blocking-io-in-actor)\n\
                   fn save() {}\n\
                   // stale-lint: entry(orphan)\n";
        let m = model(src);
        assert_eq!(m.scopes, ["lossy-time-cast"]);
        assert_eq!(m.trusted_file, ["wallclock-in-detector"]);
        assert_eq!(m.fns[0].entries, ["shard"]);
        assert_eq!(m.fns[1].trusted, ["blocking-io-in-actor"]);
        assert_eq!(m.bad_directives.len(), 1, "{:?}", m.bad_directives);
    }

    #[test]
    fn impl_for_owner_is_the_implementing_type() {
        let src = "impl<'a> Display for Wrapper<'a> {\n\
                       fn fmt(&self) { self.render(); }\n\
                   }\n";
        let m = model(src);
        assert_eq!(m.fns[0].key(), "Wrapper::fmt");
    }

    #[test]
    fn path_calls_carry_their_qualifier() {
        let src = "fn f() {\n\
                       key_compromise::merge_shards();\n\
                       Self::helper();\n\
                       obs::AuditLog::new();\n\
                   }\n";
        let m = model(src);
        let c = &m.fns[0].calls;
        assert_eq!(
            (c[0].name.as_str(), c[0].qualifier.as_deref()),
            ("merge_shards", Some("key_compromise"))
        );
        assert_eq!(c[1].qualifier.as_deref(), Some("Self"));
        assert_eq!(
            (c[2].name.as_str(), c[2].qualifier.as_deref()),
            ("new", Some("AuditLog"))
        );
    }
}
