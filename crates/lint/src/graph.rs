//! The cross-crate call graph over every parsed [`crate::model`] file.
//!
//! Name resolution is deliberately approximate — there is no type
//! inference here — and errs toward over-approximation, because the
//! graph's job is to prove *absence* of paths from entry points to
//! sinks. The resolution ladder, most precise first:
//!
//! 1. `self.name(…)` / `Self::name(…)` — methods of the caller's own
//!    owner type (any impl block of that type, any file);
//! 2. `Type::name(…)` — functions owned by `Type`;
//! 3. `module::name(…)` — free functions in files whose stem is
//!    `module` (`key_compromise::merge_shards` → `detector/key_compromise.rs`);
//! 4. bare `name(…)` — free functions named `name`;
//! 5. `recv.name(…)` with an untyped receiver — *every* method named
//!    `name` in the workspace.
//!
//! When a rung matches nothing the resolution falls through to "every
//! function named `name`" — a missing edge is a soundness hole, a
//! spurious one only costs review time. Calls whose name matches no
//! workspace function at all (std, shims) produce no edge: vendored
//! shims and the standard library are the trust boundary.

use crate::model::{Call, FileModel, FnDef};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One node of the graph: a function in a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(pub usize);

/// The workspace call graph.
pub struct Graph<'m> {
    /// Flattened (file index, fn index) per node.
    nodes: Vec<(usize, usize)>,
    models: &'m [FileModel],
    /// Outgoing edges per node, deduplicated and sorted.
    edges: Vec<Vec<usize>>,
}

impl<'m> Graph<'m> {
    /// Build the graph over all parsed files. Test functions are
    /// excluded: they are neither nodes nor edge sources.
    pub fn build(models: &'m [FileModel]) -> Graph<'m> {
        let mut nodes = Vec::new();
        for (fi, m) in models.iter().enumerate() {
            for (gi, f) in m.fns.iter().enumerate() {
                if !f.is_test {
                    nodes.push((fi, gi));
                }
            }
        }
        // Name indexes.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (id, &(fi, gi)) in nodes.iter().enumerate() {
            let f = &models[fi].fns[gi];
            by_name.entry(&f.name).or_default().push(id);
            match &f.owner {
                Some(_) => methods_by_name.entry(&f.name).or_default().push(id),
                None => free_by_name.entry(&f.name).or_default().push(id),
            }
        }
        let stem = |file: &str| -> String {
            file.rsplit('/')
                .next()
                .unwrap_or(file)
                .trim_end_matches(".rs")
                .to_string()
        };
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for (id, &(fi, gi)) in nodes.iter().enumerate() {
            let caller = &models[fi].fns[gi];
            let mut out: BTreeSet<usize> = BTreeSet::new();
            for call in &caller.calls {
                resolve(
                    call,
                    caller,
                    models,
                    &nodes,
                    &by_name,
                    &free_by_name,
                    &methods_by_name,
                    &stem,
                    &mut out,
                );
            }
            out.remove(&id); // self-recursion adds nothing to reachability
            edges[id] = out.into_iter().collect();
        }
        Graph {
            nodes,
            models,
            edges,
        }
    }

    /// All node ids, in deterministic (file, source) order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// The function behind a node.
    pub fn fn_def(&self, id: NodeId) -> &FnDef {
        let (fi, gi) = self.nodes[id.0];
        &self.models[fi].fns[gi]
    }

    /// The file model behind a node.
    pub fn file_model(&self, id: NodeId) -> &FileModel {
        &self.models[self.nodes[id.0].0]
    }

    /// The node for file index `fi`, fn index `gi` (if not test-only).
    pub fn node_of(&self, fi: usize, gi: usize) -> Option<NodeId> {
        self.nodes.binary_search(&(fi, gi)).ok().map(NodeId)
    }

    /// Breadth-first reachability from `entries`. `blocked` prunes
    /// traversal: a blocked node is neither visited nor descended into
    /// (the *trusted boundary* for a rule). Returns each reachable node
    /// mapped to its BFS parent (`None` for the entries themselves), so
    /// the shortest entry→node chain can be reconstructed.
    pub fn reachable<F>(&self, entries: &[NodeId], blocked: F) -> BTreeMap<usize, Option<usize>>
    where
        F: Fn(NodeId) -> bool,
    {
        let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut sorted: Vec<usize> = entries.iter().map(|e| e.0).collect();
        sorted.sort_unstable();
        for e in sorted {
            if !blocked(NodeId(e)) && !parent.contains_key(&e) {
                parent.insert(e, None);
                queue.push_back(e);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &next in &self.edges[n] {
                if blocked(NodeId(next)) || parent.contains_key(&next) {
                    continue;
                }
                parent.insert(next, Some(n));
                queue.push_back(next);
            }
        }
        parent
    }

    /// Reconstruct the entry→node chain from a parent map.
    pub fn chain(&self, parents: &BTreeMap<usize, Option<usize>>, node: NodeId) -> Vec<NodeId> {
        let mut chain = vec![node];
        let mut cur = node.0;
        while let Some(Some(p)) = parents.get(&cur) {
            chain.push(NodeId(*p));
            cur = *p;
        }
        chain.reverse();
        chain
    }

    /// Human label for a node: `file:line key`.
    pub fn label(&self, id: NodeId) -> String {
        let (fi, gi) = self.nodes[id.0];
        let f = &self.models[fi].fns[gi];
        format!("{}:{} {}", self.models[fi].file, f.line, f.key())
    }
}

/// Resolve one call site to candidate callee nodes (see module docs for
/// the ladder).
#[allow(clippy::too_many_arguments)]
fn resolve(
    call: &Call,
    caller: &FnDef,
    models: &[FileModel],
    nodes: &[(usize, usize)],
    by_name: &BTreeMap<&str, Vec<usize>>,
    free_by_name: &BTreeMap<&str, Vec<usize>>,
    methods_by_name: &BTreeMap<&str, Vec<usize>>,
    stem: &dyn Fn(&str) -> String,
    out: &mut BTreeSet<usize>,
) {
    let name = call.name.as_str();
    let all = || by_name.get(name).cloned().unwrap_or_default();
    let owned_by = |owner: &str| -> Vec<usize> {
        by_name
            .get(name)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&id| {
                        let (fi, gi) = nodes[id];
                        models[fi].fns[gi].owner.as_deref() == Some(owner)
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let candidates: Vec<usize> = match (&call.qualifier, call.method) {
        // `self.name(…)` / `Self::name(…)` → the caller's own type.
        (Some(q), _) if q == "self" || q == "Self" => {
            let own = caller.owner.as_deref().map(owned_by).unwrap_or_default();
            if own.is_empty() {
                all()
            } else {
                own
            }
        }
        // `Qual::name(…)` → owner match, else module-stem match, else
        // everything with the name.
        (Some(q), _) => {
            let own = owned_by(q);
            if !own.is_empty() {
                own
            } else {
                let in_module: Vec<usize> = free_by_name
                    .get(name)
                    .map(|ids| {
                        ids.iter()
                            .copied()
                            .filter(|&id| stem(&models[nodes[id].0].file) == *q)
                            .collect()
                    })
                    .unwrap_or_default();
                if !in_module.is_empty() {
                    in_module
                } else {
                    all()
                }
            }
        }
        // `recv.name(…)`: every method with the name.
        (None, true) => methods_by_name.get(name).cloned().unwrap_or_default(),
        // bare `name(…)`: free fns first, else every fn with the name.
        (None, false) => {
            let free = free_by_name.get(name).cloned().unwrap_or_default();
            if !free.is_empty() {
                free
            } else {
                all()
            }
        }
    };
    out.extend(candidates);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::parse_file;
    use crate::scan::scan;

    fn graph_of(files: &[(&str, &str)]) -> (Vec<FileModel>, Vec<String>) {
        let models: Vec<FileModel> = files
            .iter()
            .map(|(path, src)| parse_file(path, &scan(src)))
            .collect();
        let labels = {
            let g = Graph::build(&models);
            g.node_ids().map(|id| g.label(id)).collect()
        };
        (models, labels)
    }

    fn ids_by_key<'g>(g: &Graph<'g>, key: &str) -> Vec<NodeId> {
        g.node_ids()
            .filter(|&id| g.fn_def(id).key() == key)
            .collect()
    }

    #[test]
    fn cross_file_bare_and_path_calls_resolve() {
        let files = [
            (
                "crates/a/src/lib.rs",
                "fn entry() { helper(); util::shared(); }\n",
            ),
            ("crates/a/src/helper.rs", "fn helper() { leaf(); }\n"),
            (
                "crates/b/src/util.rs",
                "fn shared() {}\nfn leaf() {}\nfn dead() {}\n",
            ),
        ];
        let (models, _) = graph_of(&files);
        let g = Graph::build(&models);
        let entry = ids_by_key(&g, "entry");
        let reach = g.reachable(&entry, |_| false);
        let reached: Vec<String> = reach.keys().map(|&n| g.fn_def(NodeId(n)).key()).collect();
        assert_eq!(reached, ["entry", "helper", "shared", "leaf"]);
    }

    #[test]
    fn method_calls_over_approximate_and_self_calls_do_not() {
        let src_a = "struct A;\n\
                     impl A {\n\
                         fn go(&self) { self.mine(); }\n\
                         fn mine(&self) {}\n\
                     }\n";
        let src_b = "struct B;\n\
                     impl B {\n\
                         fn mine(&self) {}\n\
                         fn via_recv(&self, a: &A) { a.helper_m(); }\n\
                     }\n\
                     impl A2 { fn helper_m(&self) {} }\n";
        let (models, _) = graph_of(&[("a.rs", src_a), ("b.rs", src_b)]);
        let g = Graph::build(&models);
        // self.mine() resolves only to A::mine, not B::mine.
        let go = ids_by_key(&g, "A::go");
        let reach = g.reachable(&go, |_| false);
        let reached: Vec<String> = reach.keys().map(|&n| g.fn_def(NodeId(n)).key()).collect();
        assert_eq!(reached, ["A::go", "A::mine"]);
        // a.helper_m() (untyped receiver) reaches every helper_m method.
        let via = ids_by_key(&g, "B::via_recv");
        let reach = g.reachable(&via, |_| false);
        assert!(reach
            .keys()
            .any(|&n| g.fn_def(NodeId(n)).key() == "A2::helper_m"));
    }

    #[test]
    fn trusted_nodes_block_traversal() {
        let files = [(
            "lib.rs",
            "fn entry() { boundary(); }\n\
             fn boundary() { behind(); }\n\
             fn behind() {}\n",
        )];
        let (models, _) = graph_of(&files);
        let g = Graph::build(&models);
        let entry = ids_by_key(&g, "entry");
        let reach = g.reachable(&entry, |id| g.fn_def(id).key() == "boundary");
        let reached: Vec<String> = reach.keys().map(|&n| g.fn_def(NodeId(n)).key()).collect();
        assert_eq!(reached, ["entry"], "trusted boundary prunes its subtree");
    }

    #[test]
    fn chains_reconstruct_shortest_paths() {
        let files = [(
            "lib.rs",
            "fn entry() { a(); }\n\
             fn a() { b(); }\n\
             fn b() {}\n",
        )];
        let (models, _) = graph_of(&files);
        let g = Graph::build(&models);
        let entry = ids_by_key(&g, "entry");
        let reach = g.reachable(&entry, |_| false);
        let b = ids_by_key(&g, "b")[0];
        let chain: Vec<String> = g
            .chain(&reach, b)
            .into_iter()
            .map(|id| g.fn_def(id).key())
            .collect();
        assert_eq!(chain, ["entry", "a", "b"]);
    }
}
