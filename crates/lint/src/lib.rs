//! `stale-lint`: static analysis defending the engine's core guarantees.
//!
//! The workspace's determinism contract — sharded merge ≡ serial,
//! incremental ≡ batch, byte-identical reports — and the supervisor's
//! panic-isolation boundary are dynamic guarantees: proptests catch
//! violations only when a seed happens to tickle them. This crate defends
//! the same invariants *statically*, on two fronts:
//!
//! * **Source pass** ([`source`]) — a dependency-free Rust token scanner
//!   (consistent with the offline shim policy: no syn, no rustc plumbing)
//!   that walks the workspace's `.rs` files and enforces named rules:
//!   [`rules::NONDETERMINISTIC_ITERATION`] (`HashMap`/`HashSet` iteration
//!   in code feeding merges, reports or serialization),
//!   [`rules::PANIC_IN_SHARD`] (`unwrap`/`expect`/`panic!`/slice-indexing
//!   inside detector and shard-ingest paths),
//!   [`rules::WALLCLOCK_IN_DETECTOR`] (`SystemTime::now` in deterministic
//!   code) and [`rules::LOSSY_TIME_CAST`] (narrowing `as` casts in the
//!   `stale-types` time arithmetic). Suppression is per-line via a
//!   `// stale-lint: allow(<rule>)` pragma; CI compares the surviving
//!   violations against a committed baseline ([`baseline`]) so the count
//!   can only ratchet down.
//!
//! * **Corpus pass** ([`preflight`]) — static validation of a serialized
//!   [`worldsim::bundle::WorldBundle`] or an engine checkpoint *before*
//!   anything executes: certificates must DER-decode with non-degenerate
//!   validity, CRL entries must reference an issuer key present in the CT
//!   set, per-domain WHOIS/DNS observability streams must be strictly
//!   chronological, the recomputed fingerprint must match, and checkpoint
//!   schema v1/v2 invariants must hold. The paper's own pipeline had to
//!   sanitize its CRL/CT/WHOIS feeds before analysis (§4); this is the
//!   same discipline applied to our serialized corpora — corrupt inputs
//!   fail with a named diagnostic, never a panic or a silently-wrong
//!   report.

pub mod baseline;
pub mod diagnostics;
pub mod preflight;
pub mod rules;
pub mod scan;
pub mod source;

pub use baseline::Baseline;
pub use diagnostics::{Diagnostic, Severity};
