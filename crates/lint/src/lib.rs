//! `stale-lint`: static analysis defending the engine's core guarantees.
//!
//! The workspace's determinism contract — sharded merge ≡ serial,
//! incremental ≡ batch, byte-identical reports — and the supervisor's
//! panic-isolation boundary are dynamic guarantees: proptests catch
//! violations only when a seed happens to tickle them. This crate defends
//! the same invariants *statically*, on two fronts:
//!
//! * **Reachability pass** ([`reach`]) — a dependency-free Rust item
//!   parser ([`model`], consistent with the offline shim policy: no syn,
//!   no rustc plumbing) extracts every `fn` item and call site in the
//!   workspace; [`graph`] links them into a cross-crate call graph; and
//!   one breadth-first pass per rule walks from the in-source
//!   `// stale-lint: entry(<class>)` declarations (shard bodies, merge
//!   and serialization surfaces, the daemon's actor loop, world
//!   generation) to the per-line sinks of [`source`]:
//!   [`rules::NONDETERMINISTIC_ITERATION`] (`HashMap`/`HashSet`
//!   iteration), [`rules::PANIC_IN_SHARD`]
//!   (`unwrap`/`expect`/`panic!`/indexing),
//!   [`rules::WALLCLOCK_IN_DETECTOR`] and [`rules::RNG_ENV_IN_DETECTOR`]
//!   (wall clock, ambient RNG, process environment) and
//!   [`rules::BLOCKING_IO_IN_ACTOR`] (filesystem/socket/sleep calls in
//!   the resident actor). A rule's scope is *proved* by the graph — a
//!   finding carries the entry→sink call chain (`stale-lint why`
//!   reprints it) — instead of asserted by path prefix, so refactors
//!   that move code between files cannot silently move it out of scope.
//!   Suppression is per-line via `allow(<rule>)` pragmas (dead ones are
//!   flagged by [`rules::UNUSED_ALLOW`]); CI compares surviving
//!   violations against a committed per-function baseline ([`baseline`])
//!   that is strict in both directions: buckets cannot grow, and
//!   burned-down buckets must be removed.
//!
//! * **Corpus pass** ([`preflight`]) — static validation of a serialized
//!   [`worldsim::bundle::WorldBundle`] or an engine checkpoint *before*
//!   anything executes: certificates must DER-decode with non-degenerate
//!   validity, CRL entries must reference an issuer key present in the CT
//!   set, per-domain WHOIS/DNS observability streams must be strictly
//!   chronological, the recomputed fingerprint must match, and checkpoint
//!   schema v1/v2 invariants must hold. The paper's own pipeline had to
//!   sanitize its CRL/CT/WHOIS feeds before analysis (§4); this is the
//!   same discipline applied to our serialized corpora — corrupt inputs
//!   fail with a named diagnostic, never a panic or a silently-wrong
//!   report.

pub mod baseline;
pub mod diagnostics;
pub mod graph;
pub mod model;
pub mod preflight;
pub mod reach;
pub mod rules;
pub mod scan;
pub mod source;

pub use baseline::Baseline;
pub use diagnostics::{Diagnostic, Severity};
pub use graph::{Graph, NodeId};
pub use reach::Analysis;
