//! A lightweight Rust token scanner: no external parser, no rustc
//! plumbing — exactly the subset of lexing the lint rules need.
//!
//! The scanner reduces a source file to per-line *code text*: comments
//! are stripped (collecting `stale-lint:` directives as it goes),
//! string/char literal bodies are dropped (so a string containing
//! `"unwrap()"` never trips a rule), lifetimes are distinguished from
//! char literals, and `#[cfg(test)]` items are marked so test-only code
//! is exempt from production-path rules. Rule checkers then work on a
//! simple token stream per line.
//!
//! # Directives
//!
//! A `// stale-lint: <name>(<args>)` comment is a *directive*. The
//! scanner collects all of them with their source lines; their meaning
//! is interpreted by [`crate::model`] and [`crate::reach`]:
//!
//! * `allow(<rule>, …)` — suppress the named rules on this line (or the
//!   next code line when the comment stands alone);
//! * `entry(<class>)` — the next `fn` item is a reachability entry point
//!   of the named class (`shard`, `serial`, `actor`, `conn`, `worldgen`);
//! * `trusted(<rule>, …)` — reachability traversal for the named rules
//!   stops at the next `fn` item (a sanctioned boundary);
//! * `trusted-file(<rule>, …)` — the whole file's sinks are sanctioned
//!   for the named rules (it is still traversed for reachability);
//! * `scope(<rule>, …)` — the whole file opts in to the named
//!   declared-scope rules (e.g. `lossy-time-cast`, `panic-index`).

/// What a `stale-lint:` comment directive declares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectiveKind {
    /// `allow(<rule>…)`: per-line suppression.
    Allow,
    /// `entry(<class>…)`: the next `fn` is a reachability entry point.
    Entry,
    /// `trusted(<rule>…)`: traversal stops at the next `fn`.
    Trusted,
    /// `trusted-file(<rule>…)`: this file's sinks are sanctioned.
    TrustedFile,
    /// `scope(<rule>…)`: this file opts in to a declared-scope rule.
    Scope,
    /// Anything else after `stale-lint:` — reported as a bad directive.
    Unknown(String),
}

/// One `stale-lint:` directive with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// 1-based source line of the comment.
    pub line: usize,
    /// Parsed directive kind.
    pub kind: DirectiveKind,
    /// Comma-separated arguments inside the parentheses.
    pub args: Vec<String>,
}

/// One scanned source line.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// The line's code with comments and literal bodies removed (string
    /// literals collapse to `""`, char literals to `' '`).
    pub code: String,
    /// Rules allowed by a pragma that applies to this line (its own
    /// trailing pragma plus any pragma-only comment lines directly
    /// above).
    pub allow: Vec<String>,
    /// Whether the line sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// A whole scanned file.
#[derive(Debug, Clone, Default)]
pub struct Scanned {
    /// Lines, index 0 = source line 1.
    pub lines: Vec<Line>,
    /// Every `stale-lint:` directive in the file, in source order
    /// (including `Allow`, which is *also* folded into [`Line::allow`]).
    pub directives: Vec<Directive>,
}

/// Scan `content` into per-line code text with pragmas and test marks.
pub fn scan(content: &str) -> Scanned {
    let raw = strip(content);
    let mut directives = Vec::new();
    for (idx, line) in raw.iter().enumerate() {
        for (kind, args) in &line.directives {
            directives.push(Directive {
                line: idx + 1,
                kind: kind.clone(),
                args: args.clone(),
            });
        }
    }
    let lines = apply_pragmas(mark_tests(raw));
    Scanned { lines, directives }
}

/// Tokenize one code line. Identifiers (including numeric literals) come
/// out whole; `::` and `->` are single tokens; every other
/// non-whitespace char is its own token.
pub fn tokens(code: &str) -> Vec<String> {
    let bytes: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_alphanumeric() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            out.push(bytes[start..i].iter().collect());
        } else if c == ':' && bytes.get(i + 1) == Some(&':') {
            out.push("::".to_string());
            i += 2;
        } else if c == '-' && bytes.get(i + 1) == Some(&'>') {
            out.push("->".to_string());
            i += 2;
        } else {
            out.push(c.to_string());
            i += 1;
        }
    }
    out
}

/// Intermediate per-line result of literal/comment stripping.
struct RawLine {
    code: String,
    /// Directives found in comments on this exact line.
    directives: Vec<(DirectiveKind, Vec<String>)>,
}

impl RawLine {
    /// The `allow(...)` rule ids on this line.
    fn allows(&self) -> Vec<String> {
        self.directives
            .iter()
            .filter(|(k, _)| *k == DirectiveKind::Allow)
            .flat_map(|(_, args)| args.iter().cloned())
            .collect()
    }
}

/// Strip comments and literal bodies, collecting pragmas.
fn strip(content: &str) -> Vec<RawLine> {
    #[derive(PartialEq)]
    enum State {
        Code,
        Str,
        RawStr(usize),
        Chr,
        Block(usize),
    }
    let mut out: Vec<RawLine> = Vec::new();
    let mut state = State::Code;
    for line in content.split('\n') {
        let chars: Vec<char> = line.chars().collect();
        let mut code = String::new();
        let mut directives = Vec::new();
        let mut i = 0;
        let mut prev_ident = false; // previous emitted char extends an identifier
        while i < chars.len() {
            let c = chars[i];
            match state {
                State::Code => {
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        // Doc comments (`///`, `//!`) are prose, not
                        // directives — docs may *mention* the syntax.
                        let doc = matches!(chars.get(i + 2), Some(&'/') | Some(&'!'))
                            && chars.get(i + 3) != Some(&'/');
                        if !doc {
                            let comment: String = chars[i..].iter().collect();
                            directives.extend(parse_directive(&comment));
                        }
                        break; // rest of the line is comment
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = State::Block(1);
                        i += 2;
                    } else if c == '"' {
                        code.push('"');
                        state = State::Str;
                        i += 1;
                    } else if !prev_ident && (c == 'r' || c == 'b') {
                        // Possible raw/byte string or byte char prefix.
                        if let Some(consumed) = literal_prefix(&chars[i..]) {
                            match consumed {
                                Prefix::RawStr(hashes, skip) => {
                                    code.push('"');
                                    state = State::RawStr(hashes);
                                    i += skip;
                                }
                                Prefix::Str(skip) => {
                                    code.push('"');
                                    state = State::Str;
                                    i += skip;
                                }
                                Prefix::Chr(skip) => {
                                    code.push_str("' '");
                                    state = State::Chr;
                                    i += skip;
                                }
                            }
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    } else if c == '\'' {
                        // Lifetime or char literal: a lifetime is `'` + an
                        // identifier *not* closed by another `'`.
                        let mut j = i + 1;
                        while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                            j += 1;
                        }
                        if j > i + 1 && chars.get(j) != Some(&'\'') {
                            i = j; // lifetime: drop it entirely
                        } else {
                            code.push_str("' '");
                            state = State::Chr;
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                    prev_ident = code
                        .chars()
                        .next_back()
                        .is_some_and(|p| p.is_alphanumeric() || p == '_');
                }
                State::Str => {
                    if c == '\\' {
                        i += 2;
                    } else if c == '"' {
                        code.push('"');
                        state = State::Code;
                        prev_ident = false;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if c == '"'
                        && chars[i + 1..].iter().take_while(|&&h| h == '#').count() >= hashes
                    {
                        code.push('"');
                        state = State::Code;
                        prev_ident = false;
                        i += 1 + hashes;
                    } else {
                        i += 1;
                    }
                }
                State::Chr => {
                    if c == '\\' {
                        i += 2;
                    } else if c == '\'' {
                        state = State::Code;
                        prev_ident = false;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                State::Block(depth) => {
                    if c == '*' && chars.get(i + 1) == Some(&'/') {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::Block(depth - 1)
                        };
                        i += 2;
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = State::Block(depth + 1);
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
        }
        // A still-open string at end of line (multi-line string literal)
        // stays in its state; a line comment never carries over.
        out.push(RawLine { code, directives });
    }
    out
}

enum Prefix {
    /// Raw string with `n` hashes; consume `skip` chars including the `"`.
    RawStr(usize, usize),
    Str(usize),
    Chr(usize),
}

/// Recognise `r"`, `r#"`, `b"`, `br#"`, `b'` … at the start of `chars`.
fn literal_prefix(chars: &[char]) -> Option<Prefix> {
    let mut i = 0;
    if chars.get(i) == Some(&'b') {
        i += 1;
    }
    if chars.get(i) == Some(&'r') {
        i += 1;
        let mut hashes = 0;
        while chars.get(i + hashes) == Some(&'#') {
            hashes += 1;
        }
        if chars.get(i + hashes) == Some(&'"') {
            return Some(Prefix::RawStr(hashes, i + hashes + 1));
        }
        return None;
    }
    if i == 1 {
        // plain `b` prefix
        if chars.get(1) == Some(&'"') {
            return Some(Prefix::Str(2));
        }
        if chars.get(1) == Some(&'\'') {
            return Some(Prefix::Chr(2));
        }
    }
    None
}

/// Parse a `stale-lint: <name>(<args>)` directive out of a comment.
fn parse_directive(comment: &str) -> Option<(DirectiveKind, Vec<String>)> {
    let at = comment.find("stale-lint:")?;
    let rest = comment[at + "stale-lint:".len()..].trim_start();
    let open = rest.find('(')?;
    let name = rest[..open].trim();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '-') {
        return None;
    }
    let kind = match name {
        "allow" => DirectiveKind::Allow,
        "entry" => DirectiveKind::Entry,
        "trusted" => DirectiveKind::Trusted,
        "trusted-file" => DirectiveKind::TrustedFile,
        "scope" => DirectiveKind::Scope,
        other => DirectiveKind::Unknown(other.to_string()),
    };
    let inner = &rest[open + 1..];
    let end = inner.find(')')?;
    let args = inner[..end]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    Some((kind, args))
}

/// Mark every line inside a `#[cfg(test)]` item (the attribute's line
/// through the item's closing brace).
fn mark_tests(raw: Vec<RawLine>) -> Vec<(RawLine, bool)> {
    // Flatten tokens with their line indices.
    let mut flat: Vec<(usize, String)> = Vec::new();
    for (idx, line) in raw.iter().enumerate() {
        for tok in tokens(&line.code) {
            flat.push((idx, tok));
        }
    }
    let mut test_lines = vec![false; raw.len()];
    let cfg_test = ["#", "[", "cfg", "(", "test", ")", "]"];
    let mut i = 0;
    while i < flat.len() {
        let matches_attr = cfg_test
            .iter()
            .enumerate()
            .all(|(k, want)| flat.get(i + k).map(|(_, t)| t.as_str()) == Some(*want));
        if !matches_attr {
            i += 1;
            continue;
        }
        // Skip to the item's opening brace, then to its matching close.
        let mut j = i + cfg_test.len();
        while j < flat.len() && flat[j].1 != "{" {
            j += 1;
        }
        let mut depth = 0usize;
        while j < flat.len() {
            match flat[j].1.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let last = flat.get(j).map(|(l, _)| *l).unwrap_or(raw.len() - 1);
        for mark in test_lines.iter_mut().take(last + 1).skip(flat[i].0) {
            *mark = true;
        }
        i = j.max(i + 1);
    }
    raw.into_iter().zip(test_lines).collect()
}

/// Resolve pragma scope: a pragma on a comment-only line applies to the
/// next line carrying code; a trailing pragma applies to its own line.
fn apply_pragmas(marked: Vec<(RawLine, bool)>) -> Vec<Line> {
    let mut out = Vec::with_capacity(marked.len());
    let mut pending: Vec<String> = Vec::new();
    for (raw, in_test) in marked {
        let code_empty = raw.code.trim().is_empty();
        let mut allow = raw.allows();
        if code_empty {
            pending.append(&mut allow);
            out.push(Line {
                code: raw.code,
                allow: Vec::new(),
                in_test,
            });
        } else {
            allow.append(&mut pending);
            out.push(Line {
                code: raw.code,
                allow,
                in_test,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_comments_and_lifetimes_are_stripped() {
        let s = scan("let x: &'a str = \"unwrap() // not code\"; // real comment\n");
        assert_eq!(s.lines[0].code.trim(), "let x: & str = \"\";");
    }

    #[test]
    fn raw_strings_and_chars() {
        let s = scan("let r = r#\"panic!(\"hi\")\"#; let c = '\\''; let l = 'x';\n");
        assert!(!s.lines[0].code.contains("panic"));
        assert!(!s.lines[0].code.contains('x'));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let s = scan("a /* one /* two */ still */ b\n/* open\nunwrap()\n*/ c\n");
        assert_eq!(s.lines[0].code.replace(' ', ""), "ab");
        assert_eq!(s.lines[2].code, "");
        assert_eq!(s.lines[3].code.trim(), "c");
    }

    #[test]
    fn pragma_applies_to_own_and_next_line() {
        let src = "x.unwrap(); // stale-lint: allow(panic-in-shard)\n\
                   // stale-lint: allow(lossy-time-cast, wallclock-in-detector)\n\
                   y as u8;\n\
                   z as u8;\n";
        let s = scan(src);
        assert_eq!(s.lines[0].allow, vec!["panic-in-shard"]);
        assert!(s.lines[1].allow.is_empty());
        assert_eq!(
            s.lines[2].allow,
            vec!["lossy-time-cast", "wallclock-in-detector"]
        );
        assert!(
            s.lines[3].allow.is_empty(),
            "pragma does not leak past one line"
        );
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let src = "fn prod() { a(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { x.unwrap(); }\n\
                   }\n\
                   fn prod2() {}\n";
        let s = scan(src);
        assert!(!s.lines[0].in_test);
        assert!(s.lines[1].in_test && s.lines[2].in_test && s.lines[3].in_test);
        assert!(s.lines[4].in_test);
        assert!(!s.lines[5].in_test);
    }

    #[test]
    fn tokens_lex_paths_and_arrows() {
        assert_eq!(
            tokens("a::b -> c[0]"),
            vec!["a", "::", "b", "->", "c", "[", "0", "]"]
        );
    }
}
