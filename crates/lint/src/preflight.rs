//! The corpus pass: validate serialized inputs before anything executes.
//!
//! `stale-lint preflight <file>` accepts either a
//! [`worldsim::bundle::WorldBundle`] or an engine checkpoint (schema v3
//! batch or v2 incremental) and checks every invariant the pipeline
//! assumes statically —
//! the same sanitation discipline the paper applied to its raw CRL, CT
//! and WHOIS feeds before analysis. A truncated, bit-flipped or
//! hand-edited file fails with a named diagnostic; it never panics and
//! never produces a silently-wrong report.
//!
//! Bundle invariants:
//! * `bundle-parse` / `bundle-version` — well-formed JSON at schema v1;
//! * `window-degenerate` — every window has `start <= end`;
//! * `cert-der` / `cert-validity` — certificates DER-decode with a
//!   non-degenerate validity;
//! * `cert-first-seen` — CT cannot observe a certificate before its
//!   `notBefore`;
//! * `crl-unknown-issuer` — a CRL entry's AKI must belong to some
//!   certificate issuer present in the CT set;
//! * `crl-window` / `crl-degenerate` — CRL observations fall inside the
//!   collection window, and the record set is deduplicated by
//!   `(authority key, serial)` as [`ca::scraper::CrlDataset`] guarantees
//!   (a CA's full CRL is visible from the first scrape, so a revocation
//!   date *after* its first observation is legitimate here);
//! * `whois-monotone` / `dns-monotone` — per-domain observability
//!   streams are strictly chronological (the incremental detectors
//!   assume this);
//! * `fingerprint-mismatch` — the recorded fingerprint matches one
//!   recomputed from the payload.
//!
//! Checkpoint invariants (`checkpoint-*`): schema version, shard count
//! and ordering, and the sortedness/monotonicity of every saved detector
//! ledger (what `save()` guarantees and `restore()` assumes).
//!
//! Observability exports are accepted too, so CI can preflight the
//! artifacts `repro --trace-out` / `--metrics-json` emit the same way it
//! preflights corpora:
//! * `metrics-schema` — a metrics-JSON export's histograms have
//!   consistent ladders, counts and quantile ordering
//!   ([`obs::MetricsSnapshot::validate`]);
//! * `trace-schema` — a trace-JSONL file's header matches its span
//!   count, ids are dense and allocation-ordered, and every parent
//!   precedes its children ([`obs::trace::validate_trace_jsonl`]);
//! * `audit-schema` — a decision-audit JSONL export (`repro
//!   --audit-out`) has a header whose coverage tallies match its decision
//!   lines, canonical decision ordering, well-formed fingerprints and
//!   day stamps, and detector/provenance kinds that agree
//!   ([`obs::audit::validate_audit_jsonl`]);
//! * `worldlog-schema` — a world-fact log (`repro --export-worldlog`)
//!   has a schema/version header, canonically ordered day-stamped
//!   events with well-formed hex, dense CRL indices, a tally trailer
//!   that matches the lines, and a fingerprint that re-folds from the
//!   stream ([`worldsim::worldlog::validate_worldlog_jsonl`]).

use crate::diagnostics::{Diagnostic, Severity};
use engine::checkpoint::{Checkpoint, StreamCheckpoint};
use serde::value::Value;
use stale_types::Date;
use std::collections::BTreeSet;
use std::path::Path;
use worldsim::bundle::{decode_hex, WorldBundle};
use x509::Certificate;

/// Validate the file at `path`, sniffing whether it is a world bundle or
/// a checkpoint. Every failure is a diagnostic; this never panics on any
/// byte sequence.
pub fn preflight_path(path: &Path) -> Vec<Diagnostic> {
    let label = path.display().to_string();
    match std::fs::read_to_string(path) {
        Ok(text) => preflight_str(&label, &text),
        Err(e) => vec![diag(
            "preflight-read",
            &label,
            format!("cannot read file: {e}"),
        )],
    }
}

/// Validate file contents, dispatching on shape: a `certs` field means a
/// world bundle, `states` a schema-v2 checkpoint, `completed` a
/// schema-v3 batch checkpoint, a `stale-obs-metrics` schema tag a metrics-JSON
/// export, and a JSONL stream opening with a `stale-obs-trace`,
/// `stale-obs-audit` or `stale-obs-worldlog` header a span trace,
/// decision audit or world-fact log.
pub fn preflight_str(label: &str, text: &str) -> Vec<Diagnostic> {
    // Trace and audit exports are JSONL, not one JSON document — sniff
    // their header line before insisting the whole file parses as a
    // single value.
    if let Some(first) = text.lines().next() {
        if let Ok(Value::Obj(fields)) = serde_json::from_str::<Value>(first) {
            let has_schema = |tag: &str| {
                fields
                    .iter()
                    .any(|(k, v)| k == "schema" && *v == Value::Str(tag.into()))
            };
            if has_schema(obs::trace::TRACE_SCHEMA) {
                return preflight_trace(label, text);
            }
            if has_schema(obs::audit::AUDIT_SCHEMA) {
                return preflight_audit(label, text);
            }
            if has_schema(worldsim::worldlog::WORLDLOG_SCHEMA) {
                return preflight_worldlog(label, text);
            }
        }
    }
    let value: Value = match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => {
            return vec![diag("bundle-parse", label, format!("not valid JSON: {e}"))];
        }
    };
    if matches!(value.get("schema"), Some(Value::Str(s)) if s == obs::metrics::METRICS_SCHEMA) {
        preflight_metrics(label, text)
    } else if value.get("certs").is_some() {
        preflight_bundle(label, text)
    } else if value.get("states").is_some() {
        preflight_stream_checkpoint(label, text)
    } else if value.get("completed").is_some() {
        preflight_batch_checkpoint(label, text)
    } else {
        vec![diag(
            "preflight-schema",
            label,
            "file is neither a world bundle (no `certs`), a checkpoint (no `states`/`completed`), \
             nor an observability export (no recognized `schema` tag)"
                .to_string(),
        )]
    }
}

/// Validate a metrics-JSON export (`repro --metrics-json`).
pub fn preflight_metrics(label: &str, text: &str) -> Vec<Diagnostic> {
    let snapshot: obs::MetricsSnapshot = match serde_json::from_str(text) {
        Ok(s) => s,
        Err(e) => {
            return vec![diag(
                "metrics-parse",
                label,
                format!("does not deserialize as a metrics snapshot: {e}"),
            )];
        }
    };
    snapshot
        .validate()
        .into_iter()
        .map(|msg| diag("metrics-schema", label, msg))
        .collect()
}

/// Validate a span-trace JSONL export (`repro --trace-out`).
pub fn preflight_trace(label: &str, text: &str) -> Vec<Diagnostic> {
    obs::trace::validate_trace_jsonl(text)
        .into_iter()
        .map(|msg| diag("trace-schema", label, msg))
        .collect()
}

/// Validate a decision-audit JSONL export (`repro --audit-out`).
pub fn preflight_audit(label: &str, text: &str) -> Vec<Diagnostic> {
    obs::audit::validate_audit_jsonl(text)
        .into_iter()
        .map(|msg| diag("audit-schema", label, msg))
        .collect()
}

/// Validate a world-fact log export (`repro --export-worldlog`).
pub fn preflight_worldlog(label: &str, text: &str) -> Vec<Diagnostic> {
    worldsim::worldlog::validate_worldlog_jsonl(text)
        .into_iter()
        .map(|msg| diag("worldlog-schema", label, msg))
        .collect()
}

/// Validate a serialized [`WorldBundle`].
pub fn preflight_bundle(label: &str, text: &str) -> Vec<Diagnostic> {
    let bundle: WorldBundle = match serde_json::from_str(text) {
        Ok(b) => b,
        Err(e) => {
            return vec![diag(
                "bundle-parse",
                label,
                format!("does not deserialize as a world bundle: {e}"),
            )];
        }
    };
    let mut out = Vec::new();
    if bundle.version != WorldBundle::VERSION {
        out.push(diag(
            "bundle-version",
            label,
            format!(
                "schema version {} (expected {})",
                bundle.version,
                WorldBundle::VERSION
            ),
        ));
    }
    for (name, window) in [
        ("sim_window", bundle.sim_window),
        ("adns_window", bundle.adns_window),
        ("crl_window", bundle.crl_window),
    ] {
        if window.end < window.start {
            out.push(diag(
                "window-degenerate",
                label,
                format!(
                    "{name} ends {} before it starts {}",
                    window.end, window.start
                ),
            ));
        }
    }

    let mut issuer_keys = BTreeSet::new();
    for (i, bc) in bundle.certs.iter().enumerate() {
        let Some(der) = decode_hex(&bc.der) else {
            out.push(diag(
                "cert-der",
                label,
                format!("certs[{i}]: der field is not valid hex"),
            ));
            continue;
        };
        let cert = match Certificate::decode(&der) {
            Ok(c) => c,
            Err(e) => {
                out.push(diag(
                    "cert-der",
                    label,
                    format!("certs[{i}]: DER does not decode: {e:?}"),
                ));
                continue;
            }
        };
        let validity = cert.tbs.validity;
        if validity.end <= validity.start {
            out.push(diag(
                "cert-validity",
                label,
                format!(
                    "certs[{i}]: degenerate validity {} – {}",
                    validity.start, validity.end
                ),
            ));
        }
        if bc.first_seen < validity.start {
            out.push(diag(
                "cert-first-seen",
                label,
                format!(
                    "certs[{i}]: first seen in CT {} before notBefore {}",
                    bc.first_seen, validity.start
                ),
            ));
        }
        if let Some(aki) = cert.tbs.authority_key_id() {
            issuer_keys.insert(aki);
        }
    }

    let mut crl_keys = BTreeSet::new();
    for (i, rec) in bundle.crl.iter().enumerate() {
        if !issuer_keys.contains(&rec.authority_key_id) {
            out.push(diag(
                "crl-unknown-issuer",
                label,
                format!("crl[{i}]: AKI matches no certificate issuer in the CT set"),
            ));
        }
        if rec.observed < bundle.crl_window.start || rec.observed > bundle.crl_window.end {
            out.push(diag(
                "crl-window",
                label,
                format!(
                    "crl[{i}]: observed {} outside the collection window {} – {}",
                    rec.observed, bundle.crl_window.start, bundle.crl_window.end
                ),
            ));
        }
        if !crl_keys.insert((rec.authority_key_id, rec.serial)) {
            out.push(diag(
                "crl-degenerate",
                label,
                format!(
                    "crl[{i}]: duplicate entry for serial {} under one authority key — the dataset must be deduplicated",
                    rec.serial
                ),
            ));
        }
    }

    for (domain, dates) in &bundle.whois {
        if let Some((prev, date)) = first_non_increasing(dates) {
            out.push(diag(
                "whois-monotone",
                label,
                format!("whois[{domain}]: creation date {date} does not follow {prev}"),
            ));
        }
    }
    for (domain, log) in &bundle.dns {
        let dates: Vec<Date> = log.iter().map(|(d, _)| *d).collect();
        if let Some((prev, date)) = first_non_increasing(&dates) {
            out.push(diag(
                "dns-monotone",
                label,
                format!("dns[{domain}]: change at {date} does not follow {prev}"),
            ));
        }
    }

    let recomputed = bundle.recompute_fingerprint();
    if recomputed != bundle.fingerprint {
        out.push(diag(
            "fingerprint-mismatch",
            label,
            format!(
                "recorded fingerprint {} but payload folds to {recomputed} — the bundle was altered after serialization",
                bundle.fingerprint
            ),
        ));
    }
    out
}

/// Validate a schema-v2 (incremental) checkpoint.
pub fn preflight_stream_checkpoint(label: &str, text: &str) -> Vec<Diagnostic> {
    let cp: StreamCheckpoint = match serde_json::from_str(text) {
        Ok(cp) => cp,
        Err(e) => {
            return vec![diag(
                "checkpoint-parse",
                label,
                format!("does not deserialize as a v2 checkpoint: {e}"),
            )];
        }
    };
    let mut out = Vec::new();
    if cp.version != StreamCheckpoint::VERSION {
        out.push(diag(
            "checkpoint-version",
            label,
            format!(
                "schema version {} (expected {})",
                cp.version,
                StreamCheckpoint::VERSION
            ),
        ));
    }
    if cp.states.len() != cp.shards {
        out.push(diag(
            "checkpoint-shards",
            label,
            format!(
                "{} shard states for a declared width of {}",
                cp.states.len(),
                cp.shards
            ),
        ));
    }
    for (i, state) in cp.states.iter().enumerate() {
        if state.shard != i {
            out.push(diag(
                "checkpoint-order",
                label,
                format!(
                    "states[{i}] claims shard {} (states must be in shard order)",
                    state.shard
                ),
            ));
        }
        let ids: Vec<_> = state.kc.index.iter().map(|(_, _, id)| *id).collect();
        if !strictly_increasing(&ids) {
            out.push(diag(
                "checkpoint-monotone",
                label,
                format!("states[{i}].kc.index cert ids are not strictly increasing"),
            ));
        }
        for (field, domains) in [
            (
                "rc.certs_by_e2ld",
                state
                    .rc
                    .certs_by_e2ld
                    .iter()
                    .map(|(d, _)| d)
                    .collect::<Vec<_>>(),
            ),
            (
                "rc.creations",
                state.rc.creations.iter().map(|(d, _)| d).collect(),
            ),
            ("mtd.delegated", state.mtd.delegated.iter().collect()),
            ("mtd.undelegated", state.mtd.undelegated.iter().collect()),
            (
                "mtd.departures",
                state.mtd.departures.iter().map(|(d, _)| d).collect(),
            ),
            (
                "mtd.certs_by_customer",
                state.mtd.certs_by_customer.iter().map(|(d, _)| d).collect(),
            ),
        ] {
            if !strictly_increasing(&domains) {
                out.push(diag(
                    "checkpoint-order",
                    label,
                    format!("states[{i}].{field} domains are not sorted and unique"),
                ));
            }
        }
        let delegated: BTreeSet<_> = state.mtd.delegated.iter().collect();
        if let Some(both) = state.mtd.undelegated.iter().find(|d| delegated.contains(d)) {
            out.push(diag(
                "checkpoint-order",
                label,
                format!("states[{i}]: {both} is both delegated and undelegated"),
            ));
        }
        for (domain, dates) in &state.rc.creations {
            if let Some((prev, date)) = first_non_increasing(dates) {
                out.push(diag(
                    "checkpoint-monotone",
                    label,
                    format!("states[{i}].rc.creations[{domain}]: {date} does not follow {prev}"),
                ));
            }
        }
        for (domain, dates) in &state.mtd.departures {
            if let Some((prev, date)) = first_non_increasing(dates) {
                out.push(diag(
                    "checkpoint-monotone",
                    label,
                    format!("states[{i}].mtd.departures[{domain}]: {date} does not follow {prev}"),
                ));
            }
        }
    }
    out
}

/// Validate a schema-v3 (batch) checkpoint.
pub fn preflight_batch_checkpoint(label: &str, text: &str) -> Vec<Diagnostic> {
    let cp: Checkpoint = match serde_json::from_str(text) {
        Ok(cp) => cp,
        Err(e) => {
            return vec![diag(
                "checkpoint-parse",
                label,
                format!("does not deserialize as a v3 checkpoint: {e}"),
            )];
        }
    };
    let mut out = Vec::new();
    if cp.version != Checkpoint::VERSION {
        out.push(diag(
            "checkpoint-version",
            label,
            format!(
                "batch checkpoint declares schema version {} (expected {})",
                cp.version,
                Checkpoint::VERSION
            ),
        ));
    }
    let mut seen = BTreeSet::new();
    for (i, c) in cp.completed.iter().enumerate() {
        if c.shard >= cp.shards {
            out.push(diag(
                "checkpoint-shards",
                label,
                format!(
                    "completed[{i}] claims shard {} but the declared width is {}",
                    c.shard, cp.shards
                ),
            ));
        }
        if !seen.insert(c.shard) {
            out.push(diag(
                "checkpoint-order",
                label,
                format!("completed[{i}]: shard {} appears more than once", c.shard),
            ));
        }
        if c.metrics.shard != c.shard {
            out.push(diag(
                "checkpoint-order",
                label,
                format!(
                    "completed[{i}]: metrics labelled shard {} under shard {}",
                    c.metrics.shard, c.shard
                ),
            ));
        }
    }
    out
}

/// First adjacent pair that breaks strict chronological order, if any.
fn first_non_increasing(dates: &[Date]) -> Option<(Date, Date)> {
    dates
        .windows(2)
        .find(|w| w[1] <= w[0])
        .map(|w| (w[0], w[1]))
}

fn strictly_increasing<T: Ord>(items: &[T]) -> bool {
    items.windows(2).all(|w| w[0] < w[1])
}

fn diag(rule: &'static str, file: &str, message: String) -> Diagnostic {
    Diagnostic::new(rule, Severity::Error, file, 0, message)
}
