//! `stale-lint` — the workspace's determinism/panic-safety linter and
//! corpus preflight analyzer.
//!
//! ```text
//! stale-lint source [--root DIR] [--json] [--baseline FILE] [--update-baseline]
//! stale-lint why <RULE> <FN> [--root DIR]
//! stale-lint preflight <FILE> [--json]
//! stale-lint rules
//! ```
//!
//! `source` runs the reachability pass: entry points declared in source
//! (`// stale-lint: entry(<class>)`), one call-graph walk per rule,
//! per-line sink checks inside the reachable functions. `why` answers
//! "why does this rule apply to this function?" with the entry→function
//! call chain the pass proved. `preflight` accepts a world bundle, an
//! engine checkpoint (v1 or v2), a metrics-JSON export
//! (`repro --metrics-json`), or a span-trace JSONL file
//! (`repro --trace-out`) — the file kind is sniffed from its shape.
//!
//! The baseline ratchet is strict in both directions: findings beyond a
//! bucket's allowance fail the run, and so do baseline entries that no
//! longer fire (the committed file can only shrink).
//!
//! Exit codes: 0 clean, 1 violations or stale baseline, 2 usage or I/O
//! error.

use stale_lint::diagnostics::{render_human, render_json};
use stale_lint::reach::Analysis;
use stale_lint::{preflight, rules, source, Baseline};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("source") => cmd_source(&args[1..]),
        Some("why") => cmd_why(&args[1..]),
        Some("preflight") => cmd_preflight(&args[1..]),
        Some("rules") => cmd_rules(),
        _ => {
            eprintln!(
                "usage: stale-lint source [--root DIR] [--json] [--baseline FILE] [--update-baseline]\n\
                 \x20      stale-lint why <RULE> <FN> [--root DIR]\n\
                 \x20      stale-lint preflight <FILE> [--json]\n\
                 \x20      stale-lint rules"
            );
            ExitCode::from(2)
        }
    }
}

fn analysis_for(root: &PathBuf) -> Result<Analysis, ExitCode> {
    match source::collect_sources(root) {
        Ok(files) => Ok(Analysis::new(&files)),
        Err(e) => {
            eprintln!("stale-lint: cannot scan {}: {e}", root.display());
            Err(ExitCode::from(2))
        }
    }
}

fn cmd_source(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--json" => json = true,
            "--baseline" => match it.next() {
                Some(file) => baseline_path = Some(PathBuf::from(file)),
                None => return usage("--baseline needs a file"),
            },
            "--update-baseline" => update_baseline = true,
            other => return usage(&format!("unknown flag {other}")),
        }
    }
    if update_baseline && baseline_path.is_none() {
        return usage("--update-baseline needs --baseline FILE");
    }

    let analysis = match analysis_for(&root) {
        Ok(a) => a,
        Err(code) => return code,
    };
    let diags = analysis.check(true);

    if let Some(path) = &baseline_path {
        if update_baseline {
            let baseline = Baseline::from_diagnostics(&diags);
            if let Err(e) = std::fs::write(path, baseline.to_json()) {
                eprintln!("stale-lint: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            eprintln!(
                "stale-lint: baseline updated with {} finding(s)",
                diags.len()
            );
            return ExitCode::SUCCESS;
        }
        let baseline = match std::fs::read_to_string(path) {
            Ok(text) => match Baseline::from_json(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("stale-lint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("stale-lint: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let stale = baseline.stale_entries(&diags);
        let violations = baseline.violations(&diags);
        let code = report(&violations, json, "source");
        if !stale.is_empty() {
            for entry in &stale {
                eprintln!("stale-lint: stale baseline entry: {entry}");
            }
            eprintln!(
                "stale-lint: {} baseline entr{} no longer fire — the baseline only shrinks; \
                 regenerate with --update-baseline",
                stale.len(),
                if stale.len() == 1 { "y" } else { "ies" }
            );
            return ExitCode::FAILURE;
        }
        return code;
    }
    report(&diags, json, "source")
}

fn cmd_why(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            _ if !arg.starts_with("--") => positional.push(arg),
            other => return usage(&format!("unknown flag {other}")),
        }
    }
    let [rule, target] = positional.as_slice() else {
        return usage(
            "why needs a rule id and a function name (e.g. `why panic-in-shard TableView::table3`)",
        );
    };
    let analysis = match analysis_for(&root) {
        Ok(a) => a,
        Err(code) => return code,
    };
    match analysis.why(rule, target) {
        Ok(chain) => {
            println!("{rule} applies to `{target}` via:");
            for (i, hop) in chain.iter().enumerate() {
                let arrow = if i == 0 { "entry" } else { "calls" };
                println!("  {arrow:>5}  {hop}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("stale-lint: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_preflight(args: &[String]) -> ExitCode {
    let mut file: Option<PathBuf> = None;
    let mut json = false;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            other if file.is_none() && !other.starts_with("--") => {
                file = Some(PathBuf::from(other));
            }
            other => return usage(&format!("unexpected argument {other}")),
        }
    }
    let Some(file) = file else {
        return usage("preflight needs a bundle, checkpoint, metrics-JSON or trace-JSONL file");
    };
    let diags = preflight::preflight_path(&file);
    report(&diags, json, "preflight")
}

fn cmd_rules() -> ExitCode {
    for rule in rules::ALL {
        println!("{} ({}): {}", rule.id, rule.severity, rule.describe);
        if !rule.classes.is_empty() {
            println!("    entry classes: {}", rule.classes.join(", "));
        }
    }
    println!(
        "declared scopes (via `// stale-lint: scope(...)`): {}",
        rules::DECLARED_SCOPES.join(", ")
    );
    ExitCode::SUCCESS
}

fn report(diags: &[stale_lint::Diagnostic], json: bool, pass: &str) -> ExitCode {
    if json {
        println!("{}", render_json(diags));
    } else if diags.is_empty() {
        eprintln!("stale-lint: {pass} pass clean");
    } else {
        print!("{}", render_human(diags));
        eprintln!("stale-lint: {} {pass} violation(s)", diags.len());
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("stale-lint: {msg}");
    ExitCode::from(2)
}
