//! `stale-lint` — the workspace's determinism/panic-safety linter and
//! corpus preflight analyzer.
//!
//! ```text
//! stale-lint source [--root DIR] [--json] [--baseline FILE] [--update-baseline]
//! stale-lint preflight <FILE> [--json]
//! stale-lint rules
//! ```
//!
//! `preflight` accepts a world bundle, an engine checkpoint (v1 or v2),
//! a metrics-JSON export (`repro --metrics-json`), or a span-trace JSONL
//! file (`repro --trace-out`) — the file kind is sniffed from its shape.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use stale_lint::diagnostics::{render_human, render_json};
use stale_lint::{preflight, rules, source, Baseline};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("source") => cmd_source(&args[1..]),
        Some("preflight") => cmd_preflight(&args[1..]),
        Some("rules") => cmd_rules(),
        _ => {
            eprintln!(
                "usage: stale-lint source [--root DIR] [--json] [--baseline FILE] [--update-baseline]\n\
                 \x20      stale-lint preflight <FILE> [--json]\n\
                 \x20      stale-lint rules"
            );
            ExitCode::from(2)
        }
    }
}

fn cmd_source(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--json" => json = true,
            "--baseline" => match it.next() {
                Some(file) => baseline_path = Some(PathBuf::from(file)),
                None => return usage("--baseline needs a file"),
            },
            "--update-baseline" => update_baseline = true,
            other => return usage(&format!("unknown flag {other}")),
        }
    }
    if update_baseline && baseline_path.is_none() {
        return usage("--update-baseline needs --baseline FILE");
    }

    let diags = match source::check_tree(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("stale-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &baseline_path {
        if update_baseline {
            let baseline = Baseline::from_diagnostics(&diags);
            if let Err(e) = std::fs::write(path, baseline.to_json()) {
                eprintln!("stale-lint: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            eprintln!(
                "stale-lint: baseline updated with {} finding(s)",
                diags.len()
            );
            return ExitCode::SUCCESS;
        }
        let baseline = match std::fs::read_to_string(path) {
            Ok(text) => match Baseline::from_json(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("stale-lint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("stale-lint: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let violations = baseline.violations(&diags);
        return report(&violations, json, "source");
    }
    report(&diags, json, "source")
}

fn cmd_preflight(args: &[String]) -> ExitCode {
    let mut file: Option<PathBuf> = None;
    let mut json = false;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            other if file.is_none() && !other.starts_with("--") => {
                file = Some(PathBuf::from(other));
            }
            other => return usage(&format!("unexpected argument {other}")),
        }
    }
    let Some(file) = file else {
        return usage("preflight needs a bundle, checkpoint, metrics-JSON or trace-JSONL file");
    };
    let diags = preflight::preflight_path(&file);
    report(&diags, json, "preflight")
}

fn cmd_rules() -> ExitCode {
    for rule in rules::ALL {
        println!("{} ({}): {}", rule.id, rule.severity, rule.describe);
        for scope in rule.scopes {
            println!("    scope {scope}");
        }
    }
    ExitCode::SUCCESS
}

fn report(diags: &[stale_lint::Diagnostic], json: bool, pass: &str) -> ExitCode {
    if json {
        println!("{}", render_json(diags));
    } else if diags.is_empty() {
        eprintln!("stale-lint: {pass} pass clean");
    } else {
        print!("{}", render_human(diags));
        eprintln!("stale-lint: {} {pass} violation(s)", diags.len());
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("stale-lint: {msg}");
    ExitCode::from(2)
}
