//! The reachability pass: scope every rule by the call graph, then run
//! the per-line sink checks of [`crate::source`] inside the reachable
//! function spans.
//!
//! This is the composition point of the crate. [`Analysis::new`] scans
//! and parses every graph-eligible file once ([`in_graph`] excludes
//! tests, benches, examples, fixtures and the vendored shims — the
//! trust boundary); [`Analysis::check`] then walks one BFS per rule from
//! the `entry(<class>)`-declared entry points, pruning at
//! `trusted(<rule>)` functions, and scans exactly the lines whose
//! innermost enclosing function is reachable. Every finding carries the
//! enclosing function's key and the shortest entry→function call chain
//! that proves the rule applies; [`Analysis::why`] answers the same
//! question interactively.

use crate::diagnostics::Diagnostic;
use crate::model::{parse_file, FileModel};
use crate::rules::{self, Rule};
use crate::scan::{scan, tokens, DirectiveKind, Scanned};
use crate::source::{
    blocking_io_sinks, cast_sinks, index_sinks, iteration_sinks, panic_sinks, rng_env_sinks,
    tracked_hash_names, wallclock_sinks,
};
use crate::Graph;
use std::collections::BTreeSet;

/// Whether a workspace-relative path participates in the call graph.
/// Test/bench/example/fixture trees and the vendored shims are outside
/// the trust boundary: they are neither entry points nor sinks.
pub fn in_graph(rel_path: &str) -> bool {
    !rel_path.split('/').any(|seg| {
        matches!(
            seg,
            "tests" | "benches" | "examples" | "fixtures" | "target" | "shims"
        ) || seg.starts_with('.')
    })
}

/// A fully scanned and parsed workspace, ready for reachability passes.
pub struct Analysis {
    scanned: Vec<Scanned>,
    toks: Vec<Vec<Vec<String>>>,
    hashes: Vec<BTreeSet<String>>,
    models: Vec<FileModel>,
}

impl Analysis {
    /// Scan and parse every graph-eligible `(rel_path, content)` file.
    pub fn new(files: &[(String, String)]) -> Analysis {
        let mut scanned = Vec::new();
        let mut toks = Vec::new();
        let mut hashes = Vec::new();
        let mut models = Vec::new();
        for (rel, content) in files {
            if !in_graph(rel) {
                continue;
            }
            let s = scan(content);
            let t: Vec<Vec<String>> = s.lines.iter().map(|l| tokens(&l.code)).collect();
            hashes.push(tracked_hash_names(&s.lines, &t));
            models.push(parse_file(rel, &s));
            scanned.push(s);
            toks.push(t);
        }
        Analysis {
            scanned,
            toks,
            hashes,
            models,
        }
    }

    /// Run every rule. With `respect_pragmas` off, `allow(...)`
    /// suppression is ignored and the meta rules (`unused-allow`,
    /// `bad-directive`) are skipped — the raw-finding mode the superset
    /// tests compare against the legacy oracle.
    pub fn check(&self, respect_pragmas: bool) -> Vec<Diagnostic> {
        let graph = Graph::build(&self.models);
        let mut out = Vec::new();
        // `(file idx, 1-based line, rule id)` of every allow that
        // suppressed (or would suppress) a finding.
        let mut used_allows: BTreeSet<(usize, usize, String)> = BTreeSet::new();

        for rule in rules::ALL.iter().filter(|r| !r.classes.is_empty()) {
            self.check_graph_rule(rule, &graph, respect_pragmas, &mut used_allows, &mut out);
        }
        self.check_declared_casts(respect_pragmas, &mut used_allows, &mut out);
        if respect_pragmas {
            self.check_directives(&used_allows, &mut out);
        }
        out
    }

    /// One reachability rule: BFS from its classes' entry points, then
    /// sink-scan the lines of reachable functions.
    fn check_graph_rule(
        &self,
        rule: &Rule,
        graph: &Graph<'_>,
        respect_pragmas: bool,
        used_allows: &mut BTreeSet<(usize, usize, String)>,
        out: &mut Vec<Diagnostic>,
    ) {
        let entries: Vec<crate::NodeId> = graph
            .node_ids()
            .filter(|&id| {
                graph
                    .fn_def(id)
                    .entries
                    .iter()
                    .any(|c| rule.classes.contains(&c.as_str()))
            })
            .collect();
        let parents = graph.reachable(&entries, |id| {
            graph.fn_def(id).trusted.iter().any(|t| t == rule.id)
        });
        for (fi, model) in self.models.iter().enumerate() {
            let trusted_file = model.trusted_file.iter().any(|t| t == rule.id);
            // `trusted-file` sanctions a file's sinks wholesale — except
            // for the wall-clock rule, where it only sanctions
            // `Instant::now` (the self-timing idiom); `SystemTime::now`
            // is never sanctionable by file.
            if trusted_file && rule.id != "wallclock-in-detector" {
                continue;
            }
            let panic_index = model.scopes.iter().any(|s| s == "panic-index");
            for (li, line) in self.scanned[fi].lines.iter().enumerate() {
                if line.in_test {
                    continue;
                }
                let Some(gi) = model.line_fn[li] else {
                    continue;
                };
                let Some(node) = graph.node_of(fi, gi) else {
                    continue;
                };
                if !parents.contains_key(&node.0) {
                    continue;
                }
                let tk = &self.toks[fi][li];
                if tk.is_empty() {
                    continue;
                }
                let msgs = match rule.id {
                    "nondeterministic-iteration" => iteration_sinks(tk, &self.hashes[fi]),
                    "panic-in-shard" => {
                        let mut m = panic_sinks(tk);
                        if panic_index {
                            m.extend(index_sinks(tk));
                        }
                        m
                    }
                    "wallclock-in-detector" => wallclock_sinks(tk, !trusted_file),
                    "rng-env-in-detector" => rng_env_sinks(tk),
                    "blocking-io-in-actor" => blocking_io_sinks(tk),
                    _ => Vec::new(),
                };
                if msgs.is_empty() {
                    continue;
                }
                if line.allow.iter().any(|a| a == rule.id) {
                    used_allows.insert((fi, li + 1, rule.id.to_string()));
                    if respect_pragmas {
                        continue;
                    }
                }
                let chain: Vec<String> = graph
                    .chain(&parents, node)
                    .into_iter()
                    .map(|id| graph.label(id))
                    .collect();
                for message in msgs {
                    let mut d =
                        Diagnostic::new(rule.id, rule.severity, &model.file, li + 1, message);
                    d.fn_key = model.fns[gi].key();
                    d.chain = chain.clone();
                    out.push(d);
                }
            }
        }
    }

    /// The declared-scope cast rule: every non-test line of a
    /// `scope(lossy-time-cast)` file, no reachability precondition (the
    /// hazard is in the module's arithmetic, not a call path).
    fn check_declared_casts(
        &self,
        respect_pragmas: bool,
        used_allows: &mut BTreeSet<(usize, usize, String)>,
        out: &mut Vec<Diagnostic>,
    ) {
        let rule = rules::LOSSY_TIME_CAST;
        for (fi, model) in self.models.iter().enumerate() {
            if !model.scopes.iter().any(|s| s == rule.id)
                || model.trusted_file.iter().any(|t| t == rule.id)
            {
                continue;
            }
            for (li, line) in self.scanned[fi].lines.iter().enumerate() {
                if line.in_test {
                    continue;
                }
                let msgs = cast_sinks(&self.toks[fi][li]);
                if msgs.is_empty() {
                    continue;
                }
                if line.allow.iter().any(|a| a == rule.id) {
                    used_allows.insert((fi, li + 1, rule.id.to_string()));
                    if respect_pragmas {
                        continue;
                    }
                }
                for message in msgs {
                    let mut d =
                        Diagnostic::new(rule.id, rule.severity, &model.file, li + 1, message);
                    if let Some(gi) = model.line_fn[li] {
                        d.fn_key = model.fns[gi].key();
                    }
                    out.push(d);
                }
            }
        }
    }

    /// The meta rules: malformed directives and dead `allow` pragmas.
    fn check_directives(
        &self,
        used_allows: &BTreeSet<(usize, usize, String)>,
        out: &mut Vec<Diagnostic>,
    ) {
        let bad = |file: &str, line: usize, why: String| {
            Diagnostic::new(
                rules::BAD_DIRECTIVE.id,
                rules::BAD_DIRECTIVE.severity,
                file,
                line,
                why,
            )
        };
        for (fi, model) in self.models.iter().enumerate() {
            for (line, why) in &model.bad_directives {
                out.push(bad(&model.file, *line, why.clone()));
            }
            for d in &self.scanned[fi].directives {
                if d.args.is_empty() {
                    if !matches!(d.kind, DirectiveKind::Unknown(_)) {
                        out.push(bad(
                            &model.file,
                            d.line,
                            "directive has no arguments".into(),
                        ));
                    }
                    continue;
                }
                match &d.kind {
                    DirectiveKind::Allow | DirectiveKind::Trusted | DirectiveKind::TrustedFile => {
                        for arg in &d.args {
                            if rules::by_id(arg).is_none() {
                                out.push(bad(&model.file, d.line, format!("unknown rule `{arg}`")));
                            }
                        }
                    }
                    DirectiveKind::Scope => {
                        for arg in &d.args {
                            if !rules::DECLARED_SCOPES.contains(&arg.as_str()) {
                                out.push(bad(
                                    &model.file,
                                    d.line,
                                    format!("unknown declared scope `{arg}`"),
                                ));
                            }
                        }
                    }
                    DirectiveKind::Entry => {
                        for arg in &d.args {
                            if !rules::ENTRY_CLASSES.contains(&arg.as_str()) {
                                out.push(bad(
                                    &model.file,
                                    d.line,
                                    format!("unknown entry class `{arg}`"),
                                ));
                            }
                        }
                    }
                    DirectiveKind::Unknown(_) => {} // already in bad_directives
                }
                if d.kind == DirectiveKind::Allow {
                    let target = pragma_target_line(&self.scanned[fi], d.line);
                    for arg in &d.args {
                        if rules::by_id(arg).is_none() {
                            continue; // already reported as bad-directive
                        }
                        let hit =
                            target.is_some_and(|t| used_allows.contains(&(fi, t, arg.clone())));
                        if !hit {
                            out.push(Diagnostic::new(
                                rules::UNUSED_ALLOW.id,
                                rules::UNUSED_ALLOW.severity,
                                &model.file,
                                d.line,
                                format!(
                                    "`allow({arg})` suppresses nothing — the finding it silenced is gone; remove the pragma"
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }

    /// Explain why `rule_id` applies to `target` (a function name or
    /// `Owner::name` key): the shortest entry→target call chain, as
    /// `file:line key` hops. Errors are human-readable explanations.
    pub fn why(&self, rule_id: &str, target: &str) -> Result<Vec<String>, String> {
        let rule = rules::by_id(rule_id).ok_or_else(|| format!("unknown rule `{rule_id}`"))?;
        if rule.classes.is_empty() {
            return Err(format!(
                "rule `{rule_id}` is not reachability-scoped (it uses declared scopes); \
                 `why` explains graph rules"
            ));
        }
        let graph = Graph::build(&self.models);
        let entries: Vec<crate::NodeId> = graph
            .node_ids()
            .filter(|&id| {
                graph
                    .fn_def(id)
                    .entries
                    .iter()
                    .any(|c| rule.classes.contains(&c.as_str()))
            })
            .collect();
        if entries.is_empty() {
            return Err(format!(
                "no entry points declare any of the classes {:?}",
                rule.classes
            ));
        }
        let matches: Vec<crate::NodeId> = graph
            .node_ids()
            .filter(|&id| {
                let f = graph.fn_def(id);
                f.key() == target || f.name == target
            })
            .collect();
        if matches.is_empty() {
            return Err(format!("no function named `{target}` in the call graph"));
        }
        let parents = graph.reachable(&entries, |id| {
            graph.fn_def(id).trusted.iter().any(|t| t == rule_id)
        });
        for &id in &matches {
            if parents.contains_key(&id.0) {
                return Ok(graph
                    .chain(&parents, id)
                    .into_iter()
                    .map(|n| graph.label(n))
                    .collect());
            }
        }
        Err(format!(
            "`{target}` is not reachable from any {:?} entry point — `{rule_id}` does not apply to it",
            rule.classes
        ))
    }
}

/// The code line an `allow` pragma on `directive_line` applies to: its
/// own line when that line carries code, otherwise the next
/// code-carrying line (mirroring [`crate::scan`]'s pragma resolution).
fn pragma_target_line(scanned: &Scanned, directive_line: usize) -> Option<usize> {
    scanned
        .lines
        .iter()
        .enumerate()
        .skip(directive_line - 1)
        .find(|(_, l)| !l.code.trim().is_empty())
        .map(|(idx, _)| idx + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files(list: &[(&str, &str)]) -> Vec<(String, String)> {
        list.iter()
            .map(|(p, c)| (p.to_string(), c.to_string()))
            .collect()
    }

    fn check(list: &[(&str, &str)]) -> Vec<Diagnostic> {
        Analysis::new(&files(list)).check(true)
    }

    const ENTRY_FILE: &str = "crates/x/src/lib.rs";

    #[test]
    fn sink_reachable_from_entry_is_found_with_chain() {
        let d = check(&[(
            ENTRY_FILE,
            "// stale-lint: entry(shard)\n\
             fn shard_body() { helper(); }\n\
             fn helper() { x.unwrap(); }\n\
             fn unreached() { y.unwrap(); }\n",
        )]);
        let panics: Vec<&Diagnostic> = d.iter().filter(|d| d.rule == "panic-in-shard").collect();
        assert_eq!(panics.len(), 1, "{d:?}");
        assert_eq!(panics[0].line, 3);
        assert_eq!(panics[0].fn_key, "helper");
        assert_eq!(
            panics[0].chain,
            vec![
                format!("{ENTRY_FILE}:2 shard_body"),
                format!("{ENTRY_FILE}:3 helper"),
            ]
        );
    }

    #[test]
    fn trusted_fn_prunes_and_trusted_file_sanctions_instant_only() {
        let d = check(&[(
            ENTRY_FILE,
            "// stale-lint: trusted-file(wallclock-in-detector)\n\
             // stale-lint: entry(shard)\n\
             fn shard_body() { boundary(); timed(); }\n\
             // stale-lint: trusted(panic-in-shard)\n\
             fn boundary() { x.unwrap(); }\n\
             fn timed() { let t = Instant::now(); let s = SystemTime::now(); }\n",
        )]);
        assert!(
            !d.iter().any(|d| d.rule == "panic-in-shard"),
            "trusted fn prunes its subtree: {d:?}"
        );
        let wall: Vec<&Diagnostic> = d
            .iter()
            .filter(|d| d.rule == "wallclock-in-detector")
            .collect();
        assert_eq!(wall.len(), 1, "SystemTime survives trusted-file: {d:?}");
        assert!(wall[0].message.contains("SystemTime"));
    }

    #[test]
    fn cross_file_reachability_and_test_exclusion() {
        let d = check(&[
            (
                "crates/a/src/lib.rs",
                "// stale-lint: entry(serial)\n\
                 fn render() { util::emit(); }\n",
            ),
            (
                "crates/b/src/util.rs",
                "fn emit() { rows.iter(); }\n\
                 struct S { rows: HashMap<u32, u32> }\n\
                 fn emit2() { for r in &rows {} }\n\
                 #[cfg(test)]\n\
                 mod tests { fn t() { rows.iter(); } }\n",
            ),
            ("crates/b/tests/integration.rs", "fn t() { rows.iter(); }\n"),
        ]);
        let iter: Vec<&Diagnostic> = d
            .iter()
            .filter(|d| d.rule == "nondeterministic-iteration")
            .collect();
        assert_eq!(iter.len(), 1, "{d:?}");
        assert_eq!(iter[0].file, "crates/b/src/util.rs");
        assert_eq!(iter[0].line, 1, "emit2 is unreached, tests excluded");
    }

    #[test]
    fn panic_index_scope_widens_only_declaring_files() {
        let src = |scope: &str| {
            format!(
                "{scope}// stale-lint: entry(shard)\n\
                 fn body() {{ let x = v[i]; }}\n"
            )
        };
        let with = check(&[(ENTRY_FILE, &src("// stale-lint: scope(panic-index)\n"))]);
        assert_eq!(
            with.iter().filter(|d| d.rule == "panic-in-shard").count(),
            1,
            "{with:?}"
        );
        let without = check(&[(ENTRY_FILE, &src(""))]);
        assert!(!without.iter().any(|d| d.rule == "panic-in-shard"));
    }

    #[test]
    fn new_rules_fire_on_their_classes_only() {
        let d = check(&[(
            ENTRY_FILE,
            "// stale-lint: entry(actor)\n\
             fn actor_loop() { fs::write(p, b); thread_rng(); }\n\
             // stale-lint: entry(shard)\n\
             fn shard_body() { env::var(\"X\"); File::open(p); }\n",
        )]);
        let by_rule = |r: &str| d.iter().filter(|d| d.rule == r).count();
        // actor: blocking-io fires, rng-env does not (actor is not a
        // deterministic class).
        assert_eq!(by_rule("blocking-io-in-actor"), 1, "{d:?}");
        assert_eq!(by_rule("rng-env-in-detector"), 1, "{d:?}");
        let io = d.iter().find(|d| d.rule == "blocking-io-in-actor").unwrap();
        assert_eq!(io.fn_key, "actor_loop");
        let rng = d.iter().find(|d| d.rule == "rng-env-in-detector").unwrap();
        assert_eq!(rng.fn_key, "shard_body");
    }

    #[test]
    fn allow_suppresses_and_unused_allow_fires() {
        let d = check(&[(
            ENTRY_FILE,
            "// stale-lint: entry(shard)\n\
             fn body() {\n\
                 x.unwrap(); // stale-lint: allow(panic-in-shard)\n\
                 clean(); // stale-lint: allow(panic-in-shard)\n\
             }\n\
             fn clean() {}\n",
        )]);
        assert!(!d.iter().any(|d| d.rule == "panic-in-shard"), "{d:?}");
        let unused: Vec<&Diagnostic> = d.iter().filter(|d| d.rule == "unused-allow").collect();
        assert_eq!(unused.len(), 1, "{d:?}");
        assert_eq!(unused[0].line, 4);
    }

    #[test]
    fn raw_mode_ignores_allows_and_meta_rules() {
        let analysis = Analysis::new(&files(&[(
            ENTRY_FILE,
            "// stale-lint: entry(shard)\n\
             fn body() {\n\
                 x.unwrap(); // stale-lint: allow(panic-in-shard)\n\
                 dead(); // stale-lint: allow(panic-in-shard)\n\
             }\n\
             fn dead() {}\n",
        )]));
        let raw = analysis.check(false);
        assert_eq!(raw.iter().filter(|d| d.rule == "panic-in-shard").count(), 1);
        assert!(!raw.iter().any(|d| d.rule == "unused-allow"));
    }

    #[test]
    fn bad_directives_are_reported() {
        let d = check(&[(
            ENTRY_FILE,
            "// stale-lint: entry(warp)\n\
             fn f() {}\n\
             // stale-lint: frobnicate(x)\n\
             // stale-lint: allow(no-such-rule)\n\
             fn g() {}\n\
             // stale-lint: scope(panic-in-shard)\n",
        )]);
        let bad: Vec<&str> = d
            .iter()
            .filter(|d| d.rule == "bad-directive")
            .map(|d| d.message.as_str())
            .collect();
        assert_eq!(bad.len(), 4, "{d:?}");
        assert!(bad.iter().any(|m| m.contains("unknown entry class `warp`")));
        assert!(bad
            .iter()
            .any(|m| m.contains("unknown directive `frobnicate`")));
        assert!(bad
            .iter()
            .any(|m| m.contains("unknown rule `no-such-rule`")));
        assert!(bad
            .iter()
            .any(|m| m.contains("unknown declared scope `panic-in-shard`")));
    }

    #[test]
    fn declared_cast_scope_needs_no_entry() {
        let d = check(&[(
            "crates/t/src/time.rs",
            "// stale-lint: scope(lossy-time-cast)\n\
             fn days(x: i64) -> u8 { x as u8 }\n",
        )]);
        let casts: Vec<&Diagnostic> = d.iter().filter(|d| d.rule == "lossy-time-cast").collect();
        assert_eq!(casts.len(), 1, "{d:?}");
        assert_eq!(casts[0].fn_key, "days");
    }

    #[test]
    fn why_explains_chains_and_unreachability() {
        let analysis = Analysis::new(&files(&[(
            ENTRY_FILE,
            "// stale-lint: entry(shard)\n\
             fn shard_body() { mid(); }\n\
             fn mid() { leaf(); }\n\
             fn leaf() {}\n\
             fn island() {}\n",
        )]));
        let chain = analysis.why("panic-in-shard", "leaf").unwrap();
        assert_eq!(
            chain,
            vec![
                format!("{ENTRY_FILE}:2 shard_body"),
                format!("{ENTRY_FILE}:3 mid"),
                format!("{ENTRY_FILE}:4 leaf"),
            ]
        );
        assert!(analysis
            .why("panic-in-shard", "island")
            .unwrap_err()
            .contains("not reachable"));
        assert!(analysis
            .why("no-rule", "leaf")
            .unwrap_err()
            .contains("unknown rule"));
        assert!(analysis
            .why("lossy-time-cast", "leaf")
            .unwrap_err()
            .contains("not reachability-scoped"));
    }
}
