//! The committed-baseline ratchet, schema v2.
//!
//! A baseline records, per rule, file and *function*, how many findings
//! are tolerated — legacy debt that predates a rule. The ratchet is
//! strict in both directions:
//!
//! * a `(rule, file, fn)` bucket growing beyond its allowance is a
//!   **violation** — new debt is blocked;
//! * a bucket whose findings no longer fire is a **stale entry** and
//!   also fails the run — the baseline can only shrink, so burned-down
//!   debt must be removed (`--update-baseline`) in the same change,
//!   keeping the committed file an exact inventory rather than a
//!   high-water mark.
//!
//! The file is versioned like the engine's checkpoints: a `schema` tag
//! plus an integer `version`, and any other shape — including the v1
//! format, which bucketed by file only — is a hard error telling the
//! operator to regenerate.

use crate::diagnostics::Diagnostic;
use serde::value::Value;
use std::collections::BTreeMap;

/// The `schema` tag of a baseline file.
pub const SCHEMA: &str = "stale-lint-baseline";
/// The current baseline schema version.
pub const VERSION: u64 = 2;

/// The bucket key for findings outside any function (file-level meta
/// findings, declared-scope casts in consts).
const FILE_LEVEL: &str = "<file>";

/// Tolerated finding counts, keyed by rule, then file, then fn key.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    tolerated: BTreeMap<String, BTreeMap<String, BTreeMap<String, usize>>>,
}

/// The function bucket a diagnostic counts under.
fn fn_bucket(d: &Diagnostic) -> &str {
    if d.fn_key.is_empty() {
        FILE_LEVEL
    } else {
        &d.fn_key
    }
}

impl Baseline {
    /// An empty baseline (tolerates nothing).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Build a baseline that tolerates exactly the given findings.
    pub fn from_diagnostics(diags: &[Diagnostic]) -> Self {
        let mut tolerated: BTreeMap<String, BTreeMap<String, BTreeMap<String, usize>>> =
            BTreeMap::new();
        for d in diags {
            *tolerated
                .entry(d.rule.to_string())
                .or_default()
                .entry(d.file.clone())
                .or_default()
                .entry(fn_bucket(d).to_string())
                .or_default() += 1;
        }
        Self { tolerated }
    }

    /// Parse a baseline file's JSON contents. Only schema v2 is
    /// accepted; the v1 shape (rule → file → count, no `schema` tag)
    /// errors with a regeneration hint.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let v: Value = serde_json::from_str(s).map_err(|e| format!("baseline parse: {e}"))?;
        let Value::Obj(ref top) = v else {
            return Err("baseline parse: top level must be an object".to_string());
        };
        match v.get("schema") {
            Some(Value::Str(tag)) if tag == SCHEMA => {}
            Some(_) => return Err(format!("baseline parse: schema tag must be {SCHEMA:?}")),
            None if top.is_empty() => return Ok(Self::empty()),
            None => {
                return Err(
                    "baseline parse: no schema tag — this looks like a v1 baseline; \
                     regenerate it with `stale-lint source --baseline FILE --update-baseline`"
                        .to_string(),
                );
            }
        }
        match v.get("version").and_then(Value::as_u128) {
            Some(ver) if ver == u128::from(VERSION) => {}
            Some(ver) => {
                return Err(format!(
                    "baseline parse: version {ver} is not supported (current: {VERSION}); \
                     regenerate with --update-baseline"
                ));
            }
            None => return Err("baseline parse: missing integer `version`".to_string()),
        }
        let Some(Value::Obj(rules)) = v.get("tolerated") else {
            return Err("baseline parse: missing `tolerated` object".to_string());
        };
        let mut tolerated: BTreeMap<String, BTreeMap<String, BTreeMap<String, usize>>> =
            BTreeMap::new();
        for (rule, files) in rules {
            let Value::Obj(files) = files else {
                return Err(format!(
                    "baseline parse: rule {rule:?} must map files to fn buckets"
                ));
            };
            let rule_bucket = tolerated.entry(rule.clone()).or_default();
            for (file, fns) in files {
                let Value::Obj(fns) = fns else {
                    return Err(format!(
                        "baseline parse: {rule:?}/{file:?} must map fn keys to counts"
                    ));
                };
                let file_bucket = rule_bucket.entry(file.clone()).or_default();
                for (fn_key, n) in fns {
                    let n = n
                        .as_i128()
                        .and_then(|n| usize::try_from(n).ok())
                        .filter(|&n| n > 0)
                        .ok_or_else(|| {
                            format!(
                                "baseline parse: count for {fn_key:?} must be a positive integer"
                            )
                        })?;
                    file_bucket.insert(fn_key.clone(), n);
                }
            }
        }
        Ok(Self { tolerated })
    }

    /// Serialize for committing (stable key order, pretty-printed).
    pub fn to_json(&self) -> String {
        let rules = self
            .tolerated
            .iter()
            .filter(|(_, files)| !files.is_empty())
            .map(|(rule, files)| {
                let file_objs = files
                    .iter()
                    .map(|(file, fns)| {
                        let fn_objs = fns
                            .iter()
                            .map(|(k, n)| (k.clone(), Value::UInt(*n as u128)))
                            .collect();
                        (file.clone(), Value::Obj(fn_objs))
                    })
                    .collect();
                (rule.clone(), Value::Obj(file_objs))
            })
            .collect();
        let doc = Value::Obj(vec![
            ("schema".to_string(), Value::Str(SCHEMA.to_string())),
            ("version".to_string(), Value::UInt(u128::from(VERSION))),
            ("tolerated".to_string(), Value::Obj(rules)),
        ]);
        let mut out = serde_json::to_string_pretty(&doc).unwrap_or_default();
        out.push('\n');
        out
    }

    /// Tolerated count for a `(rule, file, fn)` bucket.
    pub fn allowance(&self, rule: &str, file: &str, fn_key: &str) -> usize {
        self.tolerated
            .get(rule)
            .and_then(|files| files.get(file))
            .and_then(|fns| fns.get(fn_key))
            .copied()
            .unwrap_or(0)
    }

    /// The findings that exceed the baseline: for every `(rule, file,
    /// fn)` bucket whose current count is above its allowance, all of
    /// that bucket's findings are returned (line numbers shift too
    /// easily to attribute "the new one").
    pub fn violations(&self, current: &[Diagnostic]) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for ((rule, file, fn_key), diags) in bucket(current) {
            if diags.len() > self.allowance(rule, file, fn_key) {
                out.extend(diags.into_iter().cloned());
            }
        }
        out
    }

    /// Baseline entries tolerating more findings than currently fire:
    /// burned-down debt that must be removed from the committed file.
    /// Each entry renders as `rule file fn: tolerates N, fires M`.
    pub fn stale_entries(&self, current: &[Diagnostic]) -> Vec<String> {
        let counts: BTreeMap<(&str, &str, &str), usize> = bucket(current)
            .into_iter()
            .map(|(k, v)| (k, v.len()))
            .collect();
        let mut out = Vec::new();
        for (rule, files) in &self.tolerated {
            for (file, fns) in files {
                for (fn_key, &n) in fns {
                    let firing = counts
                        .get(&(rule.as_str(), file.as_str(), fn_key.as_str()))
                        .copied()
                        .unwrap_or(0);
                    if firing < n {
                        out.push(format!(
                            "{rule} {file} {fn_key}: tolerates {n}, fires {firing}"
                        ));
                    }
                }
            }
        }
        out
    }
}

/// Group diagnostics into their `(rule, file, fn)` buckets.
fn bucket(diags: &[Diagnostic]) -> BTreeMap<(&str, &str, &str), Vec<&Diagnostic>> {
    let mut buckets: BTreeMap<(&str, &str, &str), Vec<&Diagnostic>> = BTreeMap::new();
    for d in diags {
        buckets
            .entry((d.rule, d.file.as_str(), fn_bucket(d)))
            .or_default()
            .push(d);
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::Severity;

    fn diag(rule: &'static str, file: &str, fn_key: &str, line: usize) -> Diagnostic {
        let mut d = Diagnostic::new(rule, Severity::Error, file, line, "m");
        d.fn_key = fn_key.to_string();
        d
    }

    #[test]
    fn empty_baseline_reports_everything() {
        let d = [diag("panic-in-shard", "a.rs", "f", 1)];
        assert_eq!(Baseline::empty().violations(&d), d.to_vec());
    }

    #[test]
    fn buckets_are_per_function_not_per_file() {
        let old = [diag("panic-in-shard", "a.rs", "S::f", 1)];
        let base = Baseline::from_diagnostics(&old);
        assert!(base.violations(&old).is_empty());
        // Same file, different fn: its own bucket, so a violation.
        let other_fn = [
            diag("panic-in-shard", "a.rs", "S::f", 1),
            diag("panic-in-shard", "a.rs", "S::g", 9),
        ];
        assert_eq!(base.violations(&other_fn).len(), 1);
        // Growth inside the tolerated fn reports the whole bucket.
        let grown = [
            diag("panic-in-shard", "a.rs", "S::f", 1),
            diag("panic-in-shard", "a.rs", "S::f", 7),
        ];
        assert_eq!(base.violations(&grown).len(), 2);
    }

    #[test]
    fn stale_entries_catch_burned_down_debt() {
        let old = [
            diag("panic-in-shard", "a.rs", "f", 1),
            diag("panic-in-shard", "a.rs", "f", 2),
            diag("lossy-time-cast", "t.rs", "", 9),
        ];
        let base = Baseline::from_diagnostics(&old);
        assert!(base.stale_entries(&old).is_empty());
        let after_burndown = [diag("panic-in-shard", "a.rs", "f", 1)];
        let stale = base.stale_entries(&after_burndown);
        assert_eq!(stale.len(), 2, "{stale:?}");
        assert!(stale[0].contains("lossy-time-cast t.rs <file>: tolerates 1, fires 0"));
        assert!(stale[1].contains("tolerates 2, fires 1"));
    }

    #[test]
    fn json_round_trip_is_versioned() {
        let base = Baseline::from_diagnostics(&[
            diag("panic-in-shard", "a.rs", "S::f", 1),
            diag("panic-in-shard", "a.rs", "S::f", 2),
            diag("lossy-time-cast", "t.rs", "", 9),
        ]);
        let text = base.to_json();
        assert!(text.contains("\"schema\""));
        assert!(text.contains("\"version\": 2"));
        let parsed = Baseline::from_json(&text).unwrap();
        assert_eq!(parsed, base);
        assert_eq!(parsed.allowance("panic-in-shard", "a.rs", "S::f"), 2);
        assert_eq!(parsed.allowance("panic-in-shard", "a.rs", "S::g"), 0);
        assert_eq!(parsed.allowance("lossy-time-cast", "t.rs", "<file>"), 1);
    }

    #[test]
    fn v1_and_malformed_baselines_are_rejected() {
        // v1 shape: rule → file → count, no schema tag.
        let err = Baseline::from_json("{\"panic-in-shard\": {\"a.rs\": 3}}").unwrap_err();
        assert!(err.contains("v1"), "{err}");
        assert!(Baseline::from_json("[1,2]").is_err());
        let wrong_version =
            "{\"schema\": \"stale-lint-baseline\", \"version\": 1, \"tolerated\": {}}";
        assert!(Baseline::from_json(wrong_version)
            .unwrap_err()
            .contains("version 1"));
        let zero = "{\"schema\": \"stale-lint-baseline\", \"version\": 2, \
                    \"tolerated\": {\"r\": {\"f.rs\": {\"g\": 0}}}}";
        assert!(
            Baseline::from_json(zero).is_err(),
            "zero counts are dead entries"
        );
        // The pre-schema empty file `{}` stays valid (empty tolerates
        // nothing, so there is nothing to migrate).
        assert_eq!(Baseline::from_json("{}").unwrap(), Baseline::empty());
    }
}
