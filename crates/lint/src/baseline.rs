//! The committed-baseline ratchet.
//!
//! A baseline records, per rule and file, how many findings are
//! *tolerated* — legacy debt that predates the lint. CI fails only when a
//! `(rule, file)` bucket grows beyond its baselined count, so new
//! violations are blocked while old ones can be burned down
//! incrementally: shrink the code, run `--update-baseline`, commit the
//! smaller file. The shipped baseline for `panic-in-shard` is empty by
//! design — that debt was paid before the lint landed.

use crate::diagnostics::Diagnostic;
use serde::value::Value;
use std::collections::BTreeMap;

/// Tolerated finding counts, keyed by rule then file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<String, BTreeMap<String, usize>>,
}

impl Baseline {
    /// An empty baseline (tolerates nothing).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Build a baseline that tolerates exactly the given findings.
    pub fn from_diagnostics(diags: &[Diagnostic]) -> Self {
        let mut counts: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
        for d in diags {
            *counts
                .entry(d.rule.to_string())
                .or_default()
                .entry(d.file.clone())
                .or_default() += 1;
        }
        Self { counts }
    }

    /// Parse a baseline file's JSON contents.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let v: Value = serde_json::from_str(s).map_err(|e| format!("baseline parse: {e}"))?;
        let Value::Obj(rules) = v else {
            return Err("baseline parse: top level must be an object".to_string());
        };
        let mut counts: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
        for (rule, files) in rules {
            let Value::Obj(entries) = files else {
                return Err(format!(
                    "baseline parse: rule {rule:?} must map files to counts"
                ));
            };
            let bucket = counts.entry(rule).or_default();
            for (file, n) in entries {
                let n = n
                    .as_i128()
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or_else(|| {
                        format!("baseline parse: count for {file:?} must be a non-negative integer")
                    })?;
                bucket.insert(file, n);
            }
        }
        Ok(Self { counts })
    }

    /// Serialize for committing (stable key order, pretty-printed).
    pub fn to_json(&self) -> String {
        let rules = self
            .counts
            .iter()
            .filter(|(_, files)| !files.is_empty())
            .map(|(rule, files)| {
                let entries = files
                    .iter()
                    .map(|(file, n)| (file.clone(), Value::UInt(*n as u128)))
                    .collect();
                (rule.clone(), Value::Obj(entries))
            })
            .collect();
        let mut out = serde_json::to_string_pretty(&Value::Obj(rules)).unwrap_or_default();
        out.push('\n');
        out
    }

    /// Tolerated count for a `(rule, file)` bucket.
    pub fn allowance(&self, rule: &str, file: &str) -> usize {
        self.counts
            .get(rule)
            .and_then(|files| files.get(file))
            .copied()
            .unwrap_or(0)
    }

    /// The findings that exceed the baseline: for every `(rule, file)`
    /// bucket whose current count is above its allowance, all of that
    /// bucket's findings are returned (line numbers shift too easily to
    /// attribute "the new one").
    pub fn violations(&self, current: &[Diagnostic]) -> Vec<Diagnostic> {
        let mut buckets: BTreeMap<(&str, &str), Vec<&Diagnostic>> = BTreeMap::new();
        for d in current {
            buckets
                .entry((d.rule, d.file.as_str()))
                .or_default()
                .push(d);
        }
        let mut out = Vec::new();
        for ((rule, file), diags) in buckets {
            if diags.len() > self.allowance(rule, file) {
                out.extend(diags.into_iter().cloned());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::Severity;

    fn diag(rule: &'static str, file: &str, line: usize) -> Diagnostic {
        Diagnostic {
            rule,
            severity: Severity::Error,
            file: file.to_string(),
            line,
            message: "m".to_string(),
        }
    }

    #[test]
    fn empty_baseline_reports_everything() {
        let d = [diag("panic-in-shard", "a.rs", 1)];
        assert_eq!(Baseline::empty().violations(&d), d.to_vec());
    }

    #[test]
    fn within_allowance_is_silent_above_is_loud() {
        let old = [diag("panic-in-shard", "a.rs", 1)];
        let base = Baseline::from_diagnostics(&old);
        assert!(base.violations(&old).is_empty());
        let grown = [
            diag("panic-in-shard", "a.rs", 1),
            diag("panic-in-shard", "a.rs", 7),
        ];
        assert_eq!(base.violations(&grown).len(), 2);
        // A different file is its own bucket.
        let elsewhere = [diag("panic-in-shard", "b.rs", 1)];
        assert_eq!(base.violations(&elsewhere).len(), 1);
    }

    #[test]
    fn json_round_trip() {
        let base = Baseline::from_diagnostics(&[
            diag("panic-in-shard", "a.rs", 1),
            diag("panic-in-shard", "a.rs", 2),
            diag("lossy-time-cast", "t.rs", 9),
        ]);
        let parsed = Baseline::from_json(&base.to_json()).unwrap();
        assert_eq!(parsed, base);
        assert_eq!(parsed.allowance("panic-in-shard", "a.rs"), 2);
        assert_eq!(parsed.allowance("panic-in-shard", "b.rs"), 0);
    }

    #[test]
    fn malformed_baseline_is_an_error_not_a_panic() {
        assert!(Baseline::from_json("[1,2]").is_err());
        assert!(Baseline::from_json("{\"r\": 3}").is_err());
        assert!(Baseline::from_json("{\"r\": {\"f\": -1}}").is_err());
        assert_eq!(Baseline::from_json("{}").unwrap(), Baseline::empty());
    }
}
