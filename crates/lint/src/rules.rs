//! The named lint rules and their scopes.
//!
//! A *scope* is a path prefix relative to the scanned root; a rule only
//! fires inside its scopes. The scopes encode the repo's architecture:
//! determinism matters wherever data can reach a merge, a report or a
//! serialization surface, and panic-freedom matters wherever the
//! supervisor's `catch_unwind` is the only safety net.

use crate::diagnostics::Severity;

/// One source-pass rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable identifier, used in pragmas and the baseline file.
    pub id: &'static str,
    /// Severity of its findings.
    pub severity: Severity,
    /// Path prefixes (relative, `/`-separated) the rule applies to.
    pub scopes: &'static [&'static str],
    /// One-line description (shown by `stale-lint rules`).
    pub describe: &'static str,
}

impl Rule {
    /// Whether `rel_path` falls inside this rule's scopes.
    pub fn in_scope(&self, rel_path: &str) -> bool {
        self.scopes.iter().any(|s| rel_path.starts_with(s))
    }
}

/// `HashMap`/`HashSet` iteration in code that feeds merges, reports or
/// serialization: iteration order is nondeterministic, which breaks the
/// byte-identical-report guarantee. Use `BTreeMap`/`BTreeSet` or sort
/// explicitly before iterating.
pub const NONDETERMINISTIC_ITERATION: Rule = Rule {
    id: "nondeterministic-iteration",
    severity: Severity::Error,
    scopes: &[
        "crates/stale-core/src/",
        "crates/engine/src/",
        "crates/served/src/",
    ],
    describe: "HashMap/HashSet iteration reaching merge/report/serialization paths",
};

/// `unwrap()`/`expect()`/`panic!` anywhere in detector, engine or
/// daemon production code: a panic inside a shard is swallowed by the
/// supervisor's isolation (degrading the run), a panic outside it
/// aborts the pipeline on attacker-observable input, and a panic in the
/// `stale-served` daemon kills a resident process on bytes a remote
/// peer chose. Slice indexing is additionally flagged in the
/// detector-state modules ([`PANIC_IN_SHARD_INDEX_SCOPES`]), where
/// inputs arrive from deserialized checkpoints and routed feeds.
pub const PANIC_IN_SHARD: Rule = Rule {
    id: "panic-in-shard",
    severity: Severity::Error,
    scopes: &[
        "crates/stale-core/src/",
        "crates/engine/src/",
        "crates/served/src/",
    ],
    describe: "unwrap/expect/panic!/indexing inside detector, shard and daemon paths",
};

/// Where [`PANIC_IN_SHARD`] also flags `x[i]`-style indexing: the shard
/// ingest and checkpoint-restore paths, whose indices come from routed
/// feeds and deserialized state rather than local construction.
pub const PANIC_IN_SHARD_INDEX_SCOPES: &[&str] = &[
    "crates/stale-core/src/detector/",
    "crates/stale-core/src/incremental.rs",
    "crates/engine/src/stream.rs",
];

/// `SystemTime::now` (or `Instant::now` outside the engine's
/// metrics-only timing) in deterministic code: wall clocks make results
/// depend on when the run happened.
pub const WALLCLOCK_IN_DETECTOR: Rule = Rule {
    id: "wallclock-in-detector",
    severity: Severity::Error,
    scopes: &[
        "crates/stale-core/src/",
        "crates/engine/src/",
        "crates/worldsim/src/",
    ],
    describe: "SystemTime::now (wall clock) in deterministic code",
};

/// Where [`WALLCLOCK_IN_DETECTOR`] also flags `Instant::now`: detector
/// and simulator code has no business timing itself (the engine's
/// metrics layer is the sanctioned exception, and its timings never
/// feed results).
pub const WALLCLOCK_INSTANT_SCOPES: &[&str] = &["crates/stale-core/src/", "crates/worldsim/src/"];

/// Narrowing `as` casts in the `stale-types` date arithmetic: `as`
/// silently truncates, and day/month arithmetic overflowing an `i32` or
/// `u8` corrupts every downstream interval. Use `From`/`TryFrom`, or
/// justify provably-in-range casts with a pragma.
pub const LOSSY_TIME_CAST: Rule = Rule {
    id: "lossy-time-cast",
    severity: Severity::Warning,
    scopes: &[
        "crates/stale-types/src/time.rs",
        "crates/stale-types/src/interval.rs",
    ],
    describe: "narrowing `as` cast in stale-types time arithmetic",
};

/// Every source-pass rule, in reporting order.
pub const ALL: &[Rule] = &[
    NONDETERMINISTIC_ITERATION,
    PANIC_IN_SHARD,
    WALLCLOCK_IN_DETECTOR,
    LOSSY_TIME_CAST,
];

/// The cast targets [`LOSSY_TIME_CAST`] considers narrowing.
pub const NARROWING_TARGETS: &[&str] = &["i8", "i16", "i32", "u8", "u16", "u32", "usize", "isize"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_matching_is_prefix_based() {
        assert!(PANIC_IN_SHARD.in_scope("crates/stale-core/src/stats.rs"));
        assert!(PANIC_IN_SHARD.in_scope("crates/served/src/daemon.rs"));
        assert!(!PANIC_IN_SHARD.in_scope("crates/served/tests/protocol_robustness.rs"));
        assert!(!PANIC_IN_SHARD.in_scope("crates/x509/src/cert.rs"));
        assert!(NONDETERMINISTIC_ITERATION.in_scope("crates/served/src/proto.rs"));
        // The daemon may time itself (latency histograms): wall-clock
        // rules deliberately leave `crates/served/` out of scope.
        assert!(!WALLCLOCK_IN_DETECTOR.in_scope("crates/served/src/daemon.rs"));
        assert!(LOSSY_TIME_CAST.in_scope("crates/stale-types/src/time.rs"));
        assert!(!LOSSY_TIME_CAST.in_scope("crates/stale-types/src/ids.rs"));
    }

    #[test]
    fn rule_ids_are_unique() {
        let mut ids: Vec<&str> = ALL.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ALL.len());
    }
}
