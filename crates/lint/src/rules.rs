//! The named lint rules, their entry classes and their sinks.
//!
//! Since the reachability rework a rule's scope is **derived from the
//! call graph**: a rule applies to every function reachable from the
//! entry points of its *entry classes* (declared in-source with
//! `// stale-lint: entry(<class>)`), not to hard-coded path prefixes.
//! Two rules use *declared file scopes* instead
//! (`// stale-lint: scope(<rule>)`), because their hazard is a property
//! of a module's arithmetic, not of a call path. The retired prefix
//! scopes survive only as [`legacy`], the equivalence oracle the
//! superset tests compare against.

use crate::diagnostics::Severity;

/// Entry-point classes an `entry(<class>)` directive may declare.
///
/// * `shard` — a shard body run under the supervisor's `catch_unwind`
///   (batch detectors, incremental ingest/finish);
/// * `serial` — a merge/serialization surface whose bytes must be
///   deterministic (table renderers, audit JSONL, checkpoint
///   save/restore, merge);
/// * `actor` — the `stale-served` state-actor loop (owns the world;
///   must neither panic nor block);
/// * `conn` — a per-connection daemon handler (panic kills a client
///   thread on attacker-chosen bytes);
/// * `worldgen` — world simulation (results must replay identically).
pub const ENTRY_CLASSES: &[&str] = &["shard", "serial", "actor", "conn", "worldgen"];

/// One reachability rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable identifier, used in directives and the baseline file.
    pub id: &'static str,
    /// Severity of its findings.
    pub severity: Severity,
    /// Entry classes whose reachable set this rule scans. Empty for
    /// declared-scope rules (`scope(<id>)` files) and meta rules.
    pub classes: &'static [&'static str],
    /// One-line description (shown by `stale-lint rules`).
    pub describe: &'static str,
}

/// `HashMap`/`HashSet` iteration reachable from a shard, merge or
/// daemon entry point: iteration order is nondeterministic, which
/// breaks the byte-identical-report guarantee.
pub const NONDETERMINISTIC_ITERATION: Rule = Rule {
    id: "nondeterministic-iteration",
    severity: Severity::Error,
    classes: &["shard", "serial", "actor", "conn"],
    describe: "HashMap/HashSet iteration reachable from merge/report/serialization entry points",
};

/// `unwrap()`/`expect()`/`panic!` (and, in `scope(panic-index)` files,
/// slice indexing) reachable from a shard or daemon entry point: a
/// panic inside a shard degrades the run behind the supervisor's
/// isolation, and a panic in the daemon kills a resident process on
/// bytes a remote peer chose.
pub const PANIC_IN_SHARD: Rule = Rule {
    id: "panic-in-shard",
    severity: Severity::Error,
    classes: &["shard", "serial", "actor", "conn"],
    describe: "unwrap/expect/panic!/indexing reachable from shard and daemon entry points",
};

/// `SystemTime::now` (or `Instant::now` outside files declaring
/// `trusted-file(wallclock-in-detector)`, the sanctioned self-timing
/// layers) reachable from deterministic entry points.
pub const WALLCLOCK_IN_DETECTOR: Rule = Rule {
    id: "wallclock-in-detector",
    severity: Severity::Error,
    classes: &["shard", "serial", "worldgen"],
    describe: "wall clock reachable from deterministic entry points",
};

/// Ambient randomness or process environment reads reachable from
/// deterministic entry points: `thread_rng`, `from_entropy`,
/// `env::var` and friends make results depend on the machine, not the
/// feed.
pub const RNG_ENV_IN_DETECTOR: Rule = Rule {
    id: "rng-env-in-detector",
    severity: Severity::Error,
    classes: &["shard", "serial", "worldgen"],
    describe: "ambient RNG / process-environment read reachable from deterministic entry points",
};

/// Blocking I/O reachable from the `stale-served` state-actor loop:
/// while the actor blocks, every client of the daemon stalls. The
/// sanctioned exception (checkpoint snapshots are atomic *because* the
/// actor writes them) is declared with `trusted(blocking-io-in-actor)`.
pub const BLOCKING_IO_IN_ACTOR: Rule = Rule {
    id: "blocking-io-in-actor",
    severity: Severity::Warning,
    classes: &["actor"],
    describe: "blocking I/O reachable from the state-actor loop",
};

/// Narrowing `as` casts in files declaring `scope(lossy-time-cast)`
/// (the stale-types date arithmetic): `as` silently truncates, and
/// day/month arithmetic overflowing an `i32` or `u8` corrupts every
/// downstream interval.
pub const LOSSY_TIME_CAST: Rule = Rule {
    id: "lossy-time-cast",
    severity: Severity::Warning,
    classes: &[],
    describe: "narrowing `as` cast in declared time-arithmetic scopes",
};

/// An `allow(<rule>)` pragma that suppresses nothing: the finding it
/// once silenced was burned down, so the pragma is dead and must go —
/// a stale suppression would silently swallow the next real finding on
/// that line.
pub const UNUSED_ALLOW: Rule = Rule {
    id: "unused-allow",
    severity: Severity::Warning,
    classes: &[],
    describe: "allow(...) pragma that no longer suppresses any finding",
};

/// A malformed `stale-lint:` directive: unknown directive name, unknown
/// rule id or entry class, or an `entry`/`trusted` with no following
/// `fn` item.
pub const BAD_DIRECTIVE: Rule = Rule {
    id: "bad-directive",
    severity: Severity::Warning,
    classes: &[],
    describe: "malformed stale-lint directive (unknown name, rule, class, or dangling target)",
};

/// Every rule, in reporting order.
pub const ALL: &[Rule] = &[
    NONDETERMINISTIC_ITERATION,
    PANIC_IN_SHARD,
    WALLCLOCK_IN_DETECTOR,
    RNG_ENV_IN_DETECTOR,
    BLOCKING_IO_IN_ACTOR,
    LOSSY_TIME_CAST,
    UNUSED_ALLOW,
    BAD_DIRECTIVE,
];

/// The rules whose scope is a `scope(<id>)` file declaration rather
/// than graph reachability. `panic-index` is a *sub*-scope: it widens
/// [`PANIC_IN_SHARD`] with slice-indexing sinks in files whose indices
/// come from routed feeds and deserialized state.
pub const DECLARED_SCOPES: &[&str] = &["lossy-time-cast", "panic-index"];

/// Look up a rule by id.
pub fn by_id(id: &str) -> Option<&'static Rule> {
    ALL.iter().find(|r| r.id == id)
}

/// Whether `id` is valid in a `trusted`/`trusted-file`/`allow`
/// directive (a real rule) or a `scope` directive (a declared scope).
pub fn known_rule_or_scope(id: &str) -> bool {
    by_id(id).is_some() || DECLARED_SCOPES.contains(&id)
}

/// The cast targets [`LOSSY_TIME_CAST`] considers narrowing.
pub const NARROWING_TARGETS: &[&str] = &["i8", "i16", "i32", "u8", "u16", "u32", "usize", "isize"];

/// The retired path-prefix scopes, kept verbatim as the equivalence
/// oracle: `tests/graph_superset.rs` proves the graph-derived pass
/// finds a superset of what these prefixes scoped. Never add to them.
pub mod legacy {
    /// `(rule id, scope prefixes)` as they stood before the rework.
    pub const SCOPES: &[(&str, &[&str])] = &[
        (
            "nondeterministic-iteration",
            &[
                "crates/stale-core/src/",
                "crates/engine/src/",
                "crates/served/src/",
            ],
        ),
        (
            "panic-in-shard",
            &[
                "crates/stale-core/src/",
                "crates/engine/src/",
                "crates/served/src/",
            ],
        ),
        (
            "wallclock-in-detector",
            &[
                "crates/stale-core/src/",
                "crates/engine/src/",
                "crates/worldsim/src/",
            ],
        ),
        (
            "lossy-time-cast",
            &[
                "crates/stale-types/src/time.rs",
                "crates/stale-types/src/interval.rs",
            ],
        ),
    ];

    /// Where the legacy pass also flagged `x[i]` indexing.
    pub const PANIC_INDEX_SCOPES: &[&str] = &[
        "crates/stale-core/src/detector/",
        "crates/stale-core/src/incremental.rs",
        "crates/engine/src/stream.rs",
    ];

    /// Where the legacy pass also flagged `Instant::now`.
    pub const WALLCLOCK_INSTANT_SCOPES: &[&str] =
        &["crates/stale-core/src/", "crates/worldsim/src/"];

    /// Prefix test for a legacy scope.
    pub fn in_scope(rule: &str, rel_path: &str) -> bool {
        SCOPES
            .iter()
            .find(|(id, _)| *id == rule)
            .is_some_and(|(_, scopes)| scopes.iter().any(|s| rel_path.starts_with(s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique() {
        let mut ids: Vec<&str> = ALL.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ALL.len());
    }

    #[test]
    fn classes_are_known() {
        for rule in ALL {
            for class in rule.classes {
                assert!(ENTRY_CLASSES.contains(class), "{}: {class}", rule.id);
            }
        }
    }

    #[test]
    fn legacy_scope_matching_is_prefix_based() {
        assert!(legacy::in_scope(
            "panic-in-shard",
            "crates/stale-core/src/stats.rs"
        ));
        assert!(!legacy::in_scope(
            "panic-in-shard",
            "crates/served/tests/protocol_robustness.rs"
        ));
        assert!(!legacy::in_scope(
            "wallclock-in-detector",
            "crates/served/src/daemon.rs"
        ));
    }
}
