//! Preflight rejects corrupted serialized inputs — truncated, bit-flipped
//! or hand-edited — with a named diagnostic and never panics, while a
//! freshly serialized world bundle and checkpoint pass clean.

use engine::checkpoint::{Checkpoint, SavedShard, ShardStateSnapshot, StreamCheckpoint};
use stale_core::incremental::{SavedKc, SavedMtd, SavedRc};
use stale_lint::preflight::preflight_str;
use stale_types::domain::dn;
use stale_types::{CertId, Date, KeyId, SerialNumber};
use worldsim::{ScenarioConfig, World, WorldBundle};

fn tiny_bundle_json() -> String {
    let data = World::run(ScenarioConfig::tiny());
    let bundle = WorldBundle::from_datasets(&data);
    serde_json::to_string_pretty(&bundle).expect("serialize bundle")
}

fn rules(diags: &[stale_lint::Diagnostic]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = diags.iter().map(|d| d.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

#[test]
fn fresh_bundle_preflights_clean() {
    let json = tiny_bundle_json();
    let diags = preflight_str("bundle", &json);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn truncated_bundle_rejected() {
    let json = tiny_bundle_json();
    let truncated = &json[..json.len() / 2];
    let diags = preflight_str("bundle", truncated);
    assert_eq!(rules(&diags), ["bundle-parse"], "{diags:?}");
}

#[test]
fn bitflipped_certificate_rejected() {
    let json = tiny_bundle_json();
    // Corrupt a hex digit of the first certificate's DER length byte.
    let der = json.find("\"der\": \"").expect("a cert") + "\"der\": \"".len();
    let mut flipped = json.clone();
    let target = der + 2;
    let old = flipped.as_bytes()[target];
    let new = if old == b'0' { '1' } else { '0' };
    flipped.replace_range(target..=target, &new.to_string());
    let diags = preflight_str("bundle", &flipped);
    assert!(
        diags.iter().any(|d| d.rule == "cert-der"),
        "expected cert-der, got {diags:?}"
    );
}

#[test]
fn tampered_count_fails_fingerprint() {
    let json = tiny_bundle_json();
    let key = "\"ct_raw_entries\": ";
    let at = json.find(key).expect("field") + key.len();
    let mut tampered = json.clone();
    tampered.insert(at, '9'); // prepend a digit: value changes, JSON stays valid
    let diags = preflight_str("bundle", &tampered);
    assert!(
        diags.iter().any(|d| d.rule == "fingerprint-mismatch"),
        "expected fingerprint-mismatch, got {diags:?}"
    );
}

#[test]
fn random_single_byte_mutations_never_panic() {
    let json = tiny_bundle_json();
    // xorshift64, as in tests/der_roundtrip.rs — deterministic fuzzing.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..200 {
        let mut bytes = json.clone().into_bytes();
        let pos = (next() % bytes.len() as u64) as usize;
        let bit = 1u8 << (next() % 8);
        bytes[pos] ^= bit;
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        // Must return diagnostics or a clean pass — never panic.
        let _ = preflight_str("bundle", &mutated);
    }
}

fn minimal_stream_checkpoint() -> StreamCheckpoint {
    StreamCheckpoint {
        version: StreamCheckpoint::VERSION,
        fingerprint: 7,
        shards: 1,
        through: Date::parse("2022-11-30").unwrap(),
        states: vec![ShardStateSnapshot {
            shard: 0,
            kc: SavedKc::default(),
            rc: SavedRc::default(),
            mtd: SavedMtd::default(),
        }],
    }
}

#[test]
fn well_formed_stream_checkpoint_passes() {
    let json = serde_json::to_string(&minimal_stream_checkpoint()).unwrap();
    let diags = preflight_str("ckpt", &json);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn stream_checkpoint_shard_order_violations_named() {
    let mut cp = minimal_stream_checkpoint();
    cp.states[0].shard = 3;
    let json = serde_json::to_string(&cp).unwrap();
    let diags = preflight_str("ckpt", &json);
    assert!(
        diags.iter().any(|d| d.rule == "checkpoint-order"),
        "{diags:?}"
    );

    let mut cp = minimal_stream_checkpoint();
    cp.shards = 4; // declared width disagrees with one saved state
    let json = serde_json::to_string(&cp).unwrap();
    let diags = preflight_str("ckpt", &json);
    assert!(
        diags.iter().any(|d| d.rule == "checkpoint-shards"),
        "{diags:?}"
    );
}

#[test]
fn stream_checkpoint_monotonicity_violations_named() {
    // kc index with non-increasing cert ids.
    let mut cp = minimal_stream_checkpoint();
    cp.states[0].kc = SavedKc {
        index: vec![
            (
                KeyId::from_bytes([1; 20]),
                SerialNumber(1),
                CertId::from_bytes([9; 32]),
            ),
            (
                KeyId::from_bytes([1; 20]),
                SerialNumber(2),
                CertId::from_bytes([3; 32]),
            ),
        ],
        losers: None,
    };
    let json = serde_json::to_string(&cp).unwrap();
    let diags = preflight_str("ckpt", &json);
    assert!(
        diags.iter().any(|d| d.rule == "checkpoint-monotone"),
        "{diags:?}"
    );

    // Unsorted delegated domains, and a domain both delegated and not.
    let mut cp = minimal_stream_checkpoint();
    cp.states[0].mtd = SavedMtd {
        delegated: vec![dn("b.com"), dn("a.com")],
        undelegated: vec![dn("b.com")],
        departures: Vec::new(),
        certs_by_customer: Vec::new(),
    };
    let json = serde_json::to_string(&cp).unwrap();
    let diags = preflight_str("ckpt", &json);
    assert!(
        diags.iter().any(|d| d.rule == "checkpoint-order"),
        "{diags:?}"
    );

    // Non-chronological per-domain creation dates.
    let mut cp = minimal_stream_checkpoint();
    cp.states[0].rc = SavedRc {
        certs_by_e2ld: Vec::new(),
        creations: vec![(
            dn("a.com"),
            vec![
                Date::parse("2021-05-01").unwrap(),
                Date::parse("2020-01-01").unwrap(),
            ],
        )],
    };
    let json = serde_json::to_string(&cp).unwrap();
    let diags = preflight_str("ckpt", &json);
    assert!(
        diags.iter().any(|d| d.rule == "checkpoint-monotone"),
        "{diags:?}"
    );
}

#[test]
fn batch_checkpoint_violations_named() {
    let mut cp = Checkpoint::new(7, 2);
    cp.completed.push(SavedShard {
        shard: 5, // out of the declared width
        kc: Vec::new(),
        rc: Vec::new(),
        mtd: Vec::new(),
        audit: None,
        metrics: engine::ShardMetrics {
            shard: 1, // and mislabelled
            wall_us: 0,
            kc_us: 0,
            rc_us: 0,
            mtd_us: 0,
            items_in: 0,
            items_out: 0,
            attempts: 1,
        },
    });
    let json = serde_json::to_string(&cp).unwrap();
    let diags = preflight_str("ckpt", &json);
    let fired = rules(&diags);
    assert!(fired.contains(&"checkpoint-shards"), "{diags:?}");
    assert!(fired.contains(&"checkpoint-order"), "{diags:?}");

    // A version from another schema era is named, not silently accepted.
    let mut stale = Checkpoint::new(7, 2);
    stale.version = 1;
    let json = serde_json::to_string(&stale).unwrap();
    let diags = preflight_str("ckpt", &json);
    assert!(
        diags.iter().any(|d| d.rule == "checkpoint-version"),
        "{diags:?}"
    );
}

#[test]
fn unrecognized_shape_is_named_not_panicked() {
    let diags = preflight_str("mystery", "{\"foo\": 1}");
    assert_eq!(rules(&diags), ["preflight-schema"], "{diags:?}");
    let diags = preflight_str("garbage", "not json at all {{{");
    assert_eq!(rules(&diags), ["bundle-parse"], "{diags:?}");
}

#[test]
fn binary_exits_nonzero_on_corrupted_bundle() {
    // The CLI contract CI relies on: corrupted input → exit 1, diagnostics
    // on stdout, no panic.
    let json = tiny_bundle_json();
    let dir = std::env::temp_dir().join("stale_lint_preflight_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("truncated.json");
    std::fs::write(&path, &json[..json.len() / 3]).unwrap();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_stale-lint"))
        .arg("preflight")
        .arg(&path)
        .output()
        .expect("run stale-lint");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("bundle-parse"), "{stdout}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn fresh_metrics_export_preflights_clean() {
    let registry = obs::Registry::new();
    registry.add("engine.stage.detect.wall_us", 120_000);
    registry.observe_latency_us("engine.shard.wall_us", 5_000);
    registry.observe_depth("engine.queue.depth", 3);
    let diags = preflight_str("metrics", &registry.export_json());
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn tampered_metrics_export_rejected() {
    let registry = obs::Registry::new();
    registry.observe_latency_us("engine.shard.wall_us", 5_000);
    // Inflate a bucket count so the histogram's total no longer matches.
    let tampered = registry
        .export_json()
        .replacen("\"count\": 1", "\"count\": 7", 1);
    let diags = preflight_str("metrics", &tampered);
    assert_eq!(rules(&diags), ["metrics-schema"], "{diags:?}");
    // A metrics file that is not even a snapshot parses to metrics-parse.
    let diags = preflight_str(
        "metrics",
        "{\"schema\": \"stale-obs-metrics\", \"version\": \"not a number\"}",
    );
    assert_eq!(rules(&diags), ["metrics-parse"], "{diags:?}");
}

fn tiny_trace_jsonl() -> String {
    let trace = obs::Trace::enabled();
    {
        let root = trace.span("engine.run");
        let mut child = trace.child(root.id(), "detect");
        child.count("matches", 3);
    }
    trace.to_jsonl()
}

#[test]
fn fresh_trace_export_preflights_clean() {
    let diags = preflight_str("trace", &tiny_trace_jsonl());
    assert!(diags.is_empty(), "{diags:?}");
}

fn tiny_audit_jsonl() -> String {
    use obs::audit::{AuditReport, Decision, Detector, DropReason, Provenance, Verdict};
    let decisions = vec![
        Decision {
            detector: Detector::Kc,
            cert: "aa11".to_string(),
            verdict: Verdict::Kept,
            provenance: Provenance::CrlEntry {
                crl_index: 0,
                authority_key_id: "ab".to_string(),
                serial: "01".to_string(),
                revoked: "2021-03-04".to_string(),
                reason: "keyCompromise".to_string(),
            },
        },
        Decision {
            detector: Detector::Kc,
            cert: String::new(),
            verdict: Verdict::Dropped(DropReason::CrlUnmatched),
            provenance: Provenance::CrlEntry {
                crl_index: 1,
                authority_key_id: "ab".to_string(),
                serial: "02".to_string(),
                revoked: "2021-03-05".to_string(),
                reason: "unspecified".to_string(),
            },
        },
        Decision {
            detector: Detector::Rc,
            cert: "bb22".to_string(),
            verdict: Verdict::Dropped(DropReason::OutsideValidityWindow),
            provenance: Provenance::WhoisCreation {
                domain: "a.com".to_string(),
                created: "2021-06-01".to_string(),
            },
        },
        Decision {
            detector: Detector::Mtd,
            cert: "cc33".to_string(),
            verdict: Verdict::Kept,
            provenance: Provenance::DnsDeparture {
                customer: "b.com".to_string(),
                last_delegated: "2021-07-01".to_string(),
                departed: "2021-07-02".to_string(),
            },
        },
    ];
    AuditReport::from_decisions(decisions).to_jsonl()
}

#[test]
fn fresh_audit_export_preflights_clean() {
    let diags = preflight_str("audit", &tiny_audit_jsonl());
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn truncated_or_bitflipped_audit_rejected() {
    let jsonl = tiny_audit_jsonl();
    // Drop the last decision line: the header's decision count and
    // coverage tallies no longer match the body.
    let truncated: String = jsonl
        .lines()
        .take(jsonl.lines().count() - 1)
        .map(|l| format!("{l}\n"))
        .collect();
    let diags = preflight_str("audit", &truncated);
    assert_eq!(rules(&diags), ["audit-schema"], "{diags:?}");

    // Flip one fingerprint character out of lowercase hex: the flipped
    // line is named, the rest of the file still validates.
    let flipped = jsonl.replacen("\"aa11\"", "\"aaZ1\"", 1);
    assert_ne!(flipped, jsonl, "tamper target present");
    let diags = preflight_str("audit", &flipped);
    assert_eq!(rules(&diags), ["audit-schema"], "{diags:?}");
    assert!(
        diags.iter().any(|d| d.message.contains("lowercase hex")),
        "{diags:?}"
    );

    // Rewrite a drop reason to one outside the closed enum (wherever it
    // appears — header tally and decision line both fail).
    let unknown = jsonl.replace("\"outside-validity-window\"", "\"cosmic-rays\"");
    assert_ne!(unknown, jsonl, "tamper target present");
    let diags = preflight_str("audit", &unknown);
    assert_eq!(rules(&diags), ["audit-schema"], "{diags:?}");
}

fn tiny_worldlog_jsonl() -> String {
    let data = World::run(ScenarioConfig::tiny());
    worldsim::WorldLog::from_datasets(&data).to_jsonl()
}

#[test]
fn fresh_worldlog_export_preflights_clean() {
    let diags = preflight_str("worldlog", &tiny_worldlog_jsonl());
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn truncated_worldlog_rejected() {
    let jsonl = tiny_worldlog_jsonl();
    // Drop the tally trailer: truncation is visible without the header.
    let no_trailer: String = jsonl
        .lines()
        .take(jsonl.lines().count() - 1)
        .map(|l| format!("{l}\n"))
        .collect();
    let diags = preflight_str("worldlog", &no_trailer);
    assert_eq!(rules(&diags), ["worldlog-schema"], "{diags:?}");
    assert!(
        diags.iter().any(|d| d.message.contains("trailer")),
        "{diags:?}"
    );

    // Drop an event line but keep the trailer: tallies no longer match.
    let mut lines: Vec<&str> = jsonl.lines().collect();
    lines.remove(1);
    let short: String = lines.iter().map(|l| format!("{l}\n")).collect();
    let diags = preflight_str("worldlog", &short);
    assert_eq!(rules(&diags), ["worldlog-schema"], "{diags:?}");
}

#[test]
fn bitflipped_worldlog_rejected() {
    let jsonl = tiny_worldlog_jsonl();
    // Flip a day digit so the stamp is no longer a valid day.
    let day = jsonl.find("\"day\":\"").expect("an event") + "\"day\":\"".len();
    let mut flipped = jsonl.clone();
    flipped.replace_range(day..day + 4, "zzzz");
    let diags = preflight_str("worldlog", &flipped);
    assert_eq!(rules(&diags), ["worldlog-schema"], "{diags:?}");

    // Rewrite an event kind to one outside the closed vocabulary.
    let unknown = jsonl.replacen("\"cert-issued\"", "\"cert-banana\"", 1);
    assert_ne!(unknown, jsonl, "tamper target present");
    let diags = preflight_str("worldlog", &unknown);
    assert_eq!(rules(&diags), ["worldlog-schema"], "{diags:?}");
}

#[test]
fn reordered_worldlog_rejected() {
    let jsonl = tiny_worldlog_jsonl();
    let mut lines: Vec<&str> = jsonl.lines().collect();
    lines.swap(1, 2);
    let swapped: String = lines.iter().map(|l| format!("{l}\n")).collect();
    let diags = preflight_str("worldlog", &swapped);
    assert_eq!(rules(&diags), ["worldlog-schema"], "{diags:?}");
}

#[test]
fn random_worldlog_mutations_never_panic() {
    let jsonl = tiny_worldlog_jsonl();
    let mut state = 0x243f_6a88_85a3_08d3u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..200 {
        let mut bytes = jsonl.clone().into_bytes();
        let pos = (next() % bytes.len() as u64) as usize;
        let bit = 1u8 << (next() % 8);
        bytes[pos] ^= bit;
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        let _ = preflight_str("worldlog", &mutated);
    }
}

#[test]
fn truncated_or_reordered_trace_rejected() {
    let jsonl = tiny_trace_jsonl();
    // Drop the last span line: the header's span count no longer matches.
    let truncated: String = jsonl
        .lines()
        .take(jsonl.lines().count() - 1)
        .map(|l| format!("{l}\n"))
        .collect();
    let diags = preflight_str("trace", &truncated);
    assert_eq!(rules(&diags), ["trace-schema"], "{diags:?}");

    // Swap the two span lines: ids fall out of allocation order.
    let lines: Vec<&str> = jsonl.lines().collect();
    let swapped = format!("{}\n{}\n{}\n", lines[0], lines[2], lines[1]);
    let diags = preflight_str("trace", &swapped);
    assert_eq!(rules(&diags), ["trace-schema"], "{diags:?}");
}
