//! Seeded `panic-in-shard` violations. `tests/source_rules.rs` lints this
//! file under a detector-scope virtual path (where indexing is also
//! flagged) and asserts one diagnostic per `MARK` line. The fixture's real
//! path is outside every rule scope, so `check_tree` over the repo root
//! stays clean.

use std::collections::BTreeMap;

pub fn lookup(values: &[u32], map: &BTreeMap<u32, u32>) -> u32 {
    let first = values.first().unwrap(); // MARK unwrap
    let second = map.get(first).expect("present"); // MARK expect
    if *second > 100 {
        panic!("out of range"); // MARK panic
    }
    values[3] // MARK index
}

pub fn sanctioned(values: &[u32]) -> u32 {
    values[0] // stale-lint: allow(panic-in-shard)
}

pub fn handled(values: &[u32]) -> u32 {
    values.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v = [1u32];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
