//! Seeded `nondeterministic-iteration` violations: iterating a
//! `HashMap`/`HashSet` binding, by method call or `for … in`, in code
//! whose output could reach a merge or a report. Point lookups and
//! `BTreeMap` iteration are fine and must not fire.

use std::collections::{BTreeMap, HashMap, HashSet};

pub fn tally(events: &[(String, u32)]) -> Vec<(String, u32)> {
    let mut counts: HashMap<String, u32> = HashMap::new();
    for (name, n) in events {
        *counts.entry(name.clone()).or_insert(0) += *n;
    }
    let mut out = Vec::new();
    for (name, n) in counts.iter() { // MARK iter-method
        out.push((name.clone(), *n));
    }
    out
}

pub fn count_domains(seen: HashSet<String>) -> usize {
    let mut n = 0;
    for _domain in &seen { // MARK for-in
        n += 1;
    }
    n
}

// Tracking is file-granular by name, so the ordered map gets its own:
// a `BTreeMap` named `counts` would (over-approximately) fire too.
pub fn ordered(totals: &BTreeMap<String, u64>) -> u64 {
    totals.values().sum()
}

pub fn probe(counts: &HashMap<String, u32>) -> u32 {
    counts.get("x").copied().unwrap_or(0)
}
