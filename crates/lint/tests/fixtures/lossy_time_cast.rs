//! Seeded `lossy-time-cast` violations: narrowing `as` casts in date
//! arithmetic. Widening casts and `From`/`TryFrom` conversions are fine;
//! a provably-in-range cast may carry a pragma.

pub fn to_day(days: i64) -> u8 {
    (days % 31) as u8 // MARK narrowing
}

pub fn to_month_index(ordinal: i64) -> u32 {
    (ordinal % 12) as u32 // MARK narrowing
}

pub fn widen(n: u8) -> i64 {
    i64::from(n)
}

pub fn bounded_month(m: i64) -> u8 {
    debug_assert!((1..=12).contains(&m));
    m as u8 // stale-lint: allow(lossy-time-cast)
}

pub fn to_wide(n: u32) -> u64 {
    u64::from(n)
}
