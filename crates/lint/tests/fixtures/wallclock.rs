//! Seeded `wallclock-in-detector` violations. `SystemTime::now` is
//! flagged throughout the rule's scopes; `Instant::now` only in the
//! detector/simulator scopes (the engine's metrics layer may time
//! itself).

use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

pub fn stamp() -> u64 {
    let now = SystemTime::now(); // MARK systemtime
    now.duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
}

pub fn measure() -> Duration {
    let begin = Instant::now(); // MARK instant
    begin.elapsed()
}
