//! Item-parser corpus: every shape the model must get right, in one
//! file — free fns, nested fns, inherent and trait-impl methods,
//! trait-default methods, generics/where-clauses/turbofish at the call
//! site, macro bodies, and `#[cfg(test)]` exclusion.

pub fn free_top(x: u32) -> u32 {
    helper(x)
}

fn helper(x: u32) -> u32 {
    fn nested(y: u32) -> u32 {
        y.checked_add(1).unwrap_or(y)
    }
    nested(x)
}

pub struct Widget {
    id: u32,
}

impl Widget {
    pub fn new(id: u32) -> Self {
        Widget { id }
    }

    pub fn refresh(&self) -> u32 {
        self.tick()
    }

    fn tick(&self) -> u32 {
        free_top(self.id)
    }
}

pub trait Render {
    fn render(&self) -> String;

    fn render_twice(&self) -> String {
        format!("{}{}", self.render(), self.render())
    }
}

impl Render for Widget {
    fn render(&self) -> String {
        let parts = Vec::<String>::new();
        parts.join(",")
    }
}

pub fn generic_caller<T: Clone>(items: &[T]) -> usize
where
    T: Send,
{
    let copy: Vec<T> = items.to_vec();
    println!("{}", copy.len());
    copy.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widget_refreshes() {
        let w = Widget::new(7);
        let _ = w.refresh().checked_mul(2).unwrap();
    }
}
