//! A fixture that must produce zero diagnostics under *every* rule scope:
//! ordered collections, handled fallbacks, no wall clocks, no narrowing
//! casts.

use std::collections::BTreeMap;

pub fn summarize(counts: &BTreeMap<String, u64>) -> u64 {
    counts.values().sum()
}

pub fn safe_first(values: &[u64]) -> u64 {
    values.first().copied().unwrap_or(0)
}

pub fn safe_nth(values: &[u64], i: usize) -> Option<u64> {
    values.get(i).copied()
}

pub fn widen_day(d: u8) -> i64 {
    i64::from(d)
}
