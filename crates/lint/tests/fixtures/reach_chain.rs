//! Planted reachability violation: a declared shard entry reaches a
//! `SystemTime::now` sink two hops down. `tests/why_chain.rs` asserts
//! both the finding and the exact entry→sink chain `why` reconstructs.

pub struct Detector;

impl Detector {
    // stale-lint: entry(shard)
    pub fn detect_shard(&self) -> u64 {
        self.score_candidates()
    }

    fn score_candidates(&self) -> u64 {
        stamp()
    }
}

fn stamp() -> u64 {
    let t = std::time::SystemTime::now();
    t.elapsed().map(|d| d.as_secs()).unwrap_or(0)
}

fn unreachable_helper() -> u64 {
    // Same sink, but no entry reaches this fn — must NOT be flagged.
    let t = std::time::SystemTime::now();
    t.elapsed().map(|d| d.as_secs()).unwrap_or(1)
}
