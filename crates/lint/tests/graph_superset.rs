//! The reachability pass must be a *superset* of the retired
//! prefix-scoped pass: every finding the old per-file scanner produced
//! must also be produced by the call-graph pass, or the upgrade
//! silently dropped coverage. Both passes run with pragmas ignored so
//! the comparison is over raw findings, not over whatever the current
//! annotation set happens to suppress.
//!
//! Checked two ways: once against the real workspace (the corpus the
//! lint actually guards), and once property-style over synthetic
//! corpora with guaranteed entry connectivity (the condition under
//! which the superset claim is supposed to hold by construction).

use proptest::prelude::*;
use stale_lint::reach::Analysis;
use stale_lint::source::{collect_sources, legacy_check_file};
use std::collections::BTreeSet;
use std::path::Path;

type Finding = (String, String, usize);

fn legacy_raw(files: &[(String, String)]) -> BTreeSet<Finding> {
    let mut out = BTreeSet::new();
    for (path, content) in files {
        for d in legacy_check_file(path, content, false) {
            out.insert((d.rule.to_string(), d.file.clone(), d.line));
        }
    }
    out
}

fn graph_raw(files: &[(String, String)]) -> BTreeSet<Finding> {
    Analysis::new(files)
        .check(false)
        .into_iter()
        .map(|d| (d.rule.to_string(), d.file, d.line))
        .collect()
}

fn assert_superset(files: &[(String, String)]) {
    let legacy = legacy_raw(files);
    let graph = graph_raw(files);
    let missing: Vec<&Finding> = legacy.difference(&graph).collect();
    assert!(
        missing.is_empty(),
        "prefix-pass findings the graph pass missed:\n{missing:#?}"
    );
}

/// The real workspace: every raw finding of the prefix pass is among
/// the raw findings of the reachability pass.
#[test]
fn workspace_graph_findings_cover_prefix_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = collect_sources(&root).expect("scan workspace");
    let legacy = legacy_raw(&files);
    assert!(
        !legacy.is_empty(),
        "oracle is vacuous — the prefix pass found nothing raw; \
         the workspace should at least contain its pragma'd sinks"
    );
    assert_superset(&files);
}

/// One sink statement per legacy rule family, cycled through by index.
/// Each is a real finding for both passes when it lands in a scoped
/// file (legacy) / reachable fn (graph).
fn sink_stmt(kind: usize) -> &'static str {
    match kind % 5 {
        // `m` is bound with an explicit `HashMap` type in `root0`, so
        // `tracked_hash_names` tracks it file-wide.
        0 => "    for (k, v) in m.iter() { let _ = (k, v); }",
        1 => "    let _ = opt().unwrap();",
        2 => "    let _ = std::time::SystemTime::now();",
        3 => "    let _ = std::env::var(\"SEED\");",
        _ => "    let _ = rand::thread_rng();",
    }
}

/// A synthetic file under a legacy-scoped prefix: `root0` is an entry
/// point for every graph-rule class and calls `f1`, each `fi` calls
/// `f(i+1)`, so every function is reachable by construction. Sinks are
/// placed per `sinks[i]` inside `fi`'s body.
fn synth_file(file_idx: usize, sinks: &[usize]) -> (String, String) {
    let path = format!("crates/stale-core/src/synth_{file_idx}.rs");
    let mut src = String::new();
    src.push_str("use std::collections::HashMap;\n");
    src.push_str("// stale-lint: entry(shard)\n");
    src.push_str("// stale-lint: entry(serial)\n");
    src.push_str("// stale-lint: entry(actor)\n");
    src.push_str("// stale-lint: entry(conn)\n");
    src.push_str("// stale-lint: entry(worldgen)\n");
    src.push_str(
        "pub fn root0() {\n    let m: HashMap<u32, u32> = HashMap::new();\n    f1(&m);\n}\n",
    );
    for (i, &kind) in sinks.iter().enumerate() {
        let me = i + 1;
        let next = i + 2;
        src.push_str(&format!("pub fn f{me}(m: &HashMap<u32, u32>) {{\n"));
        src.push_str(sink_stmt(kind));
        src.push('\n');
        if i + 1 < sinks.len() {
            src.push_str(&format!("    f{next}(m);\n"));
        }
        src.push_str("}\n");
    }
    (path, src)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Synthetic corpora with guaranteed root connectivity: whatever
    /// the prefix pass flags, the graph pass flags too.
    #[test]
    fn graph_covers_prefix_on_connected_corpora(
        per_file in prop::collection::vec(
            prop::collection::vec(0usize..5, 1..6),
            1..4,
        ),
    ) {
        let files: Vec<(String, String)> = per_file
            .iter()
            .enumerate()
            .map(|(i, sinks)| synth_file(i, sinks))
            .collect();
        let legacy = legacy_raw(&files);
        let graph = graph_raw(&files);
        let missing: Vec<&Finding> = legacy.difference(&graph).collect();
        prop_assert!(
            missing.is_empty(),
            "graph pass missed prefix findings: {missing:?}"
        );
        // The corpus is built so every fn holds a sink — the oracle
        // must not be vacuously satisfied.
        prop_assert!(!legacy.is_empty(), "prefix oracle found nothing");
    }
}
