//! The item parser against `fixtures/parser_corpus.rs` — one file
//! holding every shape the model must extract correctly: free fns,
//! nested fns, inherent and trait-impl methods, trait-default methods,
//! generics at definition and call site, macro bodies, and
//! `#[cfg(test)]` exclusion.

use stale_lint::model::{parse_file, FileModel};
use stale_lint::scan::scan;

const FIXTURE: &str = include_str!("fixtures/parser_corpus.rs");

fn model() -> FileModel {
    parse_file("crates/x/src/corpus.rs", &scan(FIXTURE))
}

fn keys(m: &FileModel) -> Vec<String> {
    m.fns.iter().map(|f| f.key()).collect()
}

#[test]
fn every_item_shape_is_extracted() {
    let m = model();
    let keys = keys(&m);
    for expected in [
        "free_top",
        "helper",
        "nested",
        "Widget::new",
        "Widget::refresh",
        "Widget::tick",
        "Render::render",
        "Render::render_twice",
        "Widget::render",
        "generic_caller",
    ] {
        assert!(keys.contains(&expected.to_string()), "missing {expected}");
    }
}

#[test]
fn cfg_test_items_are_marked_and_nothing_else_is() {
    let m = model();
    for f in &m.fns {
        assert_eq!(
            f.is_test,
            f.name == "widget_refreshes",
            "{} test-marking wrong",
            f.key()
        );
    }
}

#[test]
fn call_edges_cross_every_shape() {
    let m = model();
    let find = |key: &str| m.fns.iter().find(|f| f.key() == key).unwrap();
    // Free fn → free fn.
    assert!(find("free_top").calls.iter().any(|c| c.name == "helper"));
    // Outer fn → its nested fn (the nested body's calls belong to the
    // nested fn, not the outer one).
    let helper = find("helper");
    assert!(helper.calls.iter().any(|c| c.name == "nested"));
    assert!(!helper.calls.iter().any(|c| c.name == "checked_add"));
    assert!(find("nested").calls.iter().any(|c| c.name == "checked_add"));
    // Method → method via `self.`.
    let refresh = find("Widget::refresh");
    let tick_call = refresh.calls.iter().find(|c| c.name == "tick").unwrap();
    assert_eq!(tick_call.qualifier.as_deref(), Some("self"));
    // Trait default method → required method.
    assert!(find("Render::render_twice")
        .calls
        .iter()
        .any(|c| c.name == "render" && c.method));
    // Turbofish keeps its qualifier.
    let render = find("Widget::render");
    let new_call = render.calls.iter().find(|c| c.name == "new").unwrap();
    assert_eq!(new_call.qualifier.as_deref(), Some("Vec"));
    // Macro bodies yield their inner calls, not the macro name.
    let generic = find("generic_caller");
    assert!(generic.calls.iter().any(|c| c.name == "len"));
    assert!(!generic.calls.iter().any(|c| c.name == "println"));
}

#[test]
fn body_extents_cover_their_lines() {
    let m = model();
    for f in &m.fns {
        assert!(f.end_line >= f.line, "{} has inverted extent", f.key());
    }
    // A line inside `helper`'s body maps back to a fn whose extent
    // contains it (the innermost — `nested` — for the nested body).
    let nested_body_line = FIXTURE
        .lines()
        .position(|l| l.contains("checked_add"))
        .unwrap()
        + 1;
    let gi = m.line_fn[nested_body_line - 1].expect("line maps to a fn");
    assert_eq!(m.fns[gi].name, "nested");
}
