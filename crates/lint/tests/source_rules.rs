//! Fixture-driven checks of the legacy prefix-scoped pass (the
//! equivalence oracle of `tests/graph_superset.rs`): every seeded
//! violation in `tests/fixtures/` is detected at its marked line,
//! pragmas and test code suppress, and the clean fixture stays clean
//! under every scope.

use stale_lint::source::legacy_check_file;

fn check_file(path: &str, src: &str) -> Vec<stale_lint::Diagnostic> {
    legacy_check_file(path, src, true)
}

const PANIC_FIXTURE: &str = include_str!("fixtures/panic_in_shard.rs");
const NONDET_FIXTURE: &str = include_str!("fixtures/nondet_iteration.rs");
const WALLCLOCK_FIXTURE: &str = include_str!("fixtures/wallclock.rs");
const CAST_FIXTURE: &str = include_str!("fixtures/lossy_time_cast.rs");
const CLEAN_FIXTURE: &str = include_str!("fixtures/clean.rs");

/// 1-indexed lines of `src` carrying a `// MARK` comment.
fn mark_lines(src: &str) -> Vec<usize> {
    src.lines()
        .enumerate()
        .filter(|(_, l)| l.contains("// MARK"))
        .map(|(i, _)| i + 1)
        .collect()
}

/// Sorted 1-indexed lines where `rule` fired.
fn lines_for(diags: &[stale_lint::Diagnostic], rule: &str) -> Vec<usize> {
    let mut lines: Vec<usize> = diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect();
    lines.sort_unstable();
    lines.dedup();
    lines
}

#[test]
fn panic_fixture_detected_at_every_mark() {
    // Detector scope: indexing is flagged alongside unwrap/expect/panic!.
    let diags = check_file("crates/stale-core/src/detector/fixture.rs", PANIC_FIXTURE);
    assert_eq!(
        lines_for(&diags, "panic-in-shard"),
        mark_lines(PANIC_FIXTURE),
        "{diags:?}"
    );
    // No other rule fires on this fixture.
    assert!(
        diags.iter().all(|d| d.rule == "panic-in-shard"),
        "{diags:?}"
    );
}

#[test]
fn panic_fixture_indexing_only_in_index_scopes() {
    // Engine scope outside the index list: the `values[3]` mark must NOT
    // fire, the other three must.
    let diags = check_file("crates/engine/src/engine_fixture.rs", PANIC_FIXTURE);
    let lines = lines_for(&diags, "panic-in-shard");
    let marks = mark_lines(PANIC_FIXTURE);
    let (index_mark, other_marks) = marks.split_last().unwrap();
    assert_eq!(lines, other_marks, "{diags:?}");
    assert!(!lines.contains(index_mark), "{diags:?}");
}

#[test]
fn nondet_fixture_detected_at_every_mark() {
    let diags = check_file("crates/stale-core/src/fixture.rs", NONDET_FIXTURE);
    assert_eq!(
        lines_for(&diags, "nondeterministic-iteration"),
        mark_lines(NONDET_FIXTURE),
        "{diags:?}"
    );
    assert!(
        diags.iter().all(|d| d.rule == "nondeterministic-iteration"),
        "{diags:?}"
    );
}

#[test]
fn wallclock_fixture_detects_both_clocks_in_simulator_scope() {
    let diags = check_file("crates/worldsim/src/fixture.rs", WALLCLOCK_FIXTURE);
    assert_eq!(
        lines_for(&diags, "wallclock-in-detector"),
        mark_lines(WALLCLOCK_FIXTURE),
        "{diags:?}"
    );
}

#[test]
fn wallclock_fixture_permits_instant_in_engine_scope() {
    // The engine's metrics layer may use Instant::now; SystemTime::now is
    // still flagged.
    let diags = check_file("crates/engine/src/fixture.rs", WALLCLOCK_FIXTURE);
    let lines = lines_for(&diags, "wallclock-in-detector");
    let marks = mark_lines(WALLCLOCK_FIXTURE);
    assert_eq!(lines, marks[..1], "{diags:?}");
}

#[test]
fn cast_fixture_detected_and_pragma_respected() {
    let diags = check_file("crates/stale-types/src/time.rs", CAST_FIXTURE);
    assert_eq!(
        lines_for(&diags, "lossy-time-cast"),
        mark_lines(CAST_FIXTURE),
        "{diags:?}"
    );
    // The pragma line casts too — prove it was suppressed, not missed.
    assert!(CAST_FIXTURE.contains("m as u8 // stale-lint: allow(lossy-time-cast)"));
}

#[test]
fn clean_fixture_is_clean_under_every_scope() {
    for path in [
        "crates/stale-core/src/detector/fixture.rs",
        "crates/stale-core/src/incremental.rs",
        "crates/engine/src/stream.rs",
        "crates/worldsim/src/fixture.rs",
        "crates/stale-types/src/time.rs",
    ] {
        let diags = check_file(path, CLEAN_FIXTURE);
        assert!(diags.is_empty(), "{path}: {diags:?}");
    }
}

#[test]
fn fixtures_are_out_of_scope_at_their_real_paths() {
    // Linting the repo root must not trip on the seeded fixtures
    // themselves: their real paths match no legacy rule scope (and the
    // graph pass excludes `fixtures/` trees entirely).
    for (path, src) in [
        (
            "crates/lint/tests/fixtures/panic_in_shard.rs",
            PANIC_FIXTURE,
        ),
        (
            "crates/lint/tests/fixtures/nondet_iteration.rs",
            NONDET_FIXTURE,
        ),
        ("crates/lint/tests/fixtures/wallclock.rs", WALLCLOCK_FIXTURE),
        (
            "crates/lint/tests/fixtures/lossy_time_cast.rs",
            CAST_FIXTURE,
        ),
    ] {
        assert!(check_file(path, src).is_empty(), "{path}");
    }
}
