//! The workspace's own source must lint clean: the shipped baseline is
//! empty, so every rule — including `panic-in-shard` — holds with zero
//! allowances. This is the test-suite mirror of CI's `stale-lint source`
//! step.

use stale_lint::baseline::Baseline;
use stale_lint::source::check_tree;
use std::path::Path;

#[test]
fn workspace_lints_clean_with_empty_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = check_tree(&root).expect("scan workspace");
    let violations = Baseline::empty().violations(&diags);
    assert!(
        violations.is_empty(),
        "workspace has non-baselined lint violations:\n{}",
        stale_lint::diagnostics::render_human(&violations)
    );
}
