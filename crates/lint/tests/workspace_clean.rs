//! The workspace's own source must satisfy the reachability pass
//! against the committed baseline — the test-suite mirror of CI's
//! `stale-lint source --baseline stale-lint.baseline.json` step. The
//! ratchet is checked in both directions: no bucket may exceed its
//! allowance, and no baselined bucket may have been burned down without
//! shrinking the committed file.

use stale_lint::baseline::Baseline;
use stale_lint::reach::Analysis;
use stale_lint::source::collect_sources;
use std::path::Path;

#[test]
fn workspace_satisfies_committed_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = collect_sources(&root).expect("scan workspace");
    let diags = Analysis::new(&files).check(true);
    let text = std::fs::read_to_string(root.join("stale-lint.baseline.json"))
        .expect("read committed baseline");
    let baseline = Baseline::from_json(&text).expect("parse committed baseline");
    let violations = baseline.violations(&diags);
    assert!(
        violations.is_empty(),
        "workspace has non-baselined lint violations:\n{}",
        stale_lint::diagnostics::render_human(&violations)
    );
    let stale = baseline.stale_entries(&diags);
    assert!(
        stale.is_empty(),
        "baseline entries no longer fire (the baseline only shrinks):\n{}",
        stale.join("\n")
    );
}
