//! The planted fixture violation (`fixtures/reach_chain.rs`): the
//! reachability pass flags the sink exactly once, skips the same sink
//! in an unreachable fn, and `why` reconstructs the entry→sink chain
//! hop for hop.

use stale_lint::reach::Analysis;

const FIXTURE: &str = include_str!("fixtures/reach_chain.rs");

fn analysis() -> Analysis {
    // Mounted at a graph-visible path; the fixture's real home under
    // tests/ is excluded from the graph by design.
    Analysis::new(&[(
        "crates/stale-core/src/planted.rs".to_string(),
        FIXTURE.to_string(),
    )])
}

#[test]
fn planted_sink_is_flagged_only_where_reachable() {
    let diags = analysis().check(true);
    let wallclock: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == "wallclock-in-detector")
        .collect();
    assert_eq!(
        wallclock.len(),
        1,
        "expected exactly the reachable sink flagged, got: {wallclock:#?}"
    );
    let hit = wallclock[0];
    // First occurrence of the sink statement is `stamp`'s; the twin in
    // `unreachable_helper` comes later.
    let sink_line = FIXTURE
        .lines()
        .position(|l| l.trim() == "let t = std::time::SystemTime::now();")
        .unwrap()
        + 1;
    assert_eq!(hit.line, sink_line, "flag sits on the planted sink line");
    assert_eq!(hit.fn_key, "stamp", "finding names the containing fn");
}

#[test]
fn why_reconstructs_the_planted_chain() {
    let chain = analysis()
        .why("wallclock-in-detector", "stamp")
        .expect("planted sink is reachable");
    let keys: Vec<&str> = chain
        .iter()
        .map(|hop| hop.rsplit(' ').next().unwrap())
        .collect();
    assert_eq!(
        keys,
        [
            "Detector::detect_shard",
            "Detector::score_candidates",
            "stamp"
        ],
        "chain hops, entry first: {chain:#?}"
    );
    assert!(
        chain[0].starts_with("crates/stale-core/src/planted.rs:"),
        "hops are file:line labels: {}",
        chain[0]
    );
}

#[test]
fn why_refuses_the_unreachable_twin() {
    let err = analysis()
        .why("wallclock-in-detector", "unreachable_helper")
        .unwrap_err();
    assert!(
        err.contains("not reachable"),
        "explains unreachability: {err}"
    );
}
