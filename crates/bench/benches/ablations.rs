//! Criterion benches for the DESIGN.md ablations: both sides of each
//! design decision on identical inputs.

use criterion::{criterion_group, criterion_main, Criterion};
use stale_bench::{ablate, Experiments};
use stale_types::DomainName;
use std::sync::OnceLock;
use worldsim::ScenarioConfig;

fn experiments() -> &'static Experiments {
    static CELL: OnceLock<Experiments> = OnceLock::new();
    CELL.get_or_init(|| Experiments::new(ScenarioConfig::tiny()))
}

fn bench_dns_history(c: &mut Criterion) {
    let e = experiments();
    let domains: Vec<DomainName> = e.data.adns.domains().take(200).cloned().collect();
    let window = e.data.adns_window;
    let config = e.data.cdn_config.clone();
    let is_target = move |n: &DomainName| config.is_delegation_target(n);
    let mut group = c.benchmark_group("ablate_dns_history");
    group.sample_size(10);
    group.bench_function("interval_queries", |b| {
        b.iter(|| ablate::departures_interval(&e.data.adns, &domains, window, &is_target))
    });
    group.bench_function("materialised_snapshots", |b| {
        b.iter(|| ablate::departures_materialised(&e.data.adns, &domains, window, &is_target))
    });
    group.finish();
}

fn bench_crl_join(c: &mut Criterion) {
    let e = experiments();
    let mut group = c.benchmark_group("ablate_crl_join");
    group.sample_size(10);
    group.bench_function("hash_join", |b| {
        b.iter(|| ablate::crl_join_hash(&e.data.crl, &e.data.monitor))
    });
    group.bench_function("sort_merge_join", |b| {
        b.iter(|| ablate::crl_join_sort_merge(&e.data.crl, &e.data.monitor))
    });
    group.finish();
}

fn bench_cruise_liner(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_cruise_liner");
    group.sample_size(10);
    group.bench_function("blast_radius_32_customers", |b| {
        b.iter(|| {
            let (cruise, per_domain) = ablate::cruise_liner_blast_radius(32, 40);
            assert!(cruise >= per_domain);
            (cruise, per_domain)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dns_history, bench_crl_join, bench_cruise_liner);
criterion_main!(benches);
