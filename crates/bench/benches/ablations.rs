//! Criterion benches for the DESIGN.md ablations: both sides of each
//! design decision on identical inputs.

use criterion::{criterion_group, criterion_main, Criterion};
use stale_bench::{ablate, Experiments};
use stale_types::DomainName;
use std::sync::OnceLock;
use worldsim::ScenarioConfig;

fn experiments() -> &'static Experiments {
    static CELL: OnceLock<Experiments> = OnceLock::new();
    CELL.get_or_init(|| Experiments::new(ScenarioConfig::tiny()))
}

fn bench_dns_history(c: &mut Criterion) {
    let e = experiments();
    let domains: Vec<DomainName> = e.data.adns.domains().take(200).cloned().collect();
    let window = e.data.adns_window;
    let config = e.data.cdn_config.clone();
    let is_target = move |n: &DomainName| config.is_delegation_target(n);
    let mut group = c.benchmark_group("ablate_dns_history");
    group.sample_size(10);
    group.bench_function("interval_queries", |b| {
        b.iter(|| ablate::departures_interval(&e.data.adns, &domains, window, &is_target))
    });
    group.bench_function("materialised_snapshots", |b| {
        b.iter(|| ablate::departures_materialised(&e.data.adns, &domains, window, &is_target))
    });
    group.finish();
}

fn bench_crl_join(c: &mut Criterion) {
    let e = experiments();
    let mut group = c.benchmark_group("ablate_crl_join");
    group.sample_size(10);
    group.bench_function("hash_join", |b| {
        b.iter(|| ablate::crl_join_hash(&e.data.crl, &e.data.monitor))
    });
    group.bench_function("sort_merge_join", |b| {
        b.iter(|| ablate::crl_join_sort_merge(&e.data.crl, &e.data.monitor))
    });
    group.finish();
}

/// The engine's shard-count ablation (1/2/4/8) over the paper-preset
/// world, detection only — the world is simulated once, outside timing.
/// Record a baseline with `BENCH_JSON=BENCH_engine.json cargo bench
/// --bench ablations ablate_engine_shards`.
fn bench_engine_shards(c: &mut Criterion) {
    static WORLD: OnceLock<(worldsim::WorldDatasets, psl::SuffixList)> = OnceLock::new();
    let (data, psl) = WORLD.get_or_init(|| {
        (
            worldsim::World::run(ScenarioConfig::paper2023()),
            psl::SuffixList::default_list(),
        )
    });
    let mut group = c.benchmark_group("ablate_engine_shards");
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        group.bench_function(&format!("shards_{shards}"), |b| {
            b.iter(|| {
                let report = engine::Engine::with_shards(shards)
                    .run(data, psl)
                    .expect("engine");
                assert!(report.is_complete());
                report.suite.key_compromise.len()
            })
        });
    }
    group.finish();
}

fn bench_cruise_liner(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_cruise_liner");
    group.sample_size(10);
    group.bench_function("blast_radius_32_customers", |b| {
        b.iter(|| {
            let (cruise, per_domain) = ablate::cruise_liner_blast_radius(32, 40);
            assert!(cruise >= per_domain);
            (cruise, per_domain)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dns_history,
    bench_crl_join,
    bench_engine_shards,
    bench_cruise_liner
);
criterion_main!(benches);
