//! Criterion benches for the DESIGN.md ablations: both sides of each
//! design decision on identical inputs.

use criterion::{criterion_group, criterion_main, Criterion};
use stale_bench::{ablate, Experiments};
use stale_types::DomainName;
use std::sync::OnceLock;
use worldsim::ScenarioConfig;

fn experiments() -> &'static Experiments {
    static CELL: OnceLock<Experiments> = OnceLock::new();
    CELL.get_or_init(|| Experiments::new(ScenarioConfig::tiny()))
}

/// The paper-preset world, simulated once and shared by the engine-scale
/// benches (simulation stays outside every timing loop).
fn paper_world() -> &'static (worldsim::WorldDatasets, psl::SuffixList) {
    static WORLD: OnceLock<(worldsim::WorldDatasets, psl::SuffixList)> = OnceLock::new();
    WORLD.get_or_init(|| {
        (
            worldsim::World::run(ScenarioConfig::paper2023()),
            psl::SuffixList::default_list(),
        )
    })
}

fn bench_dns_history(c: &mut Criterion) {
    let e = experiments();
    let domains: Vec<DomainName> = e.data.adns.domains().take(200).cloned().collect();
    let window = e.data.adns_window;
    let config = e.data.cdn_config.clone();
    let is_target = move |n: &DomainName| config.is_delegation_target(n);
    let mut group = c.benchmark_group("ablate_dns_history");
    group.sample_size(10);
    group.bench_function("interval_queries", |b| {
        b.iter(|| ablate::departures_interval(&e.data.adns, &domains, window, &is_target))
    });
    group.bench_function("materialised_snapshots", |b| {
        b.iter(|| ablate::departures_materialised(&e.data.adns, &domains, window, &is_target))
    });
    group.finish();
}

fn bench_crl_join(c: &mut Criterion) {
    let e = experiments();
    let mut group = c.benchmark_group("ablate_crl_join");
    group.sample_size(10);
    group.bench_function("hash_join", |b| {
        b.iter(|| ablate::crl_join_hash(&e.data.crl, &e.data.monitor))
    });
    group.bench_function("sort_merge_join", |b| {
        b.iter(|| ablate::crl_join_sort_merge(&e.data.crl, &e.data.monitor))
    });
    group.finish();
}

/// The engine's shard-count ablation (1/2/4/8) over the paper-preset
/// world, detection only — the world is simulated once, outside timing.
/// Record a baseline with `BENCH_JSON=BENCH_engine.json cargo bench
/// --bench ablations ablate_engine_shards`.
fn bench_engine_shards(c: &mut Criterion) {
    let (data, psl) = paper_world();
    let mut group = c.benchmark_group("ablate_engine_shards");
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        group.bench_function(&format!("shards_{shards}"), |b| {
            b.iter(|| {
                let report = engine::Engine::with_shards(shards)
                    .run(data, psl)
                    .expect("engine");
                assert!(report.is_complete());
                report.suite.key_compromise.len()
            })
        });
    }
    group.finish();
}

/// Incremental-ingestion ablation over the paper-preset world: the cost
/// of producing today's report by (a) re-running the full batch engine,
/// (b) replaying the whole day feed through incremental state from
/// scratch (catch-up), and (c) appending a single day to state that is
/// already caught up — the steady-state daily cost the incremental mode
/// exists for. Record a baseline with `BENCH_JSON=BENCH_incremental.json
/// cargo bench --bench ablations ablate_incremental`.
fn bench_incremental(c: &mut Criterion) {
    use stale_core::detector::key_compromise::{self, RevocationAnalysis};
    use stale_core::detector::managed_tls::{self, ManagedTlsDetector};
    use stale_core::detector::registrant_change::{
        self, enumerate_changes, RegistrantChangeDetector,
    };
    use stale_core::incremental::{KcIncremental, MtdIncremental, RcIncremental};
    use worldsim::DayFeed;

    let (data, psl) = paper_world();
    let batch_counts = {
        let report = engine::Engine::with_shards(1)
            .run(data, psl)
            .expect("engine");
        (
            report.suite.key_compromise.len(),
            report.suite.registrant_change.len(),
            report.suite.managed_tls.len(),
        )
    };
    let mut group = c.benchmark_group("ablate_incremental");
    group.sample_size(10);

    // (a) Full batch re-run: partition + detect + merge, every day.
    group.bench_function("full_batch", |b| {
        b.iter(|| {
            let report = engine::Engine::with_shards(1)
                .run(data, psl)
                .expect("engine");
            assert!(report.is_complete());
            report.suite.key_compromise.len()
        })
    });

    // (b) Incremental catch-up: replay every day-delta from an empty state.
    group.bench_function("incremental_catchup", |b| {
        b.iter(|| {
            let mut cfg = engine::EngineConfig::with_shards(1);
            cfg.day_batch = 1;
            let report = engine::Engine::new(cfg)
                .run_incremental(data, psl)
                .expect("engine");
            assert!(report.is_complete());
            report.suite.key_compromise.len()
        })
    });

    // (c) Single-day append: detector state caught up through the feed's
    // penultimate day (built once, outside timing); each iteration clones
    // it, ingests the final day, and regenerates the full merged report.
    let cutoff = RevocationAnalysis::cutoff_for(data.crl_window.start);
    let rc_detector = RegistrantChangeDetector::new(psl);
    let mtd_detector = ManagedTlsDetector::new(&data.cdn_config, psl);
    let feed = DayFeed::new(data);
    let last = feed.end();
    let mut kc = KcIncremental::new(cutoff);
    let mut rc = RcIncremental::new();
    let mut mtd = MtdIncremental::new(data.adns_window);
    for (from, to) in feed.batches(1, last.pred()) {
        let delta = feed.delta(from, to);
        kc.ingest_day(to, &delta.certs, &delta.crl);
        rc.ingest_day(to, &rc_detector, &delta.certs, &delta.whois);
        mtd.ingest_day(to, &mtd_detector, &delta.certs, &delta.dns, |_| true);
    }
    let final_delta = feed.delta(last, last);
    let change_index: std::collections::HashMap<_, _> = enumerate_changes(&data.whois)
        .into_iter()
        .map(|ch| ((ch.domain, ch.creation), ch.index))
        .collect();
    group.bench_function("single_day_append", |b| {
        // The clone stands in for "state already resident in memory" (a
        // long-running ingester mutates in place), so it is setup, not
        // measured work.
        b.iter_batched(
            || (kc.clone(), rc.clone(), mtd.clone()),
            |(mut kc, mut rc, mut mtd)| {
                kc.ingest_day(last, &final_delta.certs, &final_delta.crl);
                rc.ingest_day(last, &rc_detector, &final_delta.certs, &final_delta.whois);
                mtd.ingest_day(
                    last,
                    &mtd_detector,
                    &final_delta.certs,
                    &final_delta.dns,
                    |_| true,
                );
                let revocations = key_compromise::merge_shards(
                    data.crl.records().len(),
                    cutoff,
                    vec![kc.finish()],
                );
                let kc_records = revocations.stale_records();
                let rc_records = registrant_change::merge_shards(vec![rc
                    .finish()
                    .into_iter()
                    .map(|(domain, creation, record)| (change_index[&(domain, creation)], record))
                    .collect()]);
                let mtd_records = managed_tls::merge_shards(vec![mtd.finish(&mtd_detector)]);
                assert_eq!(
                    (kc_records.len(), rc_records.len(), mtd_records.len()),
                    batch_counts,
                    "single-day append must reproduce the batch report"
                );
                kc_records.len()
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_cruise_liner(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_cruise_liner");
    group.sample_size(10);
    group.bench_function("blast_radius_32_customers", |b| {
        b.iter(|| {
            let (cruise, per_domain) = ablate::cruise_liner_blast_radius(32, 40);
            assert!(cruise >= per_domain);
            (cruise, per_domain)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dns_history,
    bench_crl_join,
    bench_engine_shards,
    bench_incremental,
    bench_cruise_liner
);
criterion_main!(benches);
