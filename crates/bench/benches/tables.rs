//! Criterion benches: one per table of the paper.
//!
//! The world is simulated once (tiny preset) and each bench measures the
//! analysis that regenerates the table from the datasets.

use criterion::{criterion_group, criterion_main, Criterion};
use stale_bench::Experiments;
use std::sync::OnceLock;
use worldsim::ScenarioConfig;

fn experiments() -> &'static Experiments {
    static CELL: OnceLock<Experiments> = OnceLock::new();
    CELL.get_or_init(|| Experiments::new(ScenarioConfig::tiny()))
}

fn bench_tables(c: &mut Criterion) {
    let e = experiments();
    c.bench_function("table3_dataset_summary", |b| b.iter(|| e.table3()));
    c.bench_function("table4_daily_rates", |b| b.iter(|| e.table4()));
    c.bench_function("table5_reputation", |b| b.iter(|| e.table5()));
    c.bench_function("table6_popularity", |b| b.iter(|| e.table6()));
    c.bench_function("table7_crl_coverage", |b| b.iter(|| e.table7()));
}

fn bench_detectors(c: &mut Criterion) {
    let e = experiments();
    let psl = psl::SuffixList::default_list();
    c.bench_function("detect_key_compromise", |b| {
        b.iter(|| {
            stale_core::detector::key_compromise::RevocationAnalysis::run(
                &e.data.crl,
                &e.data.monitor,
                e.data.crl_window.start,
            )
        })
    });
    c.bench_function("detect_registrant_change", |b| {
        b.iter(|| {
            stale_core::detector::registrant_change::RegistrantChangeDetector::new(&psl)
                .detect(&e.data.whois, &e.data.monitor)
        })
    });
    c.bench_function("detect_managed_tls", |b| {
        b.iter(|| {
            stale_core::detector::managed_tls::ManagedTlsDetector::new(&e.data.cdn_config, &psl)
                .detect(&e.data.adns, &e.data.monitor, e.data.adns_window)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tables, bench_detectors
}
criterion_main!(benches);
