//! Criterion benches: one per figure of the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use stale_bench::Experiments;
use std::sync::OnceLock;
use worldsim::ScenarioConfig;

fn experiments() -> &'static Experiments {
    static CELL: OnceLock<Experiments> = OnceLock::new();
    CELL.get_or_init(|| Experiments::new(ScenarioConfig::tiny()))
}

fn bench_figures(c: &mut Criterion) {
    let e = experiments();
    c.bench_function("fig4_monthly_kc_by_ca", |b| b.iter(|| e.fig4()));
    c.bench_function("fig5a_monthly_rc", |b| b.iter(|| e.fig5a()));
    c.bench_function("fig5b_rc_by_issuer", |b| b.iter(|| e.fig5b()));
    c.bench_function("fig6_staleness_cdf", |b| b.iter(|| e.fig6()));
    c.bench_function("fig7_rc_by_year", |b| b.iter(|| e.fig7()));
    c.bench_function("fig8_survival", |b| b.iter(|| e.fig8()));
    c.bench_function("fig9_lifetime_caps", |b| b.iter(|| e.fig9()));
}

fn bench_world(c: &mut Criterion) {
    // The end-to-end cost of simulating a world (tiny preset) — the input
    // generator behind every experiment.
    c.bench_function("world_tiny_simulation", |b| {
        b.iter(|| worldsim::World::run(ScenarioConfig::tiny()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_figures, bench_world
}
criterion_main!(benches);
