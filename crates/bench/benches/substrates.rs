//! Criterion benches for the substrate layers: crypto, DER, CT Merkle
//! trees, DNS wire format, resolution and PSL matching.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use crypto::KeyPair;
use stale_types::{domain::dn, Date, Duration};
use x509::CertificateBuilder;

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    let data = vec![0xABu8; 4096];
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("sha256_4k", |b| b.iter(|| crypto::sha256(&data)));
    group.finish();
    let key = KeyPair::from_seed([1; 32]);
    c.bench_function("simsig_sign_verify", |b| {
        b.iter(|| {
            let sig = crypto::SimSig::sign(key.private(), b"tbs bytes");
            assert!(crypto::SimSig::verify(&key.public(), b"tbs bytes", &sig));
        })
    });
}

fn sample_cert() -> x509::Certificate {
    let ca = KeyPair::from_seed([2; 32]);
    CertificateBuilder::tls_leaf(KeyPair::from_seed([3; 32]).public())
        .serial(77)
        .issuer_cn("Bench CA")
        .subject_cn("foo.com")
        .sans((0..8).map(|i| dn(&format!("host{i}.foo.com"))))
        .validity_days(Date::parse("2022-01-01").unwrap(), Duration::days(398))
        .crl_url("http://crl.bench/ca.crl")
        .sign(&ca)
}

fn bench_x509(c: &mut Criterion) {
    let cert = sample_cert();
    let der = cert.encode();
    c.bench_function("x509_encode", |b| b.iter(|| cert.encode()));
    c.bench_function("x509_decode", |b| {
        b.iter(|| x509::Certificate::decode(&der).unwrap())
    });
    c.bench_function("x509_cert_id", |b| b.iter(|| cert.cert_id()));
}

fn bench_ct(c: &mut Criterion) {
    use ct::merkle::MerkleTree;
    c.bench_function("merkle_append_1000", |b| {
        b.iter(|| {
            let mut t = MerkleTree::new();
            for i in 0..1000u32 {
                t.append(&i.to_be_bytes());
            }
            t.root()
        })
    });
    let mut tree = MerkleTree::new();
    for i in 0..4096u32 {
        tree.append(&i.to_be_bytes());
    }
    c.bench_function("merkle_inclusion_proof_4096", |b| {
        b.iter(|| tree.inclusion_proof(2048, 4096).unwrap())
    });
    c.bench_function("merkle_consistency_proof_4096", |b| {
        b.iter(|| tree.consistency_proof(1000, 4096).unwrap())
    });
}

fn bench_dns(c: &mut Criterion) {
    use dns::record::{RData, Record, RecordType};
    use dns::wire::{Message, Rcode};
    let query = Message::query(7, dn("www.foo.com"), RecordType::A);
    let answers: Vec<Record> = (1..=4)
        .map(|i| Record::new(dn("foo.com"), RData::Ns(dn(&format!("ns{i}.foo.com")))))
        .collect();
    let response = Message::response(&query, answers, Rcode::NoError);
    let wire = response.encode();
    c.bench_function("dns_wire_encode", |b| b.iter(|| response.encode()));
    c.bench_function("dns_wire_decode", |b| {
        b.iter(|| Message::decode(&wire).unwrap())
    });

    use dns::resolver::Resolver;
    use dns::zone::Zone;
    let mut resolver = Resolver::new();
    let mut zone = Zone::new(dn("foo.com"));
    zone.add_data(
        dn("foo.com"),
        RData::A(dns::record::Ipv4Addr::new(192, 0, 2, 1)),
    );
    zone.add_data(dn("www.foo.com"), RData::Cname(dn("foo.com")));
    resolver.add_zone(zone);
    c.bench_function("dns_resolve_cname_chase", |b| {
        b.iter(|| resolver.resolve(&dn("www.foo.com"), RecordType::A).unwrap())
    });
}

fn bench_psl(c: &mut Criterion) {
    let list = psl::SuffixList::default_list();
    let names = [
        dn("www.foo.com"),
        dn("a.b.c.bar.co.uk"),
        dn("x.unknowntld"),
        dn("deep.sub.foo.wild.ck"),
    ];
    c.bench_function("psl_e2ld_batch4", |b| {
        b.iter(|| names.iter().filter_map(|n| list.e2ld(n).ok()).count())
    });
}

criterion_group!(
    benches,
    bench_crypto,
    bench_x509,
    bench_ct,
    bench_dns,
    bench_psl
);
criterion_main!(benches);
