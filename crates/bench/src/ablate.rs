//! Ablation studies for the design choices called out in DESIGN.md §8.
//!
//! Each function implements both sides of a design decision so the
//! Criterion benches (and tests) can compare them on identical inputs:
//!
//! * interval-compressed DNS history vs. materialised daily snapshots;
//! * hash join vs. sort-merge join for the CRL × CT cross-reference;
//! * cruise-liner SAN packing vs. per-domain certificates (stale-cert
//!   blast radius per departing customer).

use ca::scraper::CrlDataset;
use ct::monitor::CtMonitor;
use dns::scan::{DailyScanner, DnsHistory};
use stale_types::{Date, DateInterval, DomainName, KeyId, SerialNumber};
use std::collections::HashMap;

/// Count provider departures over `window` using interval queries
/// (`view_at`), the production approach.
pub fn departures_interval(
    adns: &DnsHistory,
    domains: &[DomainName],
    window: DateInterval,
    is_target: &dyn Fn(&DomainName) -> bool,
) -> usize {
    let mut departures = 0;
    for domain in domains {
        for (day, next) in DailyScanner::new(window.start, window.end) {
            let on = adns
                .view_at(domain, day)
                .is_some_and(|v| v.any_delegation(|n| is_target(n)));
            let off = !adns
                .view_at(domain, next)
                .is_some_and(|v| v.any_delegation(|n| is_target(n)));
            if on && off {
                departures += 1;
            }
        }
    }
    departures
}

/// The same count via fully materialised daily snapshots — what a naive
/// pipeline storing every scan day would do.
pub fn departures_materialised(
    adns: &DnsHistory,
    domains: &[DomainName],
    window: DateInterval,
    is_target: &dyn Fn(&DomainName) -> bool,
) -> usize {
    let mut departures = 0;
    let mut prev = adns.snapshot(window.start);
    for (_, next) in DailyScanner::new(window.start, window.end) {
        let snap = adns.snapshot(next);
        for domain in domains {
            let on = prev
                .views
                .get(domain)
                .is_some_and(|v| v.any_delegation(|n| is_target(n)));
            let off = !snap
                .views
                .get(domain)
                .is_some_and(|v| v.any_delegation(|n| is_target(n)));
            if on && off {
                departures += 1;
            }
        }
        prev = snap;
    }
    departures
}

/// CRL × CT join via a hash index on `(AKI, serial)` — the production
/// approach in [`stale_core::detector::key_compromise`].
pub fn crl_join_hash(crl: &CrlDataset, monitor: &CtMonitor) -> usize {
    let mut index: HashMap<(KeyId, SerialNumber), ()> = HashMap::new();
    for cert in monitor.corpus_unfiltered() {
        if let Some(aki) = cert.certificate.tbs.authority_key_id() {
            index.insert((aki, cert.certificate.tbs.serial), ());
        }
    }
    crl.records()
        .iter()
        .filter(|r| index.contains_key(&(r.authority_key_id, r.serial)))
        .count()
}

/// The same join via sort-merge over both sides.
pub fn crl_join_sort_merge(crl: &CrlDataset, monitor: &CtMonitor) -> usize {
    let mut certs: Vec<(KeyId, SerialNumber)> = monitor
        .corpus_unfiltered()
        .filter_map(|c| {
            c.certificate
                .tbs
                .authority_key_id()
                .map(|aki| (aki, c.certificate.tbs.serial))
        })
        .collect();
    certs.sort_unstable();
    certs.dedup();
    let mut revs: Vec<(KeyId, SerialNumber)> = crl
        .records()
        .iter()
        .map(|r| (r.authority_key_id, r.serial))
        .collect();
    revs.sort_unstable();
    let (mut i, mut j, mut matched) = (0usize, 0usize, 0usize);
    while i < certs.len() && j < revs.len() {
        match certs[i].cmp(&revs[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                matched += 1;
                j += 1;
            }
        }
    }
    matched
}

/// Blast radius of one departing customer: how many unexpired
/// certificates the provider holds naming that customer, under
/// cruise-liner packing vs per-domain issuance. Returns
/// `(cruise_liner_stale, per_domain_stale)` for identical enrollment
/// schedules.
pub fn cruise_liner_blast_radius(customers: usize, departure_day_offset: i64) -> (usize, usize) {
    use ca::authority::CertificateAuthority;
    use ca::policy::CaPolicy;
    use cdn::provider::{ManagedTlsProvider, ProviderConfig};
    use crypto::KeyPair;
    use ct::log::LogPool;
    use stale_types::{CaId, Duration};

    let run = |config: ProviderConfig| -> usize {
        let ca = CertificateAuthority::new(
            CaId(40),
            "Ablation CA",
            KeyPair::from_seed([40; 32]),
            CaPolicy {
                default_lifetime: Duration::days(365),
                ..CaPolicy::commercial()
            },
        );
        let mut provider = ManagedTlsProvider::new(config, ca, 1);
        let mut pool = LogPool::with_yearly_shards("ablate", 5, 2021, 2025);
        let mut dns = DnsHistory::new();
        let start = Date::parse("2022-01-01").expect("fixed");
        for i in 0..customers {
            let name = DomainName::parse(&format!("cust{i}.com")).expect("valid");
            provider.enroll(name, start + Duration::days(i as i64), &mut pool, &mut dns);
        }
        let victim = DomainName::parse("cust0.com").expect("valid");
        let when = start + Duration::days(departure_day_offset);
        let stale = provider.depart(
            &victim,
            when,
            dns::scan::DnsView::with_ns([DomainName::parse("ns1.away.net").expect("valid")]),
            &mut pool,
            &mut dns,
        );
        stale.len()
    };
    (
        run(ProviderConfig::cloudflare_cruise_liner()),
        run(ProviderConfig::cloudflare_per_domain()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns::scan::DnsView;

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    fn dn(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn interval_and_materialised_agree() {
        let mut adns = DnsHistory::new();
        let cf = || DnsView::with_ns([dn("anna.ns.cloudflare.com")]);
        let off = || DnsView::with_ns([dn("ns1.away.net")]);
        adns.record_change(dn("a.com"), d("2022-08-01"), cf());
        adns.record_change(dn("a.com"), d("2022-09-10"), off());
        adns.record_change(dn("b.com"), d("2022-08-01"), cf());
        adns.record_change(dn("c.com"), d("2022-08-05"), off());
        let domains = vec![dn("a.com"), dn("b.com"), dn("c.com")];
        let window = DateInterval::new(d("2022-08-01"), d("2022-10-31")).unwrap();
        let is_target = |n: &DomainName| n.is_subdomain_of(&dn("ns.cloudflare.com"));
        let fast = departures_interval(&adns, &domains, window, &is_target);
        let slow = departures_materialised(&adns, &domains, window, &is_target);
        assert_eq!(fast, slow);
        assert_eq!(fast, 1);
    }

    #[test]
    fn joins_agree() {
        use ca::scraper::RevocationRecord;
        use crypto::KeyPair;
        use stale_types::Duration;
        use x509::revocation::RevocationReason;
        use x509::CertificateBuilder;

        let ca = KeyPair::from_seed([41; 32]);
        let mut monitor = CtMonitor::new();
        for i in 0..50u128 {
            let cert = CertificateBuilder::tls_leaf(KeyPair::from_seed([42; 32]).public())
                .serial(i)
                .issuer_cn("Join CA")
                .subject_cn("x.com")
                .san(dn("x.com"))
                .validity_days(d("2022-01-01"), Duration::days(90))
                .sign(&ca);
            monitor.ingest(cert, d("2022-01-01"));
        }
        let mut crl = CrlDataset::new();
        for i in (0..80u128).step_by(2) {
            crl.add(RevocationRecord {
                authority_key_id: KeyId::from_bytes(ca.public().key_id()),
                serial: SerialNumber(i),
                revocation_date: d("2022-02-01"),
                reason: RevocationReason::KeyCompromise,
                observed: d("2022-11-01"),
            });
        }
        let h = crl_join_hash(&crl, &monitor);
        let s = crl_join_sort_merge(&crl, &monitor);
        assert_eq!(h, s);
        assert_eq!(h, 25); // serials 0,2,...,48 exist
    }

    #[test]
    fn cruise_liner_amplifies_blast_radius() {
        let (cruise, per_domain) = cruise_liner_blast_radius(8, 30);
        // Cruise-liner: the victim appears on every bus reissue since it
        // enrolled; per-domain: exactly one certificate.
        assert!(
            cruise > per_domain,
            "cruise {cruise} vs per-domain {per_domain}"
        );
        assert_eq!(per_domain, 1);
    }
}
