//! Experiment runners reproducing every table and figure of the paper's
//! evaluation, plus ablation studies for the design choices called out in
//! DESIGN.md.
//!
//! [`experiments::Experiments`] bundles a simulated world with the
//! detection suite and exposes one method per table/figure. Each method
//! returns a plain-text report that prints the measured values next to the
//! paper's reported values, so shape agreement (who wins, rough factors,
//! crossovers) is visible at a glance. The `repro` binary drives them.

pub mod ablate;
pub mod compare;
pub mod experiments;
pub mod paper;
pub mod replay;

pub use experiments::{EngineRun, Experiments};
