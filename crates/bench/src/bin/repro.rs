//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro [preset] [experiment...] [--csv DIR]
//!
//! presets:     paper (default) | small | tiny
//! experiments: table3 table4 table5 table6 table7
//!              fig4 fig5a fig5b fig6 fig7 fig8 fig9 mitigations
//!              all (default)
//! ```

use stale_bench::Experiments;
use worldsim::ScenarioConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut preset = "paper";
    let mut wanted: Vec<&str> = Vec::new();
    let mut csv_dir: Option<String> = None;
    let mut args_iter = args.iter().peekable();
    while let Some(arg) = args_iter.next() {
        match arg.as_str() {
            "paper" | "small" | "tiny" => preset = arg,
            "--csv" => {
                csv_dir = args_iter.next().cloned();
                if csv_dir.is_none() {
                    eprintln!("--csv needs a directory");
                    std::process::exit(2);
                }
            }
            other => wanted.push(other),
        }
    }
    if wanted.is_empty() {
        wanted.push("all");
    }
    let cfg = match preset {
        "small" => ScenarioConfig::small(),
        "tiny" => ScenarioConfig::tiny(),
        _ => ScenarioConfig::paper2023(),
    };
    eprintln!(
        "simulating world: preset={preset}, {} days, seed {}",
        cfg.sim_days(),
        cfg.seed
    );
    let started = std::time::Instant::now();
    let experiments = Experiments::new(cfg);
    eprintln!("world + detection ready in {:.1}s\n", started.elapsed().as_secs_f64());
    for name in wanted {
        let output = match name {
            "all" => experiments.run_all(),
            "table3" => experiments.table3(),
            "taxonomy" => experiments.taxonomy_tables(),
            "table4" => experiments.table4(),
            "table5" => experiments.table5(),
            "table6" => experiments.table6(),
            "table7" => experiments.table7(),
            "fig4" => experiments.fig4(),
            "fig5a" => experiments.fig5a(),
            "fig5b" => experiments.fig5b(),
            "fig6" => experiments.fig6(),
            "fig7" => experiments.fig7(),
            "fig8" => experiments.fig8(),
            "fig9" => experiments.fig9(),
            "mitigations" => experiments.mitigations(),
            "first_party" => experiments.first_party(),
            other => {
                eprintln!("unknown experiment {other:?}; see --help text in the source");
                std::process::exit(2);
            }
        };
        println!("{output}");
    }
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(&dir).expect("create csv dir");
        for (name, contents) in experiments.export_csv() {
            let path = std::path::Path::new(&dir).join(name);
            std::fs::write(&path, contents).expect("write csv");
            eprintln!("wrote {}", path.display());
        }
    }
}
