//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro [preset] [experiment...] [--csv DIR] [--shards N]
//!       [--checkpoint FILE] [--fail-shard K]...
//!       [--incremental] [--through DATE] [--day-batch N]
//!       [--checkpoint-every N] [--preflight] [--export-bundle FILE]
//!       [--export-worldlog FILE]
//!       [--trace-out FILE] [--metrics-json FILE] [--metrics-prom FILE]
//!
//! presets:     paper (default) | small | tiny
//! experiments: table3 table4 table5 table6 table7
//!              fig4 fig5a fig5b fig6 fig7 fig8 fig9 mitigations
//!              all (default)
//! engine:      --shards N       partition width (default: available
//!                               parallelism; results are byte-identical
//!                               for every N)
//!              --checkpoint F   JSON checkpoint; batch mode skips
//!                               completed shards, incremental mode
//!                               resumes after the last ingested day
//!              --fail-shard K   inject a persistent panic into shard K
//!                               (testing; the run degrades and exits 1)
//! incremental: --incremental    replay the world's day feed through
//!                               persistent detector state; reports are
//!                               byte-identical to batch mode
//!              --through DATE   stop after ingesting DATE (catch-up runs)
//!              --day-batch N    days per ingested delta (default 1)
//!              --checkpoint-every N
//!                               snapshot detector state every N ingested
//!                               days (default 1; needs --checkpoint)
//! preflight:   --preflight      statically validate the serialized world
//!                               bundle (and the --checkpoint file, if it
//!                               exists) with stale-lint before any
//!                               detector runs; exit 1 on diagnostics
//!              --export-bundle FILE
//!                               serialize the simulated world as a JSON
//!                               bundle for `stale-lint preflight`
//!              --export-worldlog FILE
//!                               write the canonical world-fact log
//!                               (stale-obs-worldlog v1 JSONL) to FILE —
//!                               the layer-1 export `stale-bench replay`
//!                               and `timeline` consume; with
//!                               --preflight the log is validated too
//! observability:
//!              --trace-out F    enable span tracing, write the trace as
//!                               JSONL to F, and print the span tree to
//!                               stderr after the run
//!              --metrics-json F write the metrics registry (stage walls,
//!                               shard latency histograms, detector item
//!                               counters) as stable-schema JSON to F
//!              --metrics-prom F write the same registry as Prometheus
//!                               text exposition to F
//!              --audit-out F    record per-candidate detector decisions
//!                               (kept / dropped-with-reason, with source
//!                               provenance) and write the merged audit as
//!                               JSONL to F; detector results are
//!                               byte-identical with auditing on or off
//! serve:       --serve ADDR     instead of running experiments, boot a
//!                               resident stale-served daemon on ADDR
//!                               over the chosen preset (honoring
//!                               --shards, --delay-days and --checkpoint)
//!                               and serve until a client sends shutdown
//!              --delay-days N   hold fed days back from daemon queries
//!                               for N fed days (with --serve; default 0)
//! ```
//!
//! Exit status: 0 on a clean run, 1 when any shard degraded or an engine
//! error occurred, 2 on usage errors.

use engine::EngineConfig;
use stale_bench::Experiments;
use worldsim::ScenarioConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut preset = "paper";
    let mut wanted: Vec<&str> = Vec::new();
    let mut csv_dir: Option<String> = None;
    let mut engine_cfg = EngineConfig::default();
    let mut incremental = false;
    let mut preflight = false;
    let mut serve: Option<String> = None;
    let mut delay_days = 0i64;
    let mut export_bundle: Option<String> = None;
    let mut export_worldlog: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut metrics_json: Option<String> = None;
    let mut metrics_prom: Option<String> = None;
    let mut audit_out: Option<String> = None;
    let mut args_iter = args.iter().peekable();
    while let Some(arg) = args_iter.next() {
        match arg.as_str() {
            "paper" | "small" | "tiny" => preset = arg,
            "--csv" => {
                csv_dir = args_iter.next().cloned();
                if csv_dir.is_none() {
                    eprintln!("--csv needs a directory");
                    std::process::exit(2);
                }
            }
            "--shards" => {
                engine_cfg.shards = match args_iter.next().and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n > 0 => n,
                    _ => {
                        eprintln!("--shards needs a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "--checkpoint" => {
                engine_cfg.checkpoint = match args_iter.next() {
                    Some(path) => Some(path.into()),
                    None => {
                        eprintln!("--checkpoint needs a file path");
                        std::process::exit(2);
                    }
                };
            }
            "--fail-shard" => match args_iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(k) => engine_cfg.fail_shards.push(k),
                None => {
                    eprintln!("--fail-shard needs a shard index");
                    std::process::exit(2);
                }
            },
            "--incremental" => incremental = true,
            "--preflight" => preflight = true,
            "--serve" => {
                serve = args_iter.next().cloned();
                if serve.is_none() {
                    eprintln!("--serve needs a bind address");
                    std::process::exit(2);
                }
            }
            "--delay-days" => {
                delay_days = match args_iter.next().and_then(|v| v.parse::<i64>().ok()) {
                    Some(n) if n >= 0 => n,
                    _ => {
                        eprintln!("--delay-days needs a non-negative integer");
                        std::process::exit(2);
                    }
                };
            }
            "--export-bundle" => {
                export_bundle = args_iter.next().cloned();
                if export_bundle.is_none() {
                    eprintln!("--export-bundle needs a file path");
                    std::process::exit(2);
                }
            }
            "--export-worldlog" => {
                export_worldlog = args_iter.next().cloned();
                if export_worldlog.is_none() {
                    eprintln!("--export-worldlog needs a file path");
                    std::process::exit(2);
                }
            }
            "--trace-out" => {
                trace_out = args_iter.next().cloned();
                if trace_out.is_none() {
                    eprintln!("--trace-out needs a file path");
                    std::process::exit(2);
                }
            }
            "--metrics-json" => {
                metrics_json = args_iter.next().cloned();
                if metrics_json.is_none() {
                    eprintln!("--metrics-json needs a file path");
                    std::process::exit(2);
                }
            }
            "--metrics-prom" => {
                metrics_prom = args_iter.next().cloned();
                if metrics_prom.is_none() {
                    eprintln!("--metrics-prom needs a file path");
                    std::process::exit(2);
                }
            }
            "--audit-out" => {
                audit_out = args_iter.next().cloned();
                if audit_out.is_none() {
                    eprintln!("--audit-out needs a file path");
                    std::process::exit(2);
                }
                engine_cfg.audit = true;
            }
            "--through" => {
                engine_cfg.through = match args_iter
                    .next()
                    .and_then(|v| stale_types::Date::parse(v).ok())
                {
                    Some(d) => Some(d),
                    None => {
                        eprintln!("--through needs a YYYY-MM-DD date");
                        std::process::exit(2);
                    }
                };
            }
            "--day-batch" => {
                engine_cfg.day_batch = match args_iter.next().and_then(|v| v.parse::<usize>().ok())
                {
                    Some(n) if n > 0 => n,
                    _ => {
                        eprintln!("--day-batch needs a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "--checkpoint-every" => {
                engine_cfg.checkpoint_every_days =
                    match args_iter.next().and_then(|v| v.parse::<usize>().ok()) {
                        Some(n) if n > 0 => n,
                        _ => {
                            eprintln!("--checkpoint-every needs a positive integer");
                            std::process::exit(2);
                        }
                    };
            }
            other => wanted.push(other),
        }
    }
    if wanted.is_empty() {
        wanted.push("all");
    }
    let cfg = match preset {
        "small" => ScenarioConfig::small(),
        "tiny" => ScenarioConfig::tiny(),
        _ => ScenarioConfig::paper2023(),
    };
    // Resident service mode: hand the scenario to a stale-served daemon
    // and serve queries until a client sends `shutdown`. The daemon's
    // answers are byte-identical to this binary's batch output over the
    // same ingested days.
    if let Some(listen) = serve {
        let mut daemon_cfg = stale_served::DaemonConfig::new(preset, cfg);
        daemon_cfg.shards = engine_cfg.shards.max(1);
        daemon_cfg.delay_days = delay_days;
        daemon_cfg.checkpoint = engine_cfg.checkpoint.clone();
        let daemon = match stale_served::Daemon::start(daemon_cfg, &listen) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("cannot bind {listen}: {e}");
                std::process::exit(2);
            }
        };
        println!("listening on {}", daemon.addr());
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        eprintln!(
            "serving preset {preset} on {} ({} shard(s), delay {delay_days} day(s)); \
             send `shutdown` to exit",
            daemon.addr(),
            engine_cfg.shards.max(1),
        );
        daemon.wait_shutdown();
        daemon.stop();
        return;
    }
    let mode = if incremental {
        format!(" [incremental, day-batch {}]", engine_cfg.day_batch.max(1))
    } else {
        String::new()
    };
    eprintln!(
        "simulating world: preset={preset}, {} days, seed {}, {} shard(s) x {} worker(s){mode}",
        cfg.sim_days(),
        cfg.seed,
        engine_cfg.shards,
        engine_cfg.effective_workers(),
    );
    // Span tracing has buffer costs, so it is opt-in via --trace-out;
    // the counter/histogram registry always accumulates and is exported
    // only when a --metrics-* flag asks for it.
    let obs = if trace_out.is_some() {
        obs::Obs::enabled()
    } else {
        obs::Obs::disabled()
    };
    let started = std::time::Instant::now();
    let (data, psl) = {
        let mut span = obs.span("world.build");
        let (data, psl) = Experiments::build_world(cfg);
        span.count("certs", data.monitor.dedup_count() as u64);
        (data, psl)
    };
    if preflight || export_bundle.is_some() {
        let mut span = obs.span("bundle.export");
        let bundle = worldsim::WorldBundle::from_datasets(&data);
        let json = match serde_json::to_string_pretty(&bundle) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("cannot serialize world bundle: {e:?}");
                std::process::exit(1);
            }
        };
        span.count("bytes", json.len() as u64);
        if let Some(path) = &export_bundle {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("cannot write bundle to {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("wrote world bundle to {path}");
        }
        if preflight {
            let mut span = obs.span("preflight");
            let mut diags = stale_lint::preflight::preflight_str("world-bundle", &json);
            if let Some(path) = engine_cfg.checkpoint.as_deref().filter(|p| p.exists()) {
                diags.extend(stale_lint::preflight::preflight_path(path));
            }
            span.count("diagnostics", diags.len() as u64);
            if diags.is_empty() {
                eprintln!("preflight: inputs clean");
            } else {
                eprint!("{}", stale_lint::diagnostics::render_human(&diags));
                eprintln!("preflight: {} diagnostic(s); refusing to run", diags.len());
                std::process::exit(1);
            }
        }
    }
    // World-log export runs before detection and under its own span:
    // layer-1 emission is an explicit export path, never part of the
    // detect hot path (the compare gate holds with or without it).
    if let Some(path) = &export_worldlog {
        let mut span = obs.span("worldlog.export");
        let jsonl = worldsim::WorldLog::from_datasets(&data).to_jsonl();
        span.count("bytes", jsonl.len() as u64);
        if let Err(e) = std::fs::write(path, &jsonl) {
            eprintln!("cannot write world log to {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote world-fact log to {path}");
        if preflight {
            let diags = stale_lint::preflight::preflight_str("worldlog", &jsonl);
            if diags.is_empty() {
                eprintln!("preflight: world log clean");
            } else {
                eprint!("{}", stale_lint::diagnostics::render_human(&diags));
                eprintln!(
                    "preflight: {} world-log diagnostic(s); refusing to run",
                    diags.len()
                );
                std::process::exit(1);
            }
        }
    }
    let run = match if incremental {
        Experiments::with_engine_incremental_on_obs(data, psl, engine_cfg, obs.clone())
    } else {
        Experiments::with_engine_on_obs(data, psl, engine_cfg, obs.clone())
    } {
        Ok(run) => run,
        Err(e) => {
            eprintln!("engine error: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "world + detection ready in {:.1}s\n",
        started.elapsed().as_secs_f64()
    );
    if incremental {
        eprintln!(
            "incremental replay emitted {} stale event(s)",
            run.events.len()
        );
    }
    let experiments = &run.experiments;
    let mut failed = false;
    for name in wanted {
        let output = match name {
            "all" => experiments.run_all(),
            "table3" => experiments.table3(),
            "taxonomy" => experiments.taxonomy_tables(),
            "table4" => experiments.table4(),
            "table5" => experiments.table5(),
            "table6" => experiments.table6(),
            "table7" => experiments.table7(),
            "fig4" => experiments.fig4(),
            "fig5a" => experiments.fig5a(),
            "fig5b" => experiments.fig5b(),
            "fig6" => experiments.fig6(),
            "fig7" => experiments.fig7(),
            "fig8" => experiments.fig8(),
            "fig9" => experiments.fig9(),
            "mitigations" => experiments.mitigations(),
            "first_party" => experiments.first_party(),
            other => {
                eprintln!("unknown experiment {other:?}; see --help text in the source");
                std::process::exit(2);
            }
        };
        println!("{output}");
    }
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(&dir).expect("create csv dir");
        for (name, contents) in experiments.export_csv() {
            let path = std::path::Path::new(&dir).join(name);
            std::fs::write(&path, contents).expect("write csv");
            eprintln!("wrote {}", path.display());
        }
    }
    eprint!("{}", run.metrics.render_table());
    // Observability exports happen even when shards degraded — a
    // degraded run is exactly the one worth inspecting afterwards.
    if let Some(path) = &trace_out {
        if let Err(e) = std::fs::write(path, obs.trace.to_jsonl()) {
            eprintln!("cannot write trace to {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote span trace to {path}");
        eprint!("{}", obs.trace.render_tree());
    }
    if let Some(path) = &metrics_json {
        if let Err(e) = std::fs::write(path, obs.registry.export_json()) {
            eprintln!("cannot write metrics to {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote metrics JSON to {path}");
    }
    if let Some(path) = &metrics_prom {
        if let Err(e) = std::fs::write(path, obs.registry.export_prom()) {
            eprintln!("cannot write metrics to {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote Prometheus metrics to {path}");
    }
    if let Some(path) = &audit_out {
        match &run.audit {
            Some(audit) => {
                if let Err(e) = std::fs::write(path, audit.to_jsonl()) {
                    eprintln!("cannot write audit to {path}: {e}");
                    std::process::exit(2);
                }
                eprintln!("wrote decision audit to {path}");
                eprint!("{}", audit.render_coverage());
            }
            None => {
                eprintln!("engine produced no audit despite --audit-out");
                std::process::exit(1);
            }
        }
    }
    for d in &run.degraded {
        eprintln!(
            "DEGRADED shard {} after {} attempt(s): {}",
            d.shard, d.attempts, d.error
        );
        failed = true;
    }
    if failed {
        eprintln!(
            "run incomplete: {} of {} shard(s) degraded",
            run.degraded.len(),
            run.shards
        );
        std::process::exit(1);
    }
}
