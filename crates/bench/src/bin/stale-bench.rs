//! `stale-bench` — bench-trajectory and decision-audit tooling.
//!
//! ```text
//! stale-bench compare <BASELINE> <CURRENT> [--threshold 0.25]
//!                     [--min-wall-us 1000] [--out BENCH_obs.json] [--json]
//! stale-bench explain <FINGERPRINT> --audit AUDIT.jsonl
//! stale-bench report --audit AUDIT.jsonl
//! ```
//!
//! `compare`: `BASELINE` and `CURRENT` are metrics-JSON exports from
//! `repro --metrics-json` — or previous `BENCH_obs.json` comparison
//! artifacts, whose embedded `current` snapshot is used (so CI can chain
//! the committed artifact run over run). Stage wall times are held to the
//! threshold; deterministic `audit.*` count counters present on both
//! sides must match exactly. Exit codes: 0 clean, 1 at least one stage
//! regressed or count drifted, 2 usage/IO error.
//!
//! `explain`: reconstruct one certificate's full decision chain from a
//! `repro --audit-out` JSONL export. `FINGERPRINT` may be any unique
//! prefix. Exit codes: 0 found, 1 unknown/ambiguous fingerprint, 2
//! usage/IO error.
//!
//! `report`: render the per-detector coverage table (candidates, kept,
//! dropped-by-reason, Table-7-style CRL match rate) from an audit export.

use stale_bench::compare::{compare, parse_snapshot, DEFAULT_MIN_WALL_US, DEFAULT_THRESHOLD};
use std::process::ExitCode;

fn usage() -> String {
    "usage: stale-bench compare <BASELINE> <CURRENT> [--threshold FRACTION] \
     [--min-wall-us US] [--out PATH] [--json]\n\
     \x20      stale-bench explain <FINGERPRINT> --audit FILE\n\
     \x20      stale-bench report --audit FILE\n\
     \n\
     compare: diff two metrics-JSON exports (repro --metrics-json) stage by\n\
     stage. A stage regresses when its wall time exceeds baseline *\n\
     (1 + threshold) and the baseline is at least the noise floor; audit.*\n\
     count counters present on both sides must match exactly. Either input\n\
     may be a previous comparison artifact (its embedded `current` is used).\n\
     Exit: 0 clean, 1 regression(s)/drift(s), 2 error.\n\
     \n\
     explain: print one certificate's decision chain from a decision-audit\n\
     export (repro --audit-out). FINGERPRINT may be a unique prefix.\n\
     Exit: 0 found, 1 unknown or ambiguous fingerprint, 2 error.\n\
     \n\
     report: print the per-detector coverage table from an audit export."
        .to_string()
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("stale-bench: {msg}");
    ExitCode::from(2)
}

/// Parse `rest` as `[POSITIONAL...] --audit FILE` and load the audit
/// report, expecting exactly `positional` free arguments.
fn load_audit(
    rest: &[String],
    positional: usize,
) -> Result<(Vec<String>, obs::AuditReport), String> {
    let mut free: Vec<String> = Vec::new();
    let mut audit_path: Option<String> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--audit" => {
                let Some(v) = it.next() else {
                    return Err("--audit needs a path".to_string());
                };
                audit_path = Some(v.clone());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other:?}\n{}", usage()));
            }
            _ => free.push(arg.clone()),
        }
    }
    if free.len() != positional {
        return Err(format!(
            "expected {positional} positional argument(s), got {}\n{}",
            free.len(),
            usage()
        ));
    }
    let Some(path) = audit_path else {
        return Err(format!("--audit FILE is required\n{}", usage()));
    };
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let report = obs::AuditReport::from_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok((free, report))
}

fn cmd_explain(rest: &[String]) -> ExitCode {
    let (free, report) = match load_audit(rest, 1) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    match report.render_explain(&free[0]) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("stale-bench: {e}");
            ExitCode::from(1)
        }
    }
}

fn cmd_report(rest: &[String]) -> ExitCode {
    let (_, report) = match load_audit(rest, 0) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    print!("{}", report.render_coverage());
    ExitCode::SUCCESS
}

fn cmd_compare(rest: &[String]) -> ExitCode {
    let mut paths: Vec<&String> = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut min_wall_us = DEFAULT_MIN_WALL_US;
    let mut out_path: Option<String> = None;
    let mut emit_json = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    return fail("--threshold needs a fractional value (e.g. 0.25)");
                };
                if !v.is_finite() || v < 0.0 {
                    return fail("--threshold must be a non-negative finite fraction");
                }
                threshold = v;
            }
            "--min-wall-us" => {
                let Some(v) = it.next().and_then(|v| v.parse::<u64>().ok()) else {
                    return fail("--min-wall-us needs an integer microsecond value");
                };
                min_wall_us = v;
            }
            "--out" => {
                let Some(v) = it.next() else {
                    return fail("--out needs a path");
                };
                out_path = Some(v.clone());
            }
            "--json" => emit_json = true,
            other if other.starts_with('-') => {
                return fail(&format!("unknown flag {other:?}\n{}", usage()));
            }
            _ => paths.push(arg),
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return fail(&format!("compare needs exactly two inputs\n{}", usage()));
    };

    let read = |path: &str| -> Result<obs::MetricsSnapshot, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        parse_snapshot(&text).map_err(|e| format!("{path}: {e}"))
    };
    let baseline = match read(baseline_path) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let current = match read(current_path) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };

    let cmp = compare(&baseline, &current, threshold, min_wall_us);
    let artifact = serde_json::to_string_pretty(&cmp);
    if let Some(path) = &out_path {
        let artifact = match &artifact {
            Ok(a) => a,
            Err(e) => return fail(&format!("cannot serialize comparison: {e:?}")),
        };
        if let Err(e) = std::fs::write(path, format!("{artifact}\n")) {
            return fail(&format!("cannot write {path}: {e}"));
        }
    }
    if emit_json {
        match &artifact {
            Ok(a) => println!("{a}"),
            Err(e) => return fail(&format!("cannot serialize comparison: {e:?}")),
        }
    } else {
        print!("{}", cmp.render_human());
    }

    if cmp.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    match cmd.as_str() {
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            ExitCode::SUCCESS
        }
        "compare" => cmd_compare(rest),
        "explain" => cmd_explain(rest),
        "report" => cmd_report(rest),
        other => fail(&format!("unknown subcommand {other:?}\n{}", usage())),
    }
}
