//! `stale-bench` — bench-trajectory tooling.
//!
//! ```text
//! stale-bench compare <BASELINE> <CURRENT> [--threshold 0.25]
//!                     [--min-wall-us 1000] [--out BENCH_obs.json] [--json]
//! ```
//!
//! `BASELINE` and `CURRENT` are metrics-JSON exports from
//! `repro --metrics-json` — or previous `BENCH_obs.json` comparison
//! artifacts, whose embedded `current` snapshot is used (so CI can chain
//! the committed artifact run over run). Exit codes: 0 clean, 1 at least
//! one stage regressed beyond the threshold, 2 usage/IO error.

use stale_bench::compare::{compare, parse_snapshot, DEFAULT_MIN_WALL_US, DEFAULT_THRESHOLD};
use std::process::ExitCode;

fn usage() -> String {
    "usage: stale-bench compare <BASELINE> <CURRENT> [--threshold FRACTION] \
     [--min-wall-us US] [--out PATH] [--json]\n\
     \n\
     Diff two metrics-JSON exports (repro --metrics-json) stage by stage.\n\
     A stage regresses when its wall time exceeds baseline * (1 + threshold)\n\
     and the baseline is at least the noise floor. Either input may be a\n\
     previous comparison artifact (its embedded `current` is used).\n\
     Exit: 0 clean, 1 regression(s), 2 error."
        .to_string()
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("stale-bench: {msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    if cmd == "--help" || cmd == "-h" || cmd == "help" {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    if cmd != "compare" {
        return fail(&format!("unknown subcommand {cmd:?}\n{}", usage()));
    }

    let mut paths: Vec<&String> = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut min_wall_us = DEFAULT_MIN_WALL_US;
    let mut out_path: Option<String> = None;
    let mut emit_json = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    return fail("--threshold needs a fractional value (e.g. 0.25)");
                };
                if !v.is_finite() || v < 0.0 {
                    return fail("--threshold must be a non-negative finite fraction");
                }
                threshold = v;
            }
            "--min-wall-us" => {
                let Some(v) = it.next().and_then(|v| v.parse::<u64>().ok()) else {
                    return fail("--min-wall-us needs an integer microsecond value");
                };
                min_wall_us = v;
            }
            "--out" => {
                let Some(v) = it.next() else {
                    return fail("--out needs a path");
                };
                out_path = Some(v.clone());
            }
            "--json" => emit_json = true,
            other if other.starts_with('-') => {
                return fail(&format!("unknown flag {other:?}\n{}", usage()));
            }
            _ => paths.push(arg),
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return fail(&format!("compare needs exactly two inputs\n{}", usage()));
    };

    let read = |path: &str| -> Result<obs::MetricsSnapshot, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        parse_snapshot(&text).map_err(|e| format!("{path}: {e}"))
    };
    let baseline = match read(baseline_path) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let current = match read(current_path) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };

    let cmp = compare(&baseline, &current, threshold, min_wall_us);
    let artifact = serde_json::to_string_pretty(&cmp);
    if let Some(path) = &out_path {
        let artifact = match &artifact {
            Ok(a) => a,
            Err(e) => return fail(&format!("cannot serialize comparison: {e:?}")),
        };
        if let Err(e) = std::fs::write(path, format!("{artifact}\n")) {
            return fail(&format!("cannot write {path}: {e}"));
        }
    }
    if emit_json {
        match &artifact {
            Ok(a) => println!("{a}"),
            Err(e) => return fail(&format!("cannot serialize comparison: {e:?}")),
        }
    } else {
        print!("{}", cmp.render_human());
    }

    if cmp.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
