//! `stale-bench` — bench-trajectory, decision-audit and daemon tooling.
//!
//! ```text
//! stale-bench compare <BASELINE> <CURRENT> [--threshold 0.25]
//!                     [--min-wall-us 1000] [--out BENCH_obs.json] [--json]
//! stale-bench explain <FINGERPRINT> (--audit AUDIT.jsonl | --server ADDR)
//! stale-bench report (--audit AUDIT.jsonl | --server ADDR)
//! stale-bench replay (<WORLDLOG.jsonl> | --simulate PRESET) [--shards N]
//!                    [--incremental] [--rewrite cap-days=N]
//! stale-bench timeline <FINGERPRINT> (--log WORLDLOG.jsonl [--audit FILE]
//!                    [--trace FILE] | --server ADDR)
//! stale-bench query <ADDR> <CMD> [ARGS...]
//! stale-bench watch <ADDR> [--interval-ms 1000] [--frames N]
//! stale-bench slowlog <ADDR>
//! stale-bench subscribe <ADDR> [--max-records N]
//! ```
//!
//! `compare`: `BASELINE` and `CURRENT` are metrics-JSON exports from
//! `repro --metrics-json` — or previous `BENCH_obs.json` comparison
//! artifacts, whose embedded `current` snapshot is used (so CI can chain
//! the committed artifact run over run). Stage wall times are held to the
//! threshold; deterministic `audit.*` count counters present on both
//! sides must match exactly. Exit codes: 0 clean, 1 at least one stage
//! regressed or count drifted, 2 usage/IO error.
//!
//! `explain`: reconstruct one certificate's full decision chain from a
//! `repro --audit-out` JSONL export — or, with `--server`, from a
//! resident `stale-served` daemon's live audit store. File-backed
//! lookups go through a persistent fingerprint→offset sidecar index
//! (`<audit>.idx`, rebuilt automatically when stale), so only the
//! matching decision lines are parsed. `FINGERPRINT` may be any unique
//! prefix; an ambiguous prefix lists its candidates. Exit codes:
//! 0 found, 1 unknown/ambiguous fingerprint, 2 usage/IO error.
//!
//! `replay`: rerun detection from an exported world-fact log
//! (`repro --export-worldlog`) alone and print the fixed replay report
//! (Table 3/4/7, Fig. 4/6/8/9, audit coverage). `--simulate PRESET`
//! simulates the world directly instead — the two paths are
//! byte-identical, which is the CI replay gate. `--rewrite cap-days=N`
//! applies the §6 lifetime-cap counterfactual as a log rewrite before
//! replaying. Exit codes: 0 clean, 1 log/engine failure, 2 usage/IO.
//!
//! `timeline`: render one certificate's joined three-layer view — the
//! world events that created it (layer 1), the audit decisions that
//! kept/dropped it (layer 2), and the spans of the run that touched it
//! (layer 3) — from exported files, or from a resident daemon with
//! `--server`. Exit codes: 0 found, 1 unknown/ambiguous fingerprint,
//! 2 usage/IO error.
//!
//! `report`: render the per-detector coverage table (candidates, kept,
//! dropped-by-reason, Table-7-style CRL match rate) from an audit export
//! or a daemon.
//!
//! `query`: send one raw protocol command (`ping`, `status`, `table4`,
//! `feed-day`, `snapshot`, `shutdown`, …) to a daemon and print the
//! response body. Connection attempts retry briefly, so a query issued
//! right after spawning `stale-served` waits for the socket. Exit codes:
//! 0 `ok` response, 1 `err` response, 2 transport/usage error.
//!
//! `watch`: a refreshing terminal view of a resident daemon — ingest
//! progress and lag, per-command query latency quantiles, staleness
//! events by detector, subscriber/drop counters. Redraws every
//! `--interval-ms` (ANSI clear only when stdout is a TTY); `--frames N`
//! renders N frames and exits (for scripts and CI).
//!
//! `slowlog`: print the daemon's slow-query log (queries that exceeded
//! its `--slow-query-us` threshold, span tree included).
//!
//! `subscribe`: attach as a push subscriber and print streamed records
//! (`event<TAB>json` / `span<TAB>json`, one per line) as the daemon
//! ingests. `--max-records N` exits 0 after N records; without it the
//! stream runs until the daemon closes it.

use stale_bench::compare::{compare, parse_snapshot, DEFAULT_MIN_WALL_US, DEFAULT_THRESHOLD};
use std::process::ExitCode;

fn usage() -> String {
    "usage: stale-bench compare <BASELINE> <CURRENT> [--threshold FRACTION] \
     [--min-wall-us US] [--out PATH] [--json]\n\
     \x20      stale-bench explain <FINGERPRINT> (--audit FILE | --server ADDR)\n\
     \x20      stale-bench report (--audit FILE | --server ADDR)\n\
     \x20      stale-bench replay (<WORLDLOG> | --simulate PRESET) [--shards N]\n\
     \x20                         [--incremental] [--rewrite cap-days=N]\n\
     \x20      stale-bench timeline <FINGERPRINT> (--log WORLDLOG [--audit FILE]\n\
     \x20                         [--trace FILE] | --server ADDR)\n\
     \x20      stale-bench query <ADDR> <CMD> [ARGS...]\n\
     \x20      stale-bench watch <ADDR> [--interval-ms MS] [--frames N]\n\
     \x20      stale-bench slowlog <ADDR>\n\
     \x20      stale-bench subscribe <ADDR> [--max-records N]\n\
     \n\
     compare: diff two metrics-JSON exports (repro --metrics-json) stage by\n\
     stage. A stage regresses when its wall time exceeds baseline *\n\
     (1 + threshold) and the baseline is at least the noise floor; audit.*\n\
     count counters present on both sides must match exactly. Either input\n\
     may be a previous comparison artifact (its embedded `current` is used).\n\
     Exit: 0 clean, 1 regression(s)/drift(s), 2 error.\n\
     \n\
     explain: print one certificate's decision chain from a decision-audit\n\
     export (repro --audit-out) or a resident stale-served daemon.\n\
     FINGERPRINT may be a unique prefix.\n\
     Exit: 0 found, 1 unknown or ambiguous fingerprint, 2 error.\n\
     \n\
     report: print the per-detector coverage table from an audit export\n\
     or a resident stale-served daemon.\n\
     \n\
     replay: rerun detection from an exported world-fact log alone\n\
     (repro --export-worldlog) and print the fixed replay report;\n\
     --simulate PRESET simulates directly instead (byte-identical).\n\
     --rewrite cap-days=N applies the lifetime-cap counterfactual as a\n\
     log rewrite. Exit: 0 clean, 1 log/engine failure, 2 error.\n\
     \n\
     timeline: one certificate's joined world-event + audit-decision +\n\
     telemetry view, from exported files or a resident daemon.\n\
     Exit: 0 found, 1 unknown or ambiguous fingerprint, 2 error.\n\
     \n\
     query: send one protocol command to a stale-served daemon and print\n\
     the response body. Exit: 0 ok, 1 err response, 2 transport error.\n\
     \n\
     watch: refreshing live view of a daemon (ingest lag, per-command\n\
     latency quantiles, staleness events by detector). --frames N exits\n\
     after N renders.\n\
     \n\
     slowlog: print the daemon's slow-query log (span trees of queries\n\
     over its --slow-query-us threshold).\n\
     \n\
     subscribe: stream pushed event/span records, one per line, until\n\
     --max-records N records arrived (or the daemon closes the stream)."
        .to_string()
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("stale-bench: {msg}");
    ExitCode::from(2)
}

/// Where an audit-backed command reads its decisions from: a JSONL
/// export on disk, or a resident daemon.
enum AuditSource {
    File { path: String, text: String },
    Server(String),
}

/// Parse `rest` as `[POSITIONAL...] (--audit FILE | --server ADDR)`,
/// expecting exactly `positional` free arguments.
fn load_audit_source(
    rest: &[String],
    positional: usize,
) -> Result<(Vec<String>, AuditSource), String> {
    let mut free: Vec<String> = Vec::new();
    let mut audit_path: Option<String> = None;
    let mut server: Option<String> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--audit" => {
                let Some(v) = it.next() else {
                    return Err("--audit needs a path".to_string());
                };
                audit_path = Some(v.clone());
            }
            "--server" => {
                let Some(v) = it.next() else {
                    return Err("--server needs an address".to_string());
                };
                server = Some(v.clone());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other:?}\n{}", usage()));
            }
            _ => free.push(arg.clone()),
        }
    }
    if free.len() != positional {
        return Err(format!(
            "expected {positional} positional argument(s), got {}\n{}",
            free.len(),
            usage()
        ));
    }
    match (audit_path, server) {
        (Some(_), Some(_)) => Err("--audit and --server are mutually exclusive".to_string()),
        (None, None) => Err(format!(
            "--audit FILE or --server ADDR is required\n{}",
            usage()
        )),
        (None, Some(addr)) => Ok((free, AuditSource::Server(addr))),
        (Some(path), None) => {
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
            Ok((free, AuditSource::File { path, text }))
        }
    }
}

/// Load the persistent explain index for an audit export: the `.idx`
/// sidecar when it parses and still matches the store, else a fresh
/// build (written back best-effort, so the next lookup is O(1) again).
fn load_or_build_explain_index(path: &str, text: &str) -> Result<obs::ExplainIndex, String> {
    let sidecar = format!("{path}.idx");
    if let Some(index) = std::fs::read_to_string(&sidecar)
        .ok()
        .and_then(|t| obs::ExplainIndex::parse(&t).ok())
        .filter(|i| i.matches(text))
    {
        return Ok(index);
    }
    let index = obs::audit::ExplainIndex::build(text).map_err(|e| format!("{path}: {e}"))?;
    let _ = std::fs::write(&sidecar, index.to_text());
    Ok(index)
}

/// Send one command line to a daemon, with brief connection retries.
fn server_request(addr: &str, line: &str) -> Result<Result<String, String>, String> {
    let mut client =
        stale_served::Client::connect_retry(addr, 40, std::time::Duration::from_millis(250))
            .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    client
        .request(line)
        .map_err(|e| format!("request to {addr} failed: {e}"))
}

/// Print an audit-query response: the body on success (exit 0), the
/// daemon/report error on a known failure (exit 1).
fn finish_audit_query(resp: Result<String, String>) -> ExitCode {
    match resp {
        Ok(text) => {
            print!("{text}");
            if !text.ends_with('\n') {
                println!();
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("stale-bench: {e}");
            ExitCode::from(1)
        }
    }
}

fn cmd_explain(rest: &[String]) -> ExitCode {
    let (free, source) = match load_audit_source(rest, 1) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let Some(fingerprint) = free.first() else {
        return fail("missing fingerprint");
    };
    match source {
        AuditSource::File { path, text } => {
            // The sidecar index makes repeat lookups read only the
            // decision lines for one fingerprint, however large the
            // store; its rendering is byte-identical to the in-memory
            // path (tests/explain_index.rs).
            let index = match load_or_build_explain_index(&path, &text) {
                Ok(i) => i,
                Err(e) => return fail(&e),
            };
            finish_audit_query(index.render_explain_from(&text, fingerprint))
        }
        AuditSource::Server(addr) => {
            match server_request(&addr, &format!("explain {fingerprint}")) {
                Ok(resp) => finish_audit_query(resp),
                Err(e) => fail(&e),
            }
        }
    }
}

fn cmd_report(rest: &[String]) -> ExitCode {
    let (_, source) = match load_audit_source(rest, 0) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    match source {
        AuditSource::File { path, text } => {
            let report = match obs::AuditReport::from_jsonl(&text) {
                Ok(r) => r,
                Err(e) => return fail(&format!("{path}: {e}")),
            };
            finish_audit_query(Ok(report.render_coverage()))
        }
        AuditSource::Server(addr) => match server_request(&addr, "report") {
            Ok(resp) => finish_audit_query(resp),
            Err(e) => fail(&e),
        },
    }
}

fn cmd_replay(rest: &[String]) -> ExitCode {
    let mut log_path: Option<String> = None;
    let mut simulate: Option<String> = None;
    let mut opts = stale_bench::replay::ReplayOptions::default();
    let mut cap_days: Option<i64> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--simulate" => {
                let Some(v) = it.next() else {
                    return fail("--simulate needs a preset (paper | small | tiny)");
                };
                simulate = Some(v.clone());
            }
            "--shards" => {
                let Some(v) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    return fail("--shards needs a positive integer");
                };
                if v == 0 {
                    return fail("--shards needs a positive integer");
                }
                opts.shards = v;
            }
            "--incremental" => opts.incremental = true,
            "--rewrite" => {
                let Some(v) = it.next() else {
                    return fail("--rewrite needs a rule (cap-days=N)");
                };
                let Some(n) = v
                    .strip_prefix("cap-days=")
                    .and_then(|n| n.parse::<i64>().ok())
                else {
                    return fail(&format!("unknown rewrite rule {v:?} (try cap-days=N)"));
                };
                cap_days = Some(n);
            }
            other if other.starts_with('-') => {
                return fail(&format!("unknown flag {other:?}\n{}", usage()));
            }
            _ if log_path.is_none() => log_path = Some(arg.clone()),
            _ => return fail(&format!("replay takes one log path\n{}", usage())),
        }
    }
    // Obtain a world log: parsed from an export, or extracted from a
    // fresh simulation (the direct side of the CI byte-identity gate).
    let log = match (log_path, simulate) {
        (Some(_), Some(_)) => return fail("--simulate and a log path are mutually exclusive"),
        (None, None) => {
            return fail(&format!(
                "replay needs a log path or --simulate\n{}",
                usage()
            ))
        }
        (Some(path), None) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => return fail(&format!("cannot read {path}: {e}")),
            };
            match worldsim::WorldLog::from_jsonl(&text) {
                Ok(log) => log,
                Err(e) => {
                    eprintln!("stale-bench: {path}: {e}");
                    return ExitCode::from(1);
                }
            }
        }
        (None, Some(preset)) => {
            let cfg = match preset.as_str() {
                "paper" => worldsim::ScenarioConfig::paper2023(),
                "small" => worldsim::ScenarioConfig::small(),
                "tiny" => worldsim::ScenarioConfig::tiny(),
                other => return fail(&format!("unknown preset {other:?}")),
            };
            worldsim::WorldLog::from_datasets(&worldsim::World::run(cfg))
        }
    };
    let log = match cap_days {
        None => log,
        Some(n) => match log.rewrite_cap_days(n) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("stale-bench: {e}");
                return ExitCode::from(1);
            }
        },
    };
    let data = match log.to_datasets() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("stale-bench: log does not reconstruct: {e}");
            return ExitCode::from(1);
        }
    };
    match stale_bench::replay::replay_run(data, &opts) {
        Ok(run) => {
            print!("{}", stale_bench::replay::replay_report(&run));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("stale-bench: {e}");
            ExitCode::from(1)
        }
    }
}

fn cmd_timeline(rest: &[String]) -> ExitCode {
    let mut fingerprint: Option<String> = None;
    let mut log_path: Option<String> = None;
    let mut audit_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut server: Option<String> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--log" => match it.next() {
                Some(v) => log_path = Some(v.clone()),
                None => return fail("--log needs a path"),
            },
            "--audit" => match it.next() {
                Some(v) => audit_path = Some(v.clone()),
                None => return fail("--audit needs a path"),
            },
            "--trace" => match it.next() {
                Some(v) => trace_path = Some(v.clone()),
                None => return fail("--trace needs a path"),
            },
            "--server" => match it.next() {
                Some(v) => server = Some(v.clone()),
                None => return fail("--server needs an address"),
            },
            other if other.starts_with('-') => {
                return fail(&format!("unknown flag {other:?}\n{}", usage()));
            }
            _ if fingerprint.is_none() => fingerprint = Some(arg.clone()),
            _ => return fail(&format!("timeline takes one fingerprint\n{}", usage())),
        }
    }
    let Some(fingerprint) = fingerprint else {
        return fail(&format!("timeline needs a fingerprint\n{}", usage()));
    };
    if let Some(addr) = server {
        if log_path.is_some() || audit_path.is_some() || trace_path.is_some() {
            return fail("--server and file layers are mutually exclusive");
        }
        return match server_request(&addr, &format!("timeline {fingerprint}")) {
            Ok(resp) => finish_audit_query(resp),
            Err(e) => fail(&e),
        };
    }
    let Some(log_path) = log_path else {
        return fail(&format!(
            "timeline needs --log FILE or --server ADDR\n{}",
            usage()
        ));
    };
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let log_text = match read(&log_path) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let log = match worldsim::WorldLog::from_jsonl(&log_text) {
        Ok(log) => log,
        Err(e) => {
            eprintln!("stale-bench: {log_path}: {e}");
            return ExitCode::from(1);
        }
    };
    let audit = match &audit_path {
        None => None,
        Some(path) => match read(path)
            .and_then(|t| obs::AuditReport::from_jsonl(&t).map_err(|e| format!("{path}: {e}")))
        {
            Ok(report) => Some(report),
            Err(e) => return fail(&e),
        },
    };
    let trace_text = match &trace_path {
        None => None,
        Some(path) => match read(path) {
            Ok(t) => Some(t),
            Err(e) => return fail(&e),
        },
    };
    finish_audit_query(stale_core::timeline::render_timeline(
        &log,
        audit.as_ref(),
        trace_text.as_deref(),
        &fingerprint,
    ))
}

fn cmd_query(rest: &[String]) -> ExitCode {
    let Some((addr, words)) = rest.split_first() else {
        return fail(&format!(
            "query needs an address and a command\n{}",
            usage()
        ));
    };
    if words.is_empty() {
        return fail(&format!(
            "query needs a command after the address\n{}",
            usage()
        ));
    }
    match server_request(addr, &words.join(" ")) {
        Ok(resp) => finish_audit_query(resp),
        Err(e) => fail(&e),
    }
}

fn cmd_slowlog(rest: &[String]) -> ExitCode {
    let [addr] = rest else {
        return fail(&format!("slowlog needs exactly one address\n{}", usage()));
    };
    match server_request(addr, "slowlog") {
        Ok(resp) => finish_audit_query(resp),
        Err(e) => fail(&e),
    }
}

fn cmd_subscribe(rest: &[String]) -> ExitCode {
    let mut addr: Option<&String> = None;
    let mut max_records: Option<u64> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-records" => {
                let Some(v) = it.next().and_then(|v| v.parse::<u64>().ok()) else {
                    return fail("--max-records needs a positive integer");
                };
                if v == 0 {
                    return fail("--max-records needs a positive integer");
                }
                max_records = Some(v);
            }
            other if other.starts_with('-') => {
                return fail(&format!("unknown flag {other:?}\n{}", usage()));
            }
            _ if addr.is_none() => addr = Some(arg),
            _ => return fail(&format!("subscribe takes one address\n{}", usage())),
        }
    }
    let Some(addr) = addr else {
        return fail(&format!("subscribe needs an address\n{}", usage()));
    };
    let client = match stale_served::Client::connect_retry(
        addr,
        40,
        std::time::Duration::from_millis(250),
    ) {
        Ok(c) => c,
        Err(e) => return fail(&format!("cannot connect to {addr}: {e}")),
    };
    let (ack, mut sub) = match client.subscribe() {
        Ok(v) => v,
        Err(e) => return fail(&format!("subscribe to {addr} failed: {e}")),
    };
    eprintln!("stale-bench: {ack}");
    let mut received = 0u64;
    loop {
        match sub.next_record() {
            Ok((kind, body)) => {
                println!("{kind}\t{body}");
                received += 1;
                if let Some(max) = max_records {
                    if received >= max {
                        return ExitCode::SUCCESS;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return match max_records {
                    // An open-ended stream ending is the normal exit.
                    None => ExitCode::SUCCESS,
                    Some(max) => {
                        eprintln!("stale-bench: stream closed after {received} of {max} record(s)");
                        ExitCode::from(1)
                    }
                };
            }
            Err(e) => return fail(&format!("subscription to {addr} failed: {e}")),
        }
    }
}

/// One rendered `watch` frame.
fn render_watch_frame(addr: &str, frame: u64, status: &str, snap: &obs::MetricsSnapshot) -> String {
    let mut out = format!("stale-served {addr} — watch frame {frame}\n\n");
    for line in status.lines() {
        out.push_str(&format!("  {line}\n"));
    }
    let get_hist = |name: &str| snap.histograms.get(name);
    out.push_str("\ningest\n");
    match get_hist("served.ingest.lag_days") {
        Some(lag) => out.push_str(&format!(
            "  lag-days: p50 {} p90 {} max {} ({} sample(s))\n",
            lag.p50, lag.p90, lag.max, lag.count
        )),
        None => out.push_str("  lag-days: no samples yet\n"),
    }
    if let Some(batch) = get_hist("served.ingest.batch_wall_us") {
        out.push_str(&format!(
            "  batch-wall-us: p50 {} p99 {} max {} ({} batch(es))\n",
            batch.p50, batch.p99, batch.max, batch.count
        ));
    }
    out.push_str("\nquery latency (µs)\n");
    let mut any = false;
    for (name, hist) in &snap.histograms {
        let Some(tag) = name
            .strip_prefix("served.query.")
            .and_then(|n| n.strip_suffix("_us"))
        else {
            continue;
        };
        any = true;
        out.push_str(&format!(
            "  {:<12} {:>7}  p50 {:>9}  p90 {:>9}  p99 {:>9}  max {:>9}\n",
            tag, hist.count, hist.p50, hist.p90, hist.p99, hist.max
        ));
    }
    if !any {
        out.push_str("  no queries served yet\n");
    }
    out.push_str("\nstaleness events by detector\n");
    let mut any = false;
    for (name, value) in &snap.counters {
        let Some(det) = name.strip_prefix("served.events.") else {
            continue;
        };
        any = true;
        out.push_str(&format!("  {det:<12} {value:>10}\n"));
    }
    if !any {
        out.push_str("  none emitted yet\n");
    }
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let attached = counter("served.sub.attached");
    let detached = counter("served.sub.detached");
    out.push_str(&format!(
        "\nsubscribers: {} active ({attached} attached, {detached} detached, {} record(s) dropped)\n",
        attached.saturating_sub(detached),
        counter("served.sub.dropped"),
    ));
    out
}

fn cmd_watch(rest: &[String]) -> ExitCode {
    let mut addr: Option<&String> = None;
    let mut interval_ms = 1_000u64;
    let mut frames = 0u64; // 0 = until interrupted
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--interval-ms" => {
                let Some(v) = it.next().and_then(|v| v.parse::<u64>().ok()) else {
                    return fail("--interval-ms needs an integer millisecond value");
                };
                interval_ms = v.max(50);
            }
            "--frames" => {
                let Some(v) = it.next().and_then(|v| v.parse::<u64>().ok()) else {
                    return fail("--frames needs a positive integer");
                };
                if v == 0 {
                    return fail("--frames needs a positive integer");
                }
                frames = v;
            }
            other if other.starts_with('-') => {
                return fail(&format!("unknown flag {other:?}\n{}", usage()));
            }
            _ if addr.is_none() => addr = Some(arg),
            _ => return fail(&format!("watch takes one address\n{}", usage())),
        }
    }
    let Some(addr) = addr else {
        return fail(&format!("watch needs an address\n{}", usage()));
    };
    use std::io::{IsTerminal, Write as _};
    let clear = std::io::stdout().is_terminal();
    let mut frame = 0u64;
    loop {
        frame += 1;
        let fetch = |line: &str| -> Result<String, String> {
            match server_request(addr, line) {
                Ok(Ok(body)) => Ok(body),
                Ok(Err(e)) => Err(format!("daemon error: {e}")),
                Err(e) => Err(e),
            }
        };
        let status = match fetch("status") {
            Ok(s) => s,
            Err(e) => return fail(&e),
        };
        let metrics = match fetch("metrics") {
            Ok(s) => s,
            Err(e) => return fail(&e),
        };
        let snap: obs::MetricsSnapshot = match serde_json::from_str(&metrics) {
            Ok(s) => s,
            Err(e) => return fail(&format!("metrics export does not parse: {e}")),
        };
        if clear {
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", render_watch_frame(addr, frame, &status, &snap));
        let _ = std::io::stdout().flush();
        if frames > 0 && frame >= frames {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

fn cmd_compare(rest: &[String]) -> ExitCode {
    let mut paths: Vec<&String> = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut min_wall_us = DEFAULT_MIN_WALL_US;
    let mut out_path: Option<String> = None;
    let mut emit_json = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    return fail("--threshold needs a fractional value (e.g. 0.25)");
                };
                if !v.is_finite() || v < 0.0 {
                    return fail("--threshold must be a non-negative finite fraction");
                }
                threshold = v;
            }
            "--min-wall-us" => {
                let Some(v) = it.next().and_then(|v| v.parse::<u64>().ok()) else {
                    return fail("--min-wall-us needs an integer microsecond value");
                };
                min_wall_us = v;
            }
            "--out" => {
                let Some(v) = it.next() else {
                    return fail("--out needs a path");
                };
                out_path = Some(v.clone());
            }
            "--json" => emit_json = true,
            other if other.starts_with('-') => {
                return fail(&format!("unknown flag {other:?}\n{}", usage()));
            }
            _ => paths.push(arg),
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return fail(&format!("compare needs exactly two inputs\n{}", usage()));
    };

    let read = |path: &str| -> Result<obs::MetricsSnapshot, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        parse_snapshot(&text).map_err(|e| format!("{path}: {e}"))
    };
    let baseline = match read(baseline_path) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let current = match read(current_path) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };

    let cmp = compare(&baseline, &current, threshold, min_wall_us);
    let artifact = serde_json::to_string_pretty(&cmp);
    if let Some(path) = &out_path {
        let artifact = match &artifact {
            Ok(a) => a,
            Err(e) => return fail(&format!("cannot serialize comparison: {e:?}")),
        };
        if let Err(e) = std::fs::write(path, format!("{artifact}\n")) {
            return fail(&format!("cannot write {path}: {e}"));
        }
    }
    if emit_json {
        match &artifact {
            Ok(a) => println!("{a}"),
            Err(e) => return fail(&format!("cannot serialize comparison: {e:?}")),
        }
    } else {
        print!("{}", cmp.render_human());
    }

    if cmp.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    match cmd.as_str() {
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            ExitCode::SUCCESS
        }
        "compare" => cmd_compare(rest),
        "explain" => cmd_explain(rest),
        "report" => cmd_report(rest),
        "replay" => cmd_replay(rest),
        "timeline" => cmd_timeline(rest),
        "query" => cmd_query(rest),
        "watch" => cmd_watch(rest),
        "slowlog" => cmd_slowlog(rest),
        "subscribe" => cmd_subscribe(rest),
        other => fail(&format!("unknown subcommand {other:?}\n{}", usage())),
    }
}
