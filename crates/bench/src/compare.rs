//! Run-over-run metrics comparison: the machinery behind
//! `stale-bench compare`.
//!
//! Two metrics-JSON exports (see `obs::metrics::METRICS_SCHEMA`, emitted
//! by `repro --metrics-json`) are diffed stage by stage: every counter
//! ending in `.wall_us` is a stage wall time, and a stage regresses when
//! its current wall exceeds the baseline by more than `threshold`
//! (fractional; 0.25 = +25%). Stages whose baseline wall is below
//! `min_wall_us` are exempt — microsecond-scale stages are all jitter.
//!
//! Deterministic *count* counters are held to a stricter standard: every
//! `audit.*` coverage gauge present in **both** snapshots must match
//! exactly. These counters are derived from the decision audit, which is
//! byte-deterministic for a given dataset bundle, so any drift means the
//! detectors changed behaviour — a hard failure at threshold 0, with no
//! noise floor. Counters present on only one side (e.g. the baseline
//! predates auditing) are reported but never flag.
//!
//! Separately, *every* counter name present in only one snapshot lands
//! in the artifact's `added`/`removed` presence lists — informational,
//! never a failure, but it means a renamed stage counter drops out of
//! the gated set loudly instead of silently.
//!
//! The result serializes as `BENCH_obs.json` (schema
//! [`COMPARE_SCHEMA`]), which doubles as the committed CI baseline: it
//! embeds the `current` snapshot, so the next comparison can chain off a
//! previous comparison file directly ([`parse_snapshot`] accepts either
//! form).

use obs::metrics::METRICS_SCHEMA;
use obs::MetricsSnapshot as Snapshot;
use serde::{Deserialize, Serialize};

/// Schema tag of the comparison artifact.
pub const COMPARE_SCHEMA: &str = "stale-bench-obs";
/// Current comparison schema version.
pub const COMPARE_VERSION: u32 = 1;

/// Default regression threshold: +25% stage wall.
pub const DEFAULT_THRESHOLD: f64 = 0.25;
/// Default noise floor: stages under 1 ms baseline wall are exempt.
pub const DEFAULT_MIN_WALL_US: u64 = 1_000;

/// One stage's baseline-vs-current wall time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageDelta {
    /// Counter name (e.g. `engine.stage.detect.wall_us`).
    pub name: String,
    /// Baseline wall, microseconds (0 if the stage is new).
    pub baseline_us: u64,
    /// Current wall, microseconds (0 if the stage disappeared).
    pub current_us: u64,
    /// current / max(baseline, 1) — finite even for new stages.
    pub ratio: f64,
    /// Whether this stage regressed beyond the threshold (and its
    /// baseline cleared the noise floor).
    pub regressed: bool,
}

/// One deterministic count counter's baseline-vs-current value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountDelta {
    /// Counter name (e.g. `audit.kc.dropped.crl-unmatched`).
    pub name: String,
    /// Baseline value, or `None` when the counter is new.
    pub baseline: Option<u64>,
    /// Current value, or `None` when the counter disappeared.
    pub current: Option<u64>,
    /// Whether the counter exists on both sides with different values.
    /// Any such drift is a hard failure — there is no threshold.
    pub drifted: bool,
}

/// The whole comparison, as written to `BENCH_obs.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Always [`COMPARE_SCHEMA`].
    pub schema: String,
    /// Always [`COMPARE_VERSION`].
    pub version: u32,
    /// Regression threshold used (fractional).
    pub threshold: f64,
    /// Noise floor used, microseconds.
    pub min_wall_us: u64,
    /// Per-stage deltas, name-sorted.
    pub stages: Vec<StageDelta>,
    /// Count of regressed stages.
    pub regressions: usize,
    /// Deterministic `audit.*` count counters, name-sorted. `None` only
    /// when parsing a pre-audit artifact.
    pub counts: Option<Vec<CountDelta>>,
    /// Count of drifted count counters. `None` only when parsing a
    /// pre-audit artifact (treated as 0).
    pub count_drifts: Option<usize>,
    /// Counter names present only in the current snapshot, name-sorted.
    /// Reported (a renamed stage cannot vanish unnoticed) but never a
    /// failure. `None` only when parsing a pre-presence artifact.
    pub added: Option<Vec<String>>,
    /// Counter names present only in the baseline snapshot, name-sorted.
    pub removed: Option<Vec<String>>,
    /// The baseline snapshot compared against.
    pub baseline: Snapshot,
    /// The current snapshot — the next run's baseline.
    pub current: Snapshot,
}

impl Comparison {
    /// Whether the run is clean: no stage regressed *and* no
    /// deterministic count counter drifted.
    pub fn is_clean(&self) -> bool {
        self.regressions == 0 && self.count_drifts.unwrap_or(0) == 0
    }

    /// Human-readable summary table.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "stage wall-time comparison (threshold +{:.0}%, floor {} µs)\n",
            self.threshold * 100.0,
            self.min_wall_us
        ));
        out.push_str("  stage                                baseline     current   ratio\n");
        for s in &self.stages {
            out.push_str(&format!(
                "  {:<36} {:>9} µs {:>9} µs  {:>5.2}x{}\n",
                s.name,
                s.baseline_us,
                s.current_us,
                s.ratio,
                if s.regressed { "  REGRESSED" } else { "" }
            ));
        }
        out.push_str(&format!(
            "  {} stage(s), {} regression(s)\n",
            self.stages.len(),
            self.regressions
        ));
        if let Some(counts) = &self.counts {
            if !counts.is_empty() {
                out.push_str("deterministic count comparison (audit.*, exact match)\n");
                out.push_str(
                    "  counter                                        baseline     current\n",
                );
                let fmt = |v: Option<u64>| match v {
                    Some(n) => n.to_string(),
                    None => "-".to_string(),
                };
                for c in counts {
                    out.push_str(&format!(
                        "  {:<44} {:>10}  {:>10}{}\n",
                        c.name,
                        fmt(c.baseline),
                        fmt(c.current),
                        if c.drifted { "  DRIFTED" } else { "" }
                    ));
                }
                out.push_str(&format!(
                    "  {} counter(s), {} drift(s)\n",
                    counts.len(),
                    self.count_drifts.unwrap_or(0)
                ));
            }
        }
        let added = self.added.as_deref().unwrap_or(&[]);
        let removed = self.removed.as_deref().unwrap_or(&[]);
        if !added.is_empty() || !removed.is_empty() {
            out.push_str("counter presence (informational, never a failure)\n");
            for name in added {
                out.push_str(&format!("  added    {name}\n"));
            }
            for name in removed {
                out.push_str(&format!("  removed  {name}\n"));
            }
            out.push_str(&format!(
                "  {} added, {} removed\n",
                added.len(),
                removed.len()
            ));
        }
        out
    }
}

/// Diff two snapshots' stage wall counters. `threshold` is fractional
/// (0.25 = +25%); baselines below `min_wall_us` never flag. `audit.*`
/// count counters are additionally diffed at threshold 0: any drift
/// between values present on both sides is a hard failure.
pub fn compare(
    baseline: &Snapshot,
    current: &Snapshot,
    threshold: f64,
    min_wall_us: u64,
) -> Comparison {
    let is_stage_wall = |name: &str| name.ends_with(".wall_us");
    let mut names: Vec<String> = baseline
        .counters
        .keys()
        .chain(current.counters.keys())
        .filter(|n| is_stage_wall(n))
        .cloned()
        .collect();
    names.sort();
    names.dedup();

    let mut stages = Vec::with_capacity(names.len());
    let mut regressions = 0usize;
    for name in names {
        let baseline_us = baseline.counters.get(&name).copied().unwrap_or(0);
        let current_us = current.counters.get(&name).copied().unwrap_or(0);
        // max(baseline, 1) keeps the ratio finite for new stages; the
        // serde shim renders non-finite floats as null, so an infinite
        // ratio would corrupt the artifact.
        let ratio = current_us as f64 / baseline_us.max(1) as f64;
        let regressed = baseline_us >= min_wall_us
            && (current_us as f64) > (baseline_us as f64) * (1.0 + threshold);
        if regressed {
            regressions += 1;
        }
        stages.push(StageDelta {
            name,
            baseline_us,
            current_us,
            ratio,
            regressed,
        });
    }
    let is_count = |name: &str| name.starts_with("audit.");
    let mut count_names: Vec<String> = baseline
        .counters
        .keys()
        .chain(current.counters.keys())
        .filter(|n| is_count(n))
        .cloned()
        .collect();
    count_names.sort();
    count_names.dedup();

    let mut counts = Vec::with_capacity(count_names.len());
    let mut count_drifts = 0usize;
    for name in count_names {
        let b = baseline.counters.get(&name).copied();
        let c = current.counters.get(&name).copied();
        let drifted = matches!((b, c), (Some(b), Some(c)) if b != c);
        if drifted {
            count_drifts += 1;
        }
        counts.push(CountDelta {
            name,
            baseline: b,
            current: c,
            drifted,
        });
    }

    // Presence diff over *every* counter (stages, audit gauges, ad-hoc
    // instrumentation alike): one-sided names are reported so a renamed
    // counter can't silently drop out of the gated set.
    let added: Vec<String> = current
        .counters
        .keys()
        .filter(|n| !baseline.counters.contains_key(*n))
        .cloned()
        .collect();
    let removed: Vec<String> = baseline
        .counters
        .keys()
        .filter(|n| !current.counters.contains_key(*n))
        .cloned()
        .collect();

    Comparison {
        schema: COMPARE_SCHEMA.to_string(),
        version: COMPARE_VERSION,
        threshold,
        min_wall_us,
        stages,
        regressions,
        counts: Some(counts),
        count_drifts: Some(count_drifts),
        added: Some(added),
        removed: Some(removed),
        baseline: baseline.clone(),
        current: current.clone(),
    }
}

/// Parse a metrics snapshot out of `text`: either a raw metrics-JSON
/// export, or a previous comparison artifact (whose embedded `current`
/// snapshot becomes the baseline — this is how CI chains run over run).
pub fn parse_snapshot(text: &str) -> Result<Snapshot, String> {
    if let Ok(snap) = serde_json::from_str::<Snapshot>(text) {
        if snap.schema == METRICS_SCHEMA {
            return Ok(snap);
        }
    }
    if let Ok(cmp) = serde_json::from_str::<Comparison>(text) {
        if cmp.schema == COMPARE_SCHEMA {
            return Ok(cmp.current);
        }
    }
    Err(format!(
        "not a {METRICS_SCHEMA} snapshot or {COMPARE_SCHEMA} comparison"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::Registry;

    fn snapshot(stages: &[(&str, u64)]) -> Snapshot {
        let reg = Registry::new();
        for (name, wall) in stages {
            reg.add(&format!("engine.stage.{name}.wall_us"), *wall);
            reg.add(&format!("engine.stage.{name}.items_in"), 10);
        }
        reg.snapshot()
    }

    #[test]
    fn identical_runs_are_clean() {
        let a = snapshot(&[("partition", 50_000), ("detect", 400_000)]);
        let cmp = compare(&a, &a, DEFAULT_THRESHOLD, DEFAULT_MIN_WALL_US);
        assert!(cmp.is_clean());
        assert_eq!(cmp.stages.len(), 2);
        assert!(cmp.stages.iter().all(|s| (s.ratio - 1.0).abs() < 1e-9));
    }

    #[test]
    fn detects_injected_synthetic_regression() {
        // The acceptance-criterion case: inflate one stage's wall by 40%
        // over a 25% threshold and the comparison must flag exactly it.
        let baseline = snapshot(&[
            ("partition", 50_000),
            ("detect", 400_000),
            ("merge", 20_000),
        ]);
        let current = snapshot(&[
            ("partition", 50_000),
            ("detect", 560_000),
            ("merge", 20_000),
        ]);
        let cmp = compare(&baseline, &current, 0.25, DEFAULT_MIN_WALL_US);
        assert!(!cmp.is_clean());
        assert_eq!(cmp.regressions, 1);
        let detect = cmp
            .stages
            .iter()
            .find(|s| s.name == "engine.stage.detect.wall_us")
            .expect("detect stage present");
        assert!(detect.regressed);
        assert!((detect.ratio - 1.4).abs() < 1e-9);
        assert!(cmp
            .stages
            .iter()
            .filter(|s| s.name != "engine.stage.detect.wall_us")
            .all(|s| !s.regressed));
    }

    #[test]
    fn noise_floor_exempts_tiny_stages() {
        // 10 µs → 100 µs is a 10x blowup but below the 1 ms floor.
        let baseline = snapshot(&[("merge", 10)]);
        let current = snapshot(&[("merge", 100)]);
        let cmp = compare(&baseline, &current, 0.25, DEFAULT_MIN_WALL_US);
        assert!(cmp.is_clean());
        assert!((cmp.stages[0].ratio - 10.0).abs() < 1e-9);
    }

    #[test]
    fn new_and_vanished_stages_have_finite_ratios() {
        let baseline = snapshot(&[("detect", 100_000)]);
        let current = snapshot(&[("ingest", 100_000)]);
        let cmp = compare(&baseline, &current, 0.25, DEFAULT_MIN_WALL_US);
        assert!(cmp.stages.iter().all(|s| s.ratio.is_finite()));
        // A brand-new stage has no baseline to regress from.
        assert!(cmp.is_clean());
    }

    #[test]
    fn artifact_roundtrips_and_chains_as_baseline() {
        let baseline = snapshot(&[("detect", 100_000)]);
        let current = snapshot(&[("detect", 110_000)]);
        let cmp = compare(&baseline, &current, 0.25, DEFAULT_MIN_WALL_US);
        let json = serde_json::to_string_pretty(&cmp).expect("serializes");
        let parsed: Comparison = serde_json::from_str(&json).expect("parses");
        assert_eq!(parsed, cmp);
        // parse_snapshot on the artifact yields its `current` snapshot.
        let chained = parse_snapshot(&json).expect("chains");
        assert_eq!(chained, current);
        // ... and on a raw export yields the export.
        let raw = serde_json::to_string(&baseline).expect("serializes");
        assert_eq!(parse_snapshot(&raw).expect("raw"), baseline);
        // Garbage is an error.
        assert!(parse_snapshot("{\"schema\":\"other\"}").is_err());
    }

    #[test]
    fn audit_count_drift_is_a_hard_failure() {
        // A single off-by-one in a coverage counter fails the run even
        // though every wall time is identical.
        let mk = |kept: u64| {
            let reg = Registry::new();
            reg.add("engine.stage.detect.wall_us", 400_000);
            reg.add("audit.kc.candidates", 500);
            reg.add("audit.kc.kept", kept);
            reg.snapshot()
        };
        let cmp = compare(&mk(400), &mk(401), DEFAULT_THRESHOLD, DEFAULT_MIN_WALL_US);
        assert_eq!(cmp.regressions, 0, "no wall regression");
        assert_eq!(cmp.count_drifts, Some(1));
        assert!(!cmp.is_clean());
        let counts = cmp.counts.as_ref().expect("counts present");
        let kept = counts
            .iter()
            .find(|c| c.name == "audit.kc.kept")
            .expect("kept counter present");
        assert!(kept.drifted);
        assert_eq!((kept.baseline, kept.current), (Some(400), Some(401)));
        assert!(counts
            .iter()
            .filter(|c| c.name != "audit.kc.kept")
            .all(|c| !c.drifted));
        let text = cmp.render_human();
        assert!(text.contains("audit.kc.kept"));
        assert!(text.contains("DRIFTED"));
        assert!(text.contains("1 drift(s)"));
    }

    #[test]
    fn one_sided_audit_counters_never_drift() {
        // A baseline from before auditing existed (or with auditing off)
        // has no audit.* counters — the current run must still be clean.
        let baseline = snapshot(&[("detect", 100_000)]);
        let reg = Registry::new();
        reg.add("engine.stage.detect.wall_us", 100_000);
        reg.add("engine.stage.detect.items_in", 10);
        reg.add("audit.rc.candidates", 7);
        let current = reg.snapshot();
        let cmp = compare(&baseline, &current, DEFAULT_THRESHOLD, DEFAULT_MIN_WALL_US);
        assert!(cmp.is_clean());
        assert_eq!(cmp.count_drifts, Some(0));
        let counts = cmp.counts.as_ref().expect("counts present");
        assert_eq!(counts.len(), 1);
        assert_eq!(counts[0].baseline, None);
        assert_eq!(counts[0].current, Some(7));
    }

    #[test]
    fn one_sided_counters_land_in_added_and_removed() {
        // Any counter — stage wall, audit gauge or ad-hoc — present on
        // one side only must be named, so renames can't hide.
        let mk = |names: &[&str]| {
            let reg = Registry::new();
            for n in names {
                reg.add(n, 1);
            }
            reg.snapshot()
        };
        let baseline = mk(&["engine.stage.detect.wall_us", "served.view.rebuilds"]);
        let current = mk(&["engine.stage.detect.wall_us", "served.ingest.batch_count"]);
        let cmp = compare(&baseline, &current, DEFAULT_THRESHOLD, DEFAULT_MIN_WALL_US);
        assert_eq!(
            cmp.added.as_deref(),
            Some(&["served.ingest.batch_count".to_string()][..])
        );
        assert_eq!(
            cmp.removed.as_deref(),
            Some(&["served.view.rebuilds".to_string()][..])
        );
        assert!(cmp.is_clean(), "presence changes are informational");
        let text = cmp.render_human();
        assert!(text.contains("counter presence"), "{text}");
        assert!(
            text.contains("added    served.ingest.batch_count"),
            "{text}"
        );
        assert!(text.contains("removed  served.view.rebuilds"), "{text}");
        assert!(text.contains("1 added, 1 removed"), "{text}");

        // Identical snapshots render no presence section.
        let cmp = compare(&baseline, &baseline, DEFAULT_THRESHOLD, DEFAULT_MIN_WALL_US);
        assert_eq!(cmp.added.as_deref(), Some(&[][..]));
        assert_eq!(cmp.removed.as_deref(), Some(&[][..]));
        assert!(!cmp.render_human().contains("counter presence"));
    }

    #[test]
    fn pre_audit_artifact_still_parses() {
        // BENCH_obs.json files written before `counts` existed have no
        // such field; the Option must absorb that, and an absent
        // count_drifts counts as clean.
        let baseline = snapshot(&[("detect", 100_000)]);
        let snap = serde_json::to_string(&baseline).expect("snapshot serializes");
        let json = format!(
            "{{\"schema\":\"{COMPARE_SCHEMA}\",\"version\":{COMPARE_VERSION},\
             \"threshold\":0.25,\"min_wall_us\":1000,\"stages\":[],\
             \"regressions\":0,\"baseline\":{snap},\"current\":{snap}}}"
        );
        let parsed: Comparison = serde_json::from_str(&json).expect("parses without counts");
        assert_eq!(parsed.counts, None);
        assert_eq!(parsed.count_drifts, None);
        assert_eq!(parsed.added, None, "pre-presence artifacts parse too");
        assert_eq!(parsed.removed, None);
        assert!(parsed.is_clean());
    }

    #[test]
    fn render_human_names_regressions() {
        let baseline = snapshot(&[("detect", 100_000)]);
        let current = snapshot(&[("detect", 200_000)]);
        let cmp = compare(&baseline, &current, 0.25, DEFAULT_MIN_WALL_US);
        let text = cmp.render_human();
        assert!(text.contains("engine.stage.detect.wall_us"));
        assert!(text.contains("REGRESSED"));
        assert!(text.contains("1 regression(s)"));
    }
}
