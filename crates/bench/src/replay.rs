//! `stale-bench replay` — rerun detection from a world-fact log alone.
//!
//! The world-fact log (`stale-obs-worldlog` v1, [`worldsim::WorldLog`])
//! is layer 1 of the audit model: every fact the detectors consume,
//! replayable without the simulator. Replay reconstructs the datasets
//! from the log ([`worldsim::WorldLog::to_datasets`]), runs the sharded
//! engine, and renders a fixed report — byte-identical to running the
//! same engine over the directly simulated world, for any shard count
//! and for both batch and incremental drivers
//! (`tests/worldlog_replay.rs` proptests this; CI diffs the bytes).
//!
//! A `--rewrite cap-days=N` replay applies the paper's §6 lifetime-cap
//! counterfactual as a log rewrite ([`worldsim::WorldLog::rewrite_cap_days`])
//! instead of a fresh simulation: validity windows are capped in the
//! DER itself, expiry events are re-emitted, and the capped log replays
//! through the same pipeline to reproduce the Fig. 8–9 table shape.

use crate::{EngineRun, Experiments};
use engine::EngineConfig;
use psl::SuffixList;
use worldsim::datasets::WorldDatasets;

/// How a replay drives the engine.
pub struct ReplayOptions {
    /// Shard count (replay output is byte-identical for any value).
    pub shards: usize,
    /// Drive the incremental day-feed path instead of batch.
    pub incremental: bool,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            shards: 2,
            incremental: false,
        }
    }
}

/// Run the detection engine (with auditing on) over reconstructed or
/// simulated datasets. Errors on engine failure or degraded shards —
/// a replay that silently dropped a shard would not be a replay.
pub fn replay_run(data: WorldDatasets, opts: &ReplayOptions) -> Result<EngineRun, String> {
    let psl = SuffixList::default_list();
    let mut cfg = EngineConfig::with_shards(opts.shards);
    cfg.audit = true;
    let run = if opts.incremental {
        Experiments::with_engine_incremental_on(data, psl, cfg)
    } else {
        Experiments::with_engine_on(data, psl, cfg)
    }
    .map_err(|e| format!("engine error: {e}"))?;
    if !run.degraded.is_empty() {
        return Err(format!(
            "replay incomplete: {} of {} shard(s) degraded",
            run.degraded.len(),
            run.shards
        ));
    }
    Ok(run)
}

/// Render the fixed replay report: the tables and figures whose bytes
/// the replay gate compares (Table 3/4/7, Fig. 4/6/8/9) plus the
/// decision-audit coverage table. Everything here is deterministic —
/// no wall-clock, no shard-count dependence — so two reports from the
/// same world facts are byte-identical however they were produced.
pub fn replay_report(run: &EngineRun) -> String {
    let e = &run.experiments;
    let mut out = String::new();
    for section in [
        e.table3(),
        e.table4(),
        e.table7(),
        e.fig4(),
        e.fig6(),
        e.fig8(),
        e.fig9(),
    ] {
        out.push_str(&section);
        out.push('\n');
    }
    if let Some(audit) = &run.audit {
        out.push_str(&audit.render_coverage());
    }
    out
}
