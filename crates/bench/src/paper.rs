//! The paper's reported numbers, kept in one place so every experiment
//! report can print "paper vs measured" and EXPERIMENTS.md can be
//! regenerated mechanically.
//!
//! Absolute magnitudes are not expected to match (the substrate is a
//! scaled simulation); the *shapes* are: orderings between classes, rough
//! ratios, medians, crossover percentages and event-driven spikes.

/// Table 4: average daily (certs, FQDNs, e2LDs) per detector row.
/// Lives in [`stale_core::tables`] next to the shared Table-4 renderer
/// (served live by `stale-served` as well as rendered here).
pub use stale_core::tables::TABLE4_DAILY;

/// Figure 6: median staleness days per class.
pub const FIG6_MEDIANS: [(&str, i64); 3] = [
    ("Domain registrant change", 90),
    ("Managed TLS departure", 300),
    ("Key compromise", 398),
];

/// Figure 8: survival (share of invalidations after N days of issuance),
/// at 90 and 215 days. Key compromise at 215 days is not reported; the
/// paper only notes the 90-day value (~1%).
pub const FIG8_SURVIVAL: [(&str, f64, Option<f64>); 3] = [
    ("Domain registrant change", 0.56, Some(0.145)),
    ("Managed TLS departure", 0.495, Some(0.295)),
    ("Key compromise", 0.01, None),
];

/// Figure 9: staleness-days reduction per class at 45/90/215-day caps.
pub const FIG9_REDUCTIONS: [(&str, f64, f64, f64); 3] = [
    ("Domain registrant change", 0.967, 0.867, 0.358),
    ("Managed TLS departure", 0.977, 0.753, 0.453),
    ("Key compromise", 0.896, 0.752, 0.443),
];

/// Table 5: 1,013 of 100K sampled domains flagged (≈1%); 352 malware
/// domains, 685 URL domains; split 328 / 24 / 661.
pub const TABLE5_FLAGGED_RATE: f64 = 0.01;
/// Table 5 split: (malware-only, both, url-only).
pub const TABLE5_SPLIT: (usize, usize, usize) = (328, 24, 661);

/// Table 6: cumulative counts at Top 1K/10K/100K/1M and total domains.
pub const TABLE6: [(&str, [u64; 4], u64); 3] = [
    (
        "Domain registrant change",
        [8, 307, 5_839, 84_319],
        3_649_526,
    ),
    ("Managed TLS departure", [12, 127, 1_742, 14_776], 695_064),
    ("Key compromise", [41, 217, 928, 6_771], 201_662),
];

/// Table 7: total CRL download coverage.
pub const TABLE7_TOTAL_COVERAGE: f64 = 0.984;

/// Figure 4: the GoDaddy breach accounts for over 65% of key-compromise
/// revocations, concentrated in Nov–Dec 2021.
pub const FIG4_GODADDY_SHARE: f64 = 0.65;

/// §6 headline: a 90-day maximum yields a ~75% decrease in overall
/// staleness-days (75–86% depending on class).
pub const HEADLINE_90D_STALENESS_REDUCTION: f64 = 0.75;

/// Format a paper-vs-measured comparison cell.
pub fn vs(paper: f64, measured: f64) -> String {
    format!("paper {paper:.1} / measured {measured:.1}")
}

/// Format a paper-vs-measured percentage comparison.
pub fn vs_pct(paper: f64, measured: f64) -> String {
    format!(
        "paper {:.1}% / measured {:.1}%",
        paper * 100.0,
        measured * 100.0
    )
}
