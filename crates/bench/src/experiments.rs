//! One runner per table/figure of the paper's evaluation.

use engine::{DegradedShard, Engine, EngineConfig, EngineError, EngineMetrics};
use psl::SuffixList;
use stale_core::detector::DetectionSuite;
use stale_core::lifetime_sim::LifetimeSimulation;
use stale_core::popularity::{popularity_breakdown, RANK_BUCKETS};
use stale_core::report::{bar_chart, curve_plot, pct, render_table};
use stale_core::reputation::reputation_report;
use stale_core::staleness::{StaleCertRecord, StalenessClass};
use stale_core::stats::{Cdf, GroupedMonthlySeries, MonthlySeries};
use stale_core::survival::SurvivalCurve;
use stale_types::{Date, DateInterval, DomainName};
use std::collections::BTreeSet;
use worldsim::{ScenarioConfig, World, WorldDatasets};

use crate::paper;

/// A simulated world plus its detection results — everything the
/// experiment runners need.
pub struct Experiments {
    /// The dataset bundle.
    pub data: WorldDatasets,
    /// Public suffix list.
    pub psl: SuffixList,
    /// Detector outputs.
    pub suite: DetectionSuite,
}

/// An [`Experiments`] bundle produced by the sharded engine, with the
/// run's health and metrics alongside.
pub struct EngineRun {
    /// The experiments, backed by the engine's merged suite.
    pub experiments: Experiments,
    /// Shards that panicked out of the run (empty on a healthy run).
    pub degraded: Vec<DegradedShard>,
    /// Per-stage/per-shard observability.
    pub metrics: EngineMetrics,
    /// Partition width used.
    pub shards: usize,
    /// Stale events in discovery order (incremental runs; empty in batch
    /// mode, where everything lands at once).
    pub events: Vec<stale_core::incremental::StaleEvent>,
    /// Merged decision audit (`EngineConfig::audit`; `None` when off).
    pub audit: Option<obs::AuditReport>,
}

impl Experiments {
    /// Simulate a world and run all detectors (serial path).
    pub fn new(cfg: ScenarioConfig) -> Experiments {
        let (data, psl) = Experiments::build_world(cfg);
        let suite = DetectionSuite::run(&data, &psl);
        Experiments { data, psl, suite }
    }

    /// Simulate the world and load the suffix list without running any
    /// detector — the datasets can then be exported or preflighted before
    /// being handed to [`Experiments::with_engine_on`].
    pub fn build_world(cfg: ScenarioConfig) -> (WorldDatasets, SuffixList) {
        (World::run(cfg), SuffixList::default_list())
    }

    /// Simulate a world and run the detectors through the sharded engine.
    /// The merged suite is byte-identical to [`Experiments::new`]'s for
    /// any shard count.
    pub fn with_engine(
        cfg: ScenarioConfig,
        engine_cfg: EngineConfig,
    ) -> Result<EngineRun, EngineError> {
        let (data, psl) = Experiments::build_world(cfg);
        Experiments::with_engine_on(data, psl, engine_cfg)
    }

    /// Run the sharded engine over an already-built world (see
    /// [`Experiments::build_world`]).
    pub fn with_engine_on(
        data: WorldDatasets,
        psl: SuffixList,
        engine_cfg: EngineConfig,
    ) -> Result<EngineRun, EngineError> {
        Experiments::with_engine_on_obs(data, psl, engine_cfg, obs::Obs::disabled())
    }

    /// [`Experiments::with_engine_on`] with an observability bundle
    /// attached: the caller keeps a clone of `obs` to export the trace
    /// and metrics after the run. Results are byte-identical with any
    /// bundle (observability is write-only from the engine's side).
    pub fn with_engine_on_obs(
        data: WorldDatasets,
        psl: SuffixList,
        engine_cfg: EngineConfig,
        obs: obs::Obs,
    ) -> Result<EngineRun, EngineError> {
        let report = Engine::new(engine_cfg).with_obs(obs).run(&data, &psl)?;
        Ok(EngineRun {
            experiments: Experiments {
                data,
                psl,
                suite: report.suite,
            },
            degraded: report.degraded,
            metrics: report.metrics,
            shards: report.shards,
            events: report.events,
            audit: report.audit,
        })
    }

    /// Simulate a world and run the detectors through the engine's
    /// incremental driver: the day feed is replayed delta by delta into
    /// persistent detector state. The merged suite — and therefore every
    /// rendered table and figure — is byte-identical to the batch paths
    /// when the feed is drained (`EngineConfig::through` unset).
    pub fn with_engine_incremental(
        cfg: ScenarioConfig,
        engine_cfg: EngineConfig,
    ) -> Result<EngineRun, EngineError> {
        let (data, psl) = Experiments::build_world(cfg);
        Experiments::with_engine_incremental_on(data, psl, engine_cfg)
    }

    /// Run the incremental engine over an already-built world (see
    /// [`Experiments::build_world`]).
    pub fn with_engine_incremental_on(
        data: WorldDatasets,
        psl: SuffixList,
        engine_cfg: EngineConfig,
    ) -> Result<EngineRun, EngineError> {
        Experiments::with_engine_incremental_on_obs(data, psl, engine_cfg, obs::Obs::disabled())
    }

    /// [`Experiments::with_engine_incremental_on`] with an observability
    /// bundle attached (see [`Experiments::with_engine_on_obs`]).
    pub fn with_engine_incremental_on_obs(
        data: WorldDatasets,
        psl: SuffixList,
        engine_cfg: EngineConfig,
        obs: obs::Obs,
    ) -> Result<EngineRun, EngineError> {
        let report = Engine::new(engine_cfg)
            .with_obs(obs)
            .run_incremental(&data, &psl)?;
        Ok(EngineRun {
            experiments: Experiments {
                data,
                psl,
                suite: report.suite,
            },
            degraded: report.degraded,
            metrics: report.metrics,
            shards: report.shards,
            events: report.events,
            audit: report.audit,
        })
    }

    /// Records of one class.
    pub fn records(&self, class: StalenessClass) -> &[StaleCertRecord] {
        self.suite.records(class)
    }

    /// Borrowed render view over the world + suite — the same
    /// [`stale_core::tables::TableView`] the resident daemon renders
    /// from, which is what keeps daemon and batch table bytes identical.
    pub fn view(&self) -> stale_core::tables::TableView<'_> {
        stale_core::tables::TableView {
            data: &self.data,
            psl: &self.psl,
            suite: &self.suite,
        }
    }

    // ------------------------------------------------------------------
    // Tables
    // ------------------------------------------------------------------

    /// Table 3: dataset inventory.
    pub fn table3(&self) -> String {
        self.view().table3()
    }

    /// Table 4: daily rates of stale certs / FQDNs / e2LDs per detector.
    pub fn table4(&self) -> String {
        self.view().table4()
    }

    /// Table 5: domain reputation of registrant-change domains.
    pub fn table5(&self) -> String {
        let report = reputation_report(
            &self.suite.registrant_change,
            &self.data.reputation,
            100_000,
        );
        let mut rows = vec![vec![
            "Flagged rate".to_string(),
            pct(report.flagged_rate()),
            pct(paper::TABLE5_FLAGGED_RATE),
        ]];
        rows.push(vec![
            "Malware / both / URL split".to_string(),
            format!(
                "{} / {} / {}",
                report.malware_only, report.both, report.url_only
            ),
            format!(
                "{} / {} / {}",
                paper::TABLE5_SPLIT.0,
                paper::TABLE5_SPLIT.1,
                paper::TABLE5_SPLIT.2
            ),
        ]);
        let mut family_rows: Vec<Vec<String>> = report
            .malware_families
            .iter()
            .map(|(f, c)| vec![format!("malware: {f}"), c.to_string(), "-".into()])
            .collect();
        family_rows.sort();
        rows.extend(family_rows);
        for (label, count) in &report.url_labels {
            rows.push(vec![format!("url: {label}"), count.to_string(), "-".into()]);
        }
        format!(
            "Table 5 — Domain reputation ({} domains sampled, {} flagged)\n{}",
            report.sampled,
            report.flagged,
            render_table(&["Metric", "Measured", "Paper"], &rows)
        )
    }

    /// Table 6: domain popularity buckets per class.
    pub fn table6(&self) -> String {
        let classes = [
            (StalenessClass::RegistrantChange, paper::TABLE6[0]),
            (StalenessClass::ManagedTlsDeparture, paper::TABLE6[1]),
            (StalenessClass::KeyCompromise, paper::TABLE6[2]),
        ];
        let mut rows = Vec::new();
        for (class, (_, paper_buckets, paper_total)) in classes {
            let b = popularity_breakdown(
                class.label(),
                self.records(class),
                &self.data.popularity,
                &self.psl,
            );
            for (i, cut) in RANK_BUCKETS.iter().enumerate() {
                rows.push(vec![
                    b.label.clone(),
                    format!("Top {cut}"),
                    b.bucket_counts[i].to_string(),
                    paper_buckets[i].to_string(),
                ]);
            }
            rows.push(vec![
                b.label.clone(),
                "Total domains".into(),
                format!("{} ({} in top 1M)", b.total_domains, pct(b.pct_in_top_1m())),
                format!("{paper_total}"),
            ]);
        }
        format!(
            "Table 6 — Domain popularity (best rank across biannual samples)\n{}",
            render_table(&["Class", "Bucket", "Measured", "Paper"], &rows)
        )
    }

    /// Table 7: CRL scrape coverage per CA.
    pub fn table7(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .data
            .crl_stats
            .rows_by_coverage()
            .into_iter()
            .map(|(name, ok, total, cov)| vec![name, format!("{ok} / {total}"), pct(cov)])
            .collect();
        format!(
            "Table 7 — CRL coverage\n{}Total coverage: measured {} (paper {})\n",
            render_table(&["CA", "CRLs fetched", "Coverage"], &rows),
            pct(self.data.crl_stats.total_coverage()),
            pct(paper::TABLE7_TOTAL_COVERAGE),
        )
    }

    // ------------------------------------------------------------------
    // Figures
    // ------------------------------------------------------------------

    /// Figure 4: monthly key-compromise revocations by CA.
    pub fn fig4(&self) -> String {
        let mut grouped = GroupedMonthlySeries::new();
        for r in &self.suite.key_compromise {
            grouped.add(&r.issuer, r.invalidation);
        }
        let grouped = grouped.with_other_bucket(10);
        let mut out = String::from("Figure 4 — Monthly key-compromise revocations by CA\n");
        for (issuer, total) in grouped.totals() {
            out.push_str(&format!("  series {issuer}: total {total}\n"));
            let series = &grouped.groups[&issuer];
            if let Some((peak_month, peak)) = series.peak() {
                out.push_str(&format!("    peak {peak} in {peak_month}\n"));
            }
        }
        if let Some((top_issuer, _)) = grouped.totals().first().cloned() {
            let rows: Vec<(String, f64)> = grouped.groups[&top_issuer]
                .rows()
                .into_iter()
                .filter(|(_, c)| *c > 0)
                .map(|(ym, c)| (ym.to_string(), c as f64))
                .collect();
            out.push_str(&format!(
                "  {top_issuer} monthly volume:\n{}",
                bar_chart(&rows, 40)
            ));
        }
        // Shape checks: GoDaddy spike share and LE reporting start.
        let total: u64 = grouped.groups.values().map(|s| s.total()).sum();
        let godaddy: u64 = grouped
            .groups
            .iter()
            .filter(|(k, _)| k.contains("GoDaddy"))
            .map(|(_, s)| s.total())
            .sum();
        let godaddy_share = if total > 0 {
            godaddy as f64 / total as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "Shape: GoDaddy share of KC — {}\n",
            paper::vs_pct(paper::FIG4_GODADDY_SHARE, godaddy_share)
        ));
        let le_before: usize = self
            .suite
            .key_compromise
            .iter()
            .filter(|r| r.issuer.contains("Let's Encrypt"))
            .filter(|r| r.invalidation < Date::parse("2022-07-01").expect("fixed"))
            .count();
        out.push_str(&format!(
            "Shape: Let's Encrypt KC revocations before 2022-07: {le_before} (paper: none — reporting began July 2022)\n"
        ));
        out
    }

    /// Figure 5a: monthly new registrant-change stale certs and e2LDs.
    pub fn fig5a(&self) -> String {
        let mut certs = MonthlySeries::new();
        let mut e2ld_first_seen: BTreeSet<(DomainName, stale_types::YearMonth)> = BTreeSet::new();
        let mut seen: BTreeSet<DomainName> = BTreeSet::new();
        let mut sorted: Vec<&StaleCertRecord> = self.suite.registrant_change.iter().collect();
        sorted.sort_by_key(|r| r.invalidation);
        for r in &sorted {
            certs.add(r.invalidation);
            if seen.insert(r.domain.clone()) {
                e2ld_first_seen.insert((r.domain.clone(), r.invalidation.year_month()));
            }
        }
        let mut e2lds = MonthlySeries::new();
        for (_, ym) in &e2ld_first_seen {
            e2lds.add_n(ym.first_day(), 1);
        }
        let mut out =
            String::from("Figure 5a — New monthly stale certs / e2LDs from registrant change\n");
        out.push_str("month,certs,e2lds\n");
        for (ym, c) in certs.rows() {
            out.push_str(&format!("{ym},{c},{}\n", e2lds.get(ym)));
        }
        if let Some((peak_month, peak)) = certs.peak() {
            out.push_str(&format!(
                "Shape: cert spike of {peak} in {peak_month} (paper: spike in late 2018, after Let's Encrypt multiplied TLS domains)\n"
            ));
        }
        out
    }

    /// Figure 5b: the 2018–2019 spike broken down by issuer.
    pub fn fig5b(&self) -> String {
        let window = DateInterval::new(
            Date::parse("2018-01-01").expect("fixed"),
            Date::parse("2019-07-01").expect("fixed"),
        )
        .expect("valid");
        let mut grouped = GroupedMonthlySeries::new();
        for r in &self.suite.registrant_change {
            if window.contains(r.invalidation) {
                grouped.add(&r.issuer, r.invalidation);
            }
        }
        let grouped = grouped.with_other_bucket(5);
        let mut out =
            String::from("Figure 5b — 2018–2019 registrant-change stale certs by issuer\n");
        for (issuer, total) in grouped.totals() {
            out.push_str(&format!("  {issuer}: {total}\n"));
        }
        let comodo_top = grouped
            .totals()
            .first()
            .map(|(k, _)| k.contains("COMODO"))
            .unwrap_or(false);
        out.push_str(&format!(
            "Shape: COMODO cruise-liner certificates dominate — paper: yes / measured: {}\n",
            if comodo_top { "yes" } else { "no" }
        ));
        out
    }

    /// Figure 6: staleness-period CDFs per class.
    pub fn fig6(&self) -> String {
        let mut out = String::from("Figure 6 — Third-party staleness period distribution\n");
        for (class, (_, paper_median)) in [
            (StalenessClass::RegistrantChange, paper::FIG6_MEDIANS[0]),
            (StalenessClass::ManagedTlsDeparture, paper::FIG6_MEDIANS[1]),
            (StalenessClass::KeyCompromise, paper::FIG6_MEDIANS[2]),
        ] {
            let cdf = self.staleness_cdf(class);
            let median = cdf.median().unwrap_or(0);
            out.push_str(&format!(
                "  {}: n={}, median {} days (paper {}), P(≤90d)={}, P(≤215d)={}, max {}\n",
                class.label(),
                cdf.len(),
                median,
                paper_median,
                pct(cdf.proportion_at(90)),
                pct(cdf.proportion_at(215)),
                cdf.max().unwrap_or(0),
            ));
            out.push_str(&curve_plot(&cdf.points(), 60, 8));
        }
        out.push_str(
            "Shape: over 50% of staleness periods exceed 90 days across classes; KC and MTD medians exceed RC's\n",
        );
        out
    }

    /// Staleness CDF of one class.
    pub fn staleness_cdf(&self, class: StalenessClass) -> Cdf {
        Cdf::new(
            self.records(class)
                .iter()
                .map(|r| r.staleness_days().num_days())
                .collect(),
        )
    }

    /// Figure 7: registrant-change staleness by change year.
    pub fn fig7(&self) -> String {
        let mut out = String::from("Figure 7 — Registrant-change staleness by change year\n");
        for year in 2016..=2021 {
            let samples: Vec<i64> = self
                .suite
                .registrant_change
                .iter()
                .filter(|r| r.invalidation.year() == year)
                .map(|r| r.staleness_days().num_days())
                .collect();
            if samples.is_empty() {
                continue;
            }
            let cdf = Cdf::new(samples);
            out.push_str(&format!(
                "  {year}: n={}, median {}d, mean {:.0}d, max {}d\n",
                cdf.len(),
                cdf.median().unwrap_or(0),
                cdf.mean().unwrap_or(0.0),
                cdf.max().unwrap_or(0),
            ));
        }
        out.push_str("Shape: the long maximum-staleness tail shortens after the 2018/2020 lifetime caps; averages fluctuate rather than fall monotonically\n");
        out
    }

    /// Figure 8: survival — proportion of invalidations after N days of
    /// issuance.
    pub fn fig8(&self) -> String {
        let mut out = String::from(
            "Figure 8 — Certificate survival (share of invalidations ≥ N days after issuance)\n",
        );
        for (class, (_, paper_90, paper_215)) in [
            (StalenessClass::RegistrantChange, paper::FIG8_SURVIVAL[0]),
            (StalenessClass::ManagedTlsDeparture, paper::FIG8_SURVIVAL[1]),
            (StalenessClass::KeyCompromise, paper::FIG8_SURVIVAL[2]),
        ] {
            let curve = SurvivalCurve::from_records(self.records(class).iter());
            let at215 = paper_215
                .map(|p| paper::vs_pct(p, curve.survival_at(215)))
                .unwrap_or_else(|| format!("measured {}", pct(curve.survival_at(215))));
            out.push_str(&format!(
                "  {}: S(90) {} | S(215) {} | median day {}\n",
                class.label(),
                paper::vs_pct(paper_90, curve.survival_at(90)),
                at215,
                curve.median_days().unwrap_or(0),
            ));
            out.push_str(&curve_plot(&curve.points(), 60, 8));
        }
        out.push_str(
            "Shape: registrant change survives longest, key compromise is reported near issuance\n",
        );
        out
    }

    /// Figure 9: staleness-days reductions under 45/90/215-day caps.
    pub fn fig9(&self) -> String {
        let mut out = String::from("Figure 9 — Simulated maximum-lifetime reduction\n");
        let mut total_before = 0i64;
        let mut total_after_90 = 0i64;
        for (class, (_, p45, p90, p215)) in [
            (StalenessClass::RegistrantChange, paper::FIG9_REDUCTIONS[0]),
            (
                StalenessClass::ManagedTlsDeparture,
                paper::FIG9_REDUCTIONS[1],
            ),
            (StalenessClass::KeyCompromise, paper::FIG9_REDUCTIONS[2]),
        ] {
            let sim = LifetimeSimulation::new(self.records(class).iter());
            let results = sim.paper_caps();
            out.push_str(&format!("  {} (n={}):\n", class.label(), sim.len()));
            for (result, paper_val) in results.iter().zip([p45, p90, p215]) {
                out.push_str(&format!(
                    "    cap {:>3}d: staleness-days {} | eliminated {} of {} certs\n",
                    result.cap_days,
                    paper::vs_pct(paper_val, result.staleness_reduction()),
                    result.eliminated_certs,
                    result.total_certs,
                ));
                if result.cap_days == 90 {
                    total_before += result.staleness_days_before;
                    total_after_90 += result.staleness_days_after;
                }
            }
        }
        let overall = if total_before > 0 {
            1.0 - total_after_90 as f64 / total_before as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "Headline: overall staleness-day reduction at 90-day cap — {}\n",
            paper::vs_pct(paper::HEADLINE_90D_STALENESS_REDUCTION, overall)
        ));
        out
    }

    /// §7.2 mitigation analysis (extension beyond the paper's headline
    /// experiments): CRLite-style filters over the measured corpus and
    /// DANE's TTL-scale staleness collapse.
    pub fn mitigations(&self) -> String {
        use stale_core::mitigation::{dane_staleness_days, CrliteFilter, DaneDeployment};
        use x509::revocation::RevocationReason;

        let mut out =
            String::from("Mitigations (§7.2) — measured against the detected stale populations\n");
        // CRLite: build a filter cascade from the full corpus + revoked set.
        let population: Vec<stale_types::CertId> = self
            .data
            .monitor
            .corpus_unfiltered()
            .map(|c| c.cert_id)
            .collect();
        let revoked: Vec<stale_types::CertId> = self
            .suite
            .revocations
            .matched
            .iter()
            .map(|m| m.cert_id)
            .collect();
        let filter = CrliteFilter::build(&population, &revoked);
        let kc_blockable = self
            .suite
            .key_compromise
            .iter()
            .filter(|r| filter.is_revoked(&r.cert_id))
            .count();
        out.push_str(&format!(
            "  CRLite: cascade of {} levels, {} bytes for {} revocations over {} certs; blocks {}/{} key-compromise stale certs with no OCSP fetch (soft-fail bypass eliminated)\n",
            filter.level_count(),
            filter.byte_size(),
            revoked.len(),
            population.len(),
            kc_blockable,
            self.suite.key_compromise.len(),
        ));
        // Revoked-but-unmatched reasons sanity: the filter covers every
        // revocation the join kept.
        let kc_total = self
            .suite
            .revocations
            .matched
            .iter()
            .filter(|m| m.reason == RevocationReason::KeyCompromise)
            .count();
        out.push_str(&format!(
            "          (join kept {kc_total} keyCompromise revocations; all present in the cascade)\n"
        ));
        // DANE: staleness collapses from cert lifetimes to DNS TTLs.
        let deployment = DaneDeployment::typical();
        for class in [
            StalenessClass::RegistrantChange,
            StalenessClass::ManagedTlsDeparture,
            StalenessClass::KeyCompromise,
        ] {
            let (pki, dane) = dane_staleness_days(self.records(class), deployment);
            if pki > 0.0 {
                out.push_str(&format!(
                    "  DANE (1h TTL): {} — {:.0} staleness-days → {:.1} ({:.4}% retained)\n",
                    class.label(),
                    pki,
                    dane,
                    dane / pki * 100.0,
                ));
            }
        }
        out.push_str("  STAR (7-day certs): worst-case staleness per certificate bounded at 7 days — see ca::star\n");
        out
    }

    /// First-party staleness control group (Table 2's key-rotation row):
    /// sizes the valid-but-disused key population against which the three
    /// third-party classes stand out.
    pub fn first_party(&self) -> String {
        let rotations = stale_core::first_party::detect_key_rotations(&self.data.monitor);
        let days: Vec<i64> = rotations
            .iter()
            .map(|e| e.staleness_days().num_days())
            .collect();
        let cdf = Cdf::new(days);
        let third_party_total: usize = [
            self.suite.key_compromise.len(),
            self.suite.registrant_change.len(),
            self.suite.managed_tls.len(),
        ]
        .iter()
        .sum();
        format!(
            "First-party staleness (key rotation, Table 2 control group)\n  {} rotations; median first-party staleness {} days (mean {:.0})\n  vs {} third-party stale certs — the third-party classes are the security-relevant subset\n",
            cdf.len(),
            cdf.median().unwrap_or(0),
            cdf.mean().unwrap_or(0.0),
            third_party_total,
        )
    }

    /// Export every figure's data series as `(filename, csv)` pairs for
    /// external plotting.
    pub fn export_csv(&self) -> Vec<(String, String)> {
        use stale_core::report::render_csv;
        let mut files = Vec::new();
        // Figure 4: monthly KC by issuer.
        let mut grouped = GroupedMonthlySeries::new();
        for r in &self.suite.key_compromise {
            grouped.add(&r.issuer, r.invalidation);
        }
        let mut rows = Vec::new();
        for (issuer, series) in &grouped.groups {
            for (ym, count) in series.rows() {
                rows.push(vec![issuer.clone(), ym.to_string(), count.to_string()]);
            }
        }
        files.push((
            "fig4_kc_by_ca.csv".into(),
            render_csv(&["issuer", "month", "count"], &rows),
        ));
        // Figures 6 and 8: per-class distribution points.
        for class in [
            StalenessClass::RegistrantChange,
            StalenessClass::ManagedTlsDeparture,
            StalenessClass::KeyCompromise,
        ] {
            let slug = match class {
                StalenessClass::RegistrantChange => "registrant_change",
                StalenessClass::ManagedTlsDeparture => "managed_tls",
                StalenessClass::KeyCompromise => "key_compromise",
            };
            let cdf = self.staleness_cdf(class);
            let rows: Vec<Vec<String>> = cdf
                .points()
                .into_iter()
                .map(|(x, p)| vec![x.to_string(), format!("{p:.6}")])
                .collect();
            files.push((
                format!("fig6_cdf_{slug}.csv"),
                render_csv(&["staleness_days", "cdf"], &rows),
            ));
            let curve = SurvivalCurve::from_records(self.records(class).iter());
            let rows: Vec<Vec<String>> = curve
                .points()
                .into_iter()
                .map(|(x, sv)| vec![x.to_string(), format!("{sv:.6}")])
                .collect();
            files.push((
                format!("fig8_survival_{slug}.csv"),
                render_csv(&["days_since_issuance", "survival"], &rows),
            ));
        }
        // Figure 9: cap sweep.
        let mut rows = Vec::new();
        for class in [
            StalenessClass::RegistrantChange,
            StalenessClass::ManagedTlsDeparture,
            StalenessClass::KeyCompromise,
        ] {
            let sim = LifetimeSimulation::new(self.records(class).iter());
            for cap in [30i64, 45, 60, 90, 120, 180, 215, 300, 398] {
                let r = sim.apply_cap(cap);
                rows.push(vec![
                    class.label().to_string(),
                    cap.to_string(),
                    format!("{:.6}", r.staleness_reduction()),
                    format!("{:.6}", r.elimination_rate()),
                ]);
            }
        }
        files.push((
            "fig9_cap_sweep.csv".into(),
            render_csv(
                &[
                    "class",
                    "cap_days",
                    "staleness_reduction",
                    "elimination_rate",
                ],
                &rows,
            ),
        ));
        files
    }

    /// Tables 1 and 2: the certificate-information and invalidation-event
    /// taxonomy, rendered from the `stale_core::taxonomy` types (these are
    /// definitional tables in the paper body, reproduced for completeness).
    pub fn taxonomy_tables(&self) -> String {
        use stale_core::taxonomy::{CertInfoCategory, InvalidationEvent, SecurityImpact};
        let cat = |c: CertInfoCategory| match c {
            CertInfoCategory::SubscriberAuthentication => "Subscriber authentication",
            CertInfoCategory::KeyAuthorization => "Key authorization",
            CertInfoCategory::IssuerInformation => "Issuer information",
            CertInfoCategory::CertificateMetadata => "Certificate metadata",
        };
        let impact = |i: SecurityImpact| match i {
            SecurityImpact::ThirdPartyImpersonation => "Third-party. TLS domain impersonation.",
            SecurityImpact::FirstPartyMinimal => "First-party. Minimal.",
            SecurityImpact::FirstPartyOverPermissioned => "First-party. Over-permissioned.",
        };
        let events = [
            (
                InvalidationEvent::DomainOwnershipChange,
                "Domain registrant change (§5.2)",
            ),
            (
                InvalidationEvent::DomainUseChange,
                "Domain expiration + no new owner",
            ),
            (
                InvalidationEvent::KeyOwnershipChange,
                "Key compromise (§5.1)",
            ),
            (
                InvalidationEvent::KeyUseChange,
                "Key disuse: e.g., rotation",
            ),
            (
                InvalidationEvent::ManagedTlsDeparture,
                "Managed TLS departure (§5.3)",
            ),
            (
                InvalidationEvent::KeyAuthorizationChange,
                "Key scope reduction",
            ),
            (
                InvalidationEvent::RevocationInfoChange,
                "CA infrastructure change",
            ),
        ];
        let rows: Vec<Vec<String>> = events
            .iter()
            .map(|(e, example)| {
                vec![
                    format!("{e:?}"),
                    cat(e.category()).to_string(),
                    example.to_string(),
                    impact(e.impact()).to_string(),
                ]
            })
            .collect();
        format!(
            "Tables 1–2 — Certificate invalidation event taxonomy\n{}",
            render_table(
                &["Event", "Category", "Example", "Security implications"],
                &rows
            )
        )
    }

    /// Run everything in paper order.
    pub fn run_all(&self) -> String {
        [
            self.taxonomy_tables(),
            self.table3(),
            self.fig4(),
            self.fig5a(),
            self.fig5b(),
            self.table4(),
            self.table5(),
            self.fig6(),
            self.table6(),
            self.fig7(),
            self.fig8(),
            self.fig9(),
            self.table7(),
            self.mitigations(),
            self.first_party(),
        ]
        .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn experiments() -> Experiments {
        Experiments::new(ScenarioConfig::tiny())
    }

    #[test]
    fn all_experiments_run_on_tiny_world() {
        let e = experiments();
        let out = e.run_all();
        for marker in [
            "Table 3",
            "Table 4",
            "Table 5",
            "Table 6",
            "Table 7",
            "Figure 4",
            "Figure 5a",
            "Figure 5b",
            "Figure 6",
            "Figure 7",
            "Figure 8",
            "Figure 9",
        ] {
            assert!(out.contains(marker), "missing {marker}");
        }
    }

    #[test]
    fn detectors_find_all_three_classes() {
        let e = experiments();
        assert!(!e.suite.key_compromise.is_empty(), "KC records");
        assert!(!e.suite.registrant_change.is_empty(), "RC records");
        assert!(!e.suite.managed_tls.is_empty(), "MTD records");
    }

    #[test]
    fn fig9_reductions_monotone_in_cap() {
        let e = experiments();
        for class in [
            StalenessClass::KeyCompromise,
            StalenessClass::RegistrantChange,
            StalenessClass::ManagedTlsDeparture,
        ] {
            let sim = LifetimeSimulation::new(e.records(class).iter());
            let r: Vec<f64> = sim
                .paper_caps()
                .iter()
                .map(|c| c.staleness_reduction())
                .collect();
            assert!(r[0] >= r[1] && r[1] >= r[2], "{class:?}: {r:?}");
        }
    }

    #[test]
    fn survival_consistent_with_records() {
        let e = experiments();
        let curve = SurvivalCurve::from_records(e.suite.registrant_change.iter());
        assert_eq!(curve.len(), e.suite.registrant_change.len());
        assert!(curve.survival_at(0) <= 1.0);
    }
}
