//! Layer 2: the worker pool with panic isolation and retry.
//!
//! Shards are jobs on a shared queue drained by a fixed pool of scoped
//! threads. A shard that panics is caught with `catch_unwind`, retried
//! once in place, and — if it panics again — reported as a
//! [`DegradedShard`] while every other shard's results survive. Results
//! flow back over a bounded channel so the supervisor can checkpoint each
//! completion incrementally.
//!
//! Observability: every attempt runs under its own span (child of the
//! caller's detect span), panic recoveries get a marker span, and the
//! registry accumulates `supervisor.*` counters. Queue depths are
//! recorded as a bounded [`Histogram`] instead of a per-pop vector, so
//! supervisor memory stays fixed on arbitrarily large runs. None of this
//! is read back by the pool: scheduling depends only on the queue.

use obs::{Histogram, Obs, SpanId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Mutex;

/// A shard that kept panicking and was abandoned after its retries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradedShard {
    /// Shard index.
    pub shard: usize,
    /// The panic payload of the final attempt.
    pub error: String,
    /// Attempts made (retry policy: 2).
    pub attempts: u32,
}

/// How often a failing shard is attempted before it degrades.
pub const MAX_ATTEMPTS: u32 = 2;

/// Outcome of one job, as sent back to the supervisor.
enum JobResult<T> {
    Done {
        shard: usize,
        attempts: u32,
        value: T,
    },
    Failed(DegradedShard),
}

/// A finished shard as `(shard, attempts, value)`; `None` if degraded.
pub type ShardResult<T> = Option<(usize, u32, T)>;

/// Run `jobs` shard jobs on `workers` threads. `run(shard, attempt, span)`
/// does the work (attempt counts from 1; `span` is the attempt's span id,
/// for nesting detector child spans); `on_complete(shard, attempts, &T)`
/// is called on the supervisor thread after each success, in completion
/// order (for incremental checkpointing). Returns per-shard results in
/// shard order (`None` for degraded shards), the degraded list sorted by
/// shard, and the queue-depth histogram.
pub fn run_shards<T, F>(
    jobs: Vec<usize>,
    workers: usize,
    obs: &Obs,
    parent: SpanId,
    run: F,
    mut on_complete: impl FnMut(usize, u32, &T),
) -> (Vec<ShardResult<T>>, Vec<DegradedShard>, Histogram)
where
    T: Send,
    F: Fn(usize, u32, SpanId) -> T + Sync,
{
    let max_shard = jobs.iter().copied().max().map(|m| m + 1).unwrap_or(0);
    let total = jobs.len();
    let workers = workers.clamp(1, total.max(1));

    let queue: Mutex<VecDeque<usize>> = Mutex::new(jobs.into());
    let depths: Mutex<Histogram> = Mutex::new(Histogram::depth());
    // Bounded: workers block rather than buffering unbounded results.
    let (tx, rx) = mpsc::sync_channel::<JobResult<T>>(workers * 2);

    let mut results: Vec<ShardResult<T>> = (0..max_shard).map(|_| None).collect();
    let mut degraded: Vec<DegradedShard> = Vec::new();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let queue = &queue;
            let depths = &depths;
            let run = &run;
            scope.spawn(move || loop {
                let shard = {
                    // A poisoned lock only means another worker panicked
                    // mid-shard; the queue itself is a plain VecDeque and
                    // stays consistent, so recover and keep draining.
                    let mut q = queue.lock().unwrap_or_else(|e| e.into_inner());
                    let job = q.pop_front();
                    if job.is_some() {
                        depths
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .observe(q.len() as u64);
                    }
                    job
                };
                let Some(shard) = shard else { break };
                let mut attempt = 1;
                let outcome = loop {
                    obs.registry.add("supervisor.attempts", 1);
                    // The attempt span is created (and dropped) outside
                    // catch_unwind so a panicking shard never unwinds
                    // through the guard's Drop.
                    let span = obs
                        .trace
                        .child(parent, &format!("shard {shard} attempt {attempt}"));
                    let span_id = span.id();
                    let result = catch_unwind(AssertUnwindSafe(|| run(shard, attempt, span_id)));
                    drop(span);
                    match result {
                        Ok(value) => {
                            break JobResult::Done {
                                shard,
                                attempts: attempt,
                                value,
                            };
                        }
                        Err(payload) if attempt < MAX_ATTEMPTS => {
                            drop(payload);
                            obs.registry.add("supervisor.panics_recovered", 1);
                            obs.registry.add("supervisor.retries", 1);
                            let mut recovery = obs
                                .trace
                                .child(span_id, &format!("panic-recovery shard {shard}"));
                            recovery.count("attempt", attempt as u64);
                            drop(recovery);
                            attempt += 1;
                        }
                        Err(payload) => {
                            obs.registry.add("supervisor.panics_recovered", 1);
                            obs.registry.add("supervisor.degraded_shards", 1);
                            break JobResult::Failed(DegradedShard {
                                shard,
                                error: panic_message(payload),
                                attempts: attempt,
                            });
                        }
                    }
                };
                if tx.send(outcome).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        for outcome in rx.iter().take(total) {
            match outcome {
                JobResult::Done {
                    shard,
                    attempts,
                    value,
                } => {
                    on_complete(shard, attempts, &value);
                    results[shard] = Some((shard, attempts, value));
                }
                JobResult::Failed(d) => degraded.push(d),
            }
        }
    });

    degraded.sort_by_key(|d| d.shard);
    let depths = depths.into_inner().unwrap_or_else(|e| e.into_inner());
    (results, degraded, depths)
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_jobs_complete() {
        let obs = Obs::disabled();
        let (results, degraded, depths) = run_shards(
            vec![0, 1, 2, 3],
            2,
            &obs,
            SpanId::none(),
            |shard, _, _| shard * 10,
            |_, _, _| {},
        );
        assert!(degraded.is_empty());
        let values: Vec<usize> = results.into_iter().map(|r| r.unwrap().2).collect();
        assert_eq!(values, vec![0, 10, 20, 30]);
        assert_eq!(depths.count(), 4);
    }

    #[test]
    fn panicking_shard_degrades_others_survive() {
        let obs = Obs::disabled();
        let (results, degraded, _) = run_shards(
            vec![0, 1, 2],
            2,
            &obs,
            SpanId::none(),
            |shard, _, _| {
                if shard == 1 {
                    panic!("shard 1 is cursed");
                }
                shard
            },
            |_, _, _| {},
        );
        assert_eq!(degraded.len(), 1);
        assert_eq!(degraded[0].shard, 1);
        assert_eq!(degraded[0].attempts, MAX_ATTEMPTS);
        assert!(degraded[0].error.contains("cursed"));
        assert!(results[0].is_some() && results[1].is_none() && results[2].is_some());
        let counters = obs.registry.snapshot().counters;
        assert_eq!(counters["supervisor.degraded_shards"], 1);
        assert_eq!(counters["supervisor.panics_recovered"], 2);
        assert_eq!(counters["supervisor.retries"], 1);
    }

    #[test]
    fn first_attempt_panic_is_retried() {
        let obs = Obs::disabled();
        let tries = AtomicUsize::new(0);
        let (results, degraded, _) = run_shards(
            vec![0],
            1,
            &obs,
            SpanId::none(),
            |shard, attempt, _| {
                tries.fetch_add(1, Ordering::SeqCst);
                if attempt == 1 {
                    panic!("transient");
                }
                shard + 100
            },
            |_, _, _| {},
        );
        assert!(degraded.is_empty());
        assert_eq!(tries.load(Ordering::SeqCst), 2);
        let (shard, attempts, value) = results[0].unwrap();
        assert_eq!((shard, attempts, value), (0, 2, 100));
        assert_eq!(obs.registry.snapshot().counters["supervisor.attempts"], 2);
    }

    #[test]
    fn completion_callback_sees_every_success() {
        let obs = Obs::disabled();
        let mut seen = Vec::new();
        run_shards(
            vec![3, 5],
            2,
            &obs,
            SpanId::none(),
            |shard, _, _| shard,
            |shard, _, _| seen.push(shard),
        );
        seen.sort_unstable();
        assert_eq!(seen, vec![3, 5]);
    }

    #[test]
    fn attempt_spans_nest_under_parent_with_recovery_markers() {
        let obs = Obs::enabled();
        let root = obs.span("detect");
        let root_id = root.id();
        run_shards(
            vec![0],
            1,
            &obs,
            root_id,
            |_, attempt, _| {
                if attempt == 1 {
                    panic!("transient");
                }
                0usize
            },
            |_, _, _| {},
        );
        drop(root);
        let records = obs.trace.records();
        let attempts: Vec<_> = records
            .iter()
            .filter(|r| r.name.starts_with("shard 0 attempt"))
            .collect();
        assert_eq!(attempts.len(), 2);
        assert!(attempts.iter().all(|r| r.parent == Some(0)));
        assert!(records
            .iter()
            .any(|r| r.name.starts_with("panic-recovery shard 0")));
    }
}
