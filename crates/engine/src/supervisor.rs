//! Layer 2: the worker pool with panic isolation and retry.
//!
//! Shards are jobs on a shared queue drained by a fixed pool of scoped
//! threads. A shard that panics is caught with `catch_unwind`, retried
//! once in place, and — if it panics again — reported as a
//! [`DegradedShard`] while every other shard's results survive. Results
//! flow back over a bounded channel so the supervisor can checkpoint each
//! completion incrementally.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Mutex;

/// A shard that kept panicking and was abandoned after its retries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradedShard {
    /// Shard index.
    pub shard: usize,
    /// The panic payload of the final attempt.
    pub error: String,
    /// Attempts made (retry policy: 2).
    pub attempts: u32,
}

/// How often a failing shard is attempted before it degrades.
pub const MAX_ATTEMPTS: u32 = 2;

/// Outcome of one job, as sent back to the supervisor.
enum JobResult<T> {
    Done {
        shard: usize,
        attempts: u32,
        value: T,
    },
    Failed(DegradedShard),
}

/// Depth of the job queue when a worker popped, in pop order.
pub type QueueDepths = Vec<usize>;

/// A finished shard as `(shard, attempts, value)`; `None` if degraded.
pub type ShardResult<T> = Option<(usize, u32, T)>;

/// Run `jobs` shard jobs on `workers` threads. `run(shard, attempt)` does
/// the work (attempt counts from 1); `on_complete(shard, attempts, &T)` is
/// called on the supervisor thread after each success, in completion
/// order (for incremental checkpointing). Returns per-shard results in
/// shard order (`None` for degraded shards), the degraded list sorted by
/// shard, and the observed queue depths.
pub fn run_shards<T, F>(
    jobs: Vec<usize>,
    workers: usize,
    run: F,
    mut on_complete: impl FnMut(usize, u32, &T),
) -> (Vec<ShardResult<T>>, Vec<DegradedShard>, QueueDepths)
where
    T: Send,
    F: Fn(usize, u32) -> T + Sync,
{
    let max_shard = jobs.iter().copied().max().map(|m| m + 1).unwrap_or(0);
    let total = jobs.len();
    let workers = workers.clamp(1, total.max(1));

    let queue: Mutex<VecDeque<usize>> = Mutex::new(jobs.into());
    let depths: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    // Bounded: workers block rather than buffering unbounded results.
    let (tx, rx) = mpsc::sync_channel::<JobResult<T>>(workers * 2);

    let mut results: Vec<ShardResult<T>> = (0..max_shard).map(|_| None).collect();
    let mut degraded: Vec<DegradedShard> = Vec::new();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let queue = &queue;
            let depths = &depths;
            let run = &run;
            scope.spawn(move || loop {
                let shard = {
                    // A poisoned lock only means another worker panicked
                    // mid-shard; the queue itself is a plain VecDeque and
                    // stays consistent, so recover and keep draining.
                    let mut q = queue.lock().unwrap_or_else(|e| e.into_inner());
                    let job = q.pop_front();
                    if job.is_some() {
                        depths
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push(q.len());
                    }
                    job
                };
                let Some(shard) = shard else { break };
                let mut attempt = 1;
                let outcome = loop {
                    match catch_unwind(AssertUnwindSafe(|| run(shard, attempt))) {
                        Ok(value) => {
                            break JobResult::Done {
                                shard,
                                attempts: attempt,
                                value,
                            };
                        }
                        Err(payload) if attempt < MAX_ATTEMPTS => {
                            drop(payload);
                            attempt += 1;
                        }
                        Err(payload) => {
                            break JobResult::Failed(DegradedShard {
                                shard,
                                error: panic_message(payload),
                                attempts: attempt,
                            });
                        }
                    }
                };
                if tx.send(outcome).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        for outcome in rx.iter().take(total) {
            match outcome {
                JobResult::Done {
                    shard,
                    attempts,
                    value,
                } => {
                    on_complete(shard, attempts, &value);
                    results[shard] = Some((shard, attempts, value));
                }
                JobResult::Failed(d) => degraded.push(d),
            }
        }
    });

    degraded.sort_by_key(|d| d.shard);
    let depths = depths.into_inner().unwrap_or_else(|e| e.into_inner());
    (results, degraded, depths)
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_jobs_complete() {
        let (results, degraded, depths) =
            run_shards(vec![0, 1, 2, 3], 2, |shard, _| shard * 10, |_, _, _| {});
        assert!(degraded.is_empty());
        let values: Vec<usize> = results.into_iter().map(|r| r.unwrap().2).collect();
        assert_eq!(values, vec![0, 10, 20, 30]);
        assert_eq!(depths.len(), 4);
    }

    #[test]
    fn panicking_shard_degrades_others_survive() {
        let (results, degraded, _) = run_shards(
            vec![0, 1, 2],
            2,
            |shard, _| {
                if shard == 1 {
                    panic!("shard 1 is cursed");
                }
                shard
            },
            |_, _, _| {},
        );
        assert_eq!(degraded.len(), 1);
        assert_eq!(degraded[0].shard, 1);
        assert_eq!(degraded[0].attempts, MAX_ATTEMPTS);
        assert!(degraded[0].error.contains("cursed"));
        assert!(results[0].is_some() && results[1].is_none() && results[2].is_some());
    }

    #[test]
    fn first_attempt_panic_is_retried() {
        let tries = AtomicUsize::new(0);
        let (results, degraded, _) = run_shards(
            vec![0],
            1,
            |shard, attempt| {
                tries.fetch_add(1, Ordering::SeqCst);
                if attempt == 1 {
                    panic!("transient");
                }
                shard + 100
            },
            |_, _, _| {},
        );
        assert!(degraded.is_empty());
        assert_eq!(tries.load(Ordering::SeqCst), 2);
        let (shard, attempts, value) = results[0].unwrap();
        assert_eq!((shard, attempts, value), (0, 2, 100));
    }

    #[test]
    fn completion_callback_sees_every_success() {
        let mut seen = Vec::new();
        run_shards(
            vec![3, 5],
            2,
            |shard, _| shard,
            |shard, _, _| seen.push(shard),
        );
        seen.sort_unstable();
        assert_eq!(seen, vec![3, 5]);
    }
}
