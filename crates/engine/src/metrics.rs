//! Layer 3: the engine's lightweight metrics registry.
//!
//! Wall times are measured with `std::time::Instant` and recorded in
//! microseconds; they are observability only and never feed back into
//! results (which stay byte-deterministic).

use serde::{Deserialize, Serialize};

/// One pipeline stage (partition, detect, merge).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageMetrics {
    /// Stage name.
    pub name: String,
    /// Wall time, microseconds.
    pub wall_us: u64,
    /// Items entering the stage.
    pub items_in: usize,
    /// Items leaving the stage.
    pub items_out: usize,
}

/// One shard's detector timings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardMetrics {
    /// Shard index.
    pub shard: usize,
    /// Total wall time, microseconds.
    pub wall_us: u64,
    /// Key-compromise join time.
    pub kc_us: u64,
    /// Registrant-change detection time.
    pub rc_us: u64,
    /// Managed-TLS detection time.
    pub mtd_us: u64,
    /// Items routed into the shard.
    pub items_in: usize,
    /// Matches/records the shard emitted.
    pub items_out: usize,
    /// Attempts taken (2 means the first attempt panicked).
    pub attempts: u32,
}

/// One ingested day-batch in incremental mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestBatchMetrics {
    /// Last day the batch covers.
    pub day: String,
    /// Days in the batch.
    pub days: usize,
    /// Wall time to route + ingest the batch across all shards.
    pub wall_us: u64,
    /// Delta items ingested (certificates, CRL records, WHOIS pairs, DNS
    /// changes).
    pub items: usize,
    /// Stale events emitted by the batch.
    pub events: usize,
}

/// Incremental-mode ingest observability: per-day (per-batch) latency.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IngestMetrics {
    /// Configured days per delta.
    pub day_batch: usize,
    /// Total days ingested this run (excludes checkpoint-resumed days).
    pub days: usize,
    /// Per-batch detail, in feed order.
    pub batches: Vec<IngestBatchMetrics>,
}

impl IngestMetrics {
    /// Mean wall time per ingested day.
    pub fn mean_day_us(&self) -> u64 {
        if self.days == 0 {
            return 0;
        }
        let total: u64 = self.batches.iter().map(|b| b.wall_us).sum();
        total / self.days as u64
    }

    /// The slowest batch, if any.
    pub fn slowest(&self) -> Option<&IngestBatchMetrics> {
        self.batches.iter().max_by_key(|b| b.wall_us)
    }

    /// Total stale events emitted.
    pub fn events(&self) -> usize {
        self.batches.iter().map(|b| b.events).sum()
    }
}

/// The whole run's metrics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineMetrics {
    /// Pipeline stages, in execution order.
    pub stages: Vec<StageMetrics>,
    /// Per-shard detail, in shard order (degraded shards absent).
    pub shards: Vec<ShardMetrics>,
    /// Queue depth observed at each job pop, in pop order.
    pub queue_depths: Vec<usize>,
    /// Shards restored from a checkpoint instead of recomputed.
    pub resumed_shards: usize,
    /// Incremental-mode ingest detail (`None` for batch runs).
    pub ingest: Option<IngestMetrics>,
}

impl EngineMetrics {
    /// Ratio of the busiest shard's input to the mean shard input
    /// (1.0 = perfectly balanced). `None` with no shard data.
    pub fn shard_skew(&self) -> Option<f64> {
        if self.shards.is_empty() {
            return None;
        }
        let total: usize = self.shards.iter().map(|s| s.items_in).sum();
        let mean = total as f64 / self.shards.len() as f64;
        if mean == 0.0 {
            return Some(1.0);
        }
        let max = self.shards.iter().map(|s| s.items_in).max().unwrap_or(0);
        Some(max as f64 / mean)
    }

    /// Deepest queue observed.
    pub fn max_queue_depth(&self) -> usize {
        self.queue_depths.iter().copied().max().unwrap_or(0)
    }

    /// Render the human-readable summary table the repro binary prints.
    pub fn render_table(&self) -> String {
        let human = |us: u64| -> String {
            if us < 1_000 {
                format!("{us} µs")
            } else if us < 1_000_000 {
                format!("{:.2} ms", us as f64 / 1_000.0)
            } else {
                format!("{:.3} s", us as f64 / 1_000_000.0)
            }
        };
        let mut out = String::new();
        out.push_str("engine metrics\n");
        out.push_str("  stage         wall        in        out\n");
        for s in &self.stages {
            out.push_str(&format!(
                "  {:<12}  {:>9}  {:>8}  {:>8}\n",
                s.name,
                human(s.wall_us),
                s.items_in,
                s.items_out
            ));
        }
        if !self.shards.is_empty() {
            out.push_str(
                "  shard         wall        kc        rc       mtd        in       out  att\n",
            );
            for s in &self.shards {
                out.push_str(&format!(
                    "  {:<12}  {:>9}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}  {:>3}\n",
                    format!("#{}", s.shard),
                    human(s.wall_us),
                    human(s.kc_us),
                    human(s.rc_us),
                    human(s.mtd_us),
                    s.items_in,
                    s.items_out,
                    s.attempts
                ));
            }
        }
        if let Some(skew) = self.shard_skew() {
            out.push_str(&format!(
                "  skew {:.2}x, max queue depth {}, resumed {} shard(s)\n",
                skew,
                self.max_queue_depth(),
                self.resumed_shards
            ));
        }
        if let Some(ingest) = &self.ingest {
            out.push_str(&format!(
                "  ingest: {} day(s) in {} batch(es) of {}, {} event(s), mean {}/day",
                ingest.days,
                ingest.batches.len(),
                ingest.day_batch,
                ingest.events(),
                human(ingest.mean_day_us()),
            ));
            if let Some(slow) = ingest.slowest() {
                out.push_str(&format!(
                    ", slowest batch {} ({} items) {}",
                    slow.day,
                    slow.items,
                    human(slow.wall_us)
                ));
            }
            if self.resumed_shards > 0 {
                out.push_str(&format!(", resumed {} shard(s)", self.resumed_shards));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(id: usize, items_in: usize) -> ShardMetrics {
        ShardMetrics {
            shard: id,
            wall_us: 1500,
            kc_us: 500,
            rc_us: 500,
            mtd_us: 500,
            items_in,
            items_out: 1,
            attempts: 1,
        }
    }

    #[test]
    fn skew_and_depth() {
        let mut m = EngineMetrics::default();
        assert_eq!(m.shard_skew(), None);
        m.shards = vec![shard(0, 10), shard(1, 30)];
        m.queue_depths = vec![2, 1, 0];
        assert_eq!(m.shard_skew(), Some(1.5));
        assert_eq!(m.max_queue_depth(), 2);
    }

    #[test]
    fn table_mentions_stages_and_shards() {
        let m = EngineMetrics {
            stages: vec![StageMetrics {
                name: "partition".into(),
                wall_us: 1234,
                items_in: 10,
                items_out: 10,
            }],
            shards: vec![shard(0, 5)],
            queue_depths: vec![1, 0],
            resumed_shards: 0,
            ingest: None,
        };
        let t = m.render_table();
        assert!(t.contains("partition"));
        assert!(t.contains("#0"));
        assert!(t.contains("skew"));
    }
}
