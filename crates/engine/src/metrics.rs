//! Layer 3: the engine's run metrics.
//!
//! Wall times are measured with `std::time::Instant` and recorded in
//! microseconds; they are observability only and never feed back into
//! results (which stay byte-deterministic). Unbounded per-observation
//! vectors (queue depths, per-batch ingest latencies) are folded into
//! bounded [`obs::HistogramSnapshot`]s so a large run's metrics stay a
//! fixed size; exact maxima are preserved (`max_queue_depth` reads the
//! histogram's exact max, not an estimate).

// Self-timing with `Instant` is sanctioned in the metrics layer.
// stale-lint: trusted-file(wallclock-in-detector)

use obs::HistogramSnapshot;
use serde::{Deserialize, Serialize};

/// One pipeline stage (partition, detect, merge).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageMetrics {
    /// Stage name.
    pub name: String,
    /// Wall time, microseconds.
    pub wall_us: u64,
    /// Items entering the stage.
    pub items_in: usize,
    /// Items leaving the stage.
    pub items_out: usize,
}

/// One shard's detector timings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardMetrics {
    /// Shard index.
    pub shard: usize,
    /// Total wall time, microseconds.
    pub wall_us: u64,
    /// Key-compromise join time.
    pub kc_us: u64,
    /// Registrant-change detection time.
    pub rc_us: u64,
    /// Managed-TLS detection time.
    pub mtd_us: u64,
    /// Items routed into the shard.
    pub items_in: usize,
    /// Matches/records the shard emitted.
    pub items_out: usize,
    /// Attempts taken (2 means the first attempt panicked).
    pub attempts: u32,
}

/// A shard that degraded (kept panicking); it contributed no results
/// but the metrics table still accounts for it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradedShardMetrics {
    /// Shard index.
    pub shard: usize,
    /// Attempts made before the shard was abandoned.
    pub attempts: u32,
}

/// One ingested day-batch in incremental mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestBatchMetrics {
    /// Last day the batch covers.
    pub day: String,
    /// Days in the batch.
    pub days: usize,
    /// Wall time to route + ingest the batch across all shards.
    pub wall_us: u64,
    /// Delta items ingested (certificates, CRL records, WHOIS pairs, DNS
    /// changes).
    pub items: usize,
    /// Stale events emitted by the batch.
    pub events: usize,
}

/// Incremental-mode ingest observability. Per-batch latency is a bounded
/// histogram (plus the single slowest batch, kept verbatim), so the
/// metrics stay fixed-size no matter how many days a run replays.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IngestMetrics {
    /// Configured days per delta.
    pub day_batch: usize,
    /// Total days ingested this run (excludes checkpoint-resumed days).
    pub days: usize,
    /// Batches ingested this run.
    pub batches: usize,
    /// Delta items ingested across all batches.
    pub items: usize,
    /// Stale events emitted across all batches.
    pub events: usize,
    /// Per-batch wall-time distribution (sum = total ingest wall).
    pub batch_wall: HistogramSnapshot,
    /// The slowest batch, verbatim.
    pub slowest: Option<IngestBatchMetrics>,
}

impl IngestMetrics {
    /// Mean wall time per ingested day.
    pub fn mean_day_us(&self) -> u64 {
        if self.days == 0 {
            return 0;
        }
        self.batch_wall.sum / self.days as u64
    }

    /// The slowest batch, if any.
    pub fn slowest(&self) -> Option<&IngestBatchMetrics> {
        self.slowest.as_ref()
    }

    /// Total stale events emitted.
    pub fn events(&self) -> usize {
        self.events
    }
}

/// The whole run's metrics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineMetrics {
    /// Pipeline stages, in execution order.
    pub stages: Vec<StageMetrics>,
    /// Per-shard detail, in shard order (degraded shards listed in
    /// [`EngineMetrics::degraded`] instead).
    pub shards: Vec<ShardMetrics>,
    /// Shards that degraded, in shard order.
    pub degraded: Vec<DegradedShardMetrics>,
    /// Queue depth observed at each job pop, as a bounded histogram
    /// (exact max preserved).
    pub queue_depth: HistogramSnapshot,
    /// Shards restored from a checkpoint instead of recomputed.
    pub resumed_shards: usize,
    /// Incremental-mode ingest detail (`None` for batch runs).
    pub ingest: Option<IngestMetrics>,
}

impl EngineMetrics {
    /// Ratio of the busiest shard's input to the mean shard input
    /// (1.0 = perfectly balanced). `None` with no shard data.
    pub fn shard_skew(&self) -> Option<f64> {
        if self.shards.is_empty() {
            return None;
        }
        let total: usize = self.shards.iter().map(|s| s.items_in).sum();
        let mean = total as f64 / self.shards.len() as f64;
        if mean == 0.0 {
            return Some(1.0);
        }
        let max = self.shards.iter().map(|s| s.items_in).max().unwrap_or(0);
        Some(max as f64 / mean)
    }

    /// Deepest queue observed (exact: the histogram tracks max).
    pub fn max_queue_depth(&self) -> usize {
        self.queue_depth.max as usize
    }

    /// Render the human-readable summary table the repro binary prints.
    pub fn render_table(&self) -> String {
        let human = |us: u64| -> String {
            if us < 1_000 {
                format!("{us} µs")
            } else if us < 1_000_000 {
                format!("{:.2} ms", us as f64 / 1_000.0)
            } else {
                format!("{:.3} s", us as f64 / 1_000_000.0)
            }
        };
        let mut out = String::new();
        out.push_str("engine metrics\n");
        out.push_str("  stage         wall        in        out\n");
        for s in &self.stages {
            out.push_str(&format!(
                "  {:<12}  {:>9}  {:>8}  {:>8}\n",
                s.name,
                human(s.wall_us),
                s.items_in,
                s.items_out
            ));
        }
        if !self.shards.is_empty() || !self.degraded.is_empty() {
            out.push_str(
                "  shard         wall        kc        rc       mtd        in       out  att\n",
            );
            // Interleave healthy and degraded rows in shard order, so the
            // table accounts for every shard instead of skipping failures.
            let mut healthy = self.shards.iter().peekable();
            let mut failed = self.degraded.iter().peekable();
            loop {
                let next_healthy = healthy.peek().map(|s| s.shard);
                let next_failed = failed.peek().map(|d| d.shard);
                match (next_healthy, next_failed) {
                    (Some(h), Some(f)) if f < h => {
                        render_degraded_row(&mut out, failed.next());
                    }
                    (Some(_), _) => {
                        if let Some(s) = healthy.next() {
                            out.push_str(&format!(
                                "  {:<12}  {:>9}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}  {:>3}\n",
                                format!("#{}", s.shard),
                                human(s.wall_us),
                                human(s.kc_us),
                                human(s.rc_us),
                                human(s.mtd_us),
                                s.items_in,
                                s.items_out,
                                s.attempts
                            ));
                        }
                    }
                    (None, Some(_)) => {
                        render_degraded_row(&mut out, failed.next());
                    }
                    (None, None) => break,
                }
            }
        }
        if let Some(skew) = self.shard_skew() {
            out.push_str(&format!(
                "  skew {:.2}x, max queue depth {}, resumed {} shard(s)\n",
                skew,
                self.max_queue_depth(),
                self.resumed_shards
            ));
        }
        if let Some(ingest) = &self.ingest {
            out.push_str(&format!(
                "  ingest: {} day(s) in {} batch(es) of {}, {} event(s), mean {}/day (p90 {}/batch)",
                ingest.days,
                ingest.batches,
                ingest.day_batch,
                ingest.events(),
                human(ingest.mean_day_us()),
                human(ingest.batch_wall.p90),
            ));
            if let Some(slow) = ingest.slowest() {
                out.push_str(&format!(
                    ", slowest batch {} ({} items) {}",
                    slow.day,
                    slow.items,
                    human(slow.wall_us)
                ));
            }
            if self.resumed_shards > 0 {
                out.push_str(&format!(", resumed {} shard(s)", self.resumed_shards));
            }
            out.push('\n');
        }
        out
    }
}

fn render_degraded_row(out: &mut String, d: Option<&DegradedShardMetrics>) {
    if let Some(d) = d {
        out.push_str(&format!(
            "  {:<12}  {:>9}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}  {:>3}\n",
            format!("#{}", d.shard),
            "DEGRADED",
            "-",
            "-",
            "-",
            "-",
            "-",
            d.attempts
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::Histogram;

    fn shard(id: usize, items_in: usize) -> ShardMetrics {
        ShardMetrics {
            shard: id,
            wall_us: 1500,
            kc_us: 500,
            rc_us: 500,
            mtd_us: 500,
            items_in,
            items_out: 1,
            attempts: 1,
        }
    }

    fn depths(values: &[u64]) -> HistogramSnapshot {
        let mut h = Histogram::depth();
        for &v in values {
            h.observe(v);
        }
        h.snapshot()
    }

    #[test]
    fn skew_and_depth() {
        let mut m = EngineMetrics::default();
        assert_eq!(m.shard_skew(), None);
        m.shards = vec![shard(0, 10), shard(1, 30)];
        m.queue_depth = depths(&[2, 1, 0]);
        assert_eq!(m.shard_skew(), Some(1.5));
        assert_eq!(m.max_queue_depth(), 2);
    }

    #[test]
    fn bounded_depth_histogram_preserves_exact_max() {
        // The histogram replaces the unbounded Vec<usize>: whatever the
        // observation count, max_queue_depth stays exact.
        let observations: Vec<u64> = (0..10_000).map(|i| i % 37).collect();
        let m = EngineMetrics {
            queue_depth: depths(&observations),
            ..Default::default()
        };
        assert_eq!(m.max_queue_depth(), 36);
        assert_eq!(m.queue_depth.count, 10_000);
        // Fixed size: the snapshot's buckets are the ladder, not the data.
        assert_eq!(m.queue_depth.counts.len(), m.queue_depth.bounds.len() + 1);
    }

    #[test]
    fn table_mentions_stages_and_shards() {
        let m = EngineMetrics {
            stages: vec![StageMetrics {
                name: "partition".into(),
                wall_us: 1234,
                items_in: 10,
                items_out: 10,
            }],
            shards: vec![shard(0, 5)],
            degraded: Vec::new(),
            queue_depth: depths(&[1, 0]),
            resumed_shards: 0,
            ingest: None,
        };
        let t = m.render_table();
        assert!(t.contains("partition"));
        assert!(t.contains("#0"));
        assert!(t.contains("skew"));
    }

    #[test]
    fn table_accounts_for_degraded_shards() {
        let m = EngineMetrics {
            stages: Vec::new(),
            shards: vec![shard(0, 5), shard(2, 5)],
            degraded: vec![DegradedShardMetrics {
                shard: 1,
                attempts: 2,
            }],
            queue_depth: depths(&[1, 0]),
            resumed_shards: 0,
            ingest: None,
        };
        let t = m.render_table();
        let lines: Vec<&str> = t.lines().collect();
        let row = |tag: &str| {
            lines
                .iter()
                .position(|l| l.trim_start().starts_with(tag))
                .unwrap_or_else(|| panic!("no row for {tag} in:\n{t}"))
        };
        // Every shard has a row, in shard order, and the degraded row
        // names the state and the attempts taken.
        assert!(row("#0") < row("#1") && row("#1") < row("#2"));
        let degraded_line = lines[row("#1")];
        assert!(degraded_line.contains("DEGRADED"));
        assert!(degraded_line.trim_end().ends_with('2'));
    }

    #[test]
    fn ingest_mean_uses_histogram_sum() {
        let mut batch_wall = Histogram::latency_us();
        batch_wall.observe(100);
        batch_wall.observe(300);
        let ingest = IngestMetrics {
            day_batch: 1,
            days: 2,
            batches: 2,
            items: 10,
            events: 3,
            batch_wall: batch_wall.snapshot(),
            slowest: Some(IngestBatchMetrics {
                day: "2023-05-02".into(),
                days: 1,
                wall_us: 300,
                items: 7,
                events: 2,
            }),
        };
        assert_eq!(ingest.mean_day_us(), 200);
        assert_eq!(ingest.events(), 3);
        assert_eq!(ingest.slowest().map(|b| b.wall_us), Some(300));
    }
}
