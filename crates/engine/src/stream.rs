//! The incremental streaming driver: day-deltas → persistent shard state.
//!
//! [`Engine::run_incremental`] replays a [`worldsim::DayFeed`] through the
//! same shard partition the batch driver uses, but instead of handing each
//! shard its complete slice at once, it routes one [`worldsim::DayDelta`]
//! at a time into per-shard [`stale_core::incremental`] detector state.
//! Every delta emits [`stale_core::incremental::StaleEvent`]s as staleness
//! periods open; the final report is produced by `finish()`ing each
//! shard's state and running the **same** deterministic merge as batch
//! mode ([`crate::engine::merge_suite`]), which is what makes the two
//! drivers byte-identical over the same bundle.
//!
//! Routing mirrors [`crate::partition::partition`] rule for rule:
//!
//! * certificates → first-SAN e2LD shard (key compromise), every SAN-e2LD
//!   shard (registrant change), every customer-routing-key shard (managed
//!   TLS, marker certificates only);
//! * CRL records → broadcast to every shard (the join key is `(AKI,
//!   serial)`, not a domain);
//! * WHOIS observations → the domain's shard;
//! * DNS change-log entries → the scan target's customer-routing-key
//!   shard, which is exactly the set of domains the shard's `owned`
//!   predicate accepts in batch mode.
//!
//! With `EngineConfig::checkpoint` set, the per-shard state is snapshotted
//! (schema v2, [`crate::checkpoint::StreamCheckpoint`]) every
//! `checkpoint_every_days` ingested days and after the final delta; a
//! matching checkpoint resumes ingestion after its last recorded day.

use crate::checkpoint::{ShardStateSnapshot, StreamCheckpoint};
use crate::engine::{merge_suite, record_stage, Engine, EngineError, EngineReport};
use crate::metrics::{EngineMetrics, IngestBatchMetrics, IngestMetrics, StageMetrics};
use crate::partition::{mtd_routing_key, shard_of};
use obs::{CounterSink, Histogram, HistogramSnapshot, SpanId};
use psl::SuffixList;
use stale_core::detector::key_compromise::{self, RevocationAnalysis};
use stale_core::detector::managed_tls::ManagedTlsDetector;
use stale_core::detector::registrant_change::{enumerate_changes, RegistrantChangeDetector};
use stale_core::incremental::{KcIncremental, MtdIncremental, RcIncremental, StaleEvent};
use stale_core::staleness::StaleCertRecord;
use stale_types::{Date, DomainName};
use std::collections::HashMap;
use std::time::Instant;
use worldsim::{DayDelta, DayFeed, WorldDatasets};

/// One shard's live incremental state.
struct ShardState<'w> {
    kc: KcIncremental<'w>,
    rc: RcIncremental<'w>,
    mtd: MtdIncremental<'w>,
}

impl Engine {
    /// Run the detectors incrementally: replay the bundle's day feed
    /// through persistent per-shard state, emitting stale events per
    /// delta, and finish with the batch driver's deterministic merge.
    ///
    /// The resulting [`EngineReport::suite`] is byte-identical to
    /// [`Engine::run`] over the same bundle when the feed is drained
    /// (`through` unset or past the last feed day).
    pub fn run_incremental(
        &self,
        data: &WorldDatasets,
        psl: &SuffixList,
    ) -> Result<EngineReport, EngineError> {
        let obs = &self.obs;
        let mut root = obs.span("engine.run_incremental");
        let n = self.config.shards.max(1);
        root.count("shards", n as u64);
        let cutoff = RevocationAnalysis::cutoff_for(data.crl_window.start);
        let rc_detector = RegistrantChangeDetector::new(psl);
        let mtd_detector = ManagedTlsDetector::new(&data.cdn_config, psl);

        // Stage 1: index the bundle by observability day.
        let feed_start = Instant::now();
        let mut feed_span = root.child("feed");
        let feed = DayFeed::new(data);
        let feed_items = feed.delta(feed.start(), feed.end()).items();
        let through = self.config.through.unwrap_or(feed.end()).min(feed.end());
        feed_span.count("items", feed_items as u64);
        drop(feed_span);
        let stage_feed = StageMetrics {
            name: "feed".to_string(),
            wall_us: feed_start.elapsed().as_micros() as u64,
            items_in: feed_items,
            items_out: feed_items,
        };
        record_stage(&obs.registry, &stage_feed);

        // Checkpoint: resume detector state after the last ingested day. A
        // checkpoint past `through` is unusable (its state already
        // contains days the caller asked to exclude) and is discarded.
        let fingerprint = data.fingerprint();
        let restore_span = root.child("checkpoint.restore");
        let restored = self.config.checkpoint.as_ref().and_then(|path| {
            StreamCheckpoint::load(path, fingerprint, n).filter(|cp| cp.through <= through)
        });
        // Restoring re-resolves certificates by id; a checkpoint naming a
        // certificate the monitor does not hold belongs to a different
        // world and is discarded like any other mismatch.
        let restored = restored.and_then(|cp| {
            let mut states = Vec::with_capacity(cp.states.len());
            for s in &cp.states {
                let kc =
                    KcIncremental::restore(&s.kc, &data.monitor, &data.crl, cp.through, cutoff)?;
                let rc = RcIncremental::restore(&s.rc, &data.monitor, &rc_detector)?;
                let mtd = MtdIncremental::restore(&s.mtd, &data.monitor, data.adns_window)?;
                states.push(ShardState { kc, rc, mtd });
            }
            Some((cp.through, states))
        });
        let resumed_shards = if restored.is_some() { n } else { 0 };
        drop(restore_span);
        obs.registry
            .add("engine.resumed_shards", resumed_shards as u64);
        if resumed_shards > 0 {
            obs.registry.add("checkpoint.restores", 1);
        }
        let restored_through = restored.as_ref().map(|(through, _)| *through);
        let (mut states, resume_from) = match restored {
            Some((cp_through, states)) => (states, cp_through.succ()),
            None => {
                let states = (0..n)
                    .map(|_| ShardState {
                        kc: KcIncremental::new(cutoff),
                        rc: RcIncremental::new(),
                        mtd: MtdIncremental::new(data.adns_window),
                    })
                    .collect::<Vec<_>>();
                (states, feed.start())
            }
        };

        // Stage 2: ingest day-deltas, one batch of `day_batch` days at a
        // time, routing each item per the partitioner's rules.
        let ingest_start = Instant::now();
        let day_batch = self.config.day_batch.max(1);
        let mut ingest = IngestMetrics {
            day_batch,
            ..Default::default()
        };
        // Per-batch latency is folded into a bounded histogram (plus the
        // slowest batch verbatim) instead of a per-batch vector, so a
        // years-long replay's metrics stay fixed-size.
        let mut batch_wall = Histogram::latency_us();
        let mut slowest: Option<IngestBatchMetrics> = None;
        let mut events: Vec<StaleEvent> = Vec::new();
        let mut ingested_total = 0usize;
        let mut last_ingested: Option<Date> = restored_through;
        let mut days_since_ckpt = 0usize;
        for (from, to) in tile(resume_from, through, day_batch) {
            let batch_start = Instant::now();
            let mut batch_span = root.child(&format!("ingest {to}"));
            let delta = feed.delta(from, to);
            let routed = route(&delta, psl, &rc_detector, &mtd_detector, n);
            let events_before = events.len();
            for (id, (state, r)) in states.iter_mut().zip(&routed).enumerate() {
                events.extend(apply(
                    state,
                    to,
                    r,
                    &delta,
                    &rc_detector,
                    &mtd_detector,
                    |d| shard_of(&mtd_routing_key(psl, d), n) == id,
                    &obs.registry,
                ));
            }
            for state in &states {
                obs.registry.observe_depth(
                    "engine.ingest.footprint",
                    (state.kc.footprint() + state.rc.footprint() + state.mtd.footprint()) as u64,
                );
            }
            let batch_events = events.len() - events_before;
            let days = ((to - from).num_days() + 1) as usize;
            batch_span.count("days", days as u64);
            batch_span.count("items", delta.items() as u64);
            batch_span.count("events", batch_events as u64);
            drop(batch_span);
            let batch = IngestBatchMetrics {
                day: to.to_string(),
                days,
                wall_us: batch_start.elapsed().as_micros() as u64,
                items: delta.items(),
                events: batch_events,
            };
            batch_wall.observe(batch.wall_us);
            obs.registry
                .observe_latency_us("engine.ingest.batch_wall_us", batch.wall_us);
            if slowest.as_ref().is_none_or(|s| batch.wall_us > s.wall_us) {
                slowest = Some(batch.clone());
            }
            ingest.days += days;
            ingest.batches += 1;
            ingest.items += batch.items;
            ingest.events += batch.events;
            ingested_total += delta.items();
            last_ingested = Some(to);
            days_since_ckpt += days;

            if days_since_ckpt >= self.config.checkpoint_every_days.max(1) {
                self.write_checkpoint(fingerprint, n, to, &states, root.id())?;
                days_since_ckpt = 0;
            }
        }
        ingest.batch_wall = batch_wall.snapshot();
        ingest.slowest = slowest;
        // The final state is always persisted (when checkpointing at all).
        if let Some(to) = last_ingested {
            if days_since_ckpt > 0 {
                self.write_checkpoint(fingerprint, n, to, &states, root.id())?;
            }
        }
        let stage_ingest = StageMetrics {
            name: "ingest".to_string(),
            wall_us: ingest_start.elapsed().as_micros() as u64,
            items_in: ingested_total,
            items_out: events.len(),
        };
        record_stage(&obs.registry, &stage_ingest);

        // Stage 3: finish each shard's state and run the batch merge.
        let merge_start = Instant::now();
        let mut merge_span = root.child("merge");
        let kc: Vec<_> = states.iter().map(|s| s.kc.finish()).collect();
        let change_index: HashMap<(DomainName, Date), usize> = enumerate_changes(&data.whois)
            .into_iter()
            .map(|c| ((c.domain, c.creation), c.index))
            .collect();
        let mut rc: Vec<Vec<(usize, StaleCertRecord)>> = Vec::with_capacity(states.len());
        for s in &states {
            let mut shard_rc = Vec::new();
            for (domain, creation, record) in s.rc.finish() {
                let key = (domain, creation);
                let Some(&index) = change_index.get(&key) else {
                    return Err(EngineError::Inconsistent(format!(
                        "registrant change for {} at {} has no entry in the global enumeration",
                        key.0, key.1
                    )));
                };
                shard_rc.push((index, record));
            }
            rc.push(shard_rc);
        }
        let mtd: Vec<_> = states
            .iter_mut()
            .map(|s| s.mtd.finish(&mtd_detector))
            .collect();
        // Decision audit: rc/mtd decisions re-derived from each shard's
        // final state, kc decisions expanded from the global join — the
        // same inputs the batch driver audits, so the merged report is
        // identical across modes.
        let audit = if self.config.audit {
            let mut decisions = Vec::new();
            let mut losers = Vec::new();
            for s in &states {
                decisions.extend(s.rc.decisions());
                decisions.extend(s.mtd.decisions());
                losers.extend(s.kc.losers());
            }
            decisions.extend(key_compromise::audit_decisions(&data.crl, &kc, &losers));
            let report = obs::AuditReport::from_decisions(decisions);
            report.register_coverage(&obs.registry);
            Some(report)
        } else {
            None
        };
        let emitted: usize = kc.iter().map(Vec::len).sum::<usize>()
            + rc.iter().map(Vec::len).sum::<usize>()
            + mtd.iter().map(Vec::len).sum::<usize>();
        let suite = merge_suite(data.crl.records().len(), cutoff, kc, rc, mtd);
        let merged =
            suite.key_compromise.len() + suite.registrant_change.len() + suite.managed_tls.len();
        merge_span.count("merged", merged as u64);
        drop(merge_span);
        let stage_merge = StageMetrics {
            name: "merge".to_string(),
            wall_us: merge_start.elapsed().as_micros() as u64,
            items_in: emitted,
            items_out: merged,
        };
        record_stage(&obs.registry, &stage_merge);

        let metrics = EngineMetrics {
            stages: vec![stage_feed, stage_ingest, stage_merge],
            shards: Vec::new(),
            degraded: Vec::new(),
            queue_depth: HistogramSnapshot::default(),
            resumed_shards,
            ingest: Some(ingest),
        };
        Ok(EngineReport {
            suite,
            degraded: Vec::new(),
            metrics,
            shards: n,
            events,
            audit,
        })
    }

    fn write_checkpoint(
        &self,
        fingerprint: u64,
        shards: usize,
        through: Date,
        states: &[ShardState<'_>],
        parent: SpanId,
    ) -> Result<(), EngineError> {
        let Some(path) = &self.config.checkpoint else {
            return Ok(());
        };
        let save_start = Instant::now();
        let mut span = self.obs.trace.child(parent, "checkpoint.save");
        span.count("shards", shards as u64);
        let cp = StreamCheckpoint {
            version: StreamCheckpoint::VERSION,
            fingerprint,
            shards,
            through,
            states: states
                .iter()
                .enumerate()
                .map(|(shard, s)| ShardStateSnapshot {
                    shard,
                    kc: s.kc.save(),
                    rc: s.rc.save(),
                    mtd: s.mtd.save(),
                })
                .collect(),
        };
        let result = cp.save(path).map_err(EngineError::Checkpoint);
        drop(span);
        self.obs.registry.add("checkpoint.saves", 1);
        self.obs.registry.observe_latency_us(
            "checkpoint.save_us",
            save_start.elapsed().as_micros() as u64,
        );
        result
    }
}

/// Consecutive `[from, to]` windows of `step` days tiling `[from, through]`.
fn tile(from: Date, through: Date, step: usize) -> Vec<(Date, Date)> {
    let step = step.max(1) as i64;
    let mut out = Vec::new();
    let mut from = from;
    while from <= through {
        let to = (from + stale_types::Duration::days(step - 1)).min(through);
        out.push((from, to));
        from = to.succ();
    }
    out
}

/// One shard's routed slice of a delta (indexes into the delta's vectors
/// are avoided — references are cheap and keep the ingest call sites flat).
#[derive(Default)]
struct RoutedDelta<'w> {
    kc_certs: Vec<&'w ct::monitor::DedupedCert>,
    rc_certs: Vec<&'w ct::monitor::DedupedCert>,
    mtd_certs: Vec<&'w ct::monitor::DedupedCert>,
    whois: Vec<(&'w DomainName, Date)>,
    dns: Vec<(Date, &'w DomainName, &'w dns::scan::DnsView)>,
}

/// Route one delta's items into per-shard slices, mirroring
/// [`crate::partition::partition`] exactly. The CRL is not routed — it is
/// broadcast, so every shard ingests `delta.crl` directly.
fn route<'w>(
    delta: &DayDelta<'w>,
    psl: &SuffixList,
    rc_detector: &RegistrantChangeDetector<'_>,
    mtd_detector: &ManagedTlsDetector<'_>,
    n: usize,
) -> Vec<RoutedDelta<'w>> {
    let mut routed: Vec<RoutedDelta<'w>> = (0..n).map(|_| RoutedDelta::default()).collect();
    for cert in &delta.certs {
        let sans = cert.certificate.tbs.san();
        let kc_shard = match sans.first() {
            Some(first) => {
                let key = psl.e2ld_of_san(first).unwrap_or_else(|_| first.clone());
                shard_of(&key, n)
            }
            None => 0,
        };
        if let Some(slot) = routed.get_mut(kc_shard) {
            slot.kc_certs.push(cert);
        }

        let mut rc_shards: Vec<usize> = rc_detector
            .cert_e2lds(cert)
            .iter()
            .map(|e2ld| shard_of(e2ld, n))
            .collect();
        rc_shards.sort_unstable();
        rc_shards.dedup();
        for s in rc_shards {
            if let Some(slot) = routed.get_mut(s) {
                slot.rc_certs.push(cert);
            }
        }

        if mtd_detector.is_managed_cert(cert) {
            let mut mtd_shards: Vec<usize> = mtd_detector
                .customer_domains(cert)
                .into_iter()
                .filter(|d| !d.is_wildcard())
                .map(|d| shard_of(&mtd_routing_key(psl, d), n))
                .collect();
            mtd_shards.sort_unstable();
            mtd_shards.dedup();
            for s in mtd_shards {
                if let Some(slot) = routed.get_mut(s) {
                    slot.mtd_certs.push(cert);
                }
            }
        }
    }
    for (domain, creation) in &delta.whois {
        if let Some(slot) = routed.get_mut(shard_of(domain, n)) {
            slot.whois.push((domain, *creation));
        }
    }
    for (date, domain, view) in &delta.dns {
        if let Some(slot) = routed.get_mut(shard_of(&mtd_routing_key(psl, domain), n)) {
            slot.dns.push((*date, domain, view));
        }
    }
    routed
}

/// Ingest one shard's routed slice into its state, in detector order.
/// Item counts flow into `sink` (`detector.*.ingest.*`), which is
/// write-only — ingestion cannot depend on what was recorded.
#[allow(clippy::too_many_arguments)]
fn apply<'w>(
    state: &mut ShardState<'w>,
    discovered: Date,
    routed: &RoutedDelta<'w>,
    delta: &DayDelta<'w>,
    rc_detector: &RegistrantChangeDetector<'_>,
    mtd_detector: &ManagedTlsDetector<'_>,
    owned: impl Fn(&DomainName) -> bool,
    sink: &dyn CounterSink,
) -> Vec<StaleEvent> {
    let mut events = state
        .kc
        .ingest_day_observed(discovered, &routed.kc_certs, &delta.crl, sink);
    events.extend(state.rc.ingest_day_observed(
        discovered,
        rc_detector,
        &routed.rc_certs,
        &routed.whois,
        sink,
    ));
    events.extend(state.mtd.ingest_day_observed(
        discovered,
        mtd_detector,
        &routed.mtd_certs,
        &routed.dns,
        owned,
        sink,
    ));
    events
}
