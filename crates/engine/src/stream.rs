//! The incremental streaming driver: day-deltas → persistent shard state.
//!
//! Self-timing with `Instant` is sanctioned here (delta metrics never
//! feed detection results), and slice indexing is in scope for the
//! panic rule: the indices below come from routed feeds and restored
//! checkpoints.
//!
//! Two consumers share the machinery here:
//!
//! * [`Engine::run_incremental`] replays a complete [`worldsim::DayFeed`]
//!   through the same shard partition the batch driver uses and finishes
//!   with the batch merge, which is what makes the two drivers
//!   byte-identical over the same bundle.
//! * [`IncrementalState`] is the long-lived core of that loop, exposed as
//!   a query-safe read API for the resident daemon (`stale-served`): it
//!   owns the per-shard [`stale_core::incremental`] detector state,
//!   ingests one [`worldsim::DayDelta`] at a time, snapshots/restores
//!   checkpoint schema v2, and materializes a [`StateView`] — the merged
//!   [`DetectionSuite`] plus the merged decision audit — **without
//!   consuming the state**, so a daemon can answer queries after every
//!   ingested day and keep ingesting.
//!
//! Routing mirrors [`crate::partition::partition`] rule for rule:
//!
//! * certificates → first-SAN e2LD shard (key compromise), every SAN-e2LD
//!   shard (registrant change), every customer-routing-key shard (managed
//!   TLS, marker certificates only);
//! * CRL records → broadcast to every shard (the join key is `(AKI,
//!   serial)`, not a domain);
//! * WHOIS observations → the domain's shard;
//! * DNS change-log entries → the scan target's customer-routing-key
//!   shard, which is exactly the set of domains the shard's `owned`
//!   predicate accepts in batch mode.
//!
//! With `EngineConfig::checkpoint` set, the per-shard state is snapshotted
//! (schema v2, [`crate::checkpoint::StreamCheckpoint`]) every
//! `checkpoint_every_days` ingested days and after the final delta; a
//! matching checkpoint resumes ingestion after its last recorded day.

// stale-lint: trusted-file(wallclock-in-detector)
// stale-lint: scope(panic-index)

use crate::checkpoint::{ShardStateSnapshot, StreamCheckpoint};
use crate::engine::{merge_suite, record_stage, Engine, EngineError, EngineReport};
use crate::metrics::{EngineMetrics, IngestBatchMetrics, IngestMetrics, StageMetrics};
use crate::partition::{mtd_routing_key, shard_of};
use obs::{AuditReport, CounterSink, Histogram, HistogramSnapshot, SpanId};
use psl::SuffixList;
use stale_core::detector::key_compromise::{self, RevocationAnalysis};
use stale_core::detector::managed_tls::ManagedTlsDetector;
use stale_core::detector::registrant_change::{enumerate_changes, RegistrantChangeDetector};
use stale_core::detector::DetectionSuite;
use stale_core::incremental::{KcIncremental, MtdIncremental, RcIncremental, StaleEvent};
use stale_core::staleness::StaleCertRecord;
use stale_types::{Date, DomainName};
use std::collections::HashMap;
use std::time::Instant;
use worldsim::{DayDelta, DayFeed, WorldDatasets};

/// One shard's live incremental state.
struct ShardState<'w> {
    kc: KcIncremental<'w>,
    rc: RcIncremental<'w>,
    mtd: MtdIncremental<'w>,
}

/// A materialized answer over everything ingested so far: the merged
/// detector suite and (when requested) the merged decision audit. Both
/// are produced by the **same** finish + merge the batch driver runs, so
/// a view over a drained feed is byte-identical to a batch report.
pub struct StateView {
    /// Merged detector outputs in canonical order.
    pub suite: DetectionSuite,
    /// Merged decision audit (`None` when the view was taken without
    /// auditing).
    pub audit: Option<AuditReport>,
}

/// Persistent per-shard incremental detector state with a query-safe
/// read surface.
///
/// The state borrows the world (`'w`) — certificates, CRL records and
/// scan histories are referenced, never copied — so it lives alongside a
/// [`WorldDatasets`] owned by the caller (the engine driver's stack
/// frame, or the daemon's state-actor thread).
///
/// Determinism: ingesting the same deltas in the same order yields the
/// same state regardless of how they were batched (a multi-day delta is
/// exactly the concatenation of its single-day deltas), and
/// [`IncrementalState::view`] is non-destructive and repeatable — two
/// views with no ingest between them render identical bytes.
pub struct IncrementalState<'w> {
    data: &'w WorldDatasets,
    psl: &'w SuffixList,
    shards: usize,
    cutoff: Date,
    states: Vec<ShardState<'w>>,
    through: Option<Date>,
}

impl<'w> IncrementalState<'w> {
    /// Fresh state at `shards` width over `data`.
    pub fn new(data: &'w WorldDatasets, psl: &'w SuffixList, shards: usize) -> Self {
        let n = shards.max(1);
        let cutoff = RevocationAnalysis::cutoff_for(data.crl_window.start);
        let states = (0..n)
            .map(|_| ShardState {
                kc: KcIncremental::new(cutoff),
                rc: RcIncremental::new(),
                mtd: MtdIncremental::new(data.adns_window),
            })
            .collect();
        IncrementalState {
            data,
            psl,
            shards: n,
            cutoff,
            states,
            through: None,
        }
    }

    /// Restore from a schema-v2 checkpoint over the *same* bundle.
    ///
    /// `None` when the checkpoint belongs to a different world
    /// (fingerprint mismatch) or names a certificate the monitor does not
    /// hold — stale state is discarded, never trusted. Restoring
    /// re-resolves certificate bodies by id; the checkpoint stores only
    /// ids.
    // stale-lint: entry(serial)
    pub fn restore(
        data: &'w WorldDatasets,
        psl: &'w SuffixList,
        cp: &StreamCheckpoint,
    ) -> Option<Self> {
        if cp.version != StreamCheckpoint::VERSION
            || cp.fingerprint != data.fingerprint()
            || cp.states.len() != cp.shards
        {
            return None;
        }
        let cutoff = RevocationAnalysis::cutoff_for(data.crl_window.start);
        let rc_detector = RegistrantChangeDetector::new(psl);
        let mut states = Vec::with_capacity(cp.states.len());
        for s in &cp.states {
            let kc = KcIncremental::restore(&s.kc, &data.monitor, &data.crl, cp.through, cutoff)?;
            let rc = RcIncremental::restore(&s.rc, &data.monitor, &rc_detector)?;
            let mtd = MtdIncremental::restore(&s.mtd, &data.monitor, data.adns_window)?;
            states.push(ShardState { kc, rc, mtd });
        }
        Some(IncrementalState {
            data,
            psl,
            shards: cp.shards.max(1),
            cutoff,
            states,
            through: Some(cp.through),
        })
    }

    /// Partition width.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Last ingested day (`None` before the first delta).
    pub fn through(&self) -> Option<Date> {
        self.through
    }

    /// Approximate retained-entry footprint across all shards.
    pub fn footprint(&self) -> usize {
        self.states
            .iter()
            .map(|s| s.kc.footprint() + s.rc.footprint() + s.mtd.footprint())
            .sum()
    }

    /// Ingest one delta: route every item per the partitioner's rules and
    /// apply each shard's slice to its state. Returns the stale events
    /// the delta revealed, in shard order. Item counts flow into `sink`
    /// (write-only; ingestion cannot depend on what was recorded).
    // stale-lint: entry(serial)
    pub fn ingest_delta(
        &mut self,
        delta: &DayDelta<'w>,
        sink: &dyn CounterSink,
    ) -> Vec<StaleEvent> {
        let n = self.shards;
        let psl = self.psl;
        let rc_detector = RegistrantChangeDetector::new(psl);
        let mtd_detector = ManagedTlsDetector::new(&self.data.cdn_config, psl);
        let routed = route(delta, psl, &rc_detector, &mtd_detector, n);
        let mut events = Vec::new();
        for (id, (state, r)) in self.states.iter_mut().zip(&routed).enumerate() {
            events.extend(apply(
                state,
                delta.to,
                r,
                delta,
                &rc_detector,
                &mtd_detector,
                |d| shard_of(&mtd_routing_key(psl, d), n) == id,
                sink,
            ));
        }
        self.through = Some(delta.to);
        events
    }

    /// Snapshot the state as a schema-v2 checkpoint. `None` until the
    /// first delta has been ingested (an empty state has no `through`
    /// day, and resuming it is the same as starting fresh).
    pub fn snapshot(&self) -> Option<StreamCheckpoint> {
        let through = self.through?;
        Some(StreamCheckpoint {
            version: StreamCheckpoint::VERSION,
            fingerprint: self.data.fingerprint(),
            shards: self.shards,
            through,
            states: self
                .states
                .iter()
                .enumerate()
                .map(|(shard, s)| ShardStateSnapshot {
                    shard,
                    kc: s.kc.save(),
                    rc: s.rc.save(),
                    mtd: s.mtd.save(),
                })
                .collect(),
        })
    }

    /// Materialize the merged suite (and, with `audit`, the merged
    /// decision audit) over everything ingested so far — the batch
    /// driver's finish + merge, without consuming the state.
    ///
    /// Every call over the same ingested prefix renders identical bytes,
    /// and a view over the drained feed is byte-identical to
    /// [`Engine::run`] over the same bundle.
    pub fn view(&self, audit: bool) -> Result<StateView, EngineError> {
        Ok(self.view_counted(audit)?.0)
    }

    /// [`IncrementalState::view`] plus the pre-merge emitted-item count
    /// (the sum of every shard's finished kc/rc/mtd outputs) — what the
    /// engine's merge-stage metrics report as `items_in`.
    pub fn view_counted(&self, audit: bool) -> Result<(StateView, usize), EngineError> {
        let mtd_detector = ManagedTlsDetector::new(&self.data.cdn_config, self.psl);
        let kc: Vec<_> = self.states.iter().map(|s| s.kc.finish()).collect();
        let change_index: HashMap<(DomainName, Date), usize> = enumerate_changes(&self.data.whois)
            .into_iter()
            .map(|c| ((c.domain, c.creation), c.index))
            .collect();
        let mut rc: Vec<Vec<(usize, StaleCertRecord)>> = Vec::with_capacity(self.states.len());
        for s in &self.states {
            let mut shard_rc = Vec::new();
            for (domain, creation, record) in s.rc.finish() {
                let key = (domain, creation);
                let Some(&index) = change_index.get(&key) else {
                    return Err(EngineError::Inconsistent(format!(
                        "registrant change for {} at {} has no entry in the global enumeration",
                        key.0, key.1
                    )));
                };
                shard_rc.push((index, record));
            }
            rc.push(shard_rc);
        }
        let mtd: Vec<_> = self
            .states
            .iter()
            .map(|s| s.mtd.finish(&mtd_detector))
            .collect();
        // Decision audit: rc/mtd decisions re-derived from each shard's
        // state, kc decisions expanded from the global join — the same
        // inputs the batch driver audits, so the merged report is
        // identical across modes (and across daemon vs batch).
        let audit = if audit {
            let mut decisions = Vec::new();
            let mut losers = Vec::new();
            for s in &self.states {
                decisions.extend(s.rc.decisions());
                decisions.extend(s.mtd.decisions());
                losers.extend(s.kc.losers());
            }
            decisions.extend(key_compromise::audit_decisions(
                &self.data.crl,
                &kc,
                &losers,
            ));
            Some(AuditReport::from_decisions(decisions))
        } else {
            None
        };
        let emitted: usize = kc.iter().map(Vec::len).sum::<usize>()
            + rc.iter().map(Vec::len).sum::<usize>()
            + mtd.iter().map(Vec::len).sum::<usize>();
        let suite = merge_suite(self.data.crl.records().len(), self.cutoff, kc, rc, mtd);
        Ok((StateView { suite, audit }, emitted))
    }
}

impl Engine {
    /// Run the detectors incrementally: replay the bundle's day feed
    /// through persistent per-shard state, emitting stale events per
    /// delta, and finish with the batch driver's deterministic merge.
    ///
    /// The resulting [`EngineReport::suite`] is byte-identical to
    /// [`Engine::run`] over the same bundle when the feed is drained
    /// (`through` unset or past the last feed day).
    // stale-lint: entry(serial)
    pub fn run_incremental(
        &self,
        data: &WorldDatasets,
        psl: &SuffixList,
    ) -> Result<EngineReport, EngineError> {
        let obs = &self.obs;
        let mut root = obs.span("engine.run_incremental");
        let n = self.config.shards.max(1);
        root.count("shards", n as u64);

        // Stage 1: index the bundle by observability day.
        let feed_start = Instant::now();
        let mut feed_span = root.child("feed");
        let feed = DayFeed::new(data);
        let feed_items = feed.delta(feed.start(), feed.end()).items();
        let through = self.config.through.unwrap_or(feed.end()).min(feed.end());
        feed_span.count("items", feed_items as u64);
        drop(feed_span);
        let stage_feed = StageMetrics {
            name: "feed".to_string(),
            wall_us: feed_start.elapsed().as_micros() as u64,
            items_in: feed_items,
            items_out: feed_items,
        };
        record_stage(&obs.registry, &stage_feed);

        // Checkpoint: resume detector state after the last ingested day. A
        // checkpoint past `through` is unusable (its state already
        // contains days the caller asked to exclude) and is discarded.
        let fingerprint = data.fingerprint();
        let restore_span = root.child("checkpoint.restore");
        let restored = self
            .config
            .checkpoint
            .as_ref()
            .and_then(|path| {
                StreamCheckpoint::load(path, fingerprint, n).filter(|cp| cp.through <= through)
            })
            .and_then(|cp| IncrementalState::restore(data, psl, &cp));
        let resumed_shards = if restored.is_some() { n } else { 0 };
        drop(restore_span);
        obs.registry
            .add("engine.resumed_shards", resumed_shards as u64);
        if resumed_shards > 0 {
            obs.registry.add("checkpoint.restores", 1);
        }
        let mut state = restored.unwrap_or_else(|| IncrementalState::new(data, psl, n));
        let resume_from = match state.through() {
            Some(cp_through) => cp_through.succ(),
            None => feed.start(),
        };

        // Stage 2: ingest day-deltas, one batch of `day_batch` days at a
        // time, routing each item per the partitioner's rules.
        let ingest_start = Instant::now();
        let day_batch = self.config.day_batch.max(1);
        let mut ingest = IngestMetrics {
            day_batch,
            ..Default::default()
        };
        // Per-batch latency is folded into a bounded histogram (plus the
        // slowest batch verbatim) instead of a per-batch vector, so a
        // years-long replay's metrics stay fixed-size.
        let mut batch_wall = Histogram::latency_us();
        let mut slowest: Option<IngestBatchMetrics> = None;
        let mut events: Vec<StaleEvent> = Vec::new();
        let mut ingested_total = 0usize;
        let mut days_since_ckpt = 0usize;
        for (from, to) in tile(resume_from, through, day_batch) {
            let batch_start = Instant::now();
            let mut batch_span = root.child(&format!("ingest {to}"));
            let delta = feed.delta(from, to);
            let events_before = events.len();
            events.extend(state.ingest_delta(&delta, &obs.registry));
            obs.registry
                .observe_depth("engine.ingest.footprint", state.footprint() as u64);
            let batch_events = events.len() - events_before;
            let days = ((to - from).num_days() + 1) as usize;
            batch_span.count("days", days as u64);
            batch_span.count("items", delta.items() as u64);
            batch_span.count("events", batch_events as u64);
            drop(batch_span);
            let batch = IngestBatchMetrics {
                day: to.to_string(),
                days,
                wall_us: batch_start.elapsed().as_micros() as u64,
                items: delta.items(),
                events: batch_events,
            };
            batch_wall.observe(batch.wall_us);
            obs.registry
                .observe_latency_us("engine.ingest.batch_wall_us", batch.wall_us);
            if slowest.as_ref().is_none_or(|s| batch.wall_us > s.wall_us) {
                slowest = Some(batch.clone());
            }
            ingest.days += days;
            ingest.batches += 1;
            ingest.items += batch.items;
            ingest.events += batch.events;
            ingested_total += delta.items();
            days_since_ckpt += days;

            if days_since_ckpt >= self.config.checkpoint_every_days.max(1) {
                self.write_checkpoint(&state, root.id())?;
                days_since_ckpt = 0;
            }
        }
        ingest.batch_wall = batch_wall.snapshot();
        ingest.slowest = slowest;
        // The final state is always persisted (when checkpointing at all).
        if days_since_ckpt > 0 {
            self.write_checkpoint(&state, root.id())?;
        }
        let stage_ingest = StageMetrics {
            name: "ingest".to_string(),
            wall_us: ingest_start.elapsed().as_micros() as u64,
            items_in: ingested_total,
            items_out: events.len(),
        };
        record_stage(&obs.registry, &stage_ingest);

        // Stage 3: finish each shard's state and run the batch merge.
        let merge_start = Instant::now();
        let mut merge_span = root.child("merge");
        let (StateView { suite, audit }, emitted) = state.view_counted(self.config.audit)?;
        if let Some(report) = &audit {
            report.register_coverage(&obs.registry);
        }
        let merged =
            suite.key_compromise.len() + suite.registrant_change.len() + suite.managed_tls.len();
        merge_span.count("merged", merged as u64);
        drop(merge_span);
        let stage_merge = StageMetrics {
            name: "merge".to_string(),
            wall_us: merge_start.elapsed().as_micros() as u64,
            items_in: emitted,
            items_out: merged,
        };
        record_stage(&obs.registry, &stage_merge);

        let metrics = EngineMetrics {
            stages: vec![stage_feed, stage_ingest, stage_merge],
            shards: Vec::new(),
            degraded: Vec::new(),
            queue_depth: HistogramSnapshot::default(),
            resumed_shards,
            ingest: Some(ingest),
        };
        Ok(EngineReport {
            suite,
            degraded: Vec::new(),
            metrics,
            shards: n,
            events,
            audit,
        })
    }

    fn write_checkpoint(
        &self,
        state: &IncrementalState<'_>,
        parent: SpanId,
    ) -> Result<(), EngineError> {
        let Some(path) = &self.config.checkpoint else {
            return Ok(());
        };
        let Some(cp) = state.snapshot() else {
            return Ok(());
        };
        let save_start = Instant::now();
        let mut span = self.obs.trace.child(parent, "checkpoint.save");
        span.count("shards", cp.shards as u64);
        let result = cp.save(path).map_err(EngineError::Checkpoint);
        drop(span);
        self.obs.registry.add("checkpoint.saves", 1);
        self.obs.registry.observe_latency_us(
            "checkpoint.save_us",
            save_start.elapsed().as_micros() as u64,
        );
        result
    }
}

/// Consecutive `[from, to]` windows of `step` days tiling `[from, through]`.
fn tile(from: Date, through: Date, step: usize) -> Vec<(Date, Date)> {
    let step = step.max(1) as i64;
    let mut out = Vec::new();
    let mut from = from;
    while from <= through {
        let to = (from + stale_types::Duration::days(step - 1)).min(through);
        out.push((from, to));
        from = to.succ();
    }
    out
}

/// One shard's routed slice of a delta (indexes into the delta's vectors
/// are avoided — references are cheap and keep the ingest call sites flat).
#[derive(Default)]
struct RoutedDelta<'w> {
    kc_certs: Vec<&'w ct::monitor::DedupedCert>,
    rc_certs: Vec<&'w ct::monitor::DedupedCert>,
    mtd_certs: Vec<&'w ct::monitor::DedupedCert>,
    whois: Vec<(&'w DomainName, Date)>,
    dns: Vec<(Date, &'w DomainName, &'w dns::scan::DnsView)>,
}

/// Route one delta's items into per-shard slices, mirroring
/// [`crate::partition::partition`] exactly. The CRL is not routed — it is
/// broadcast, so every shard ingests `delta.crl` directly.
fn route<'w>(
    delta: &DayDelta<'w>,
    psl: &SuffixList,
    rc_detector: &RegistrantChangeDetector<'_>,
    mtd_detector: &ManagedTlsDetector<'_>,
    n: usize,
) -> Vec<RoutedDelta<'w>> {
    let mut routed: Vec<RoutedDelta<'w>> = (0..n).map(|_| RoutedDelta::default()).collect();
    for cert in &delta.certs {
        let sans = cert.certificate.tbs.san();
        let kc_shard = match sans.first() {
            Some(first) => {
                let key = psl.e2ld_of_san(first).unwrap_or_else(|_| first.clone());
                shard_of(&key, n)
            }
            None => 0,
        };
        if let Some(slot) = routed.get_mut(kc_shard) {
            slot.kc_certs.push(cert);
        }

        let mut rc_shards: Vec<usize> = rc_detector
            .cert_e2lds(cert)
            .iter()
            .map(|e2ld| shard_of(e2ld, n))
            .collect();
        rc_shards.sort_unstable();
        rc_shards.dedup();
        for s in rc_shards {
            if let Some(slot) = routed.get_mut(s) {
                slot.rc_certs.push(cert);
            }
        }

        if mtd_detector.is_managed_cert(cert) {
            let mut mtd_shards: Vec<usize> = mtd_detector
                .customer_domains(cert)
                .into_iter()
                .filter(|d| !d.is_wildcard())
                .map(|d| shard_of(&mtd_routing_key(psl, d), n))
                .collect();
            mtd_shards.sort_unstable();
            mtd_shards.dedup();
            for s in mtd_shards {
                if let Some(slot) = routed.get_mut(s) {
                    slot.mtd_certs.push(cert);
                }
            }
        }
    }
    for (domain, creation) in &delta.whois {
        if let Some(slot) = routed.get_mut(shard_of(domain, n)) {
            slot.whois.push((domain, *creation));
        }
    }
    for (date, domain, view) in &delta.dns {
        if let Some(slot) = routed.get_mut(shard_of(&mtd_routing_key(psl, domain), n)) {
            slot.dns.push((*date, domain, view));
        }
    }
    routed
}

/// Ingest one shard's routed slice into its state, in detector order.
/// Item counts flow into `sink` (`detector.*.ingest.*`), which is
/// write-only — ingestion cannot depend on what was recorded.
#[allow(clippy::too_many_arguments)]
fn apply<'w>(
    state: &mut ShardState<'w>,
    discovered: Date,
    routed: &RoutedDelta<'w>,
    delta: &DayDelta<'w>,
    rc_detector: &RegistrantChangeDetector<'_>,
    mtd_detector: &ManagedTlsDetector<'_>,
    owned: impl Fn(&DomainName) -> bool,
    sink: &dyn CounterSink,
) -> Vec<StaleEvent> {
    let mut events = state
        .kc
        .ingest_day_observed(discovered, &routed.kc_certs, &delta.crl, sink);
    events.extend(state.rc.ingest_day_observed(
        discovered,
        rc_detector,
        &routed.rc_certs,
        &routed.whois,
        sink,
    ));
    events.extend(state.mtd.ingest_day_observed(
        discovered,
        mtd_detector,
        &routed.mtd_certs,
        &routed.dns,
        owned,
        sink,
    ));
    events
}
