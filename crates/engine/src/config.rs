//! Engine configuration.

use stale_types::Date;
use std::path::PathBuf;

/// Tuning knobs for one [`crate::Engine`] run.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of shards the datasets are partitioned into. `1` degrades to
    /// a serial run through the same partition/merge machinery.
    pub shards: usize,
    /// Worker threads draining the shard queue. Capped at `shards`.
    pub workers: usize,
    /// Checkpoint file. Batch mode ([`crate::Engine::run`]): completed
    /// shards are appended after each finish and skipped when re-running
    /// against the same dataset bundle. Incremental mode
    /// ([`crate::Engine::run_incremental`]): per-shard detector state is
    /// snapshotted (schema v2) and the run resumes after the last
    /// checkpointed day.
    pub checkpoint: Option<PathBuf>,
    /// Fault injection (tests / `repro --fail-shard`): these shards panic
    /// on every attempt and end up degraded.
    pub fail_shards: Vec<usize>,
    /// Fault injection: these shards panic on their first attempt only,
    /// exercising the retry path.
    pub fail_once_shards: Vec<usize>,
    /// Incremental mode: days ingested per delta (1 = strictly daily;
    /// larger batches amortise routing overhead, results are identical).
    pub day_batch: usize,
    /// Incremental mode: stop after ingesting this day (catch-up through a
    /// cutoff). `None` drains the full feed.
    pub through: Option<Date>,
    /// Incremental mode: write the state checkpoint after at least this
    /// many ingested days (when `checkpoint` is set). The final state is
    /// always written.
    pub checkpoint_every_days: usize,
    /// Record per-candidate decision audits (`repro --audit-out`). The
    /// audit stream is write-only from the detectors' side and never
    /// alters results; [`crate::EngineReport::suite`] is byte-identical
    /// with auditing on or off.
    pub audit: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let parallelism = available_parallelism();
        EngineConfig {
            shards: parallelism,
            workers: parallelism,
            checkpoint: None,
            fail_shards: Vec::new(),
            fail_once_shards: Vec::new(),
            day_batch: 1,
            through: None,
            checkpoint_every_days: 1,
            audit: false,
        }
    }
}

impl EngineConfig {
    /// Default configuration with an explicit shard count.
    pub fn with_shards(shards: usize) -> Self {
        EngineConfig {
            shards: shards.max(1),
            ..Default::default()
        }
    }

    /// Worker count actually used: `workers`, clamped to `[1, shards]`.
    pub fn effective_workers(&self) -> usize {
        self.workers.clamp(1, self.shards.max(1))
    }
}

/// The host's available parallelism, defaulting to 1 when unknown.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
