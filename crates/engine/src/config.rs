//! Engine configuration.

use std::path::PathBuf;

/// Tuning knobs for one [`crate::Engine`] run.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of shards the datasets are partitioned into. `1` degrades to
    /// a serial run through the same partition/merge machinery.
    pub shards: usize,
    /// Worker threads draining the shard queue. Capped at `shards`.
    pub workers: usize,
    /// Checkpoint file: completed shards are appended after each finish
    /// and skipped when re-running against the same dataset bundle.
    pub checkpoint: Option<PathBuf>,
    /// Fault injection (tests / `repro --fail-shard`): these shards panic
    /// on every attempt and end up degraded.
    pub fail_shards: Vec<usize>,
    /// Fault injection: these shards panic on their first attempt only,
    /// exercising the retry path.
    pub fail_once_shards: Vec<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let parallelism = available_parallelism();
        EngineConfig {
            shards: parallelism,
            workers: parallelism,
            checkpoint: None,
            fail_shards: Vec::new(),
            fail_once_shards: Vec::new(),
        }
    }
}

impl EngineConfig {
    /// Default configuration with an explicit shard count.
    pub fn with_shards(shards: usize) -> Self {
        EngineConfig {
            shards: shards.max(1),
            ..Default::default()
        }
    }

    /// Worker count actually used: `workers`, clamped to `[1, shards]`.
    pub fn effective_workers(&self) -> usize {
        self.workers.clamp(1, self.shards.max(1))
    }
}

/// The host's available parallelism, defaulting to 1 when unknown.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
