//! Layer 1: slicing a dataset bundle into self-contained shard inputs.
//!
//! Routing rules (all keyed through [`fnv1a64`] over the routing domain):
//!
//! * **Key compromise** — certificates are routed by the e2LD of their
//!   first SAN. The CRL is keyed by `(AKI, serial)`, not by domain, so it
//!   cannot be partitioned the same way: every worker scans the full CRL
//!   against its local certificate index (a broadcast join). The merge
//!   step resolves certificates that collide on `(AKI, serial)` across
//!   shards.
//! * **Registrant change** — changes are routed by their (e2LD) domain; a
//!   certificate is duplicated into every shard that owns one of its SAN
//!   e2LDs, so each change sees every certificate naming its domain.
//! * **Managed TLS** — only provider-managed (marker-carrying)
//!   certificates participate. Each is duplicated into every shard owning
//!   one of its customer domains' routing keys; the worker-side `owned`
//!   predicate ensures each customer is evaluated by exactly one shard.

use ct::monitor::DedupedCert;
use psl::SuffixList;
use stale_core::detector::managed_tls::ManagedTlsDetector;
use stale_core::detector::registrant_change::{
    enumerate_changes, IndexedChange, RegistrantChangeDetector,
};
use stale_types::DomainName;
use worldsim::WorldDatasets;

/// FNV-1a over a byte string — the engine's stable routing hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The shard a routing domain belongs to.
pub fn shard_of(key: &DomainName, shards: usize) -> usize {
    (fnv1a64(key.as_str().as_bytes()) % shards.max(1) as u64) as usize
}

/// The routing key for a managed-TLS customer domain: its e2LD, falling
/// back to the domain itself when the suffix list cannot split it. Workers
/// and the partitioner must agree on this function.
pub fn mtd_routing_key(psl: &SuffixList, domain: &DomainName) -> DomainName {
    psl.e2ld_of_san(domain).unwrap_or_else(|_| domain.clone())
}

/// Everything one worker needs to run all three detectors on its slice.
pub struct ShardInput<'w> {
    /// Shard index in `0..shards`.
    pub id: usize,
    /// Certificates this shard indexes for the CRL join.
    pub kc_certs: Vec<&'w DedupedCert>,
    /// Registrant changes owned by this shard (with global indices).
    pub rc_changes: Vec<IndexedChange>,
    /// Certificates visible to this shard's registrant changes.
    pub rc_certs: Vec<&'w DedupedCert>,
    /// Managed certificates naming a customer owned by this shard.
    pub mtd_certs: Vec<&'w DedupedCert>,
}

impl ShardInput<'_> {
    /// Total items routed into this shard (the skew measure).
    pub fn items(&self) -> usize {
        self.kc_certs.len() + self.rc_changes.len() + self.rc_certs.len() + self.mtd_certs.len()
    }
}

/// The partitioned bundle.
pub struct Partition<'w> {
    /// One input per shard, in shard order.
    pub shards: Vec<ShardInput<'w>>,
    /// Certificates in the corpus (each shard's `kc_certs` partition this).
    pub corpus_size: usize,
    /// Registrant changes enumerated (partitioned across shards).
    pub change_count: usize,
}

/// Slice `data` into `n` self-contained shard inputs. Iteration order of
/// the corpus (cert-id order) is preserved within every shard, and the
/// union of shard inputs covers exactly the serial detectors' inputs.
pub fn partition<'w>(data: &'w WorldDatasets, psl: &SuffixList, n: usize) -> Partition<'w> {
    let n = n.max(1);
    let mut shards: Vec<ShardInput<'w>> = (0..n)
        .map(|id| ShardInput {
            id,
            kc_certs: Vec::new(),
            rc_changes: Vec::new(),
            rc_certs: Vec::new(),
            mtd_certs: Vec::new(),
        })
        .collect();

    let rc_detector = RegistrantChangeDetector::new(psl);
    let mtd_detector = ManagedTlsDetector::new(&data.cdn_config, psl);

    let mut corpus_size = 0;
    for cert in data.monitor.corpus_unfiltered() {
        corpus_size += 1;
        let sans = cert.certificate.tbs.san();

        // Key compromise: one owner, by the first SAN's e2LD.
        let kc_shard = match sans.first() {
            Some(first) => {
                let key = psl.e2ld_of_san(first).unwrap_or_else(|_| first.clone());
                shard_of(&key, n)
            }
            None => 0,
        };
        shards[kc_shard].kc_certs.push(cert);

        // Registrant change: duplicated to every shard owning a SAN e2LD.
        let mut rc_shards: Vec<usize> = rc_detector
            .cert_e2lds(cert)
            .iter()
            .map(|e2ld| shard_of(e2ld, n))
            .collect();
        rc_shards.sort_unstable();
        rc_shards.dedup();
        for s in rc_shards {
            shards[s].rc_certs.push(cert);
        }

        // Managed TLS: duplicated to every shard owning a customer domain.
        if mtd_detector.is_managed_cert(cert) {
            let mut mtd_shards: Vec<usize> = mtd_detector
                .customer_domains(cert)
                .into_iter()
                .filter(|d| !d.is_wildcard())
                .map(|d| shard_of(&mtd_routing_key(psl, d), n))
                .collect();
            mtd_shards.sort_unstable();
            mtd_shards.dedup();
            for s in mtd_shards {
                shards[s].mtd_certs.push(cert);
            }
        }
    }

    let changes = enumerate_changes(&data.whois);
    let change_count = changes.len();
    for change in changes {
        let s = shard_of(&change.domain, n);
        shards[s].rc_changes.push(change);
    }

    Partition {
        shards,
        corpus_size,
        change_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        // Reference vector for the empty string and "a" (FNV-1a 64-bit).
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn shard_of_is_in_range() {
        let d = stale_types::domain::dn("example.com");
        for n in 1..10 {
            assert!(shard_of(&d, n) < n);
        }
        assert_eq!(shard_of(&d, 1), 0);
    }
}
