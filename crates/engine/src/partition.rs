//! Layer 1: slicing a dataset bundle into self-contained shard inputs.
//!
//! Routing rules (all keyed through [`fnv1a64`] over the routing domain):
//!
//! * **Key compromise** — certificates are routed by the e2LD of their
//!   first SAN. The CRL is keyed by `(AKI, serial)`, not by domain, so it
//!   cannot be partitioned the same way: every worker scans the full CRL
//!   against its local certificate index (a broadcast join). The merge
//!   step resolves certificates that collide on `(AKI, serial)` across
//!   shards.
//! * **Registrant change** — changes are routed by their (e2LD) domain; a
//!   certificate is duplicated into every shard that owns one of its SAN
//!   e2LDs, so each change sees every certificate naming its domain.
//! * **Managed TLS** — only provider-managed (marker-carrying)
//!   certificates participate. Each is duplicated into every shard owning
//!   one of its customer domains' routing keys; the worker-side `owned`
//!   predicate ensures each customer is evaluated by exactly one shard.

use ct::monitor::DedupedCert;
use psl::SuffixList;
use stale_core::detector::managed_tls::ManagedTlsDetector;
use stale_core::detector::registrant_change::{
    enumerate_changes, IndexedChange, RegistrantChangeDetector,
};
use stale_core::views::RoutedWorld;
pub use stale_core::views::{fnv1a64, route_hash};
use stale_types::DomainName;
use worldsim::WorldDatasets;

/// The shard a routing domain belongs to.
pub fn shard_of(key: &DomainName, shards: usize) -> usize {
    (route_hash(key.as_str()) % shards.max(1) as u64) as usize
}

/// The routing key for a managed-TLS customer domain: its e2LD, falling
/// back to the domain itself when the suffix list cannot split it. Workers
/// and the partitioner must agree on this function.
pub fn mtd_routing_key(psl: &SuffixList, domain: &DomainName) -> DomainName {
    psl.e2ld_of_san(domain).unwrap_or_else(|_| domain.clone())
}

/// Everything one worker needs to run all three detectors on its slice.
pub struct ShardInput<'w> {
    /// Shard index in `0..shards`.
    pub id: usize,
    /// Certificates this shard indexes for the CRL join.
    pub kc_certs: Vec<&'w DedupedCert>,
    /// Registrant changes owned by this shard (with global indices).
    pub rc_changes: Vec<IndexedChange>,
    /// Certificates visible to this shard's registrant changes.
    pub rc_certs: Vec<&'w DedupedCert>,
    /// Managed certificates naming a customer owned by this shard.
    pub mtd_certs: Vec<&'w DedupedCert>,
}

impl ShardInput<'_> {
    /// Total items routed into this shard (the skew measure).
    pub fn items(&self) -> usize {
        self.kc_certs.len() + self.rc_changes.len() + self.rc_certs.len() + self.mtd_certs.len()
    }
}

/// The partitioned bundle.
pub struct Partition<'w> {
    /// One input per shard, in shard order.
    pub shards: Vec<ShardInput<'w>>,
    /// Certificates in the corpus (each shard's `kc_certs` partition this).
    pub corpus_size: usize,
    /// Registrant changes enumerated (partitioned across shards).
    pub change_count: usize,
}

/// Slice `data` into `n` self-contained shard inputs. Iteration order of
/// the corpus (cert-id order) is preserved within every shard, and the
/// union of shard inputs covers exactly the serial detectors' inputs.
pub fn partition<'w>(data: &'w WorldDatasets, psl: &SuffixList, n: usize) -> Partition<'w> {
    let n = n.max(1);
    let mut shards: Vec<ShardInput<'w>> = (0..n)
        .map(|id| ShardInput {
            id,
            kc_certs: Vec::new(),
            rc_changes: Vec::new(),
            rc_certs: Vec::new(),
            mtd_certs: Vec::new(),
        })
        .collect();

    let rc_detector = RegistrantChangeDetector::new(psl);
    let mtd_detector = ManagedTlsDetector::new(&data.cdn_config, psl);

    let mut corpus_size = 0;
    for cert in data.monitor.corpus_unfiltered() {
        corpus_size += 1;
        let sans = cert.certificate.tbs.san();

        // Key compromise: one owner, by the first SAN's e2LD.
        let kc_shard = match sans.first() {
            Some(first) => {
                let key = psl.e2ld_of_san(first).unwrap_or_else(|_| first.clone());
                shard_of(&key, n)
            }
            None => 0,
        };
        shards[kc_shard].kc_certs.push(cert);

        // Registrant change: duplicated to every shard owning a SAN e2LD.
        let mut rc_shards: Vec<usize> = rc_detector
            .cert_e2lds(cert)
            .iter()
            .map(|e2ld| shard_of(e2ld, n))
            .collect();
        rc_shards.sort_unstable();
        rc_shards.dedup();
        for s in rc_shards {
            shards[s].rc_certs.push(cert);
        }

        // Managed TLS: duplicated to every shard owning a customer domain.
        if mtd_detector.is_managed_cert(cert) {
            let mut mtd_shards: Vec<usize> = mtd_detector
                .customer_domains(cert)
                .into_iter()
                .filter(|d| !d.is_wildcard())
                .map(|d| shard_of(&mtd_routing_key(psl, d), n))
                .collect();
            mtd_shards.sort_unstable();
            mtd_shards.dedup();
            for s in mtd_shards {
                shards[s].mtd_certs.push(cert);
            }
        }
    }

    let changes = enumerate_changes(&data.whois);
    let change_count = changes.len();
    for change in changes {
        let s = shard_of(&change.domain, n);
        shards[s].rc_changes.push(change);
    }

    Partition {
        shards,
        corpus_size,
        change_count,
    }
}

/// One shard's zero-copy view: index lists into the shared
/// [`RoutedWorld`] arrays. Nothing here owns world data — a view is a few
/// integer vectors, and cutting views for a different shard count reuses
/// the same routed world untouched.
#[derive(Debug, Clone, Default)]
pub struct ShardView {
    /// Shard index in `0..shards`.
    pub id: usize,
    /// Arena indices of certificates this shard joins against the CRL.
    pub kc: Vec<u32>,
    /// Arena indices of certificates visible to this shard's registrant
    /// changes.
    pub rc_certs: Vec<u32>,
    /// Indices into the global change enumeration owned by this shard.
    pub rc_changes: Vec<u32>,
    /// Indices into [`RoutedWorld::mtd`] naming a customer owned here.
    pub mtd: Vec<u32>,
}

impl ShardView {
    /// Total items routed into this shard (the skew measure).
    pub fn items(&self) -> usize {
        self.kc.len() + self.rc_certs.len() + self.rc_changes.len() + self.mtd.len()
    }

    /// Whether no candidate at all was routed here (the supervisor skips
    /// spawning such shards).
    pub fn is_empty(&self) -> bool {
        self.items() == 0
    }
}

/// Cut `n` zero-copy shard views out of a routed world: one linear pass
/// of modulo tests over the precomputed routing hashes. Assignment is
/// bit-identical to [`partition`] (same hash, same duplication rules,
/// same within-shard order); the partition-view coverage proptest pins
/// the equivalence.
pub fn cut_views(routed: &RoutedWorld<'_>, n: usize) -> Vec<ShardView> {
    let n = n.max(1);
    let nn = n as u64;
    let mut views: Vec<ShardView> = (0..n)
        .map(|id| ShardView {
            id,
            ..ShardView::default()
        })
        .collect();
    let mut scratch: Vec<usize> = Vec::with_capacity(8);
    for i in 0..routed.arena.len() {
        let iu = i as u32;
        views[(routed.kc_hash[i] % nn) as usize].kc.push(iu);
        scratch.clear();
        scratch.extend(
            routed
                .rc_ids_of(iu)
                .iter()
                .map(|&id| (routed.rc_hash[id as usize] % nn) as usize),
        );
        scratch.sort_unstable();
        scratch.dedup();
        for &s in &scratch {
            views[s].rc_certs.push(iu);
        }
    }
    for (k, candidate) in routed.mtd.iter().enumerate() {
        scratch.clear();
        scratch.extend(candidate.customers.iter().map(|&(_, h)| (h % nn) as usize));
        scratch.sort_unstable();
        scratch.dedup();
        for &s in &scratch {
            views[s].mtd.push(k as u32);
        }
    }
    for (c, &h) in routed.change_hash.iter().enumerate() {
        views[(h % nn) as usize].rc_changes.push(c as u32);
    }
    views
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        // Reference vector for the empty string and "a" (FNV-1a 64-bit).
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn shard_of_is_in_range() {
        let d = stale_types::domain::dn("example.com");
        for n in 1..10 {
            assert!(shard_of(&d, n) < n);
        }
        assert_eq!(shard_of(&d, 1), 0);
    }
}
