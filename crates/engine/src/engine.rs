//! The engine: partition → supervise → merge.

use crate::checkpoint::{Checkpoint, CompletedShard, ShardAudit, ShardOutput};
use crate::config::EngineConfig;
use crate::metrics::{DegradedShardMetrics, EngineMetrics, ShardMetrics, StageMetrics};
use crate::partition::{mtd_routing_key, partition, shard_of, ShardInput};
use crate::supervisor::{run_shards, DegradedShard};
use obs::{Obs, Registry, SpanId};
use psl::SuffixList;
use stale_core::detector::key_compromise::{self, RevocationAnalysis};
use stale_core::detector::managed_tls::{self, ManagedTlsDetector};
use stale_core::detector::registrant_change::{self, RegistrantChangeDetector};
use stale_core::detector::DetectionSuite;
use std::time::Instant;
use worldsim::WorldDatasets;

/// Errors the engine itself can raise (detector panics degrade shards
/// instead of erroring; see [`EngineReport::degraded`]).
#[derive(Debug)]
pub enum EngineError {
    /// A checkpoint file could not be written.
    Checkpoint(std::io::Error),
    /// Cross-shard state disagreed at merge time (e.g. an ingested
    /// registrant change missing from the global enumeration). Always a
    /// bug or corrupt input, surfaced as an error instead of a panic so
    /// the caller can diagnose the run.
    Inconsistent(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Checkpoint(e) => write!(f, "cannot write checkpoint: {e}"),
            EngineError::Inconsistent(what) => write!(f, "inconsistent engine state: {what}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Everything one engine run produced.
pub struct EngineReport {
    /// Merged detector outputs — byte-identical across shard counts.
    pub suite: DetectionSuite,
    /// Shards that kept panicking and contributed no results.
    pub degraded: Vec<DegradedShard>,
    /// Stage/shard observability.
    pub metrics: EngineMetrics,
    /// Partition width of the run.
    pub shards: usize,
    /// Stale events in discovery order (incremental runs only; batch runs
    /// leave this empty — every record lands at once).
    pub events: Vec<stale_core::incremental::StaleEvent>,
    /// Merged decision audit ([`EngineConfig::audit`]); canonical order,
    /// independent of shard count and of batch vs incremental mode.
    pub audit: Option<obs::AuditReport>,
}

impl EngineReport {
    /// Whether every shard contributed (a degraded run is incomplete and
    /// the repro binary exits non-zero on it).
    pub fn is_complete(&self) -> bool {
        self.degraded.is_empty()
    }
}

/// The sharded detection engine. See the crate docs for the layering and
/// the determinism guarantee.
pub struct Engine {
    pub(crate) config: EngineConfig,
    pub(crate) obs: Obs,
}

impl Engine {
    /// Build with a configuration (tracing off).
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            config,
            obs: Obs::disabled(),
        }
    }

    /// Convenience: default configuration at `shards`.
    pub fn with_shards(shards: usize) -> Self {
        Engine::new(EngineConfig::with_shards(shards))
    }

    /// Attach an observability bundle (shared tracer + registry). The
    /// caller keeps a clone to render/export after the run; observability
    /// is write-only from the engine's side and never alters results.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The run's observability bundle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Run the three detectors over `data`, sharded per the
    /// configuration, and merge deterministically.
    pub fn run(&self, data: &WorldDatasets, psl: &SuffixList) -> Result<EngineReport, EngineError> {
        let obs = &self.obs;
        let mut root = obs.span("engine.run");
        let n = self.config.shards.max(1);
        root.count("shards", n as u64);
        let cutoff = RevocationAnalysis::cutoff_for(data.crl_window.start);

        // Stage 1: partition.
        let partition_start = Instant::now();
        let mut partition_span = root.child("partition");
        let parts = partition(data, psl, n);
        let routed: usize = parts.shards.iter().map(ShardInput::items).sum();
        partition_span.count("routed", routed as u64);
        drop(partition_span);
        let stage_partition = StageMetrics {
            name: "partition".to_string(),
            wall_us: partition_start.elapsed().as_micros() as u64,
            items_in: parts.corpus_size + parts.change_count,
            items_out: routed,
        };
        record_stage(&obs.registry, &stage_partition);

        // Checkpoint: restore completed shards, run the rest.
        let fingerprint = data.fingerprint();
        let mut restore_span = root.child("checkpoint.restore");
        let mut checkpoint = match &self.config.checkpoint {
            Some(path) => Checkpoint::load_or_new(path, fingerprint, n),
            None => Checkpoint::new(fingerprint, n),
        };
        if self.config.audit {
            // An audited run can only reuse shards that carry their audit
            // contribution; older (or unaudited) completions are dropped
            // and re-run so the merged audit stays complete.
            checkpoint.completed.retain(|c| c.output.audit.is_some());
        }
        let resumed_shards = checkpoint.completed.len();
        restore_span.count("resumed_shards", resumed_shards as u64);
        drop(restore_span);
        obs.registry
            .add("engine.resumed_shards", resumed_shards as u64);
        if resumed_shards > 0 {
            obs.registry.add("checkpoint.restores", 1);
        }
        let jobs: Vec<usize> = (0..n).filter(|s| !checkpoint.has(*s)).collect();

        // Stage 2: detect, on the worker pool. Each attempt runs under
        // its own span (child of the detect span, created by the
        // supervisor); the detector stages nest under the attempt.
        let detect_start = Instant::now();
        let detect_span = root.child("detect");
        let detect_id = detect_span.id();
        let config = &self.config;
        let shard_inputs = &parts.shards;
        let run_shard = |shard: usize, attempt: u32, span: SpanId| -> (ShardOutput, ShardMetrics) {
            if config.fail_shards.contains(&shard)
                || (config.fail_once_shards.contains(&shard) && attempt == 1)
            {
                // The fault-injection feature itself: this panic exercises
                // the supervisor's isolation and is caught by it.
                // stale-lint: allow(panic-in-shard)
                panic!("injected failure in shard {shard} (attempt {attempt})");
            }
            run_one_shard(
                &shard_inputs[shard],
                data,
                psl,
                n,
                attempt,
                obs,
                span,
                config.audit,
            )
        };

        let mut checkpoint_error: Option<std::io::Error> = None;
        let (results, degraded, queue_depths) = run_shards(
            jobs,
            config.effective_workers(),
            obs,
            detect_id,
            run_shard,
            |shard, attempts, value: &(ShardOutput, ShardMetrics)| {
                let (output, metrics) = value;
                let mut metrics = metrics.clone();
                metrics.attempts = attempts;
                checkpoint.completed.push(CompletedShard {
                    shard,
                    output: output.clone(),
                    metrics,
                });
                if let Some(path) = &config.checkpoint {
                    let save_start = Instant::now();
                    if let Err(e) = checkpoint.save(path) {
                        checkpoint_error.get_or_insert(e);
                    }
                    obs.registry.add("checkpoint.saves", 1);
                    obs.registry.observe_latency_us(
                        "checkpoint.save_us",
                        save_start.elapsed().as_micros() as u64,
                    );
                }
            },
        );
        drop(results); // completion order lives in `checkpoint.completed`
        drop(detect_span);
        obs.registry
            .record_histogram("engine.queue.depth", &queue_depths);
        if let Some(e) = checkpoint_error {
            return Err(EngineError::Checkpoint(e));
        }
        let stage_detect_wall = detect_start.elapsed().as_micros() as u64;

        // Collect outputs (restored + fresh) in shard order.
        let mut completed = checkpoint.completed.clone();
        completed.sort_by_key(|c| c.shard);
        let emitted: usize = completed
            .iter()
            .map(|c| c.output.kc.len() + c.output.rc.len() + c.output.mtd.len())
            .sum();
        let stage_detect = StageMetrics {
            name: "detect".to_string(),
            wall_us: stage_detect_wall,
            items_in: routed,
            items_out: emitted,
        };
        record_stage(&obs.registry, &stage_detect);

        // Stage 3: deterministic merge.
        let merge_start = Instant::now();
        let mut merge_span = root.child("merge");
        let kc: Vec<_> = completed.iter().map(|c| c.output.kc.clone()).collect();
        let rc: Vec<_> = completed.iter().map(|c| c.output.rc.clone()).collect();
        let mtd: Vec<_> = completed.iter().map(|c| c.output.mtd.clone()).collect();
        let audit = if self.config.audit {
            let mut decisions = Vec::new();
            let mut losers = Vec::new();
            for c in &completed {
                if let Some(a) = &c.output.audit {
                    decisions.extend(a.decisions.iter().cloned());
                    losers.extend(a.kc_losers.iter().copied());
                }
            }
            decisions.extend(key_compromise::audit_decisions(&data.crl, &kc, &losers));
            let report = obs::AuditReport::from_decisions(decisions);
            report.register_coverage(&obs.registry);
            Some(report)
        } else {
            None
        };
        let suite = merge_suite(data.crl.records().len(), cutoff, kc, rc, mtd);
        let merged =
            suite.key_compromise.len() + suite.registrant_change.len() + suite.managed_tls.len();
        merge_span.count("merged", merged as u64);
        drop(merge_span);
        let stage_merge = StageMetrics {
            name: "merge".to_string(),
            wall_us: merge_start.elapsed().as_micros() as u64,
            items_in: emitted,
            items_out: merged,
        };
        record_stage(&obs.registry, &stage_merge);

        let metrics = EngineMetrics {
            stages: vec![stage_partition, stage_detect, stage_merge],
            shards: completed.iter().map(|c| c.metrics.clone()).collect(),
            degraded: degraded
                .iter()
                .map(|d| DegradedShardMetrics {
                    shard: d.shard,
                    attempts: d.attempts,
                })
                .collect(),
            queue_depth: queue_depths.snapshot(),
            resumed_shards,
            ingest: None,
        };
        Ok(EngineReport {
            suite,
            degraded,
            metrics,
            shards: n,
            events: Vec::new(),
            audit,
        })
    }
}

/// Accumulate one stage's wall/items into the registry's
/// `engine.stage.{name}.*` counters (what `stale-bench compare` diffs).
pub(crate) fn record_stage(registry: &Registry, stage: &StageMetrics) {
    registry.add(
        &format!("engine.stage.{}.wall_us", stage.name),
        stage.wall_us,
    );
    registry.add(
        &format!("engine.stage.{}.items_in", stage.name),
        stage.items_in as u64,
    );
    registry.add(
        &format!("engine.stage.{}.items_out", stage.name),
        stage.items_out as u64,
    );
}

/// The shared deterministic merge: exactly the three per-detector merge
/// functions, composed into a [`DetectionSuite`]. Both the batch and the
/// incremental drivers end here, which is what makes their reports
/// byte-identical.
pub(crate) fn merge_suite(
    crl_total: usize,
    cutoff: stale_types::Date,
    kc: Vec<Vec<key_compromise::ShardMatch>>,
    rc: Vec<Vec<(usize, stale_core::staleness::StaleCertRecord)>>,
    mtd: Vec<Vec<stale_core::staleness::StaleCertRecord>>,
) -> DetectionSuite {
    let revocations = key_compromise::merge_shards(crl_total, cutoff, kc);
    let key_compromise = revocations.stale_records();
    let registrant_change = registrant_change::merge_shards(rc);
    let managed_tls = managed_tls::merge_shards(mtd);
    DetectionSuite {
        revocations,
        key_compromise,
        registrant_change,
        managed_tls,
    }
}

/// Run all three detectors on one shard's slice. Each detector stage runs
/// under its own span (child of the attempt span `parent`) and reports
/// item counts through the registry's write-only sink surface. With
/// `audit` on, each detector also streams per-candidate decisions into a
/// fresh per-attempt [`obs::AuditLog`] (fresh so a panicked attempt's
/// partial stream dies with it).
#[allow(clippy::too_many_arguments)]
fn run_one_shard(
    input: &ShardInput<'_>,
    data: &WorldDatasets,
    psl: &SuffixList,
    shards: usize,
    attempt: u32,
    obs: &Obs,
    parent: SpanId,
    audit: bool,
) -> (ShardOutput, ShardMetrics) {
    let registry = &obs.registry;
    let cutoff = RevocationAnalysis::cutoff_for(data.crl_window.start);
    let audit_log = audit.then(obs::AuditLog::new);
    let start = Instant::now();

    let kc_start = Instant::now();
    let mut kc_span = obs.trace.child(parent, "kc");
    let (kc, kc_losers) = if audit {
        key_compromise::join_shard_audited(
            input.kc_certs.iter().copied(),
            &data.crl,
            cutoff,
            registry,
        )
    } else {
        let kc = key_compromise::join_shard_observed(
            input.kc_certs.iter().copied(),
            &data.crl,
            cutoff,
            registry,
        );
        (kc, Vec::new())
    };
    kc_span.count("matches", kc.len() as u64);
    drop(kc_span);
    let kc_us = kc_start.elapsed().as_micros() as u64;

    let rc_start = Instant::now();
    let mut rc_span = obs.trace.child(parent, "rc");
    let rc_detector = RegistrantChangeDetector::new(psl);
    let rc = match &audit_log {
        Some(log) => rc_detector.detect_shard_audited(
            &input.rc_changes,
            input.rc_certs.iter().copied(),
            registry,
            log,
        ),
        None => rc_detector.detect_shard_observed(
            &input.rc_changes,
            input.rc_certs.iter().copied(),
            registry,
        ),
    };
    rc_span.count("records", rc.len() as u64);
    drop(rc_span);
    let rc_us = rc_start.elapsed().as_micros() as u64;

    let mtd_start = Instant::now();
    let mut mtd_span = obs.trace.child(parent, "mtd");
    let id = input.id;
    let mtd_detector = ManagedTlsDetector::new(&data.cdn_config, psl);
    let owned =
        |domain: &stale_types::DomainName| shard_of(&mtd_routing_key(psl, domain), shards) == id;
    let mtd = match &audit_log {
        Some(log) => mtd_detector.detect_shard_audited(
            &data.adns,
            input.mtd_certs.iter().copied(),
            data.adns_window,
            owned,
            registry,
            log,
        ),
        None => mtd_detector.detect_shard_observed(
            &data.adns,
            input.mtd_certs.iter().copied(),
            data.adns_window,
            owned,
            registry,
        ),
    };
    mtd_span.count("records", mtd.len() as u64);
    drop(mtd_span);
    let mtd_us = mtd_start.elapsed().as_micros() as u64;

    let output = ShardOutput {
        shard: input.id,
        kc,
        rc,
        mtd,
        audit: audit_log.map(|log| ShardAudit {
            decisions: log.drain(),
            kc_losers,
        }),
    };
    let metrics = ShardMetrics {
        shard: input.id,
        wall_us: start.elapsed().as_micros() as u64,
        kc_us,
        rc_us,
        mtd_us,
        items_in: input.items(),
        items_out: output.kc.len() + output.rc.len() + output.mtd.len(),
        attempts: attempt,
    };
    registry.observe_latency_us("engine.shard.wall_us", metrics.wall_us);
    registry.observe_latency_us("engine.shard.kc_us", kc_us);
    registry.observe_latency_us("engine.shard.rc_us", rc_us);
    registry.observe_latency_us("engine.shard.mtd_us", mtd_us);
    (output, metrics)
}
