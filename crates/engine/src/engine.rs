//! The engine: partition → supervise → merge.
//!
//! Self-timing with `Instant` is sanctioned here (stage metrics never
//! feed detection results); the wall-clock rule still flags
//! `SystemTime` in this file.
// stale-lint: trusted-file(wallclock-in-detector)

use crate::checkpoint::{
    Checkpoint, CompletedShard, ResumeWorld, SavedShard, ShardAudit, ShardOutput,
};
use crate::config::EngineConfig;
use crate::metrics::{DegradedShardMetrics, EngineMetrics, ShardMetrics, StageMetrics};
use crate::partition::{cut_views, ShardView};
use crate::supervisor::{run_shards, DegradedShard};
use obs::{Obs, Registry, SpanId};
use psl::SuffixList;
use stale_core::detector::key_compromise::{self};
use stale_core::detector::managed_tls::{self, ManagedTlsDetector};
use stale_core::detector::registrant_change::{self, IndexedChange, RegistrantChangeDetector};
use stale_core::detector::DetectionSuite;
use stale_core::views::RoutedWorld;
use std::time::Instant;
use worldsim::WorldDatasets;

/// Errors the engine itself can raise (detector panics degrade shards
/// instead of erroring; see [`EngineReport::degraded`]).
#[derive(Debug)]
pub enum EngineError {
    /// A checkpoint file could not be written.
    Checkpoint(std::io::Error),
    /// Cross-shard state disagreed at merge time (e.g. an ingested
    /// registrant change missing from the global enumeration). Always a
    /// bug or corrupt input, surfaced as an error instead of a panic so
    /// the caller can diagnose the run.
    Inconsistent(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Checkpoint(e) => write!(f, "cannot write checkpoint: {e}"),
            EngineError::Inconsistent(what) => write!(f, "inconsistent engine state: {what}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Everything one engine run produced.
pub struct EngineReport {
    /// Merged detector outputs — byte-identical across shard counts.
    pub suite: DetectionSuite,
    /// Shards that kept panicking and contributed no results.
    pub degraded: Vec<DegradedShard>,
    /// Stage/shard observability.
    pub metrics: EngineMetrics,
    /// Partition width of the run.
    pub shards: usize,
    /// Stale events in discovery order (incremental runs only; batch runs
    /// leave this empty — every record lands at once).
    pub events: Vec<stale_core::incremental::StaleEvent>,
    /// Merged decision audit ([`EngineConfig::audit`]); canonical order,
    /// independent of shard count and of batch vs incremental mode.
    pub audit: Option<obs::AuditReport>,
}

impl EngineReport {
    /// Whether every shard contributed (a degraded run is incomplete and
    /// the repro binary exits non-zero on it).
    pub fn is_complete(&self) -> bool {
        self.degraded.is_empty()
    }
}

/// The sharded detection engine. See the crate docs for the layering and
/// the determinism guarantee.
pub struct Engine {
    pub(crate) config: EngineConfig,
    pub(crate) obs: Obs,
}

impl Engine {
    /// Build with a configuration (tracing off).
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            config,
            obs: Obs::disabled(),
        }
    }

    /// Convenience: default configuration at `shards`.
    pub fn with_shards(shards: usize) -> Self {
        Engine::new(EngineConfig::with_shards(shards))
    }

    /// Attach an observability bundle (shared tracer + registry). The
    /// caller keeps a clone to render/export after the run; observability
    /// is write-only from the engine's side and never alters results.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The run's observability bundle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Run the three detectors over `data`, sharded per the
    /// configuration, and merge deterministically.
    // stale-lint: entry(serial)
    pub fn run(&self, data: &WorldDatasets, psl: &SuffixList) -> Result<EngineReport, EngineError> {
        let obs = &self.obs;
        let mut root = obs.span("engine.run");
        let n = self.config.shards.max(1);
        root.count("shards", n as u64);

        // Stage 1: partition — one shard-count-independent routing pass
        // over the shared immutable world, then a linear bucket cut. No
        // world data is copied: shard inputs are index views into the
        // routed arrays, handed to workers by reference.
        let partition_start = Instant::now();
        let mut partition_span = root.child("partition");
        let routed = RoutedWorld::build(data, psl);
        let views = cut_views(&routed, n);
        let routed_items: usize = views.iter().map(ShardView::items).sum();
        partition_span.count("routed", routed_items as u64);
        drop(partition_span);
        let stage_partition = StageMetrics {
            name: "partition".to_string(),
            wall_us: partition_start.elapsed().as_micros() as u64,
            items_in: routed.arena.len() + routed.changes.len(),
            items_out: routed_items,
        };
        record_stage(&obs.registry, &stage_partition);
        let cutoff = routed.cutoff;

        // Checkpoint: restore completed shards, run the rest.
        let fingerprint = data.fingerprint();
        let mut restore_span = root.child("checkpoint.restore");
        let mut checkpoint = match &self.config.checkpoint {
            Some(path) => Checkpoint::load_or_new(path, fingerprint, n),
            None => Checkpoint::new(fingerprint, n),
        };
        if self.config.audit {
            // An audited run can only reuse shards that carry their audit
            // contribution; older (or unaudited) completions are dropped
            // and re-run so the merged audit stays complete.
            checkpoint.completed.retain(|c| c.audit.is_some());
        }
        // Re-derive restored shard outputs from the shared world (the
        // checkpoint stores indices, not records). An entry that no
        // longer resolves marks the whole file as stale state.
        let resume = ResumeWorld {
            data,
            psl,
            changes: &routed.changes,
            cutoff,
        };
        let mut completed: Vec<CompletedShard> = Vec::with_capacity(n);
        for saved in &checkpoint.completed {
            match saved.to_completed(&resume) {
                Some(c) => completed.push(c),
                None => {
                    checkpoint = Checkpoint::new(fingerprint, n);
                    completed.clear();
                    break;
                }
            }
        }
        let resumed_shards = completed.len();
        restore_span.count("resumed_shards", resumed_shards as u64);
        drop(restore_span);
        obs.registry
            .add("engine.resumed_shards", resumed_shards as u64);
        if resumed_shards > 0 {
            obs.registry.add("checkpoint.restores", 1);
        }

        // An empty view can only produce the empty output: synthesize its
        // completion instead of paying supervisor setup for it. Shards
        // with injected faults still spawn — the panic is the point of
        // those runs.
        let mut skipped = 0u64;
        for view in &views {
            if checkpoint.has(view.id)
                || !view.is_empty()
                || self.config.fail_shards.contains(&view.id)
                || self.config.fail_once_shards.contains(&view.id)
            {
                continue;
            }
            let c = CompletedShard {
                shard: view.id,
                output: ShardOutput {
                    shard: view.id,
                    kc: Vec::new(),
                    rc: Vec::new(),
                    mtd: Vec::new(),
                    audit: self.config.audit.then(ShardAudit::default),
                },
                metrics: ShardMetrics {
                    shard: view.id,
                    wall_us: 0,
                    kc_us: 0,
                    rc_us: 0,
                    mtd_us: 0,
                    items_in: 0,
                    items_out: 0,
                    attempts: 0,
                },
            };
            checkpoint.completed.push(SavedShard::from_completed(&c));
            completed.push(c);
            skipped += 1;
        }
        if skipped > 0 {
            obs.registry.add("engine.shards_skipped", skipped);
        }
        let jobs: Vec<usize> = (0..n).filter(|s| !checkpoint.has(*s)).collect();

        // Stage 2: detect, on the worker pool. Each attempt runs under
        // its own span (child of the detect span, created by the
        // supervisor); the detector stages nest under the attempt.
        let detect_start = Instant::now();
        let detect_span = root.child("detect");
        let detect_id = detect_span.id();
        let config = &self.config;
        let views_ref = &views;
        let routed_ref = &routed;
        let run_shard = |shard: usize, attempt: u32, span: SpanId| -> (ShardOutput, ShardMetrics) {
            if config.fail_shards.contains(&shard)
                || (config.fail_once_shards.contains(&shard) && attempt == 1)
            {
                // The fault-injection feature itself: this panic exercises
                // the supervisor's isolation and is caught by it.
                // stale-lint: allow(panic-in-shard)
                panic!("injected failure in shard {shard} (attempt {attempt})");
            }
            run_one_shard(
                &views_ref[shard],
                routed_ref,
                psl,
                n,
                attempt,
                obs,
                span,
                config.audit,
            )
        };

        let mut checkpoint_error: Option<std::io::Error> = None;
        let (results, degraded, queue_depths) = run_shards(
            jobs,
            config.effective_workers(),
            obs,
            detect_id,
            run_shard,
            |shard, attempts, value: &(ShardOutput, ShardMetrics)| {
                let (output, metrics) = value;
                let mut metrics = metrics.clone();
                metrics.attempts = attempts;
                let c = CompletedShard {
                    shard,
                    output: output.clone(),
                    metrics,
                };
                checkpoint.completed.push(SavedShard::from_completed(&c));
                completed.push(c);
                if let Some(path) = &config.checkpoint {
                    let save_start = Instant::now();
                    if let Err(e) = checkpoint.save(path) {
                        checkpoint_error.get_or_insert(e);
                    }
                    obs.registry.add("checkpoint.saves", 1);
                    obs.registry.observe_latency_us(
                        "checkpoint.save_us",
                        save_start.elapsed().as_micros() as u64,
                    );
                }
            },
        );
        drop(results); // completion order lives in `completed`
        drop(detect_span);
        obs.registry
            .record_histogram("engine.queue.depth", &queue_depths);
        if let Some(e) = checkpoint_error {
            return Err(EngineError::Checkpoint(e));
        }
        let stage_detect_wall = detect_start.elapsed().as_micros() as u64;

        // Collect outputs (restored + synthesized + fresh) in shard order.
        completed.sort_by_key(|c| c.shard);
        let emitted: usize = completed
            .iter()
            .map(|c| c.output.kc.len() + c.output.rc.len() + c.output.mtd.len())
            .sum();
        let stage_detect = StageMetrics {
            name: "detect".to_string(),
            wall_us: stage_detect_wall,
            items_in: routed_items,
            items_out: emitted,
        };
        record_stage(&obs.registry, &stage_detect);

        // Stage 3: deterministic merge.
        let merge_start = Instant::now();
        let mut merge_span = root.child("merge");
        let kc: Vec<_> = completed.iter().map(|c| c.output.kc.clone()).collect();
        let rc: Vec<_> = completed.iter().map(|c| c.output.rc.clone()).collect();
        let mtd: Vec<_> = completed.iter().map(|c| c.output.mtd.clone()).collect();
        let audit = if self.config.audit {
            let mut decisions = Vec::new();
            let mut losers = Vec::new();
            for c in &completed {
                if let Some(a) = &c.output.audit {
                    decisions.extend(a.decisions.iter().cloned());
                    losers.extend(a.kc_losers.iter().copied());
                }
            }
            decisions.extend(key_compromise::audit_decisions(&data.crl, &kc, &losers));
            let report = obs::AuditReport::from_decisions(decisions);
            report.register_coverage(&obs.registry);
            Some(report)
        } else {
            None
        };
        let suite = merge_suite(data.crl.records().len(), cutoff, kc, rc, mtd);
        let merged =
            suite.key_compromise.len() + suite.registrant_change.len() + suite.managed_tls.len();
        merge_span.count("merged", merged as u64);
        drop(merge_span);
        let stage_merge = StageMetrics {
            name: "merge".to_string(),
            wall_us: merge_start.elapsed().as_micros() as u64,
            items_in: emitted,
            items_out: merged,
        };
        record_stage(&obs.registry, &stage_merge);

        let metrics = EngineMetrics {
            stages: vec![stage_partition, stage_detect, stage_merge],
            shards: completed.iter().map(|c| c.metrics.clone()).collect(),
            degraded: degraded
                .iter()
                .map(|d| DegradedShardMetrics {
                    shard: d.shard,
                    attempts: d.attempts,
                })
                .collect(),
            queue_depth: queue_depths.snapshot(),
            resumed_shards,
            ingest: None,
        };
        Ok(EngineReport {
            suite,
            degraded,
            metrics,
            shards: n,
            events: Vec::new(),
            audit,
        })
    }
}

/// Accumulate one stage's wall/items into the registry's
/// `engine.stage.{name}.*` counters (what `stale-bench compare` diffs).
pub(crate) fn record_stage(registry: &Registry, stage: &StageMetrics) {
    registry.add(
        &format!("engine.stage.{}.wall_us", stage.name),
        stage.wall_us,
    );
    registry.add(
        &format!("engine.stage.{}.items_in", stage.name),
        stage.items_in as u64,
    );
    registry.add(
        &format!("engine.stage.{}.items_out", stage.name),
        stage.items_out as u64,
    );
}

/// The shared deterministic merge: exactly the three per-detector merge
/// functions, composed into a [`DetectionSuite`]. Both the batch and the
/// incremental drivers end here, which is what makes their reports
/// byte-identical.
// stale-lint: entry(serial)
pub(crate) fn merge_suite(
    crl_total: usize,
    cutoff: stale_types::Date,
    kc: Vec<Vec<key_compromise::ShardMatch>>,
    rc: Vec<Vec<(usize, stale_core::staleness::StaleCertRecord)>>,
    mtd: Vec<Vec<stale_core::staleness::StaleCertRecord>>,
) -> DetectionSuite {
    let revocations = key_compromise::merge_shards(crl_total, cutoff, kc);
    let key_compromise = revocations.stale_records();
    let registrant_change = registrant_change::merge_shards(rc);
    let managed_tls = managed_tls::merge_shards(mtd);
    DetectionSuite {
        revocations,
        key_compromise,
        registrant_change,
        managed_tls,
    }
}

/// Run all three detectors on one shard's zero-copy view. The view holds
/// only indices; every certificate, CRL record and change is read through
/// the shared [`RoutedWorld`] borrow, and the one pre-sorted CRL key
/// index serves every shard's sort-merge join. Each detector stage runs
/// under its own span (child of the attempt span `parent`) and reports
/// item counts through the registry's write-only sink surface. With
/// `audit` on, each detector also streams per-candidate decisions into a
/// fresh per-attempt [`obs::AuditLog`] (fresh so a panicked attempt's
/// partial stream dies with it).
// stale-lint: entry(shard)
#[allow(clippy::too_many_arguments)]
fn run_one_shard(
    view: &ShardView,
    routed: &RoutedWorld<'_>,
    psl: &SuffixList,
    shards: usize,
    attempt: u32,
    obs: &Obs,
    parent: SpanId,
    audit: bool,
) -> (ShardOutput, ShardMetrics) {
    let registry = &obs.registry;
    let data = routed.arena.data;
    let cutoff = routed.cutoff;
    let audit_log = audit.then(obs::AuditLog::new);
    let decision_sink: &dyn obs::DecisionSink = match &audit_log {
        Some(log) => log,
        None => &obs::NullDecisionSink,
    };
    let start = Instant::now();

    let kc_start = Instant::now();
    let mut kc_span = obs.trace.child(parent, "kc");
    let (kc, kc_losers) = key_compromise::join_shard_audited_with(
        view.kc.iter().map(|&i| routed.arena.cert(i)),
        &data.crl,
        &routed.crl_keys,
        cutoff,
        registry,
    );
    kc_span.count("matches", kc.len() as u64);
    drop(kc_span);
    let kc_us = kc_start.elapsed().as_micros() as u64;

    let rc_start = Instant::now();
    let mut rc_span = obs.trace.child(parent, "rc");
    let rc_detector = RegistrantChangeDetector::new(psl);
    let changes: Vec<(u32, &IndexedChange)> = view
        .rc_changes
        .iter()
        .map(|&c| (routed.change_id[c as usize], &routed.changes[c as usize]))
        .collect();
    let rc = rc_detector.detect_shard_view_audited(
        &changes,
        view.rc_certs
            .iter()
            .map(|&i| (routed.arena.cert(i), routed.rc_ids_of(i))),
        registry,
        decision_sink,
    );
    rc_span.count("records", rc.len() as u64);
    drop(rc_span);
    let rc_us = rc_start.elapsed().as_micros() as u64;

    let mtd_start = Instant::now();
    let mut mtd_span = obs.trace.child(parent, "mtd");
    let id = view.id;
    let mtd_detector = ManagedTlsDetector::new(&data.cdn_config, psl);
    let nn = shards.max(1) as u64;
    let owned = |hash: u64| (hash % nn) as usize == id;
    let mtd = mtd_detector.detect_shard_view_audited(
        &data.adns,
        view.mtd.iter().map(|&k| {
            let candidate = &routed.mtd[k as usize];
            (
                routed.arena.cert(candidate.cert),
                candidate.customers.as_slice(),
            )
        }),
        data.adns_window,
        owned,
        registry,
        decision_sink,
    );
    mtd_span.count("records", mtd.len() as u64);
    drop(mtd_span);
    let mtd_us = mtd_start.elapsed().as_micros() as u64;

    let output = ShardOutput {
        shard: view.id,
        kc,
        rc,
        mtd,
        audit: audit_log.map(|log| ShardAudit {
            decisions: log.drain(),
            kc_losers,
        }),
    };
    let metrics = ShardMetrics {
        shard: view.id,
        wall_us: start.elapsed().as_micros() as u64,
        kc_us,
        rc_us,
        mtd_us,
        items_in: view.items(),
        items_out: output.kc.len() + output.rc.len() + output.mtd.len(),
        attempts: attempt,
    };
    registry.observe_latency_us("engine.shard.wall_us", metrics.wall_us);
    registry.observe_latency_us("engine.shard.kc_us", kc_us);
    registry.observe_latency_us("engine.shard.rc_us", rc_us);
    registry.observe_latency_us("engine.shard.mtd_us", mtd_us);
    (output, metrics)
}
