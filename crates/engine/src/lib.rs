//! Sharded parallel detection engine.
//!
//! The three detectors of [`stale_core::detector`] are embarrassingly
//! parallel once their inputs are partitioned by effective second-level
//! domain (e2LD): every stale-certificate record is derived from one
//! certificate and one event (a CRL entry, a registrant change, or a CDN
//! departure), and both sides of each join can be routed to the same shard
//! by a hash of the event's domain. This crate adds three layers on top of
//! the shard-local detector APIs:
//!
//! 1. **Partitioner** ([`partition`]) — routes a
//!    [`worldsim::WorldDatasets`] bundle once, shard-count-independently,
//!    into a [`stale_core::views::RoutedWorld`], then cuts zero-copy
//!    [`partition::ShardView`]s (index lists into the shared world) per
//!    shard count. CRL entries are keyed by `(AKI, serial)` rather than
//!    by domain, so one pre-sorted CRL key index is shared by every
//!    shard's sort-merge join; certificates and registrant changes are
//!    routed by e2LD, with cruise-liner certificates duplicated into
//!    every shard that owns one of their customer domains. The owned
//!    [`partition::partition`] path survives as the equivalence oracle.
//! 2. **Supervisor** ([`supervisor`]) — a fixed worker pool over a bounded
//!    work queue. A panicking shard is isolated, retried once, and then
//!    reported as a [`supervisor::DegradedShard`] instead of aborting the
//!    run. Completed shards are checkpointed to JSON
//!    ([`checkpoint`]) and skipped on resume.
//! 3. **Metrics** ([`metrics`]) — per-stage wall time, items in/out,
//!    queue depths and shard skew, rendered as a summary table by the
//!    repro binary.
//!
//! A fourth layer, the **streaming driver** ([`stream`],
//! [`Engine::run_incremental`]), replays a [`worldsim::DayFeed`] through
//! persistent per-shard detector state ([`stale_core::incremental`])
//! instead of handing each shard its whole slice at once: one day-delta
//! at a time, routed by the same partition rules, emitting
//! [`stale_core::incremental::StaleEvent`]s as staleness periods open,
//! with state checkpointed per day (schema v2) and resumed across runs.
//! Its final report reuses the batch merge and is byte-identical to
//! [`Engine::run`] over the same bundle.
//!
//! **Determinism guarantee:** for a fixed dataset bundle,
//! [`Engine::run`] produces byte-identical reports for every shard count,
//! including `shards = 1`, and identical to the serial
//! [`stale_core::detector::DetectionSuite::run`]. The merge step orders
//! key-compromise matches by CRL index, registrant-change records by the
//! global change enumeration, and managed-TLS records by customer domain —
//! exactly the orders the serial detectors emit.

pub mod checkpoint;
pub mod config;
pub mod engine;
pub mod metrics;
pub mod partition;
pub mod stream;
pub mod supervisor;

pub use checkpoint::{
    Checkpoint, CompletedShard, ResumeWorld, SavedShard, ShardOutput, ShardStateSnapshot,
    StreamCheckpoint,
};
pub use config::EngineConfig;
pub use engine::{Engine, EngineError, EngineReport};
pub use metrics::{EngineMetrics, IngestBatchMetrics, IngestMetrics, ShardMetrics, StageMetrics};
pub use partition::{cut_views, partition, Partition, ShardInput, ShardView};
pub use stream::{IncrementalState, StateView};
pub use supervisor::DegradedShard;
