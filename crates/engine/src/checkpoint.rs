//! Checkpoint/resume of completed shards.
//!
//! Format: one JSON object per file —
//!
//! ```json
//! {
//!   "fingerprint": 1234567890,
//!   "shards": 4,
//!   "completed": [
//!     { "shard": 0, "output": { "shard": 0, "kc": [...], "rc": [...],
//!       "mtd": [...] }, "metrics": { ... } }
//!   ]
//! }
//! ```
//!
//! `fingerprint` is [`worldsim::WorldDatasets::fingerprint`] and `shards`
//! the partition width; a checkpoint only resumes a run over the *same*
//! bundle at the *same* shard count, otherwise it is discarded and
//! rewritten. Degraded shards are never recorded, so a resumed run retries
//! exactly the shards that have not completed.

use crate::metrics::ShardMetrics;
use serde::{Deserialize, Serialize};
use stale_core::detector::key_compromise::ShardMatch;
use stale_core::staleness::StaleCertRecord;
use std::path::Path;

/// Everything one shard's detectors produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardOutput {
    /// Shard index.
    pub shard: usize,
    /// Key-compromise join matches.
    pub kc: Vec<ShardMatch>,
    /// Registrant-change records with their global change indices.
    pub rc: Vec<(usize, StaleCertRecord)>,
    /// Managed-TLS departure records.
    pub mtd: Vec<StaleCertRecord>,
}

/// A finished shard, as persisted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompletedShard {
    /// Shard index.
    pub shard: usize,
    /// Its detector outputs.
    pub output: ShardOutput,
    /// Its timings.
    pub metrics: ShardMetrics,
}

/// The checkpoint file contents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Dataset-bundle fingerprint this checkpoint belongs to.
    pub fingerprint: u64,
    /// Partition width it was taken at.
    pub shards: usize,
    /// Completed shards, in completion order.
    pub completed: Vec<CompletedShard>,
}

impl Checkpoint {
    /// Fresh, empty checkpoint for a run.
    pub fn new(fingerprint: u64, shards: usize) -> Self {
        Checkpoint {
            fingerprint,
            shards,
            completed: Vec::new(),
        }
    }

    /// Load from `path` if it exists *and* matches `fingerprint`/`shards`;
    /// a missing, unreadable, malformed or mismatched file yields a fresh
    /// checkpoint (mismatches are stale state, not errors).
    pub fn load_or_new(path: &Path, fingerprint: u64, shards: usize) -> Self {
        let fresh = || Checkpoint::new(fingerprint, shards);
        let Ok(text) = std::fs::read_to_string(path) else {
            return fresh();
        };
        match serde_json::from_str::<Checkpoint>(&text) {
            Ok(cp) if cp.fingerprint == fingerprint && cp.shards == shards => cp,
            _ => fresh(),
        }
    }

    /// Persist to `path` (whole-file rewrite; checkpoints are small).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(
            path,
            serde_json::to_string_pretty(self).map_err(std::io::Error::other)?,
        )
    }

    /// Whether `shard` already completed.
    pub fn has(&self, shard: usize) -> bool {
        self.completed.iter().any(|c| c.shard == shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            fingerprint: 42,
            shards: 2,
            completed: vec![CompletedShard {
                shard: 1,
                output: ShardOutput {
                    shard: 1,
                    kc: vec![],
                    rc: vec![],
                    mtd: vec![],
                },
                metrics: ShardMetrics {
                    shard: 1,
                    wall_us: 10,
                    kc_us: 3,
                    rc_us: 3,
                    mtd_us: 4,
                    items_in: 7,
                    items_out: 0,
                    attempts: 1,
                },
            }],
        }
    }

    #[test]
    fn roundtrip_and_validation() {
        let dir = std::env::temp_dir().join("stale_engine_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let cp = sample();
        cp.save(&path).unwrap();

        let loaded = Checkpoint::load_or_new(&path, 42, 2);
        assert_eq!(loaded, cp);
        assert!(loaded.has(1));
        assert!(!loaded.has(0));

        // Wrong fingerprint or width → fresh.
        assert!(Checkpoint::load_or_new(&path, 43, 2).completed.is_empty());
        assert!(Checkpoint::load_or_new(&path, 42, 3).completed.is_empty());
        // Missing file → fresh.
        assert!(Checkpoint::load_or_new(&dir.join("nope.json"), 42, 2)
            .completed
            .is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_file_is_fresh() {
        let dir = std::env::temp_dir().join("stale_engine_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "not json {").unwrap();
        assert!(Checkpoint::load_or_new(&path, 1, 1).completed.is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
