//! Checkpoint/resume: completed shards (batch, schema v3) and persistent
//! detector state (incremental, schema v2).
//!
//! **Schema v3** (batch mode) — one JSON object per file, holding per
//! completed shard only *indices into the shared world*, never derived
//! records or certificate bodies:
//!
//! ```json
//! {
//!   "version": 3,
//!   "fingerprint": 1234567890,
//!   "shards": 4,
//!   "completed": [
//!     { "shard": 0, "kc": [[17, 3]], "rc": [[4, 9]],
//!       "mtd": [{ "domain": "foo.com", "departure": "2022-09-15",
//!                 "cert_id": 9 }],
//!       "audit": null, "metrics": { ... } }
//!   ]
//! }
//! ```
//!
//! A kc entry is `(CRL index, cert id)`, an rc entry `(global change
//! index, cert id)`, an mtd entry `(customer, departure day, cert id)`.
//! Resume re-derives the full shard output from the world through the
//! same `classify`/`stale_record` functions the detectors use — the
//! record a resumed shard contributes is definitionally the record a
//! fresh run would have produced, and the checkpoint cannot go stale
//! against a record-shape change. Any entry that fails to resolve (an
//! index out of range, an id the monitor does not know, a pair the
//! detector no longer keeps) invalidates the whole file, which is
//! discarded as stale state. Files from earlier schemas (v1 stored whole
//! shard outputs) fail the `version` check and are likewise discarded.
//!
//! **Schema v2** (incremental mode) — the per-shard detector state after
//! the last ingested day:
//!
//! ```json
//! {
//!   "version": 2,
//!   "fingerprint": 1234567890,
//!   "shards": 4,
//!   "through": "2022-11-30",
//!   "states": [
//!     { "shard": 0, "kc": { "index": [...] }, "rc": { ... },
//!       "mtd": { ... } }
//!   ]
//! }
//! ```
//!
//! In both schemas `fingerprint` is
//! [`worldsim::WorldDatasets::fingerprint`] and `shards` the partition
//! width; a checkpoint only resumes a run over the *same* bundle at the
//! *same* shard count, otherwise it is discarded and rewritten. The
//! `version` field keeps the schemas from being confused for one another.

use crate::metrics::ShardMetrics;
use obs::audit::Decision;
use psl::SuffixList;
use serde::{Deserialize, Serialize};
use stale_core::detector::key_compromise::{classify, KcLoser, ShardMatch};
use stale_core::detector::managed_tls::ManagedTlsDetector;
use stale_core::detector::registrant_change::{IndexedChange, RegistrantChangeDetector};
use stale_core::incremental::{SavedKc, SavedMtd, SavedRc};
use stale_core::staleness::StaleCertRecord;
use stale_types::{CertId, Date, DomainName};
use std::path::Path;
use worldsim::WorldDatasets;

/// One shard's contribution to the decision audit: the rc/mtd decisions
/// it emitted plus the kc duplicate-fingerprint losers it observed (kc
/// decisions proper are derived at merge time from the global join, so
/// they cannot depend on shard count).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardAudit {
    /// rc/mtd per-candidate decisions, in shard emission order.
    pub decisions: Vec<Decision>,
    /// `(AKI, serial, cert id)` duplicate-fingerprint losers under
    /// CRL-matched keys.
    pub kc_losers: Vec<KcLoser>,
}

/// Everything one shard's detectors produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardOutput {
    /// Shard index.
    pub shard: usize,
    /// Key-compromise join matches.
    pub kc: Vec<ShardMatch>,
    /// Registrant-change records with their global change indices.
    pub rc: Vec<(usize, StaleCertRecord)>,
    /// Managed-TLS departure records.
    pub mtd: Vec<StaleCertRecord>,
    /// Decision-audit contribution. `None` when auditing was off (and in
    /// checkpoints written before the audit existed); an audited run
    /// discards resumed shards without it and re-runs them.
    pub audit: Option<ShardAudit>,
}

/// A finished shard, held in memory during a run.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedShard {
    /// Shard index.
    pub shard: usize,
    /// Its detector outputs.
    pub output: ShardOutput,
    /// Its timings.
    pub metrics: ShardMetrics,
}

/// One mtd record in its persisted, index-only form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SavedMtdRecord {
    /// The departed customer domain.
    pub domain: DomainName,
    /// The departure day.
    pub departure: Date,
    /// The stale certificate.
    pub cert_id: CertId,
}

/// A finished shard, as persisted (schema v3): indices and ids only.
/// [`SavedShard::to_completed`] re-derives the full output from the
/// world; see the module docs for why nothing derived is stored.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SavedShard {
    /// Shard index.
    pub shard: usize,
    /// `(CRL index, cert id)` per kc match.
    pub kc: Vec<(usize, CertId)>,
    /// `(global change index, cert id)` per rc record.
    pub rc: Vec<(usize, CertId)>,
    /// `(customer, departure, cert id)` per mtd record.
    pub mtd: Vec<SavedMtdRecord>,
    /// Decision-audit contribution, stored verbatim (decisions include
    /// dropped candidates, which have no index-only shorthand).
    pub audit: Option<ShardAudit>,
    /// Its timings.
    pub metrics: ShardMetrics,
}

/// World context needed to re-derive shard outputs on resume.
pub struct ResumeWorld<'w> {
    /// The dataset bundle the checkpoint fingerprinted.
    pub data: &'w WorldDatasets,
    /// The suffix list (e2LD grouping in re-derived records).
    pub psl: &'w SuffixList,
    /// The global registrant-change enumeration.
    pub changes: &'w [IndexedChange],
    /// The key-compromise reporting cutoff.
    pub cutoff: Date,
}

impl SavedShard {
    /// Strip a completed shard down to its persisted form.
    pub fn from_completed(c: &CompletedShard) -> Self {
        SavedShard {
            shard: c.shard,
            kc: c
                .output
                .kc
                .iter()
                .map(|m| (m.crl_index, m.cert_id))
                .collect(),
            rc: c
                .output
                .rc
                .iter()
                .map(|(index, r)| (*index, r.cert_id))
                .collect(),
            mtd: c
                .output
                .mtd
                .iter()
                .map(|r| SavedMtdRecord {
                    domain: r.domain.clone(),
                    departure: r.invalidation,
                    cert_id: r.cert_id,
                })
                .collect(),
            audit: c.output.audit.clone(),
            metrics: c.metrics.clone(),
        }
    }

    /// Re-derive the full shard output against `world`. `None` means some
    /// entry no longer resolves — the caller must treat the whole
    /// checkpoint as stale.
    pub fn to_completed(&self, world: &ResumeWorld<'_>) -> Option<CompletedShard> {
        let records = world.data.crl.records();
        let mut kc = Vec::with_capacity(self.kc.len());
        for &(crl_index, cert_id) in &self.kc {
            let rec = records.get(crl_index)?;
            let cert = world.data.monitor.get(&cert_id)?;
            kc.push(ShardMatch {
                crl_index,
                cert_id,
                outcome: classify(rec, cert, world.cutoff),
            });
        }
        let rc_detector = RegistrantChangeDetector::new(world.psl);
        let mut rc = Vec::with_capacity(self.rc.len());
        for &(index, cert_id) in &self.rc {
            let change = world.changes.get(index)?;
            let cert = world.data.monitor.get(&cert_id)?;
            let record = rc_detector.stale_record(&change.domain, change.creation, cert)?;
            rc.push((index, record));
        }
        let mtd_detector = ManagedTlsDetector::new(&world.data.cdn_config, world.psl);
        let mut mtd = Vec::with_capacity(self.mtd.len());
        for saved in &self.mtd {
            let cert = world.data.monitor.get(&saved.cert_id)?;
            mtd.push(mtd_detector.stale_record(&saved.domain, saved.departure, cert)?);
        }
        Some(CompletedShard {
            shard: self.shard,
            output: ShardOutput {
                shard: self.shard,
                kc,
                rc,
                mtd,
                audit: self.audit.clone(),
            },
            metrics: self.metrics.clone(),
        })
    }
}

/// The batch checkpoint file contents (schema v3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Schema version; always 3.
    pub version: u32,
    /// Dataset-bundle fingerprint this checkpoint belongs to.
    pub fingerprint: u64,
    /// Partition width it was taken at.
    pub shards: usize,
    /// Completed shards, in completion order.
    pub completed: Vec<SavedShard>,
}

impl Checkpoint {
    /// The current batch schema version.
    pub const VERSION: u32 = 3;

    /// Fresh, empty checkpoint for a run.
    pub fn new(fingerprint: u64, shards: usize) -> Self {
        Checkpoint {
            version: Self::VERSION,
            fingerprint,
            shards,
            completed: Vec::new(),
        }
    }

    /// Load from `path` if it exists *and* matches
    /// `version`/`fingerprint`/`shards`; a missing, unreadable,
    /// malformed, mismatched or earlier-schema file yields a fresh
    /// checkpoint (all of those are stale state, not errors).
    pub fn load_or_new(path: &Path, fingerprint: u64, shards: usize) -> Self {
        let fresh = || Checkpoint::new(fingerprint, shards);
        let Ok(text) = std::fs::read_to_string(path) else {
            return fresh();
        };
        match serde_json::from_str::<Checkpoint>(&text) {
            Ok(cp)
                if cp.version == Self::VERSION
                    && cp.fingerprint == fingerprint
                    && cp.shards == shards =>
            {
                cp
            }
            _ => fresh(),
        }
    }

    /// Persist to `path` (whole-file rewrite; checkpoints are small).
    /// Like [`StreamCheckpoint::save`], a deliberate blocking boundary:
    /// snapshots are atomic because their owner writes them.
    // stale-lint: entry(serial)
    // stale-lint: trusted(blocking-io-in-actor)
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(
            path,
            serde_json::to_string_pretty(self).map_err(std::io::Error::other)?,
        )
    }

    /// Whether `shard` already completed.
    pub fn has(&self, shard: usize) -> bool {
        self.completed.iter().any(|c| c.shard == shard)
    }
}

/// One shard's incremental detector state, as persisted (schema v2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardStateSnapshot {
    /// Shard index.
    pub shard: usize,
    /// §4.1 join state.
    pub kc: SavedKc,
    /// §4.2 state.
    pub rc: SavedRc,
    /// §4.3 state.
    pub mtd: SavedMtd,
}

/// The incremental checkpoint file contents (schema v2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamCheckpoint {
    /// Schema version; always 2.
    pub version: u32,
    /// Dataset-bundle fingerprint this checkpoint belongs to.
    pub fingerprint: u64,
    /// Partition width it was taken at.
    pub shards: usize,
    /// Last day whose delta has been ingested.
    pub through: Date,
    /// Per-shard detector state, in shard order.
    pub states: Vec<ShardStateSnapshot>,
}

impl StreamCheckpoint {
    /// The current schema version.
    pub const VERSION: u32 = 2;

    /// Load from `path` if it exists and matches `fingerprint`/`shards` at
    /// schema v2. Anything else — missing, unreadable, malformed, a v1
    /// file, or a mismatched run — yields `None` (start fresh).
    /// Startup-time restore: the actor blocks on this read exactly once,
    /// before it serves anything.
    // stale-lint: entry(serial)
    // stale-lint: trusted(blocking-io-in-actor)
    pub fn load(path: &Path, fingerprint: u64, shards: usize) -> Option<Self> {
        let text = std::fs::read_to_string(path).ok()?;
        match serde_json::from_str::<StreamCheckpoint>(&text) {
            Ok(cp)
                if cp.version == Self::VERSION
                    && cp.fingerprint == fingerprint
                    && cp.shards == shards
                    && cp.states.len() == shards =>
            {
                Some(cp)
            }
            _ => None,
        }
    }

    /// Persist to `path` (whole-file rewrite). The daemon's actor calls
    /// this deliberately — a snapshot is atomic *because* the actor
    /// writes it while holding the state — so the blocking write below
    /// is a sanctioned boundary, not a finding.
    // stale-lint: entry(serial)
    // stale-lint: trusted(blocking-io-in-actor)
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(
            path,
            serde_json::to_string(self).map_err(std::io::Error::other)?,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut cp = Checkpoint::new(42, 2);
        cp.completed.push(SavedShard {
            shard: 1,
            kc: vec![],
            rc: vec![],
            mtd: vec![],
            audit: None,
            metrics: ShardMetrics {
                shard: 1,
                wall_us: 10,
                kc_us: 3,
                rc_us: 3,
                mtd_us: 4,
                items_in: 7,
                items_out: 0,
                attempts: 1,
            },
        });
        cp
    }

    #[test]
    fn roundtrip_and_validation() {
        let dir = std::env::temp_dir().join("stale_engine_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let cp = sample();
        cp.save(&path).unwrap();

        let loaded = Checkpoint::load_or_new(&path, 42, 2);
        assert_eq!(loaded, cp);
        assert!(loaded.has(1));
        assert!(!loaded.has(0));

        // Wrong fingerprint or width → fresh.
        assert!(Checkpoint::load_or_new(&path, 43, 2).completed.is_empty());
        assert!(Checkpoint::load_or_new(&path, 42, 3).completed.is_empty());
        // Missing file → fresh.
        assert!(Checkpoint::load_or_new(&dir.join("nope.json"), 42, 2)
            .completed
            .is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn earlier_schema_files_are_discarded() {
        let dir = std::env::temp_dir().join("stale_engine_ckpt_v3_test");
        std::fs::create_dir_all(&dir).unwrap();
        // A v1-era file: no version field, whole shard outputs inline.
        let v1 = dir.join("v1_era.json");
        std::fs::write(
            &v1,
            r#"{"fingerprint": 42, "shards": 2, "completed": [
                {"shard": 0,
                 "output": {"shard": 0, "kc": [], "rc": [], "mtd": [], "audit": null},
                 "metrics": {"shard": 0, "wall_us": 1, "kc_us": 0, "rc_us": 0,
                             "mtd_us": 0, "items_in": 0, "items_out": 0, "attempts": 1}}
            ]}"#,
        )
        .unwrap();
        assert!(Checkpoint::load_or_new(&v1, 42, 2).completed.is_empty());
        // A right-shaped file at the wrong version is equally stale.
        let mut wrong = sample();
        wrong.version = Checkpoint::VERSION + 1;
        let vnext = dir.join("vnext.json");
        wrong.save(&vnext).unwrap();
        let loaded = Checkpoint::load_or_new(&vnext, 42, 2);
        assert_eq!(loaded.version, Checkpoint::VERSION);
        assert!(loaded.completed.is_empty());
        let _ = std::fs::remove_file(&v1);
        let _ = std::fs::remove_file(&vnext);
    }

    #[test]
    fn stream_checkpoint_roundtrip_and_validation() {
        let dir = std::env::temp_dir().join("stale_engine_ckpt_v2_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v2.json");
        let cp = StreamCheckpoint {
            version: StreamCheckpoint::VERSION,
            fingerprint: 42,
            shards: 1,
            through: Date::parse("2022-11-30").unwrap(),
            states: vec![ShardStateSnapshot {
                shard: 0,
                kc: SavedKc::default(),
                rc: SavedRc::default(),
                mtd: SavedMtd::default(),
            }],
        };
        cp.save(&path).unwrap();
        assert_eq!(StreamCheckpoint::load(&path, 42, 1), Some(cp.clone()));
        // Wrong fingerprint, width, or missing file → None.
        assert_eq!(StreamCheckpoint::load(&path, 43, 1), None);
        assert_eq!(StreamCheckpoint::load(&path, 42, 2), None);
        assert_eq!(StreamCheckpoint::load(&dir.join("nope.json"), 42, 1), None);
        // A v1 file is not a v2 checkpoint, and vice versa.
        let v1_path = dir.join("v1.json");
        sample().save(&v1_path).unwrap();
        assert_eq!(StreamCheckpoint::load(&v1_path, 42, 2), None);
        assert!(Checkpoint::load_or_new(&path, 42, 1).completed.is_empty());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&v1_path);
    }

    #[test]
    fn malformed_file_is_fresh() {
        let dir = std::env::temp_dir().join("stale_engine_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "not json {").unwrap();
        assert!(Checkpoint::load_or_new(&path, 1, 1).completed.is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
