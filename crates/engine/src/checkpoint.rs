//! Checkpoint/resume: completed shards (batch, schema v1) and persistent
//! detector state (incremental, schema v2).
//!
//! **Schema v1** (batch mode) — one JSON object per file:
//!
//! ```json
//! {
//!   "fingerprint": 1234567890,
//!   "shards": 4,
//!   "completed": [
//!     { "shard": 0, "output": { "shard": 0, "kc": [...], "rc": [...],
//!       "mtd": [...] }, "metrics": { ... } }
//!   ]
//! }
//! ```
//!
//! **Schema v2** (incremental mode) — the per-shard detector state after
//! the last ingested day:
//!
//! ```json
//! {
//!   "version": 2,
//!   "fingerprint": 1234567890,
//!   "shards": 4,
//!   "through": "2022-11-30",
//!   "states": [
//!     { "shard": 0, "kc": { "index": [...] }, "rc": { ... },
//!       "mtd": { ... } }
//!   ]
//! }
//! ```
//!
//! In both schemas `fingerprint` is
//! [`worldsim::WorldDatasets::fingerprint`] and `shards` the partition
//! width; a checkpoint only resumes a run over the *same* bundle at the
//! *same* shard count, otherwise it is discarded and rewritten. The
//! explicit `version` field keeps the two schemas from being confused for
//! one another: a v1 file fails v2 validation (no `version`) and vice
//! versa (no `completed`). Certificate bodies are never persisted — v2
//! stores `cert_id`s and re-resolves them from the CT monitor on resume.

use crate::metrics::ShardMetrics;
use obs::audit::Decision;
use serde::{Deserialize, Serialize};
use stale_core::detector::key_compromise::{KcLoser, ShardMatch};
use stale_core::incremental::{SavedKc, SavedMtd, SavedRc};
use stale_core::staleness::StaleCertRecord;
use stale_types::Date;
use std::path::Path;

/// One shard's contribution to the decision audit: the rc/mtd decisions
/// it emitted plus the kc duplicate-fingerprint losers it observed (kc
/// decisions proper are derived at merge time from the global join, so
/// they cannot depend on shard count).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardAudit {
    /// rc/mtd per-candidate decisions, in shard emission order.
    pub decisions: Vec<Decision>,
    /// `(AKI, serial, cert id)` duplicate-fingerprint losers under
    /// CRL-matched keys.
    pub kc_losers: Vec<KcLoser>,
}

/// Everything one shard's detectors produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardOutput {
    /// Shard index.
    pub shard: usize,
    /// Key-compromise join matches.
    pub kc: Vec<ShardMatch>,
    /// Registrant-change records with their global change indices.
    pub rc: Vec<(usize, StaleCertRecord)>,
    /// Managed-TLS departure records.
    pub mtd: Vec<StaleCertRecord>,
    /// Decision-audit contribution. `None` when auditing was off (and in
    /// checkpoints written before the audit existed); an audited run
    /// discards resumed shards without it and re-runs them.
    pub audit: Option<ShardAudit>,
}

/// A finished shard, as persisted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompletedShard {
    /// Shard index.
    pub shard: usize,
    /// Its detector outputs.
    pub output: ShardOutput,
    /// Its timings.
    pub metrics: ShardMetrics,
}

/// The checkpoint file contents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Dataset-bundle fingerprint this checkpoint belongs to.
    pub fingerprint: u64,
    /// Partition width it was taken at.
    pub shards: usize,
    /// Completed shards, in completion order.
    pub completed: Vec<CompletedShard>,
}

impl Checkpoint {
    /// Fresh, empty checkpoint for a run.
    pub fn new(fingerprint: u64, shards: usize) -> Self {
        Checkpoint {
            fingerprint,
            shards,
            completed: Vec::new(),
        }
    }

    /// Load from `path` if it exists *and* matches `fingerprint`/`shards`;
    /// a missing, unreadable, malformed or mismatched file yields a fresh
    /// checkpoint (mismatches are stale state, not errors).
    pub fn load_or_new(path: &Path, fingerprint: u64, shards: usize) -> Self {
        let fresh = || Checkpoint::new(fingerprint, shards);
        let Ok(text) = std::fs::read_to_string(path) else {
            return fresh();
        };
        match serde_json::from_str::<Checkpoint>(&text) {
            Ok(cp) if cp.fingerprint == fingerprint && cp.shards == shards => cp,
            _ => fresh(),
        }
    }

    /// Persist to `path` (whole-file rewrite; checkpoints are small).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(
            path,
            serde_json::to_string_pretty(self).map_err(std::io::Error::other)?,
        )
    }

    /// Whether `shard` already completed.
    pub fn has(&self, shard: usize) -> bool {
        self.completed.iter().any(|c| c.shard == shard)
    }
}

/// One shard's incremental detector state, as persisted (schema v2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardStateSnapshot {
    /// Shard index.
    pub shard: usize,
    /// §4.1 join state.
    pub kc: SavedKc,
    /// §4.2 state.
    pub rc: SavedRc,
    /// §4.3 state.
    pub mtd: SavedMtd,
}

/// The incremental checkpoint file contents (schema v2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamCheckpoint {
    /// Schema version; always 2.
    pub version: u32,
    /// Dataset-bundle fingerprint this checkpoint belongs to.
    pub fingerprint: u64,
    /// Partition width it was taken at.
    pub shards: usize,
    /// Last day whose delta has been ingested.
    pub through: Date,
    /// Per-shard detector state, in shard order.
    pub states: Vec<ShardStateSnapshot>,
}

impl StreamCheckpoint {
    /// The current schema version.
    pub const VERSION: u32 = 2;

    /// Load from `path` if it exists and matches `fingerprint`/`shards` at
    /// schema v2. Anything else — missing, unreadable, malformed, a v1
    /// file, or a mismatched run — yields `None` (start fresh).
    pub fn load(path: &Path, fingerprint: u64, shards: usize) -> Option<Self> {
        let text = std::fs::read_to_string(path).ok()?;
        match serde_json::from_str::<StreamCheckpoint>(&text) {
            Ok(cp)
                if cp.version == Self::VERSION
                    && cp.fingerprint == fingerprint
                    && cp.shards == shards
                    && cp.states.len() == shards =>
            {
                Some(cp)
            }
            _ => None,
        }
    }

    /// Persist to `path` (whole-file rewrite).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(
            path,
            serde_json::to_string(self).map_err(std::io::Error::other)?,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            fingerprint: 42,
            shards: 2,
            completed: vec![CompletedShard {
                shard: 1,
                output: ShardOutput {
                    shard: 1,
                    kc: vec![],
                    rc: vec![],
                    mtd: vec![],
                    audit: None,
                },
                metrics: ShardMetrics {
                    shard: 1,
                    wall_us: 10,
                    kc_us: 3,
                    rc_us: 3,
                    mtd_us: 4,
                    items_in: 7,
                    items_out: 0,
                    attempts: 1,
                },
            }],
        }
    }

    #[test]
    fn roundtrip_and_validation() {
        let dir = std::env::temp_dir().join("stale_engine_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let cp = sample();
        cp.save(&path).unwrap();

        let loaded = Checkpoint::load_or_new(&path, 42, 2);
        assert_eq!(loaded, cp);
        assert!(loaded.has(1));
        assert!(!loaded.has(0));

        // Wrong fingerprint or width → fresh.
        assert!(Checkpoint::load_or_new(&path, 43, 2).completed.is_empty());
        assert!(Checkpoint::load_or_new(&path, 42, 3).completed.is_empty());
        // Missing file → fresh.
        assert!(Checkpoint::load_or_new(&dir.join("nope.json"), 42, 2)
            .completed
            .is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stream_checkpoint_roundtrip_and_validation() {
        let dir = std::env::temp_dir().join("stale_engine_ckpt_v2_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v2.json");
        let cp = StreamCheckpoint {
            version: StreamCheckpoint::VERSION,
            fingerprint: 42,
            shards: 1,
            through: Date::parse("2022-11-30").unwrap(),
            states: vec![ShardStateSnapshot {
                shard: 0,
                kc: SavedKc::default(),
                rc: SavedRc::default(),
                mtd: SavedMtd::default(),
            }],
        };
        cp.save(&path).unwrap();
        assert_eq!(StreamCheckpoint::load(&path, 42, 1), Some(cp.clone()));
        // Wrong fingerprint, width, or missing file → None.
        assert_eq!(StreamCheckpoint::load(&path, 43, 1), None);
        assert_eq!(StreamCheckpoint::load(&path, 42, 2), None);
        assert_eq!(StreamCheckpoint::load(&dir.join("nope.json"), 42, 1), None);
        // A v1 file is not a v2 checkpoint, and vice versa.
        let v1_path = dir.join("v1.json");
        sample().save(&v1_path).unwrap();
        assert_eq!(StreamCheckpoint::load(&v1_path, 42, 2), None);
        assert!(Checkpoint::load_or_new(&path, 42, 1).completed.is_empty());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&v1_path);
    }

    #[test]
    fn malformed_file_is_fresh() {
        let dir = std::env::temp_dir().join("stale_engine_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "not json {").unwrap();
        assert!(Checkpoint::load_or_new(&path, 1, 1).completed.is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
