//! Master-file (zone file) parsing and serialisation — RFC 1035 §5
//! subset.
//!
//! The paper's scanner "extracted the domains from all publicly available
//! zone files from the Centralized Zone Data Service" (§4.3). This module
//! implements the format those files use: one record per line,
//! `owner TTL class type rdata`, with `$ORIGIN`/`$TTL` directives,
//! relative owner names, `@` for the origin, and `;` comments. The
//! scanner-side entry point [`registered_names`] extracts the unique
//! second-level names a daily scan enumerates.

use crate::record::{Ipv4Addr, RData, Record, RecordType, Ttl};
use crate::zone::Zone;
use stale_types::DomainName;
use std::collections::BTreeSet;
use std::fmt;

/// Zone-file parse errors, with the offending line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneFileError {
    /// 1-based line.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ZoneFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "zone file line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ZoneFileError {}

fn err(line: usize, reason: impl Into<String>) -> ZoneFileError {
    ZoneFileError {
        line,
        reason: reason.into(),
    }
}

/// Resolve a possibly-relative name against the origin.
fn resolve_name(
    token: &str,
    origin: Option<&DomainName>,
    line: usize,
) -> Result<DomainName, ZoneFileError> {
    if token == "@" {
        return origin
            .cloned()
            .ok_or_else(|| err(line, "@ used before $ORIGIN"));
    }
    if let Some(absolute) = token.strip_suffix('.') {
        return DomainName::parse(absolute).map_err(|e| err(line, e.to_string()));
    }
    match origin {
        Some(origin) => {
            DomainName::parse(&format!("{token}.{origin}")).map_err(|e| err(line, e.to_string()))
        }
        None => Err(err(line, "relative name before $ORIGIN")),
    }
}

/// Parse a zone file into records.
pub fn parse(text: &str) -> Result<Vec<Record>, ZoneFileError> {
    let mut origin: Option<DomainName> = None;
    let mut default_ttl = Ttl::HOUR;
    let mut last_owner: Option<DomainName> = None;
    let mut records = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.find(';') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        if line.trim().is_empty() {
            continue;
        }
        let starts_blank = line.starts_with(' ') || line.starts_with('\t');
        let mut tokens = line.split_whitespace().peekable();
        // Directives.
        if let Some(&first) = tokens.peek() {
            if first == "$ORIGIN" {
                tokens.next();
                let arg = tokens
                    .next()
                    .ok_or_else(|| err(line_no, "$ORIGIN needs a name"))?;
                origin = Some(
                    DomainName::parse(arg.trim_end_matches('.'))
                        .map_err(|e| err(line_no, e.to_string()))?,
                );
                continue;
            }
            if first == "$TTL" {
                tokens.next();
                let arg = tokens
                    .next()
                    .ok_or_else(|| err(line_no, "$TTL needs a value"))?;
                default_ttl = Ttl(arg.parse().map_err(|_| err(line_no, "bad $TTL value"))?);
                continue;
            }
        }
        // Owner: blank-start lines reuse the previous owner.
        let owner = if starts_blank {
            last_owner
                .clone()
                .ok_or_else(|| err(line_no, "no previous owner to inherit"))?
        } else {
            let token = tokens.next().ok_or_else(|| err(line_no, "missing owner"))?;
            resolve_name(token, origin.as_ref(), line_no)?
        };
        last_owner = Some(owner.clone());
        // Optional TTL, optional class, then type.
        let mut ttl = default_ttl;
        let mut next = tokens
            .next()
            .ok_or_else(|| err(line_no, "missing record type"))?;
        if let Ok(explicit) = next.parse::<u32>() {
            ttl = Ttl(explicit);
            next = tokens
                .next()
                .ok_or_else(|| err(line_no, "missing record type"))?;
        }
        if next.eq_ignore_ascii_case("IN") {
            next = tokens
                .next()
                .ok_or_else(|| err(line_no, "missing record type"))?;
        }
        let rtype = next.to_ascii_uppercase();
        let rest: Vec<&str> = tokens.collect();
        let data = parse_rdata(&rtype, &rest, origin.as_ref(), line_no)?;
        records.push(Record {
            name: owner,
            ttl,
            data,
        });
    }
    Ok(records)
}

fn parse_rdata(
    rtype: &str,
    args: &[&str],
    origin: Option<&DomainName>,
    line: usize,
) -> Result<RData, ZoneFileError> {
    let need = |n: usize| -> Result<(), ZoneFileError> {
        if args.len() < n {
            Err(err(line, format!("{rtype} needs {n} field(s)")))
        } else {
            Ok(())
        }
    };
    match rtype {
        "A" => {
            need(1)?;
            let mut octets = [0u8; 4];
            let parts: Vec<&str> = args[0].split('.').collect();
            if parts.len() != 4 {
                return Err(err(line, "bad IPv4 address"));
            }
            for (i, p) in parts.iter().enumerate() {
                octets[i] = p.parse().map_err(|_| err(line, "bad IPv4 octet"))?;
            }
            Ok(RData::A(Ipv4Addr(octets)))
        }
        "NS" => {
            need(1)?;
            Ok(RData::Ns(resolve_name(args[0], origin, line)?))
        }
        "CNAME" => {
            need(1)?;
            Ok(RData::Cname(resolve_name(args[0], origin, line)?))
        }
        "TXT" => {
            need(1)?;
            let joined = args.join(" ");
            Ok(RData::Txt(joined.trim_matches('"').to_string()))
        }
        "SOA" => {
            need(3)?;
            Ok(RData::Soa {
                mname: resolve_name(args[0], origin, line)?,
                rname: resolve_name(args[1], origin, line)?,
                serial: args[2].parse().map_err(|_| err(line, "bad SOA serial"))?,
            })
        }
        "CAA" => {
            need(3)?;
            let flags: u8 = args[0].parse().map_err(|_| err(line, "bad CAA flags"))?;
            Ok(RData::Caa {
                critical: flags & 0x80 != 0,
                tag: args[1].to_string(),
                value: args[2].trim_matches('"').to_string(),
            })
        }
        "TLSA" => {
            need(4)?;
            let parse_u8 = |s: &str| s.parse::<u8>().map_err(|_| err(line, "bad TLSA field"));
            let association = (0..args[3].len())
                .step_by(2)
                .map(|i| {
                    u8::from_str_radix(args[3].get(i..i + 2).unwrap_or("zz"), 16)
                        .map_err(|_| err(line, "bad TLSA hex"))
                })
                .collect::<Result<Vec<u8>, _>>()?;
            Ok(RData::Tlsa {
                usage: parse_u8(args[0])?,
                selector: parse_u8(args[1])?,
                matching_type: parse_u8(args[2])?,
                association,
            })
        }
        other => Err(err(line, format!("unsupported record type {other}"))),
    }
}

/// Serialise records back to zone-file text rooted at `origin`.
pub fn serialize(origin: &DomainName, records: &[Record]) -> String {
    let mut out = format!("$ORIGIN {origin}.\n");
    for record in records {
        let owner = if &record.name == origin {
            "@".to_string()
        } else if record.name.is_subdomain_of(origin) {
            let full = record.name.as_str();
            full[..full.len() - origin.as_str().len() - 1].to_string()
        } else {
            format!("{}.", record.name)
        };
        let rdata = match &record.data {
            RData::A(ip) => format!("A {ip}"),
            RData::Aaaa(_) => continue, // not produced by the simulator
            RData::Ns(n) => format!("NS {n}."),
            RData::Cname(c) => format!("CNAME {c}."),
            RData::Txt(t) => format!("TXT \"{t}\""),
            RData::Soa {
                mname,
                rname,
                serial,
            } => {
                format!("SOA {mname}. {rname}. {serial}")
            }
            RData::Caa {
                critical,
                tag,
                value,
            } => {
                format!("CAA {} {tag} \"{value}\"", if *critical { 128 } else { 0 })
            }
            RData::Tlsa {
                usage,
                selector,
                matching_type,
                association,
            } => {
                let hex: String = association.iter().map(|b| format!("{b:02x}")).collect();
                format!("TLSA {usage} {selector} {matching_type} {hex}")
            }
        };
        out.push_str(&format!("{owner} {} IN {rdata}\n", record.ttl.0));
    }
    out
}

/// Serialise a [`Zone`].
pub fn serialize_zone(zone: &Zone) -> String {
    let records: Vec<Record> = zone.iter().cloned().collect();
    match zone.apex() {
        Some(apex) => serialize(apex, &records),
        None => String::new(),
    }
}

/// The scanner-side extraction: the unique names registered directly
/// under `tld` that appear anywhere in the zone file (owner names of NS
/// delegations, per CZDS zone-file shape).
pub fn registered_names(
    text: &str,
    tld: &DomainName,
) -> Result<BTreeSet<DomainName>, ZoneFileError> {
    let records = parse(text)?;
    let mut names = BTreeSet::new();
    for record in &records {
        if record.record_type() != RecordType::Ns {
            continue;
        }
        // Walk up to the label directly below the TLD.
        let mut cursor = record.name.clone();
        if !cursor.is_subdomain_of(tld) || &cursor == tld {
            continue;
        }
        while let Some(parent) = cursor.parent() {
            if &parent == tld {
                names.insert(cursor);
                break;
            }
            cursor = parent;
        }
    }
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stale_types::domain::dn;

    const SAMPLE: &str = "\
; the com zone, excerpted
$ORIGIN com.
$TTL 86400
foo        IN NS ns1.foo.com.
           IN NS ns2.foo.com.
bar 3600   IN NS anna.ns.cloudflare.com.
baz        IN CNAME target.example.net.
";

    #[test]
    fn parses_directives_owners_and_inheritance() {
        let records = parse(SAMPLE).unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(records[0].name, dn("foo.com"));
        assert_eq!(records[0].ttl, Ttl(86400));
        // Blank-owner line inherits foo.com.
        assert_eq!(records[1].name, dn("foo.com"));
        assert_eq!(records[1].data, RData::Ns(dn("ns2.foo.com")));
        // Explicit TTL.
        assert_eq!(records[2].ttl, Ttl(3600));
        assert_eq!(records[3].data, RData::Cname(dn("target.example.net")));
    }

    #[test]
    fn at_sign_and_soa() {
        let text = "\
$ORIGIN foo.com.
@ IN SOA ns1 hostmaster 42
@ IN A 192.0.2.1
www IN CNAME @
";
        let records = parse(text).unwrap();
        assert_eq!(
            records[0].data,
            RData::Soa {
                mname: dn("ns1.foo.com"),
                rname: dn("hostmaster.foo.com"),
                serial: 42
            }
        );
        assert_eq!(records[1].data, RData::A(Ipv4Addr::new(192, 0, 2, 1)));
        assert_eq!(records[2].data, RData::Cname(dn("foo.com")));
    }

    #[test]
    fn caa_and_tlsa() {
        let text = "\
$ORIGIN foo.com.
@ IN CAA 128 issue \"letsencrypt.org\"
_443._tcp IN TLSA 3 1 1 aabbccdd
";
        let records = parse(text).unwrap();
        assert_eq!(
            records[0].data,
            RData::Caa {
                critical: true,
                tag: "issue".into(),
                value: "letsencrypt.org".into()
            }
        );
        assert_eq!(
            records[1].data,
            RData::Tlsa {
                usage: 3,
                selector: 1,
                matching_type: 1,
                association: vec![0xaa, 0xbb, 0xcc, 0xdd]
            }
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad_type = "$ORIGIN com.\nfoo IN WAT stuff\n";
        assert_eq!(parse(bad_type).unwrap_err().line, 2);
        let relative_early = "foo IN NS ns1.foo.com.\n";
        assert_eq!(parse(relative_early).unwrap_err().line, 1);
        let bad_ip = "$ORIGIN com.\nfoo IN A 999.1.2.3\n";
        assert!(parse(bad_ip).unwrap_err().reason.contains("octet"));
    }

    #[test]
    fn roundtrip_through_serialize() {
        let records = parse(SAMPLE).unwrap();
        let text = serialize(&dn("com"), &records);
        let reparsed = parse(&text).unwrap();
        assert_eq!(reparsed, records);
    }

    #[test]
    fn zone_roundtrip() {
        let mut zone = Zone::new(dn("foo.com"));
        zone.add_data(dn("foo.com"), RData::A(Ipv4Addr::new(192, 0, 2, 1)));
        zone.add_data(dn("www.foo.com"), RData::Cname(dn("foo.com")));
        let text = serialize_zone(&zone);
        let reparsed = parse(&text).unwrap();
        assert_eq!(reparsed.len(), zone.iter().count());
    }

    #[test]
    fn registered_names_extracts_e2lds() {
        let names = registered_names(SAMPLE, &dn("com")).unwrap();
        assert_eq!(
            names,
            [dn("foo.com"), dn("bar.com")]
                .into_iter()
                .collect::<BTreeSet<_>>()
        );
        // Deep delegations attribute to the 2LD.
        let deep = "$ORIGIN com.\nsub.deep IN NS ns1.example.net.\n";
        let names = registered_names(deep, &dn("com")).unwrap();
        assert_eq!(names.into_iter().next().unwrap(), dn("deep.com"));
    }
}
