//! DNS substrate: records, zones, resolution, wire format and the active
//! scanning dataset.
//!
//! The managed-TLS departure detector (§4.3) consumes *daily active DNS
//! scans* of A/AAAA/NS/CNAME records and diffs neighbouring days. This
//! crate provides:
//!
//! * [`record`] — resource records and record data;
//! * [`zone`] — authoritative zone storage with point-in-time mutation;
//! * [`resolver`] — recursive resolution with NS delegation and CNAME
//!   chasing over a set of zones;
//! * [`wire`] — RFC 1035 wire-format encoding/decoding with name
//!   compression (the on-the-wire substrate a real scanner would speak);
//! * [`scan`] — the daily scanner and the interval-compressed
//!   [`scan::DnsHistory`] that stands in for the paper's 300M-record/day
//!   aDNS feed without materialising every day.

pub mod record;
pub mod resolver;
pub mod scan;
pub mod server;
pub mod wire;
pub mod zone;
pub mod zonefile;

pub use record::{Ipv4Addr, RData, Record, RecordType, Ttl};
pub use resolver::{ResolutionError, Resolver};
pub use scan::{DailyScanner, DnsHistory, DnsSnapshot};
pub use zone::Zone;
